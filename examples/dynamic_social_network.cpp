// Dynamic maintenance (Section V): a social network receives a stream of
// friendship insertions/deletions (the paper reports >= 1% of all edges
// churn per day in the Tencent MOBA graph). Rebuilding the team assignment
// from scratch per update is far too slow; the candidate-clique index plus
// swap operations keep the solution near-optimal at microsecond update
// cost. This example measures exactly that trade-off.
//
// Usage: dynamic_social_network [--nodes=5000] [--k=4] [--updates=2000]

#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "gen/generators.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  dkc::Flags flags(argc, argv);
  const dkc::NodeId nodes =
      static_cast<dkc::NodeId>(flags.GetInt("nodes", 5000));
  const int k = static_cast<int>(flags.GetInt("k", 4));
  const size_t updates = static_cast<size_t>(flags.GetInt("updates", 2000));
  dkc::Rng rng(21);

  auto graph_or = dkc::WattsStrogatz(nodes, 12, 0.1, rng);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  dkc::Graph graph = std::move(graph_or).value();

  // Mixed workload: half insertions (of pre-removed edges), half deletions.
  dkc::MixedWorkload workload =
      dkc::MakeMixedWorkload(graph, updates / 2, updates / 2, rng);

  dkc::DynamicOptions options;
  options.k = k;
  auto solver = dkc::DynamicSolver::Build(workload.prepared, options);
  if (!solver.ok()) {
    std::fprintf(stderr, "%s\n", solver.status().ToString().c_str());
    return 1;
  }
  std::printf("initial solve: %.1f ms, index build: %.1f ms, "
              "|S| = %u, index holds %llu candidate cliques\n",
              solver->build_stats().solve_ms, solver->build_stats().index_ms,
              solver->solution_size(),
              static_cast<unsigned long long>(solver->index_size()));

  dkc::Timer timer;
  size_t applied = 0;
  for (const auto& op : workload.ops) {
    const dkc::Status status =
        op.is_insert ? solver->InsertEdge(op.edge.first, op.edge.second)
                     : solver->DeleteEdge(op.edge.first, op.edge.second);
    if (!status.ok()) {
      std::fprintf(stderr, "update failed: %s\n", status.ToString().c_str());
      return 1;
    }
    ++applied;
  }
  const double total_ms = timer.ElapsedMillis();
  std::printf("applied %zu updates in %.1f ms (%.0f ns/update), "
              "%llu swap commits along the way\n",
              applied, total_ms, 1e6 * total_ms / applied,
              static_cast<unsigned long long>(
                  solver->lifetime_swap_stats().commits));
  std::printf("maintained |S| = %u\n", solver->solution_size());

  // Ground truth: rebuild from scratch on the final graph and compare.
  dkc::Timer rebuild_timer;
  dkc::SolverOptions fresh;
  fresh.k = k;
  fresh.method = dkc::Method::kLP;
  const dkc::Graph final_graph = solver->graph().ToGraph();
  auto from_scratch = dkc::Solve(final_graph, fresh);
  if (!from_scratch.ok()) {
    std::fprintf(stderr, "%s\n", from_scratch.status().ToString().c_str());
    return 1;
  }
  std::printf("rebuild from scratch: |S| = %u in %.1f ms -> one rebuild "
              "costs as much as ~%.0f index updates\n",
              from_scratch->size(), rebuild_timer.ElapsedMillis(),
              rebuild_timer.ElapsedMillis() / (total_ms / applied));

  const dkc::Status valid =
      dkc::VerifySolution(final_graph, solver->Snapshot());
  std::printf("maintained solution verification: %s\n",
              valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
