// Quickstart: load (or generate) a graph, compute a near-optimal maximum
// set of disjoint k-cliques with the paper's recommended method (LP), and
// verify the result.
//
// Usage:
//   quickstart [--k=4] [--method=LP] [--file=edges.txt]
// Without --file a small-world graph is generated.

#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/generators.h"
#include "io/edge_list.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  dkc::Flags flags(argc, argv);
  const int k = static_cast<int>(flags.GetInt("k", 4));
  const std::string method_name = flags.GetString("method", "LP");
  const std::string file = flags.GetString("file", "");

  // 1. Get a graph: from an edge list on disk, or synthesized.
  dkc::Graph graph;
  if (!file.empty()) {
    auto loaded = dkc::ReadEdgeList(file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", file.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded->graph);
  } else {
    dkc::Rng rng(42);
    auto generated = dkc::WattsStrogatz(10000, 12, 0.1, rng);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    graph = std::move(generated).value();
  }
  std::printf("graph: %u nodes, %llu edges\n", graph.num_nodes(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Pick a method and solve.
  auto method = dkc::ParseMethod(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 1;
  }
  dkc::SolverOptions options;
  options.k = k;
  options.method = *method;
  auto result = dkc::Solve(graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect the answer.
  std::printf("method %s found %u disjoint %d-cliques in %.2f ms "
              "(%.2f init + %.2f compute)\n",
              dkc::MethodName(*method), result->size(), k,
              result->stats.total_ms(), result->stats.init_ms,
              result->stats.compute_ms);
  std::printf("nodes covered: %u of %u (%.1f%%)\n",
              result->size() * static_cast<unsigned>(k), graph.num_nodes(),
              100.0 * result->size() * k / graph.num_nodes());

  // 4. Never trust a solver, even your own.
  dkc::Status valid = dkc::VerifySolution(graph, result->set);
  std::printf("verification: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
