// MOBA teaming event (the paper's Fig. 1 motivation): the game must
// auto-assemble teams of k players from the friendship network, and teams
// that are k-cliques (everyone friends with everyone) convert best. We
// simulate a player friendship network with community structure and run
// the paper's deployment strategy end to end via the ResidualCover API:
// round 1 packs disjoint k-cliques; later rounds re-solve on the residual
// graph with shrinking k; a final maximum-matching round pairs leftovers.
//
// Usage: team_formation [--players=20000] [--team-size=5] [--seed=7]

#include <cstdio>
#include <vector>

#include "core/residual_cover.h"
#include "core/solver.h"
#include "gen/generators.h"
#include "util/flags.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  dkc::Flags flags(argc, argv);
  const dkc::NodeId players =
      static_cast<dkc::NodeId>(flags.GetInt("players", 20000));
  const int team_size = static_cast<int>(flags.GetInt("team-size", 5));
  dkc::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));

  // Friendship network: small-world communities (high clustering, like the
  // real in-game social graph the paper describes).
  auto graph_or = dkc::WattsStrogatz(players, 16, 0.08, rng);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  dkc::Graph friends = std::move(graph_or).value();
  std::printf("friendship network: %u players, %llu friendships\n",
              friends.num_nodes(),
              static_cast<unsigned long long>(friends.num_edges()));
  std::printf("full teams hold %d players; a fully-friend team is a "
              "%d-clique (Fig. 1(b): the 100%%-conversion structure)\n\n",
              team_size, team_size);

  dkc::Timer timer;
  dkc::ResidualCoverOptions options;
  options.k = team_size;
  options.min_k = 3;
  options.pair_round = true;  // leftovers get duo queues
  options.method = dkc::Method::kLP;
  auto cover = dkc::ResidualCover(friends, options);
  if (!cover.ok()) {
    std::fprintf(stderr, "%s\n", cover.status().ToString().c_str());
    return 1;
  }
  const double total_ms = timer.ElapsedMillis();

  for (int k = team_size; k >= 2; --k) {
    dkc::Count groups = 0;
    for (const auto& group : cover->groups) groups += (group.k == k);
    if (k == team_size) {
      std::printf("round 1 (full %d-clique teams): %llu teams\n", k,
                  static_cast<unsigned long long>(groups));
    } else if (k > 2) {
      std::printf("residual round (teams of %d): %llu teams\n", k,
                  static_cast<unsigned long long>(groups));
    } else {
      std::printf("duo round (maximum matching): %llu pairs\n",
                  static_cast<unsigned long long>(groups));
    }
  }
  std::printf("\n%llu of %u players grouped (%.1f%%) in %.1f ms; "
              "the remainder get random fill-ins\n",
              static_cast<unsigned long long>(cover->covered_nodes),
              friends.num_nodes(),
              100.0 * cover->coverage(friends.num_nodes()), total_ms);
  return 0;
}
