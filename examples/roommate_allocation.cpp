// Roommate allocation (paper's second application [7]): rooms hold k beds;
// an assignment works best when all k roommates mutually accept each other,
// i.e. the room is a k-clique in the mutual-preference graph. Maximizing
// fully-compatible rooms = maximum set of disjoint k-cliques.
//
// We synthesize a preference graph with "dorm cohort" structure (students
// accept most of their own cohort, few outsiders), solve for k-bed rooms,
// and report occupancy quality per method to show the LP/HG trade-off.
//
// Usage: roommate_allocation [--students=3000] [--beds=4] [--seed=11]

#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"
#include "graph/graph_builder.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

// Cohorts of ~40 students; within-cohort acceptance 45%, across 0.2%.
dkc::Graph PreferenceGraph(dkc::NodeId students, dkc::Rng& rng) {
  constexpr dkc::NodeId kCohort = 40;
  dkc::GraphBuilder builder(students);
  builder.EnsureNode(students - 1);
  for (dkc::NodeId u = 0; u < students; ++u) {
    for (dkc::NodeId v = u + 1; v < students; ++v) {
      const bool same_cohort = (u / kCohort) == (v / kCohort);
      const double p = same_cohort ? 0.45 : 0.002;
      if (rng.NextBool(p)) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace

int main(int argc, char** argv) {
  dkc::Flags flags(argc, argv);
  const dkc::NodeId students =
      static_cast<dkc::NodeId>(flags.GetInt("students", 3000));
  const int beds = static_cast<int>(flags.GetInt("beds", 4));
  dkc::Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 11)));

  dkc::Graph prefs = PreferenceGraph(students, rng);
  std::printf("preference graph: %u students, %llu mutual acceptances\n",
              prefs.num_nodes(),
              static_cast<unsigned long long>(prefs.num_edges()));
  std::printf("rooms have %d beds; a fully-compatible room is a %d-clique\n\n",
              beds, beds);

  std::printf("%-8s %12s %16s %12s\n", "method", "rooms", "students housed",
              "time (ms)");
  for (dkc::Method m : {dkc::Method::kHG, dkc::Method::kLP}) {
    dkc::SolverOptions options;
    options.k = beds;
    options.method = m;
    dkc::Timer timer;
    auto result = dkc::Solve(prefs, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", dkc::MethodName(m),
                   result.status().ToString().c_str());
      continue;
    }
    if (!dkc::VerifySolution(prefs, result->set).ok()) {
      std::fprintf(stderr, "%s produced an invalid allocation!\n",
                   dkc::MethodName(m));
      return 1;
    }
    std::printf("%-8s %12u %15.1f%% %12.1f\n", dkc::MethodName(m),
                result->size(),
                100.0 * result->size() * beds / prefs.num_nodes(),
                timer.ElapsedMillis());
  }
  std::printf("\nstudents not in a fully-compatible room are assigned by a "
              "second pass\n(e.g. maximum matching of pairs), outside this "
              "example's scope.\n");
  return 0;
}
