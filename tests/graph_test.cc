#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph_builder.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1));
}

TEST(GraphBuilderTest, TriangleBasics) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b;
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(GraphBuilderTest, EnsureNodeCreatesIsolatedNodes) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNode(5);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(GraphBuilderTest, NodeCountGrowsToMaxId) {
  GraphBuilder b;
  b.AddEdge(3, 9);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 10u);
}

TEST(GraphTest, NeighborsAreSortedUnique) {
  Graph g = testing::RandomGraph(60, 0.2, /*seed=*/1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
    EXPECT_EQ(std::find(nbrs.begin(), nbrs.end(), u), nbrs.end())
        << "self loop at " << u;
  }
}

TEST(GraphTest, AdjacencyIsSymmetric) {
  Graph g = testing::RandomGraph(60, 0.15, /*seed=*/2);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      EXPECT_TRUE(g.HasEdge(v, u)) << u << "-" << v;
    }
  }
}

TEST(GraphTest, HasEdgeMatchesNeighborLists) {
  Graph g = testing::RandomGraph(40, 0.3, /*seed=*/3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto nbrs = g.Neighbors(u);
      const bool in_list =
          std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
      EXPECT_EQ(g.HasEdge(u, v), in_list);
    }
  }
}

TEST(GraphTest, HasEdgeOutOfRangeIsFalse) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_FALSE(g.HasEdge(99, 0));
}

TEST(GraphTest, DegreeSumIsTwiceEdges) {
  Graph g = testing::RandomGraph(80, 0.1, /*seed=*/4);
  Count total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) total += g.Degree(u);
  EXPECT_EQ(total, 2 * g.num_edges());
}

TEST(GraphTest, MemoryBytesPositiveForNonEmpty) {
  Graph g = testing::RandomGraph(10, 0.5, /*seed=*/5);
  EXPECT_GT(g.MemoryBytes(), 0);
}

TEST(GraphBuilderTest, BuildResetsBuilder) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(b.num_pending_edges(), 0u);
}

}  // namespace
}  // namespace dkc
