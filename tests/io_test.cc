#include "io/edge_list.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "test_util.h"

namespace dkc {
namespace {

TEST(EdgeListParseTest, BasicPairs) {
  auto result = ParseEdgeList("0 1\n1 2\n0 2\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.num_nodes(), 3u);
  EXPECT_EQ(result->graph.num_edges(), 3u);
  EXPECT_EQ(result->lines_parsed, 3u);
}

TEST(EdgeListParseTest, CommentsAndBlankLines) {
  auto result = ParseEdgeList(
      "# SNAP style comment\n% KONECT style comment\n\n  \n0 1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(EdgeListParseTest, RemapsSparseIds) {
  auto result = ParseEdgeList("100 200\n200 4000\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_nodes(), 3u);  // dense remap
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(EdgeListParseTest, FirstAppearanceOrderRemap) {
  auto result = ParseEdgeList("7 3\n3 9\n");
  ASSERT_TRUE(result.ok());
  // 7 -> 0, 3 -> 1, 9 -> 2
  EXPECT_TRUE(result->graph.HasEdge(0, 1));
  EXPECT_TRUE(result->graph.HasEdge(1, 2));
  EXPECT_FALSE(result->graph.HasEdge(0, 2));
}

TEST(EdgeListParseTest, SelfLoopsDroppedAndCounted) {
  auto result = ParseEdgeList("1 1\n1 2\n2 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), 1u);
  EXPECT_EQ(result->self_loops_dropped, 2u);
}

TEST(EdgeListParseTest, DuplicateEdgesCollapse) {
  auto result = ParseEdgeList("1 2\n2 1\n1 2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(EdgeListParseTest, ExtraColumnsIgnored) {
  auto result = ParseEdgeList("1 2 1.5 1092837\n2 3 0.25\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(EdgeListParseTest, TabsAndCommasAccepted) {
  auto result = ParseEdgeList("1\t2\n3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), 2u);
}

TEST(EdgeListParseTest, GarbageLineIsCorruption) {
  auto result = ParseEdgeList("1 2\nhello world\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeListParseTest, MissingSecondIdIsCorruption) {
  auto result = ParseEdgeList("1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(EdgeListParseTest, OverflowingIdIsCorruption) {
  // 2^64 exactly — one past UINT64_MAX. The old parser wrapped it to 0
  // and silently aliased node 0.
  auto result = ParseEdgeList("0 1\n18446744073709551616 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("overflow"), std::string::npos);
  // A much longer digit string must fail too, not wrap several times.
  EXPECT_FALSE(ParseEdgeList("99999999999999999999999999 2\n").ok());
}

TEST(EdgeListParseTest, MaxIdStillParses) {
  // UINT64_MAX itself is a valid (remapped) id.
  auto result = ParseEdgeList("18446744073709551615 2\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.num_edges(), 1u);
}

TEST(EdgeListParseTest, OverflowingSecondIdIsCorruption) {
  auto result = ParseEdgeList("1 18446744073709551616\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(EdgeListParseTest, TrailingGarbageIsCorruption) {
  // The old parser accepted any suffix after the second id.
  auto result = ParseEdgeList("0 1\n1 2 junk\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(EdgeListParseTest, GarbageGluedToSecondIdIsCorruption) {
  EXPECT_FALSE(ParseEdgeList("1 2x\n").ok());
  EXPECT_FALSE(ParseEdgeList("1 2 3.5abc\n").ok());
}

TEST(EdgeListParseTest, NumericExtraColumnsStillAccepted) {
  // Weights/timestamps in every shape KONECT emits: signed, fractional,
  // scientific. These must keep parsing (the documented contract).
  auto result = ParseEdgeList("1 2 -1.5 1092837\n2 3 6.02e23\n3 4 +7,8\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->graph.num_edges(), 3u);
}

TEST(EdgeListParseTest, EmptyInputYieldsEmptyGraph) {
  auto result = ParseEdgeList("");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_nodes(), 0u);
}

TEST(EdgeListFileTest, MissingFileIsIOError) {
  auto result = ReadEdgeList("/nonexistent/path/to/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(EdgeListFileTest, WriteReadRoundTrip) {
  Graph g = testing::RandomGraph(25, 0.3, /*seed=*/40);
  const std::string path = ::testing::TempDir() + "/dkc_roundtrip.txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  auto result = ReadEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Round trip may renumber, but node/edge counts and degree multiset are
  // invariant; with first-appearance remap of our own writer output (which
  // emits u<v ascending), ids are in fact preserved for connected prefixes.
  EXPECT_EQ(result->graph.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(EdgeListFileTest, WriteToBadPathFails) {
  Graph g = testing::RandomGraph(5, 0.5, /*seed=*/41);
  EXPECT_EQ(WriteEdgeList(g, "/nonexistent_dir/x.txt").code(),
            Status::Code::kIOError);
}

TEST(EdgeListFileTest, WriteLeavesNoTempFile) {
  Graph g = testing::RandomGraph(10, 0.4, /*seed=*/42);
  const std::string path = ::testing::TempDir() + "/dkc_atomic_edges.txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  // The atomic-publish temp must be renamed away, and a stale temp from a
  // simulated earlier crash must be overwritten by the next write.
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
  {
    std::ofstream stale(path + ".tmp");
    stale << "0 1\ntorn";
  }
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  EXPECT_FALSE(std::ifstream(path + ".tmp").is_open());
  auto result = ReadEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->graph.num_edges(), g.num_edges());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkc
