#include "core/opt_solver.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/lightweight.h"
#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(OptSolverTest, RejectsKBelow3) {
  OptOptions options;
  options.k = 2;
  EXPECT_FALSE(SolveOpt(PaperFig2Graph(), options).ok());
}

TEST(OptSolverTest, PaperFig2IsThree) {
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(PaperFig2Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // Example 1: |S2| = 3 is maximum
  EXPECT_TRUE(VerifyDisjointCliques(PaperFig2Graph(), result->set).ok());
}

TEST(OptSolverTest, Fig5G1AndG2) {
  OptOptions options;
  options.k = 3;
  auto g1 = SolveOpt(PaperFig5G1(), options);
  auto g2 = SolveOpt(PaperFig5G2(), options);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->size(), 2u);
  EXPECT_EQ(g2->size(), 3u);  // the (v5,v7) insertion enables a third clique
}

TEST(OptSolverTest, EmptyGraph) {
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(OptSolverTest, PlantedInstanceExactlyRecovered) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 7;
  spec.k = 3;
  spec.filler_nodes = 15;
  Rng rng(95);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(planted->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), planted->planted_count);
}

TEST(OptSolverTest, ExpiredDeadlineIsOot) {
  Graph g = testing::RandomGraph(300, 0.2, /*seed=*/96);
  OptOptions options;
  options.k = 3;
  options.budget.time_ms = 0.000001;
  auto result = SolveOpt(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded());
}

TEST(OptSolverTest, TinyMemoryBudgetIsOom) {
  Graph g = testing::RandomGraph(60, 0.5, /*seed=*/97);
  OptOptions options;
  options.k = 3;
  options.budget.memory_bytes = 64;
  auto result = SolveOpt(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsMemoryBudgetExceeded());
}

// OPT must equal the brute-force optimum.
class OptSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(OptSweep, MatchesBruteForceOptimum) {
  const auto [n, p, k] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 211 + n * k);
    OptOptions options;
    options.k = k;
    auto result = SolveOpt(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(VerifyDisjointCliques(g, result->set).ok());
    EXPECT_EQ(result->size(), testing::BruteForceMaxDisjointPacking(g, k))
        << "n=" << n << " p=" << p << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptSweep,
    ::testing::Combine(::testing::Values(12, 16, 20),
                       ::testing::Values(0.3, 0.5), ::testing::Values(3, 4)));

TEST(OptSolverTest, LoosePackingBoundStaysExact) {
  // Windmill graph: t triangles all sharing one hub node. The packing upper
  // bound floor(participating / k) = floor((2t+1)/3) is far above the true
  // optimum of 1 (every pair of triangles collides on the hub), so the
  // early-stop bound cannot fire and the MIS search must still prove
  // optimality the hard way.
  constexpr NodeId kTriangles = 6;
  GraphBuilder builder;
  for (NodeId t = 0; t < kTriangles; ++t) {
    const NodeId a = 1 + 2 * t;
    builder.AddEdge(0, a);
    builder.AddEdge(0, a + 1);
    builder.AddEdge(a, a + 1);
  }
  const Graph g = builder.Build();
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST(OptSolverTest, DisconnectedWindmillsDecomposeExactly) {
  // Three separate windmills (each t triangles sharing a private hub): the
  // conflict graph splits into three components of pairwise-colliding
  // triangles, so the exact MIS decomposition solves three tiny problems
  // and sums them. The packing bound floor(participating/k) = 9 per the
  // whole graph stays loose; the answer must still be exactly 3.
  constexpr NodeId kWindmills = 3;
  constexpr NodeId kTriangles = 4;
  GraphBuilder builder;
  NodeId next = 0;
  for (NodeId w = 0; w < kWindmills; ++w) {
    const NodeId hub = next++;
    for (NodeId t = 0; t < kTriangles; ++t) {
      const NodeId a = next++;
      const NodeId b = next++;
      builder.AddEdge(hub, a);
      builder.AddEdge(hub, b);
      builder.AddEdge(a, b);
    }
  }
  const Graph g = builder.Build();
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), kWindmills);
  EXPECT_TRUE(VerifyDisjointCliques(g, result->set).ok());
}

TEST(OptSolverTest, CliqueRichInstanceNoLongerPathological) {
  // Regression for the exact-MIS early stop: this exact instance (ER n=24,
  // p=0.5, k=3; 249 triangles, optimum 8 = floor(24/3)) used to spend ~24s
  // proving no 9th disjoint triangle exists. With the packing bound the
  // greedy incumbent certifies optimality immediately.
  Rng rng(2 * 101 + 24 * 3);
  const Graph g = ErdosRenyi(24, 0.5, rng).value();
  OptOptions options;
  options.k = 3;
  auto result = SolveOpt(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 8u);
  EXPECT_TRUE(VerifyDisjointCliques(g, result->set).ok());
}

TEST(OptSolverTest, LpWithinKFactorOfOpt) {
  // Theorem 3 instantiated against the true optimum computed by OPT.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = testing::RandomGraph(22, 0.4, seed + 1200);
    OptOptions opt_options;
    opt_options.k = 3;
    auto opt = SolveOpt(g, opt_options);
    LightweightOptions lp_options;
    lp_options.k = 3;
    auto lp = SolveLightweight(g, lp_options);
    ASSERT_TRUE(opt.ok() && lp.ok());
    EXPECT_LE(opt->size(), 3 * lp->size());
    EXPECT_LE(lp->size(), opt->size());  // LP can never beat the optimum
  }
}

}  // namespace
}  // namespace dkc
