#include "dynamic/swap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/kclique.h"
#include "gen/named_graphs.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

std::vector<Count> ScoresFor(const Graph& g, int k) {
  Dag dag(g, DegeneracyOrdering(g));
  return ComputeNodeScores(dag, k).per_node;
}

TEST(PackTest, EmptyCandidatesYieldEmptyPack) {
  Graph g = PaperFig5G1();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c2 =
      state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildCandidatesFor(c2);
  EXPECT_TRUE(PackDisjointCandidates(state, c2).empty());
}

TEST(PackTest, SingleCandidate) {
  Graph g = PaperFig5G1();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.RebuildCandidatesFor(c1);
  auto pack = PackDisjointCandidates(state, c1);
  ASSERT_EQ(pack.size(), 1u);
  std::sort(pack[0].begin(), pack[0].end());
  EXPECT_EQ(pack[0], (std::vector<NodeId>{0, 1, 2}));
}

TEST(PackTest, PaperFig5SwapPacksTwoDisjointCandidates) {
  // G2: C1 = (v3,v4,v5) has candidates (v1,v2,v3) and (v5,v6,v7), which are
  // disjoint — the swap the paper walks through in Section V-C.
  Graph g = PaperFig5G2();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildCandidatesFor(c1);
  auto pack = PackDisjointCandidates(state, c1);
  EXPECT_EQ(pack.size(), 2u);
}

TEST(SwapTest, TrySwapExecutesPaperFig5Swap) {
  // Start from S = {(v3,v4,v5), (v9,v10,v11)} on G2; TrySwap on C1 must
  // replace it by (v1,v2,v3) + (v5,v6,v7), growing |S| from 2 to 3.
  Graph g = PaperFig5G2();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildAllCandidates();

  SwapQueue queue;
  queue.push_back(state.RefOf(c1));
  SwapStats stats = TrySwapLoop(&state, &queue);
  EXPECT_EQ(stats.commits, 1u);
  EXPECT_EQ(state.solution_size(), 3u);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;

  CliqueStore snap = state.Snapshot();
  std::vector<std::vector<NodeId>> cliques;
  for (CliqueId c = 0; c < snap.size(); ++c) {
    auto nodes = snap.Get(c);
    cliques.emplace_back(nodes.begin(), nodes.end());
  }
  auto canonical = testing::Canonicalize(cliques);
  EXPECT_TRUE(canonical.count({0, 1, 2}));   // v1,v2,v3
  EXPECT_TRUE(canonical.count({4, 5, 6}));   // v5,v6,v7
  EXPECT_TRUE(canonical.count({8, 9, 10}));  // v9,v10,v11
}

TEST(SwapTest, NoCommitWhenOnlyOneCandidate) {
  // G1: C1 has a single candidate; |S_dis| = 1 must NOT trigger a swap.
  Graph g = PaperFig5G1();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildAllCandidates();

  SwapQueue queue;
  queue.push_back(state.RefOf(c1));
  SwapStats stats = TrySwapLoop(&state, &queue);
  EXPECT_EQ(stats.commits, 0u);
  EXPECT_EQ(state.solution_size(), 2u);
  EXPECT_TRUE(state.SlotAlive(c1));
}

TEST(SwapTest, StaleQueueEntriesSkipped) {
  Graph g = PaperFig5G2();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.RebuildAllCandidates();
  SwapQueue queue;
  queue.push_back(state.RefOf(c1));
  state.RemoveSolutionClique(c1);  // entry is now stale
  SwapStats stats = TrySwapLoop(&state, &queue);
  EXPECT_EQ(stats.pops, 0u);
  EXPECT_EQ(stats.commits, 0u);
}

TEST(SwapTest, CommitReplacementWithEmptyReplacementJustRemoves) {
  Graph g = PaperFig5G1();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c2 =
      state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  SwapQueue queue;
  CommitReplacement(&state, c2, {}, &queue);
  EXPECT_EQ(state.solution_size(), 0u);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
}

TEST(SwapTest, CommitReplacementRebuildsAffectedNeighbors) {
  // Removing C2 = (v9,v10,v11) frees v9, a neighbor of v8... in G1 the
  // chain v5-v6-v7-v8-v9 means C1 gains no candidate, but the rebuild path
  // must still run cleanly and keep invariants.
  Graph g = PaperFig5G1();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  const uint32_t c2 =
      state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildAllCandidates();
  SwapQueue queue;
  CommitReplacement(&state, c2, {}, &queue);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
}

TEST(PackTest, ParallelSortMatchesSerialOnLargeCandidateSets) {
  // A hub clique with ~90 candidate triangles (well past the parallel-sort
  // threshold): the pooled pack must equal the serial pack byte for byte,
  // including score ties resolved by registration order.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);  // solution triangle C = {0,1,2}
  for (NodeId i = 0; i < 90; ++i) {
    const NodeId a = 3 + 2 * i;
    const NodeId c = 4 + 2 * i;
    const NodeId hub = i % 3;  // spread the candidates over C's nodes
    b.AddEdge(hub, a);
    b.AddEdge(hub, c);
    b.AddEdge(a, c);  // candidate {hub, a, c}
  }
  Graph g = b.Build();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{0, 1, 2});
  ASSERT_GE(state.RebuildCandidatesFor(c1), 90u);

  const auto serial = PackDisjointCandidates(state, c1, nullptr);
  ThreadPool pool2(2), pool4(4);
  EXPECT_EQ(PackDisjointCandidates(state, c1, &pool2), serial);
  EXPECT_EQ(PackDisjointCandidates(state, c1, &pool4), serial);
  EXPECT_GE(serial.size(), 3u);  // one disjoint pick per hub node
}

TEST(SwapTest, BudgetAbortsLoopAtPopBoundary) {
  Graph g = PaperFig5G2();
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  const uint32_t c1 = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  state.RebuildAllCandidates();

  SwapQueue queue;
  queue.push_back(state.RefOf(c1));
  UpdateWork spent;
  spent.max_work = 1;
  spent.work = 1;  // already exhausted: the loop must not pop at all
  SwapStats stats = TrySwapLoop(&state, &queue, &spent);
  EXPECT_TRUE(stats.aborted);
  EXPECT_TRUE(spent.aborted);
  EXPECT_EQ(stats.pops, 0u);
  EXPECT_EQ(stats.commits, 0u);
  EXPECT_TRUE(queue.empty());  // abandoned entries are discarded
  EXPECT_EQ(state.solution_size(), 2u);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;

  // With head-room the same swap commits and charges deterministic work.
  SwapQueue queue2;
  queue2.push_back(state.RefOf(c1));
  UpdateWork roomy;
  roomy.max_work = 1000;
  SwapStats ok_stats = TrySwapLoop(&state, &queue2, &roomy);
  EXPECT_FALSE(ok_stats.aborted);
  EXPECT_EQ(ok_stats.commits, 1u);
  EXPECT_EQ(state.solution_size(), 3u);
  EXPECT_GT(roomy.work, 0u);
}

TEST(SwapTest, SwapLoopTerminatesOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(60, 0.25, seed + 1300);
    SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
    // Deliberately bad initial solution: first-fit triangles in id order.
    std::vector<uint8_t> used(g.num_nodes(), 0);
    std::vector<uint32_t> slots;
    for (const auto& tri : testing::BruteForceKCliques(g, 3)) {
      if (used[tri[0]] || used[tri[1]] || used[tri[2]]) continue;
      for (NodeId u : tri) used[u] = 1;
      slots.push_back(state.AddSolutionClique(tri));
    }
    state.RebuildAllCandidates();
    const NodeId before = state.solution_size();
    SwapQueue queue;
    for (uint32_t s : slots) {
      if (state.SlotAlive(s)) queue.push_back(state.RefOf(s));
    }
    TrySwapLoop(&state, &queue);
    EXPECT_GE(state.solution_size(), before);  // swaps only grow S
    std::string error;
    EXPECT_TRUE(state.CheckInvariants(&error)) << error;
  }
}

}  // namespace
}  // namespace dkc
