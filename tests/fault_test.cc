// Syscall fault injection for the durable store (src/io/fault.h).
//
// The heart of this file is the randomized fault-schedule harness: for
// several churn worlds × {unbatched, epoch-batched} ingestion, it first
// records the complete syscall trace of a fault-free run, then replays the
// identical workload once per recorded syscall hit with that single hit
// failing (ENOSPC/EIO, or a genuine short write), asserting the trichotomy
// — every run either succeeds, refuses cleanly, or seals; never a fourth
// outcome — and that after the fault clears, Reopen() restores an engine
// byte-identical to a never-faulted reference over the acknowledged
// prefix, with ingest resuming to the identical final state.
//
// Around the harness: targeted regressions for the fsyncgate poisoning
// rule, AtomicWriteFile's error paths (temp always unlinked, target never
// clobbered), the best-effort directory-fsync counter, and the
// RetryReopen backoff schedule on a fake clock.
//
// Every test skips unless the build compiled the seam in
// (-DDKC_FAULT_INJECTION=ON; default in Debug/ASan builds).

#include "io/fault.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "io/atomic_file.h"
#include "store/store.h"
#include "store/wal.h"
#include "test_util.h"
#include "util/rng.h"

namespace dkc {
namespace {

#define SKIP_WITHOUT_INJECTION()                                         \
  do {                                                                   \
    if (!kFaultInjectionCompiledIn) {                                    \
      GTEST_SKIP() << "build has no fault-injection seam "               \
                      "(-DDKC_FAULT_INJECTION=ON)";                      \
    }                                                                    \
  } while (false)

/// Disarms on scope exit so a failing assertion can't leak an armed
/// injector into the next test.
struct ScopedFaults {
  explicit ScopedFaults(std::vector<FaultRule> rules) {
    FaultInjector::Instance().Arm(std::move(rules));
  }
  ~ScopedFaults() { FaultInjector::Instance().Disarm(); }
};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The byte-identity oracle (same as store_test): the engine's complete
/// serialized state. Equal fingerprints = identical future decisions.
std::string EngineFingerprint(const DynamicSolver& solver) {
  std::string bytes;
  solver.state().SerializeGraphTo(&bytes);
  solver.state().SerializeStateTo(&bytes);
  return bytes;
}

DynamicOptions TestOptions() {
  DynamicOptions options;
  options.k = 3;
  options.update_budget.max_branch_nodes = 5000;
  return options;
}

struct TestWorld {
  Graph graph;
  std::vector<UpdateOp> ops;
};

TestWorld MakeWorld(size_t op_count, uint64_t seed) {
  TestWorld world;
  world.graph = testing::RandomGraph(28, 0.28, seed);
  Rng rng(seed * 7919 + 13);
  world.ops = MakeChurnStream(world.graph, op_count, rng);
  return world;
}

struct StorePaths {
  std::string snapshot;
  std::string wal;
};

StorePaths MakeStorePaths(const std::string& tag) {
  StorePaths paths;
  paths.snapshot = TempPath("dkc_fault_" + tag + ".snap");
  paths.wal = TempPath("dkc_fault_" + tag + ".wal");
  std::remove(paths.snapshot.c_str());
  std::remove(paths.wal.c_str());
  return paths;
}

void CleanUp(const StorePaths& paths) {
  // Faulted checkpoints can leave temp files and retained rotations with
  // arbitrary seq suffixes; sweep everything with the snapshot's prefix.
  namespace fs = std::filesystem;
  const fs::path snap(paths.snapshot);
  const std::string prefix = snap.filename().string();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(snap.parent_path(), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.compare(0, prefix.size(), prefix) == 0) {
      fs::remove(entry.path(), ec);
    }
  }
  std::remove(paths.wal.c_str());
  std::remove(AtomicTempPath(paths.wal).c_str());
}

// ------------------------------------------------------- injector basics ---

TEST(FaultInjectorTest, DisarmedSeamIsInert) {
  SKIP_WITHOUT_INJECTION();
  FaultInjector::Instance().Disarm();
  const std::string path = TempPath("dkc_fault_inert.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "payload").ok());
  EXPECT_EQ(ReadFileBytes(path), "payload");
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, RecordsDeterministicTrace) {
  SKIP_WITHOUT_INJECTION();
  const std::string path = TempPath("dkc_fault_trace.txt");
  std::vector<FaultHit> first, second;
  {
    ScopedFaults faults({});  // armed with no rules = pure recording
    ASSERT_TRUE(AtomicWriteFile(path, "abc").ok());
    first = FaultInjector::Instance().trace();
  }
  {
    ScopedFaults faults({});
    ASSERT_TRUE(AtomicWriteFile(path, "abc").ok());
    second = FaultInjector::Instance().trace();
  }
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].site, second[i].site) << "hit " << i;
    EXPECT_EQ(first[i].index, second[i].index) << "hit " << i;
  }
  // The atomic publish makes exactly these syscalls, in this order.
  ASSERT_GE(first.size(), 5u);
  EXPECT_EQ(first[0].site, FaultSite::kAtomicOpen);
  EXPECT_EQ(first[1].site, FaultSite::kAtomicWrite);
  EXPECT_EQ(first[2].site, FaultSite::kAtomicFsync);
  EXPECT_EQ(first[3].site, FaultSite::kAtomicClose);
  EXPECT_EQ(first[4].site, FaultSite::kAtomicRename);
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, SiteNamesRoundTrip) {
  SKIP_WITHOUT_INJECTION();
  for (FaultSite site : {FaultSite::kAtomicWrite, FaultSite::kWalFsync,
                         FaultSite::kSnapshotReadOpen, FaultSite::kStoreLink}) {
    FaultSite parsed = FaultSite::kAnySite;
    ASSERT_TRUE(FaultSiteFromName(FaultSiteName(site), &parsed));
    EXPECT_EQ(parsed, site);
  }
  FaultSite parsed = FaultSite::kAnySite;
  EXPECT_FALSE(FaultSiteFromName("no_such_site", &parsed));
}

// -------------------------------------------------- AtomicWriteFile paths ---

class AtomicWriteFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kFaultInjectionCompiledIn) {
      GTEST_SKIP() << "build has no fault-injection seam";
    }
    path_ = TempPath("dkc_fault_atomic.txt");
    std::remove(path_.c_str());
    std::remove(AtomicTempPath(path_).c_str());
    ASSERT_TRUE(AtomicWriteFile(path_, "old contents").ok());
  }
  void TearDown() override {
    FaultInjector::Instance().Disarm();
    std::remove(path_.c_str());
    std::remove(AtomicTempPath(path_).c_str());
  }

  /// After a failed publish: the previous contents survive untouched and
  /// no temp file is left behind.
  void ExpectCleanFailure(const Status& status) {
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), Status::Code::kIOError) << status.ToString();
    EXPECT_EQ(ReadFileBytes(path_), "old contents");
    EXPECT_FALSE(std::ifstream(AtomicTempPath(path_)).is_open())
        << "temp file leaked";
  }

  std::string path_;
};

TEST_F(AtomicWriteFaultTest, EnospcAtWriteLeavesTargetAndUnlinksTemp) {
  FaultRule rule;
  rule.site = FaultSite::kAtomicWrite;
  rule.error = ENOSPC;
  ScopedFaults faults({rule});
  ExpectCleanFailure(AtomicWriteFile(path_, "new contents"));
}

TEST_F(AtomicWriteFaultTest, EnospcAtFsyncLeavesTargetAndUnlinksTemp) {
  FaultRule rule;
  rule.site = FaultSite::kAtomicFsync;
  rule.error = ENOSPC;
  ScopedFaults faults({rule});
  ExpectCleanFailure(AtomicWriteFile(path_, "new contents"));
}

TEST_F(AtomicWriteFaultTest, EnospcAtRenameLeavesTargetAndUnlinksTemp) {
  FaultRule rule;
  rule.site = FaultSite::kAtomicRename;
  rule.error = ENOSPC;
  ScopedFaults faults({rule});
  ExpectCleanFailure(AtomicWriteFile(path_, "new contents"));
}

TEST_F(AtomicWriteFaultTest, FailedCloseLeavesTargetAndUnlinksTemp) {
  FaultRule rule;
  rule.site = FaultSite::kAtomicClose;
  rule.error = EIO;
  ScopedFaults faults({rule});
  ExpectCleanFailure(AtomicWriteFile(path_, "new contents"));
}

TEST_F(AtomicWriteFaultTest, ShortWriteIsRetriedToCompletion) {
  // A genuinely short ::write is not an error — the loop continues from
  // the short count. Inject 5 real bytes on the first call; the rest of
  // the payload lands on the second.
  FaultRule rule;
  rule.site = FaultSite::kAtomicWrite;
  rule.short_bytes = 5;
  ScopedFaults faults({rule});
  ASSERT_TRUE(AtomicWriteFile(path_, "new contents").ok());
  EXPECT_EQ(ReadFileBytes(path_), "new contents");
}

TEST_F(AtomicWriteFaultTest, ZeroProgressWriteFailsInsteadOfSpinning) {
  // write() returning 0 forever must surface as an error, not an infinite
  // retry loop.
  FaultRule rule;
  rule.site = FaultSite::kAtomicWrite;
  rule.fail_count = 0;  // sticky
  rule.short_bytes = 0;
  ScopedFaults faults({rule});
  ExpectCleanFailure(AtomicWriteFile(path_, "new contents"));
}

TEST_F(AtomicWriteFaultTest, EintrIsRetriedTransparently) {
  FaultRule rule;
  rule.site = FaultSite::kAtomicWrite;
  rule.fail_count = 3;  // three consecutive EINTRs, then clean
  rule.error = EINTR;
  ScopedFaults faults({rule});
  ASSERT_TRUE(AtomicWriteFile(path_, "new contents").ok());
  EXPECT_EQ(ReadFileBytes(path_), "new contents");
}

TEST_F(AtomicWriteFaultTest, DirFsyncFailureIsCountedNotFatal) {
  const uint64_t before = GetAtomicFileStats().parent_dir_sync_failures;
  FaultRule rule;
  rule.site = FaultSite::kDirFsync;
  rule.error = EIO;
  ScopedFaults faults({rule});
  // Best-effort: the publish itself still succeeds...
  ASSERT_TRUE(AtomicWriteFile(path_, "new contents").ok());
  EXPECT_EQ(ReadFileBytes(path_), "new contents");
  // ...but the failure is visible in the process-wide counter.
  EXPECT_EQ(GetAtomicFileStats().parent_dir_sync_failures, before + 1);
}

// ------------------------------------------------------ WAL sync poisoning ---

TEST(WalPoisonTest, FailedFsyncPoisonsSubsequentAppends) {
  SKIP_WITHOUT_INJECTION();
  const std::string path = TempPath("dkc_fault_fsyncgate.wal");
  std::remove(path.c_str());
  auto writer = WalWriter::Open(path);
  ASSERT_TRUE(writer.ok());

  WalRecord rec;
  rec.seq = 1;
  rec.is_insert = true;
  rec.u = 1;
  rec.v = 2;
  Status failed;
  {
    FaultRule rule;
    rule.site = FaultSite::kWalFsync;
    rule.error = EIO;
    ScopedFaults faults({rule});
    failed = writer->Append(rec, /*sync=*/true);
    ASSERT_FALSE(failed.ok());
  }
  // The fault is gone — but the writer must NOT report success for any
  // further append or sync: after a failed fsync the kernel may already
  // have dropped the page, and a later "clean" fsync would silently lose
  // the record (the fsyncgate failure mode).
  rec.seq = 2;
  const Status after = writer->Append(rec, /*sync=*/true);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.ToString(), failed.ToString());
  EXPECT_FALSE(writer->Sync().ok());
  EXPECT_FALSE(writer->poisoned().ok());

  // Reopen is the documented way back: a fresh writer appends cleanly.
  auto reopened = WalWriter::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened->Append(rec, /*sync=*/true).ok());
  std::remove(path.c_str());
}

TEST(WalPoisonTest, ShortAppendPoisonsWriter) {
  SKIP_WITHOUT_INJECTION();
  const std::string path = TempPath("dkc_fault_short_append.wal");
  std::remove(path.c_str());
  auto opened = WalWriter::Open(path);
  ASSERT_TRUE(opened.ok());
  std::optional<WalWriter> writer(std::move(opened).value());
  WalRecord rec;
  rec.seq = 1;
  rec.is_insert = true;
  rec.u = 3;
  rec.v = 4;
  {
    FaultRule rule;
    rule.site = FaultSite::kWalAppend;
    rule.short_bytes = 7;  // 7 of 21 bytes reach the stdio buffer
    ScopedFaults faults({rule});
    ASSERT_FALSE(writer->Append(rec, /*sync=*/false).ok());
  }
  rec.seq = 2;
  EXPECT_FALSE(writer->Append(rec, /*sync=*/false).ok());

  // The flush on close writes the torn prefix; the scan must cut it as a
  // torn tail, recovering zero records — never a bogus one.
  writer.reset();  // destroy the writer (flush+close)
  auto scan = ReadWal(path);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_TRUE(scan->records.empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------- sealed lifecycle ---

TEST(SealedStoreTest, WalFaultSealsRefusesAndReopens) {
  SKIP_WITHOUT_INJECTION();
  TestWorld world = MakeWorld(30, 7001);
  const StorePaths paths = MakeStorePaths("sealed");
  auto store = [&] {
    StoreOptions options;
    options.dynamic = TestOptions();
    return DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                options);
  }();
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Apply half the stream cleanly; remember the acknowledged fingerprint.
  for (size_t i = 0; i < 15; ++i) {
    ASSERT_TRUE(store->Apply(world.ops[i]).ok());
  }
  const std::string acked = EngineFingerprint(store->solver());

  {
    FaultRule rule;
    rule.site = FaultSite::kWalFsync;
    rule.error = ENOSPC;
    rule.fail_count = 0;  // sticky: every sync fails until disarm
    ScopedFaults faults({rule});
    const Status failed = store->Apply(world.ops[15]);
    ASSERT_FALSE(failed.ok());
    ASSERT_TRUE(store->sealed());
    EXPECT_EQ(store->seal_status().ToString(), failed.ToString());

    // Sealed: reads keep working on the acknowledged state...
    EXPECT_EQ(EngineFingerprint(store->solver()), acked);
    std::string error;
    EXPECT_TRUE(store->solver().CheckInvariants(&error)) << error;
    // ...and every mutation refuses with the sealing error.
    EXPECT_EQ(store->Apply(world.ops[16]).ToString(), failed.ToString());
    const std::span<const UpdateOp> tail(world.ops);
    EXPECT_EQ(store->ApplyBatch(tail.subspan(16, 4)).ToString(),
              failed.ToString());
    EXPECT_EQ(store->Checkpoint().ToString(), failed.ToString());
  }

  // Fault cleared: Reopen recovers from disk, byte-identical to the
  // acknowledged prefix, and re-arms ingest.
  ASSERT_TRUE(store->Reopen().ok());
  EXPECT_FALSE(store->sealed());
  EXPECT_EQ(store->applied_seq(), 15u);
  EXPECT_EQ(EngineFingerprint(store->solver()), acked);
  for (size_t i = 15; i < world.ops.size(); ++i) {
    ASSERT_TRUE(store->Apply(world.ops[i]).ok()) << "op " << i;
  }
  EXPECT_EQ(store->applied_seq(), world.ops.size());
  CleanUp(paths);
}

TEST(SealedStoreTest, ReopenOnUnsealedStoreIsInvalid) {
  SKIP_WITHOUT_INJECTION();
  TestWorld world = MakeWorld(4, 7002);
  const StorePaths paths = MakeStorePaths("unsealed_reopen");
  StoreOptions options;
  options.dynamic = TestOptions();
  auto store =
      DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
  ASSERT_TRUE(store.ok());
  const Status status = store->Reopen();
  EXPECT_EQ(status.code(), Status::Code::kInvalidArgument);
  CleanUp(paths);
}

TEST(SealedStoreTest, RetryReopenBacksOffExponentiallyOnFakeClock) {
  SKIP_WITHOUT_INJECTION();
  TestWorld world = MakeWorld(4, 7003);
  const StorePaths paths = MakeStorePaths("backoff");
  StoreOptions options;
  options.dynamic = TestOptions();
  auto store =
      DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
  ASSERT_TRUE(store.ok());

  // Seal via a one-shot WAL fsync fault, then keep recovery failing with a
  // sticky snapshot-read fault while the backoff schedule runs.
  {
    FaultRule seal_rule;
    seal_rule.site = FaultSite::kWalFsync;
    seal_rule.error = ENOSPC;
    ScopedFaults faults({seal_rule});
    ASSERT_FALSE(store->Apply(world.ops[0]).ok());
    ASSERT_TRUE(store->sealed());
  }

  std::vector<uint64_t> sleeps;
  ReopenRetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 10;
  retry.max_backoff_ms = 40;
  retry.sleep_ms = [&sleeps](uint64_t ms) { sleeps.push_back(ms); };
  {
    FaultRule stuck;
    stuck.site = FaultSite::kSnapshotReadOpen;
    stuck.error = EIO;
    stuck.fail_count = 0;  // sticky: every reopen attempt fails
    ScopedFaults faults({stuck});
    const Status gave_up = RetryReopen(&*store, retry);
    ASSERT_FALSE(gave_up.ok());
    EXPECT_TRUE(store->sealed());
  }
  // Four sleeps between five attempts, doubling to the cap — and no
  // wall-clock was involved.
  EXPECT_EQ(sleeps, (std::vector<uint64_t>{10, 20, 40, 40}));

  // Fault gone: the same retry loop succeeds on its first attempt.
  sleeps.clear();
  ASSERT_TRUE(RetryReopen(&*store, retry).ok());
  EXPECT_TRUE(sleeps.empty());
  EXPECT_FALSE(store->sealed());
  CleanUp(paths);
}

// -------------------------------------------------- fault-schedule harness ---

enum class Outcome { kSuccess, kSealed, kCreateRefused };

struct ScheduleResult {
  Outcome outcome = Outcome::kSuccess;
  size_t acked = 0;  // ops acknowledged before the seal (or all of them)
};

struct HarnessConfig {
  uint64_t seed = 0;
  size_t epoch = 0;  // 0 = unbatched Apply, else ApplyBatch epochs
  size_t op_count = 40;
  uint64_t checkpoint_every = 7;
};

StoreOptions HarnessOptions(const HarnessConfig& config) {
  StoreOptions options;
  options.dynamic = TestOptions();
  options.checkpoint_every = config.checkpoint_every;
  options.keep_snapshots = 2;  // exercise the retention link/unlink sites
  return options;
}

/// Reference fingerprints over every acknowledgeable prefix: entry c =
/// engine state after ops[0..c). For batched configs only epoch
/// boundaries (and the final count) are filled; others stay empty.
std::vector<std::string> ReferenceFingerprints(const TestWorld& world,
                                               const HarnessConfig& config) {
  std::vector<std::string> fps(config.op_count + 1);
  auto solver = DynamicSolver::Build(world.graph, TestOptions());
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  fps[0] = EngineFingerprint(*solver);
  if (config.epoch == 0) {
    for (size_t i = 0; i < config.op_count; ++i) {
      const auto& op = world.ops[i];
      const Status s = op.is_insert
                           ? solver->InsertEdge(op.edge.first, op.edge.second)
                           : solver->DeleteEdge(op.edge.first, op.edge.second);
      EXPECT_TRUE(s.ok()) << "op " << i << ": " << s.ToString();
      fps[i + 1] = EngineFingerprint(*solver);
    }
  } else {
    const std::span<const UpdateOp> all(world.ops);
    for (size_t i = 0; i < config.op_count; i += config.epoch) {
      const size_t len = std::min(config.epoch, config.op_count - i);
      const Status s = solver->ApplyBatch(all.subspan(i, len));
      EXPECT_TRUE(s.ok()) << "epoch at op " << i << ": " << s.ToString();
      fps[i + len] = EngineFingerprint(*solver);
    }
  }
  return fps;
}

/// One workload pass: Create + ingest + final Checkpoint. Returns the
/// classified outcome. `store_out` receives the store unless Create
/// itself was refused.
ScheduleResult RunWorkload(const TestWorld& world, const HarnessConfig& config,
                           const StorePaths& paths,
                           std::optional<DurableStore>* store_out) {
  ScheduleResult result;
  auto created = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      HarnessOptions(config));
  if (!created.ok()) {
    // Bootstrap refused before any update was acknowledged — clean by
    // construction (there is no store to corrupt).
    result.outcome = Outcome::kCreateRefused;
    return result;
  }
  store_out->emplace(std::move(created).value());
  DurableStore& store = **store_out;

  const std::span<const UpdateOp> all(world.ops);
  const size_t step = config.epoch == 0 ? 1 : config.epoch;
  for (size_t i = 0; i < config.op_count; i += step) {
    const size_t len = std::min(step, config.op_count - i);
    const Status status =
        config.epoch == 0 ? store.Apply(world.ops[i])
                          : store.ApplyBatch(all.subspan(i, len));
    if (!status.ok() || store.sealed()) {
      // THE trichotomy: a mid-stream failure on a valid op is only legal
      // as a seal. (A sealed store with an OK status is the auto-
      // checkpoint-failed case: the op itself stayed acknowledged.)
      EXPECT_TRUE(store.sealed())
          << "non-seal failure on valid op " << i << ": "
          << status.ToString();
      result.outcome = Outcome::kSealed;
      result.acked = status.ok() ? i + len : i;
      return result;
    }
    result.acked = i + len;
  }
  const Status final_checkpoint = store.Checkpoint();
  if (!final_checkpoint.ok() || store.sealed()) {
    EXPECT_TRUE(store.sealed());
    result.outcome = Outcome::kSealed;
  }
  return result;
}

class FaultScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultScheduleTest, TrichotomyAndAckedPrefixIdentity) {
  SKIP_WITHOUT_INJECTION();
  const uint64_t seed = GetParam();
  size_t schedules = 0, sealed_runs = 0, clean_runs = 0, refused_runs = 0;

  for (const size_t epoch : {size_t{0}, size_t{8}}) {
    HarnessConfig config;
    config.seed = seed;
    config.epoch = epoch;
    config.checkpoint_every = epoch == 0 ? 7 : 16;
    const TestWorld world = MakeWorld(config.op_count, seed);
    const std::vector<std::string> refs = ReferenceFingerprints(world, config);

    // Discovery pass: record the fault-free run's complete syscall trace.
    const StorePaths paths =
        MakeStorePaths("sched_" + std::to_string(seed) + "_" +
                       std::to_string(epoch));
    uint64_t total_hits = 0;
    {
      ScopedFaults recording({});
      std::optional<DurableStore> store;
      const ScheduleResult dry = RunWorkload(world, config, paths, &store);
      ASSERT_EQ(dry.outcome, Outcome::kSuccess);
      ASSERT_EQ(dry.acked, config.op_count);
      total_hits = FaultInjector::Instance().hits();
    }
    CleanUp(paths);
    // Unbatched configs record ~230 hits, batched ~80 (group commit is
    // the whole point: one fsync per epoch). A collapse below this floor
    // means the seam fell off the syscall path.
    ASSERT_GE(total_hits, 50u) << "seam lost coverage?";

    // One schedule per recorded hit: replay the identical workload with
    // exactly that hit failing. Determinism makes the discovery trace
    // valid for every replay up to the injected failure.
    for (uint64_t hit = 1; hit <= total_hits; ++hit) {
      ++schedules;
      FaultRule rule;
      rule.site = FaultSite::kAnySite;
      rule.hit = hit;
      rule.error = (hit % 2 == 0) ? ENOSPC : EIO;
      if (hit % 5 == 0) rule.short_bytes = hit % 19;  // genuine torn writes

      std::optional<DurableStore> store;
      ScheduleResult run;
      {
        ScopedFaults faults({rule});
        run = RunWorkload(world, config, paths, &store);
      }
      switch (run.outcome) {
        case Outcome::kCreateRefused:
          ++refused_runs;
          break;
        case Outcome::kSuccess: {
          // The fault hit a harmless or best-effort site (a retried short
          // write, a directory fsync, a retention unlink): the run must
          // be byte-identical to the reference end state.
          ++clean_runs;
          ASSERT_TRUE(store.has_value());
          EXPECT_FALSE(store->sealed());
          EXPECT_EQ(EngineFingerprint(store->solver()), refs[run.acked])
              << "hit " << hit << " diverged without sealing";
          break;
        }
        case Outcome::kSealed: {
          ++sealed_runs;
          ASSERT_TRUE(store.has_value());
          ASSERT_FALSE(refs[run.acked].empty())
              << "hit " << hit << ": acked count " << run.acked
              << " is not an acknowledgeable boundary";
          // Sealed, not stopped: reads still serve the acknowledged state
          // and the engine is internally consistent.
          EXPECT_EQ(EngineFingerprint(store->solver()), refs[run.acked])
              << "hit " << hit << ": sealed engine diverged from the "
              << "acknowledged prefix";
          std::string error;
          EXPECT_TRUE(store->solver().CheckInvariants(&error))
              << "hit " << hit << ": " << error;

          // Fault cleared (ScopedFaults disarmed): Reopen must recover to
          // the byte-identical acknowledged prefix...
          ASSERT_TRUE(store->Reopen().ok()) << "hit " << hit;
          EXPECT_FALSE(store->sealed());
          ASSERT_EQ(store->applied_seq(), run.acked) << "hit " << hit;
          EXPECT_EQ(EngineFingerprint(store->solver()), refs[run.acked])
              << "hit " << hit << ": Reopen diverged";

          // ...and ingest re-arms: completing the stream lands on the
          // never-faulted final state.
          const std::span<const UpdateOp> all(world.ops);
          const size_t step = config.epoch == 0 ? 1 : config.epoch;
          for (size_t i = run.acked; i < config.op_count; i += step) {
            const size_t len = std::min(step, config.op_count - i);
            const Status resumed =
                config.epoch == 0 ? store->Apply(world.ops[i])
                                  : store->ApplyBatch(all.subspan(i, len));
            ASSERT_TRUE(resumed.ok())
                << "hit " << hit << " resume op " << i << ": "
                << resumed.ToString();
          }
          EXPECT_EQ(EngineFingerprint(store->solver()),
                    refs[config.op_count])
              << "hit " << hit << ": resumed run diverged at the end";
          break;
        }
      }
      store.reset();
      CleanUp(paths);
    }
  }

  // The acceptance bar: this parameterized test runs per seed; the suite
  // total across seeds must clear 500 schedules. Each seed contributes its
  // own floor so a collapse in recorded-trace length is caught here.
  EXPECT_GE(schedules, 150u);
  EXPECT_GT(sealed_runs, 0u) << "no schedule sealed — seam not on the path?";
  EXPECT_GT(clean_runs, 0u);
  RecordProperty("schedules", static_cast<int>(schedules));
  RecordProperty("sealed_runs", static_cast<int>(sealed_runs));
  RecordProperty("clean_runs", static_cast<int>(clean_runs));
  RecordProperty("create_refused_runs", static_cast<int>(refused_runs));
}

INSTANTIATE_TEST_SUITE_P(Worlds, FaultScheduleTest,
                         ::testing::Values(9101u, 9202u, 9303u, 9404u));

}  // namespace
}  // namespace dkc
