#include "io/solution_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/solver.h"
#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

CliqueStore SampleSolution() {
  CliqueStore store(3);
  store.Add(std::vector<NodeId>{0, 2, 5});
  store.Add(std::vector<NodeId>{6, 7, 8});
  return store;
}

TEST(SolutionIoTest, StringRoundTrip) {
  CliqueStore original = SampleSolution();
  auto parsed = SolutionFromString(SolutionToString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  ASSERT_EQ(parsed->k(), original.k());
  for (CliqueId c = 0; c < original.size(); ++c) {
    auto a = original.Get(c);
    auto b = parsed->Get(c);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(SolutionIoTest, HeaderFormat) {
  const std::string text = SolutionToString(SampleSolution());
  EXPECT_EQ(text.rfind("dkclique-solution k 3\n", 0), 0u);
}

TEST(SolutionIoTest, EmptySolution) {
  CliqueStore empty(4);
  auto parsed = SolutionFromString(SolutionToString(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 0u);
  EXPECT_EQ(parsed->k(), 4);
}

TEST(SolutionIoTest, CommentsSkipped) {
  auto parsed = SolutionFromString(
      "# produced by dkc\ndkclique-solution k 3\n# round 1\n1 2 3\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(SolutionIoTest, MissingHeaderIsCorruption) {
  auto parsed = SolutionFromString("1 2 3\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kCorruption);
}

TEST(SolutionIoTest, WrongArityIsCorruption) {
  auto parsed = SolutionFromString("dkclique-solution k 3\n1 2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kCorruption);
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(SolutionIoTest, BadKIsCorruption) {
  EXPECT_FALSE(SolutionFromString("dkclique-solution k 1\n").ok());
  EXPECT_FALSE(SolutionFromString("dkclique-solution q 3\n").ok());
}

TEST(SolutionIoTest, LineNumbersCountLeadingComments) {
  // Two comment lines, then the header on line 3, body on line 4. The old
  // parser restarted its counter after the header and reported "line 1".
  auto parsed = SolutionFromString(
      "# a\n# b\ndkclique-solution k 3\n1 2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kCorruption);
  EXPECT_NE(parsed.status().message().find("line 4"), std::string::npos);
}

TEST(SolutionIoTest, HeaderErrorNamesRealLine) {
  auto parsed = SolutionFromString("# preamble\nnot-a-header\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(SolutionIoTest, DuplicateNodeInCliqueIsCorruption) {
  auto parsed = SolutionFromString("dkclique-solution k 3\n1 2 1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kCorruption);
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(SolutionIoTest, IndentedCommentsSkipped) {
  auto parsed = SolutionFromString(
      "  # indented preamble\ndkclique-solution k 3\n\t# indented note\n"
      "1 2 3\n   \n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(SolutionIoTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadSolution("/no/such/file").status().code(),
            Status::Code::kIOError);
}

TEST(SolutionIoTest, FileRoundTripOfRealSolve) {
  Graph g = KarateClub();
  SolverOptions options;
  options.k = 3;
  options.method = Method::kLP;
  auto result = Solve(g, options);
  ASSERT_TRUE(result.ok());
  const std::string path = ::testing::TempDir() + "/dkc_solution.txt";
  ASSERT_TRUE(WriteSolution(result->set, path).ok());
  auto loaded = ReadSolution(path);
  ASSERT_TRUE(loaded.ok());
  // The reloaded solution must still verify against the graph.
  EXPECT_TRUE(VerifySolution(g, *loaded).ok());
  EXPECT_EQ(loaded->size(), result->size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dkc
