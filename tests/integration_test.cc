// End-to-end scenarios crossing all modules: generator -> solver ->
// verifier -> dynamic maintenance, mirroring how the benches and examples
// drive the library.

#include <gtest/gtest.h>

#include "core/solver.h"
#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "gen/generators.h"
#include "gen/named_graphs.h"
#include "io/edge_list.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(IntegrationTest, WattsStrogatzAllMethodsAgreeOnValidity) {
  Rng rng(200);
  auto g = WattsStrogatz(400, 8, 0.1, rng);
  ASSERT_TRUE(g.ok());
  NodeId best = 0;
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP}) {
    SolverOptions options;
    options.k = 3;
    options.method = m;
    auto result = Solve(*g, options);
    ASSERT_TRUE(result.ok()) << MethodName(m);
    ASSERT_TRUE(VerifySolution(*g, result->set).ok()) << MethodName(m);
    best = std::max(best, result->size());
  }
  EXPECT_GT(best, 0u);
}

TEST(IntegrationTest, ScoreOrderingQualityComparableToBasic) {
  // The paper's Table II superiority of LP over HG emerges at real scale
  // (it is re-measured by bench_table2_quality); at toy scale the two
  // jitter around each other, so assert comparability, not dominance.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed + 300);
    auto g = WattsStrogatz(500, 10, 0.05, rng);
    ASSERT_TRUE(g.ok());
    SolverOptions lp;
    lp.k = 4;
    lp.method = Method::kLP;
    SolverOptions hg;
    hg.k = 4;
    hg.method = Method::kHG;
    auto lp_result = Solve(*g, lp);
    auto hg_result = Solve(*g, hg);
    ASSERT_TRUE(lp_result.ok() && hg_result.ok());
    EXPECT_GE(static_cast<double>(lp_result->size()),
              0.85 * static_cast<double>(hg_result->size()))
        << "seed " << seed;
  }
}

TEST(IntegrationTest, FileRoundTripThenSolve) {
  Rng rng(400);
  auto g = BarabasiAlbert(200, 4, rng);
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/dkc_integration.txt";
  ASSERT_TRUE(WriteEdgeList(*g, path).ok());
  auto loaded = ReadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  SolverOptions options;
  options.k = 3;
  options.method = Method::kLP;
  auto a = Solve(*g, options);
  auto b = Solve(loaded->graph, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->size(), b->size());  // identical graph modulo relabeling
  std::remove(path.c_str());
}

TEST(IntegrationTest, DynamicMatchesStaticAfterFullWorkloadReplay) {
  Rng rng(500);
  auto g = WattsStrogatz(200, 8, 0.1, rng);
  ASSERT_TRUE(g.ok());
  MixedWorkload workload = MakeMixedWorkload(*g, 25, 25, rng);

  DynamicOptions options;
  options.k = 3;
  auto solver = DynamicSolver::Build(workload.prepared, options);
  ASSERT_TRUE(solver.ok());
  for (const auto& op : workload.ops) {
    if (op.is_insert) {
      ASSERT_TRUE(solver->InsertEdge(op.edge.first, op.edge.second).ok());
    } else {
      ASSERT_TRUE(solver->DeleteEdge(op.edge.first, op.edge.second).ok());
    }
  }
  std::string error;
  ASSERT_TRUE(solver->CheckInvariants(&error)) << error;

  const Graph final_graph = solver->graph().ToGraph();
  ASSERT_TRUE(VerifySolution(final_graph, solver->Snapshot()).ok());

  SolverOptions fresh;
  fresh.k = 3;
  fresh.method = Method::kLP;
  auto from_scratch = Solve(final_graph, fresh);
  ASSERT_TRUE(from_scratch.ok());
  // Table VIII: the maintained S stays close to the rebuilt one. Both are
  // maximal; accept a modest relative gap.
  const double maintained = solver->solution_size();
  const double rebuilt = from_scratch->size();
  EXPECT_GE(maintained, 0.7 * rebuilt)
      << "maintained " << maintained << " vs rebuilt " << rebuilt;
}

TEST(IntegrationTest, PlantedOptimumSurvivesWholePipeline) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 20;
  spec.k = 4;
  spec.filler_nodes = 60;
  Rng rng(600);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP}) {
    SolverOptions options;
    options.k = 4;
    options.method = m;
    auto result = Solve(planted->graph, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->size(), planted->planted_count) << MethodName(m);
  }
}

TEST(IntegrationTest, KarateAllKValues) {
  Graph g = KarateClub();
  for (int k = 3; k <= 5; ++k) {
    SolverOptions lp;
    lp.k = k;
    lp.method = Method::kLP;
    SolverOptions opt;
    opt.k = k;
    opt.method = Method::kOPT;
    auto lp_result = Solve(g, lp);
    auto opt_result = Solve(g, opt);
    ASSERT_TRUE(lp_result.ok() && opt_result.ok());
    EXPECT_LE(lp_result->size(), opt_result->size());
    EXPECT_GE(static_cast<int>(lp_result->size()) * k,
              static_cast<int>(opt_result->size()));
    EXPECT_TRUE(VerifySolution(g, lp_result->set).ok());
  }
}

TEST(IntegrationTest, BudgetedRunsDegradeGracefully) {
  Rng rng(700);
  auto g = WattsStrogatz(2000, 16, 0.1, rng);
  ASSERT_TRUE(g.ok());
  SolverOptions options;
  options.k = 5;
  options.method = Method::kOPT;
  options.budget.time_ms = 50;
  options.budget.memory_bytes = 1 << 20;
  auto result = Solve(*g, options);
  // Must fail *cleanly* with a budget status, not crash or hang.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded() ||
              result.status().IsMemoryBudgetExceeded());
}

}  // namespace
}  // namespace dkc
