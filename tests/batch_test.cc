// Epoch-batched ingestion: ApplyBatch semantics, validation atomicity,
// per-epoch stats, and the published SolutionView.
//
// The heavy cross-thread / cross-batch-size byte-identity sweep lives in
// thread_sweep_test.cc; this file fuzzes the batched engine's *internal*
// contracts — candidate-index completeness after every epoch, atomic
// rejection of invalid batches (including intra-batch duplicates),
// sequential intra-batch semantics (insert-then-delete of the same edge is
// a valid, self-canceling pair), stats bookkeeping, and reader-visible
// view consistency.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "dynamic/solution_view.h"
#include "dynamic/workload.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"

namespace dkc {
namespace {

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

TEST(BatchTest, FuzzedEpochsKeepEveryInvariant) {
  constexpr int kWorlds = 8;
  constexpr size_t kUpdatesPerWorld = 240;
  for (int world = 0; world < kWorlds; ++world) {
    SCOPED_TRACE("world=" + std::to_string(world));
    Rng rng(9100 + static_cast<uint64_t>(world) * 131);
    const NodeId n = 60 + static_cast<NodeId>(world % 4) * 15;
    const Graph initial = ErdosRenyi(n, 0.12, rng).value();
    const int k = 3 + world % 2;
    const auto ops = MakeChurnStream(initial, kUpdatesPerWorld, rng);

    DynamicOptions options;
    options.k = k;
    auto solver = DynamicSolver::Build(initial, options);
    ASSERT_TRUE(solver.ok()) << solver.status().ToString();
    EXPECT_EQ(solver->epoch(), 0u);
    EXPECT_EQ(solver->published_view()->epoch, 0u);

    const std::span<const UpdateOp> all(ops);
    uint64_t epochs = 0;
    uint64_t updates_applied = 0;
    size_t i = 0;
    while (i < all.size()) {
      // Random epoch sizes, 1..12 — including plenty of size-1 epochs.
      const size_t len = std::min<size_t>(1 + rng.NextBounded(12),
                                          all.size() - i);
      const auto epoch = all.subspan(i, len);
      ASSERT_TRUE(solver->ApplyBatch(epoch).ok());
      ++epochs;
      updates_applied += len;
      i += len;

      // Counters track the stream position exactly.
      EXPECT_EQ(solver->epoch(), epochs);
      EXPECT_EQ(solver->batches_applied(), epochs);
      EXPECT_EQ(solver->batched_updates_applied(), updates_applied);

      // The per-update breakdown mirrors the epoch's ops one to one, and
      // the deduped dirty-slot count never exceeds the per-op markings.
      const BatchStats& stats = solver->last_batch_stats();
      ASSERT_EQ(stats.updates, len);
      ASSERT_EQ(stats.per_update.size(), len);
      EXPECT_EQ(stats.inserts + stats.deletes, len);
      uint64_t marked = 0;
      for (size_t j = 0; j < len; ++j) {
        EXPECT_EQ(stats.per_update[j].is_insert, epoch[j].is_insert);
        EXPECT_EQ(stats.per_update[j].edge, epoch[j].edge);
        marked += stats.per_update[j].slots_marked;
      }
      // Every boundary rebuild traces back to some op's first mark; marks
      // can exceed the rebuilt count when a marked slot dies later in the
      // epoch (its mark is deactivated, and a reused slot re-marks fresh).
      EXPECT_LE(stats.dirty_slots, marked);

      // Structural invariants and Algorithm-5 completeness after *every*
      // epoch — the deferred boundary rebuild must leave nothing stale.
      std::string error;
      ASSERT_TRUE(solver->CheckInvariants(&error)) << error;
      ASSERT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;
      ASSERT_TRUE(
          VerifySolution(solver->graph().ToGraph(), solver->Snapshot()).ok());

      // The published view is the epoch-boundary snapshot readers see.
      const auto view = solver->published_view();
      ASSERT_NE(view, nullptr);
      EXPECT_EQ(view->epoch, epochs);
      EXPECT_EQ(view->updates_applied, updates_applied);
      ASSERT_TRUE(view->Consistent(&error)) << error;
      EXPECT_EQ(ToVectors(view->solution), ToVectors(solver->Snapshot()));
    }
    EXPECT_EQ(solver->aborted_updates(), 0u);
  }
}

TEST(BatchTest, SelfCancelingPairsAreValidSequentially) {
  Rng rng(501);
  const Graph g = ErdosRenyi(40, 0.2, rng).value();
  DynamicOptions options;
  options.k = 3;
  auto solver = DynamicSolver::Build(g, options);
  ASSERT_TRUE(solver.ok());

  // An absent pair inserted then deleted, and a live edge deleted then
  // re-inserted: both valid op-by-op, with no net graph change.
  NodeId au = 0, av = 0;
  for (NodeId u = 0; u < g.num_nodes() && au == av; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!g.HasEdge(u, v)) {
        au = u;
        av = v;
        break;
      }
    }
  }
  ASSERT_NE(au, av);
  NodeId lu = 0, lv = 0;
  for (NodeId v : g.Neighbors(0)) lv = std::max(lv, v);
  ASSERT_TRUE(g.HasEdge(lu, lv));

  const auto before = ToVectors(solver->Snapshot());
  const std::vector<UpdateOp> batch = {{true, {au, av}},
                                       {false, {au, av}},
                                       {false, {lu, lv}},
                                       {true, {lu, lv}}};
  ASSERT_TRUE(solver->ValidateBatch(batch).ok());
  ASSERT_TRUE(solver->ApplyBatch(batch).ok());
  EXPECT_FALSE(solver->graph().HasEdge(au, av));
  EXPECT_TRUE(solver->graph().HasEdge(lu, lv));
  std::string error;
  ASSERT_TRUE(solver->CheckInvariants(&error)) << error;
  ASSERT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;
  // No net structural change — the maintained solution survives untouched.
  EXPECT_EQ(ToVectors(solver->Snapshot()), before);
}

TEST(BatchTest, InvalidBatchesAreRejectedAtomically) {
  Rng rng(502);
  const Graph g = ErdosRenyi(40, 0.2, rng).value();
  DynamicOptions options;
  options.k = 3;
  auto solver = DynamicSolver::Build(g, options);
  ASSERT_TRUE(solver.ok());

  NodeId au = 0, av = 0;
  for (NodeId u = 0; u < g.num_nodes() && au == av; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!g.HasEdge(u, v)) {
        au = u;
        av = v;
        break;
      }
    }
  }
  ASSERT_NE(au, av);

  // Seed real batched state so a later rejection has stats to clobber.
  // (au, av) is live from here on.
  ASSERT_TRUE(solver->ApplyBatch(std::vector<UpdateOp>{{true, {au, av}}})
                  .ok());
  const uint64_t epochs_before = solver->epoch();
  const auto snapshot_before = ToVectors(solver->Snapshot());
  const uint64_t index_before = solver->index_size();

  // A pair still absent after the seed insert.
  NodeId bu = 0, bv = 0;
  for (NodeId u = 0; u < g.num_nodes() && bu == bv; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!solver->graph().HasEdge(u, v)) {
        bu = u;
        bv = v;
        break;
      }
    }
  }
  ASSERT_NE(bu, bv);

  struct Case {
    std::vector<UpdateOp> ops;
    const char* needle;  // expected error fragment, naming the op index
  };
  const Case cases[] = {
      // Duplicate insert of the same absent pair: op 1 sees it present.
      {{{true, {bu, bv}}, {true, {bu, bv}}}, "batch op 1"},
      // Duplicate delete: op 2 deletes what op 0 already removed.
      {{{false, {au, av}}, {true, {bu, bv}}, {false, {au, av}}},
       "batch op 2"},
      // Insert of a live edge, buried mid-batch.
      {{{true, {bu, bv}}, {true, {au, av}}}, "batch op 1"},
      // Self loop.
      {{{true, {5, 5}}}, "batch op 0"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.needle);
    const Status status = solver->ApplyBatch(c.ops);
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find(c.needle), std::string::npos)
        << status.ToString();
    // Atomic: nothing applied, no epoch consumed, stats reset — a caller
    // reading last_batch_stats() after an error sees zeros, not the
    // previous epoch's numbers.
    EXPECT_EQ(solver->epoch(), epochs_before);
    EXPECT_EQ(ToVectors(solver->Snapshot()), snapshot_before);
    EXPECT_EQ(solver->index_size(), index_before);
    EXPECT_EQ(solver->last_batch_stats().updates, 0u);
    EXPECT_EQ(solver->last_batch_stats().per_update.size(), 0u);
    EXPECT_EQ(solver->last_update_stats().work, 0u);
    std::string error;
    ASSERT_TRUE(solver->CheckInvariants(&error)) << error;
  }

  // The rejected batches must not have poisoned future epochs.
  ASSERT_TRUE(solver->ApplyBatch(std::vector<UpdateOp>{{false, {au, av}}})
                  .ok());
  EXPECT_EQ(solver->epoch(), epochs_before + 1);
}

TEST(BatchTest, EmptyBatchIsANoOp) {
  Rng rng(503);
  const Graph g = ErdosRenyi(30, 0.2, rng).value();
  DynamicOptions options;
  options.k = 3;
  auto solver = DynamicSolver::Build(g, options);
  ASSERT_TRUE(solver.ok());
  const auto view_before = solver->published_view();
  ASSERT_TRUE(solver->ApplyBatch({}).ok());
  EXPECT_EQ(solver->epoch(), 0u);
  EXPECT_EQ(solver->batches_applied(), 0u);
  // No epoch boundary, no publish: readers keep the same view object.
  EXPECT_EQ(solver->published_view(), view_before);
}

TEST(BatchTest, PublishedViewSurvivesLaterEpochs) {
  // The non-blocking read contract: a reader holding an old view keeps a
  // stable, consistent epoch snapshot while the writer publishes past it.
  Rng rng(504);
  const Graph g = ErdosRenyi(60, 0.15, rng).value();
  DynamicOptions options;
  options.k = 3;
  auto solver = DynamicSolver::Build(g, options);
  ASSERT_TRUE(solver.ok());
  const auto ops = MakeChurnStream(g, 60, rng);
  const std::span<const UpdateOp> all(ops);

  ASSERT_TRUE(solver->ApplyBatch(all.subspan(0, 20)).ok());
  const auto held = solver->published_view();
  const auto held_solution = ToVectors(held->solution);
  const uint64_t held_epoch = held->epoch;

  ASSERT_TRUE(solver->ApplyBatch(all.subspan(20, 20)).ok());
  ASSERT_TRUE(solver->ApplyBatch(all.subspan(40, 20)).ok());

  // The old view is untouched by the two later publishes.
  EXPECT_EQ(held->epoch, held_epoch);
  EXPECT_EQ(ToVectors(held->solution), held_solution);
  std::string error;
  EXPECT_TRUE(held->Consistent(&error)) << error;
  // And the current view moved on.
  EXPECT_EQ(solver->published_view()->epoch, held_epoch + 2);

  // TopK is ordered by descending score, ties to the lower group id.
  const auto top = solver->published_view()->TopK(5);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(top[i - 1].first > top[i].first ||
                (top[i - 1].first == top[i].first &&
                 top[i - 1].second < top[i].second));
  }
}

}  // namespace
}  // namespace dkc
