#include "dynamic/candidate_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/kclique.h"
#include "gen/named_graphs.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

std::vector<Count> ScoresFor(const Graph& g, int k) {
  Dag dag(g, DegeneracyOrdering(g));
  return ComputeNodeScores(dag, k).per_node;
}

// State with the paper's Fig. 5(a) solution S = {(v3,v4,v5), (v9,v10,v11)}.
SolutionState Fig5State(const Graph& g) {
  SolutionState state(DynamicGraph(g), 3, ScoresFor(g, 3));
  state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});    // v3,v4,v5
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});   // v9,v10,v11
  return state;
}

TEST(SolutionStateTest, AddCliqueMarksNodesNonFree) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  EXPECT_EQ(state.solution_size(), 2u);
  EXPECT_FALSE(state.IsFree(2));
  EXPECT_FALSE(state.IsFree(4));
  EXPECT_TRUE(state.IsFree(0));
  EXPECT_TRUE(state.IsFree(5));
  EXPECT_EQ(state.CliqueOf(2), state.CliqueOf(3));
  EXPECT_NE(state.CliqueOf(2), state.CliqueOf(8));
}

TEST(SolutionStateTest, RemoveCliqueFreesNodes) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  const uint32_t slot = state.CliqueOf(2);
  state.RemoveSolutionClique(slot);
  EXPECT_EQ(state.solution_size(), 1u);
  EXPECT_TRUE(state.IsFree(2));
  EXPECT_TRUE(state.IsFree(3));
  EXPECT_TRUE(state.IsFree(4));
}

TEST(SolutionStateTest, PaperFig5aCandidates) {
  // Section V-B example: C1 = (v3,v4,v5) has exactly one candidate,
  // (v1,v2,v3); C2 = (v9,v10,v11) has none.
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  EXPECT_EQ(state.num_alive_candidates(), 1u);

  auto c1_cands = state.CandidatesOf(state.CliqueOf(2));
  ASSERT_EQ(c1_cands.size(), 1u);
  std::vector<NodeId> nodes = c1_cands[0].nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<NodeId>{0, 1, 2}));  // v1,v2,v3

  EXPECT_TRUE(state.CandidatesOf(state.CliqueOf(8)).empty());
}

TEST(SolutionStateTest, PaperFig5bGainsSecondCandidate) {
  // With edge (v5,v7) (graph G2), C1 also gains candidate (v5,v6,v7).
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  auto c1_cands = state.CandidatesOf(state.CliqueOf(2));
  ASSERT_EQ(c1_cands.size(), 2u);
  EXPECT_EQ(state.num_alive_candidates(), 2u);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
}

TEST(SolutionStateTest, SnapshotMatchesSolution) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  CliqueStore snap = state.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.k(), 3);
}

TEST(SolutionStateTest, AddCliqueKillsCandidatesUsingItsNodes) {
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  ASSERT_EQ(state.num_alive_candidates(), 2u);
  // Consuming v6,v7 plus v8 (v6-v7 edge? v6=5,v7=6,v8=7: 5-6 and 6-7 edges
  // exist but 5-7 only in G2; G2 has (v5,v7): nodes v5=4 non-free...).
  // Take the free triangle (v5? no). Use (v6,v7) not a triangle — instead
  // consume a single candidate's free nodes via a fabricated clique is not
  // possible; instead remove C2 and re-add to exercise kill paths.
  const uint32_t c2 = state.CliqueOf(8);
  state.RemoveSolutionClique(c2);
  state.AddSolutionClique(std::vector<NodeId>{8, 9, 10});
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
}

TEST(SolutionStateTest, KillCandidatesWithEdge) {
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  ASSERT_EQ(state.num_alive_candidates(), 2u);
  // Candidate (v5,v6,v7) uses edge (v6,v7) = (5,6).
  EXPECT_EQ(state.KillCandidatesWithEdge(5, 6), 1u);
  EXPECT_EQ(state.num_alive_candidates(), 1u);
  // Idempotent on a second call.
  EXPECT_EQ(state.KillCandidatesWithEdge(5, 6), 0u);
}

TEST(SolutionStateTest, SlotRefsInvalidatedByReuse) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  const uint32_t slot = state.CliqueOf(2);
  auto ref = state.RefOf(slot);
  EXPECT_TRUE(state.RefValid(ref));
  state.RemoveSolutionClique(slot);
  EXPECT_FALSE(state.RefValid(ref));
  // Reuse the slot: the generation bump must keep the old ref invalid.
  const uint32_t reused = state.AddSolutionClique(std::vector<NodeId>{2, 3, 4});
  EXPECT_EQ(reused, slot);
  EXPECT_FALSE(state.RefValid(ref));
  EXPECT_TRUE(state.RefValid(state.RefOf(reused)));
}

TEST(SolutionStateTest, EnsureNodeCapacityGrows) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  state.graph().InsertEdge(0, 15);
  state.EnsureNodeCapacity(state.graph().num_nodes());
  EXPECT_TRUE(state.IsFree(15));
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
}

TEST(SolutionStateTest, ParallelRebuildMatchesSerial) {
  Graph g = testing::RandomGraph(300, 0.05, /*seed=*/110);
  // Seed a solution with LP-style greedy: just use SolveBasic via cliques...
  // Simpler: find disjoint triangles greedily by brute force.
  SolutionState serial(DynamicGraph(g), 3, ScoresFor(g, 3));
  SolutionState parallel(DynamicGraph(g), 3, ScoresFor(g, 3));
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (const auto& tri : testing::BruteForceKCliques(g, 3)) {
    if (used[tri[0]] || used[tri[1]] || used[tri[2]]) continue;
    for (NodeId u : tri) used[u] = 1;
    serial.AddSolutionClique(tri);
    parallel.AddSolutionClique(tri);
  }
  serial.RebuildAllCandidates(nullptr);
  ThreadPool pool(4);
  parallel.RebuildAllCandidates(&pool);
  EXPECT_EQ(serial.num_alive_candidates(), parallel.num_alive_candidates());
  std::string error;
  EXPECT_TRUE(serial.CheckInvariants(&error)) << error;
  EXPECT_TRUE(parallel.CheckInvariants(&error)) << error;
}

TEST(SolutionStateTest, RebuildReportsEdgeCandidateDirectly) {
  // Satellite 3: the rebuild answers "did (u,v) create a candidate here?"
  // during registration, replacing InsertEdge's CandidatesOf re-scan.
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  const uint32_t c1 = state.CliqueOf(2);
  // Candidate (v5,v6,v7) = (4,5,6) goes through edge (4,6); (v1,v2) = (0,1)
  // only appears in candidate (0,1,2).
  auto outcome = state.RebuildCandidatesFor(c1, 4, 6);
  EXPECT_EQ(outcome.candidates, 2u);
  EXPECT_TRUE(outcome.has_edge);
  outcome = state.RebuildCandidatesFor(c1, 0, 1);
  EXPECT_EQ(outcome.candidates, 2u);
  EXPECT_TRUE(outcome.has_edge);
  // (v1, v6) = (0, 5): no candidate contains both.
  outcome = state.RebuildCandidatesFor(c1, 0, 5);
  EXPECT_EQ(outcome.candidates, 2u);
  EXPECT_FALSE(outcome.has_edge);
  // The count-only overload agrees.
  EXPECT_EQ(state.RebuildCandidatesFor(c1), 2u);
}

TEST(SolutionStateTest, RebuildManyMatchesSerialExactly) {
  // The pooled fan-out must reproduce the serial per-slot loop to the
  // byte: same candidates, same registration order per slot.
  Graph g = testing::RandomGraph(200, 0.07, /*seed=*/220);
  SolutionState serial(DynamicGraph(g), 3, ScoresFor(g, 3));
  SolutionState pooled(DynamicGraph(g), 3, ScoresFor(g, 3));
  pooled.set_parallel_rebuild_min_slots(1);  // engage the pool regardless
  std::vector<uint8_t> used(g.num_nodes(), 0);
  std::vector<uint32_t> slots;
  for (const auto& tri : testing::BruteForceKCliques(g, 3)) {
    if (used[tri[0]] || used[tri[1]] || used[tri[2]]) continue;
    for (NodeId u : tri) used[u] = 1;
    slots.push_back(serial.AddSolutionClique(tri));
    pooled.AddSolutionClique(tri);
  }
  ASSERT_GE(slots.size(), 2u);
  std::vector<size_t> serial_counts, pooled_counts;
  serial.RebuildCandidatesForMany(slots, nullptr, &serial_counts);
  ThreadPool pool(4);
  pooled.RebuildCandidatesForMany(slots, &pool, &pooled_counts);
  EXPECT_EQ(serial_counts, pooled_counts);
  EXPECT_EQ(serial.num_alive_candidates(), pooled.num_alive_candidates());
  for (uint32_t s : slots) {
    const auto a = serial.CandidatesOf(s);
    const auto b = pooled.CandidatesOf(s);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].nodes, b[i].nodes);  // order matters: registration order
      EXPECT_EQ(a[i].score, b[i].score);
    }
  }
  std::string error;
  EXPECT_TRUE(pooled.CheckInvariants(&error)) << error;
  EXPECT_TRUE(pooled.CheckCandidateCompleteness(&error)) << error;
}

TEST(SolutionStateTest, MeteredRebuildCutsLeaveValidButIncompleteIndex) {
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  const uint32_t c1 = state.CliqueOf(2);
  const size_t complete = state.CandidatesOf(c1).size();
  ASSERT_GE(complete, 2u);

  // One work unit: the rebuild charge itself exhausts the cap, so the DFS
  // refuses its first branch — a full mid-rebuild cut. The kill half of
  // the rebuild still ran (mandatory repair), so the slot's set is empty:
  // valid (nothing stale) but incomplete.
  UpdateWork meter;
  meter.max_work = 1;
  state.RebuildCandidatesFor(c1, &meter);
  EXPECT_EQ(state.CandidatesOf(c1).size(), 0u);
  EXPECT_EQ(meter.work, 1u);
  EXPECT_EQ(meter.rebuild_cuts, 1u);
  std::string error;
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
  EXPECT_FALSE(state.CheckCandidateCompleteness(&error))
      << "a cut rebuild must be visibly incomplete";

  // The next unbudgeted rebuild of the slot heals the incompleteness.
  EXPECT_EQ(state.RebuildCandidatesFor(c1), complete);
  EXPECT_TRUE(state.CheckCandidateCompleteness(&error)) << error;
}

TEST(SolutionStateTest, BudgetedRebuildManyMatchesSerialAtEveryCap) {
  // The pooled fan-out enumerates speculatively and replays the meter
  // serially; registered candidates, work, and cut counts must equal the
  // serial loop's for any cap — including caps that truncate mid-slot.
  Graph g = testing::RandomGraph(200, 0.07, /*seed=*/220);
  SolutionState serial(DynamicGraph(g), 3, ScoresFor(g, 3));
  SolutionState pooled(DynamicGraph(g), 3, ScoresFor(g, 3));
  pooled.set_parallel_rebuild_min_slots(1);  // engage the pool regardless
  std::vector<uint8_t> used(g.num_nodes(), 0);
  std::vector<uint32_t> slots;
  for (const auto& tri : testing::BruteForceKCliques(g, 3)) {
    if (used[tri[0]] || used[tri[1]] || used[tri[2]]) continue;
    for (NodeId u : tri) used[u] = 1;
    slots.push_back(serial.AddSolutionClique(tri));
    pooled.AddSolutionClique(tri);
  }
  ASSERT_GE(slots.size(), 4u);
  ThreadPool pool(4);
  bool some_cap_cut_mid_batch = false;
  for (uint64_t cap : {uint64_t{0}, uint64_t{2}, uint64_t{9}, uint64_t{33},
                       uint64_t{1000000}}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    UpdateWork serial_meter, pooled_meter;
    serial_meter.max_work = cap;
    pooled_meter.max_work = cap;
    std::vector<size_t> serial_counts, pooled_counts;
    serial.RebuildCandidatesForMany(slots, nullptr, &serial_counts,
                                    &serial_meter);
    pooled.RebuildCandidatesForMany(slots, &pool, &pooled_counts,
                                    &pooled_meter);
    EXPECT_EQ(serial_counts, pooled_counts);
    EXPECT_EQ(serial_meter.work, pooled_meter.work);
    EXPECT_EQ(serial_meter.rebuild_cuts, pooled_meter.rebuild_cuts);
    if (serial_meter.rebuild_cuts > 0 &&
        serial_meter.rebuild_cuts < slots.size()) {
      some_cap_cut_mid_batch = true;
    }
    for (uint32_t s : slots) {
      const auto a = serial.CandidatesOf(s);
      const auto b = pooled.CandidatesOf(s);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].nodes, b[i].nodes);
      }
    }
    std::string error;
    EXPECT_TRUE(pooled.CheckInvariants(&error)) << error;
  }
  EXPECT_TRUE(some_cap_cut_mid_batch)
      << "no cap exercised a partial truncation; adjust the cap list";
}

TEST(SolutionStateTest, ParallelRebuildGateDefaultsToEightAndIsTunable) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  EXPECT_EQ(state.parallel_rebuild_min_slots(), 8u);
  state.set_parallel_rebuild_min_slots(2);
  EXPECT_EQ(state.parallel_rebuild_min_slots(), 2u);
}

TEST(SolutionStateTest, CompletenessCheckerCatchesMissingCandidates) {
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  std::string error;
  ASSERT_TRUE(state.CheckCandidateCompleteness(&error)) << error;
  // Kill candidates through an edge that still exists: the survivors are
  // all valid (CheckInvariants passes) but the index is now incomplete.
  ASSERT_EQ(state.KillCandidatesWithEdge(5, 6), 1u);
  EXPECT_TRUE(state.CheckInvariants(&error)) << error;
  EXPECT_FALSE(state.CheckCandidateCompleteness(&error));
  EXPECT_FALSE(error.empty());
}

TEST(SolutionStateTest, InvariantCheckerCatchesCorruptedCandidate) {
  // Delete a candidate-only edge behind the state's back: the solution
  // cliques stay intact, but an alive candidate is no longer a clique.
  Graph g = PaperFig5G2();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  ASSERT_EQ(state.num_alive_candidates(), 2u);
  state.graph().DeleteEdge(5, 6);  // inside candidate (v5,v6,v7) only
  std::string error;
  EXPECT_FALSE(state.CheckInvariants(&error));
  EXPECT_NE(error.find("candidate"), std::string::npos) << error;
}

TEST(SolutionStateTest, InvariantCheckerCatchesPlantedCorruption) {
  Graph g = PaperFig5G1();
  SolutionState state = Fig5State(g);
  state.RebuildAllCandidates();
  // Sabotage: delete a solution edge behind the state's back.
  state.graph().DeleteEdge(2, 3);
  std::string error;
  EXPECT_FALSE(state.CheckInvariants(&error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace dkc
