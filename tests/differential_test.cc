// Randomized differential testing: every static heuristic against naive
// oracles and the exact baseline, the library verifier against an
// independent naive verifier, and the dynamic maintenance engine against
// from-scratch static re-solves under random insert/delete streams.
//
// All randomness is seeded; a failure message always names the case index
// so it can be replayed in isolation.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "gen/generators.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/cpu.h"
#include "util/rng.h"

namespace dkc {
namespace {

constexpr Method kHeuristics[] = {Method::kHG, Method::kGC, Method::kL,
                                  Method::kLP};

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

// Every heuristic method on >= 50 mixed-model random instances, each result
// re-validated by the naive oracles AND by the library verifier; a
// divergence between the two verifiers is itself a failure.
TEST(DifferentialTest, StaticHeuristicsSatisfyOraclesOnRandomInstances) {
  constexpr int kInstances = 52;
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kHeuristics) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      auto result = Solve(g, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();

      const std::string oracle_error =
          testing::OracleCheckDisjointCliques(g, result->set);
      EXPECT_EQ(oracle_error, "");
      EXPECT_TRUE(testing::OracleCheckMaximal(g, result->set));

      // The library verifier must agree with the naive one.
      const Status lib = VerifySolution(g, result->set);
      EXPECT_TRUE(lib.ok()) << lib.ToString();
    }
  }
}

// L and LP differ only in the FindMin pruning branch; the paper reports
// identical solutions ("Due to the same quality of S of L and LP").
TEST(DifferentialTest, PruningNeverChangesTheLightweightSolution) {
  for (int case_index = 0; case_index < 24; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7100);
    SolverOptions options;
    options.k = 3 + case_index % 3;
    options.method = Method::kL;
    auto plain = Solve(g, options);
    options.method = Method::kLP;
    auto pruned = Solve(g, options);
    ASSERT_TRUE(plain.ok() && pruned.ok());
    EXPECT_EQ(testing::Canonicalize(ToVectors(plain->set)),
              testing::Canonicalize(ToVectors(pruned->set)));
  }
}

// The SIMD dispatch level (scalar / SSE4.2 / AVX2 — util/cpu.h) is only
// allowed to change speed, never output: every solver method must return
// byte-identical solutions at every level the host supports. This is the
// end-to-end half of the intersect_simd byte-identity sweep — it exercises
// the dispatched merge, the fused AND+popcount rows, and the gathered row
// construction through real traversals instead of synthetic inputs.
TEST(DifferentialTest, SimdDispatchLevelNeverChangesSolutions) {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (CpuSimdLevel() >= SimdLevel::kSse42) levels.push_back(SimdLevel::kSse42);
  if (CpuSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  for (int case_index = 0; case_index < 16; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7400);
    SolverOptions options;
    options.k = 3 + case_index % 3;
    for (Method method : kHeuristics) {
      SCOPED_TRACE(MethodName(method));
      std::vector<std::vector<NodeId>> reference;
      for (size_t li = 0; li < levels.size(); ++li) {
        SetSimdLevelOverride(levels[li]);
        options.method = method;
        auto result = Solve(g, options);
        ClearSimdLevelOverride();
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        if (li == 0) {
          reference = ToVectors(result->set);
        } else {
          EXPECT_EQ(ToVectors(result->set), reference)
              << "level=" << SimdLevelName(levels[li]);
        }
      }
    }
  }
}

// On small instances the exact baseline is itself checked against an
// exhaustive packing search, and every heuristic must stay within the
// paper's k-approximation band of it.
TEST(DifferentialTest, HeuristicsVsExactOnSmallInstances) {
  for (int case_index = 0; case_index < 16; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    Rng rng(7200 + static_cast<uint64_t>(case_index));
    const NodeId n = 12 + static_cast<NodeId>(case_index % 4);
    const double p = 0.30 + 0.05 * static_cast<double>(case_index % 3);
    const Graph g = ErdosRenyi(n, p, rng).value();
    const int k = 3 + case_index % 2;

    SolverOptions options;
    options.k = k;
    options.method = Method::kOPT;
    auto exact = Solve(g, options);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(exact->size(), testing::BruteForceMaxDisjointPacking(g, k));
    EXPECT_EQ(testing::OracleCheckDisjointCliques(g, exact->set), "");

    for (Method method : kHeuristics) {
      SCOPED_TRACE(MethodName(method));
      options.method = method;
      auto heuristic = Solve(g, options);
      ASSERT_TRUE(heuristic.ok()) << heuristic.status().ToString();
      EXPECT_LE(heuristic->size(), exact->size());
      // Theorem 3: any maximal disjoint k-clique set is a k-approximation.
      EXPECT_LE(exact->size(), static_cast<NodeId>(k) * heuristic->size());
    }
  }
}

// The preprocessing pipeline's central promise: in the default
// order-preserving mode, running any method on the (k-1)-core +
// triangle-support pruned graph produces the byte-identical solution —
// same cliques, same order, same node order within each clique — as
// running it on the raw input. Every static instance, all five methods;
// OPT runs under the deterministic branch budget so the genuinely hard
// instances abort identically on both sides instead of timing out.
TEST(DifferentialTest, PreprocessingPreservesSolutionsByteForByte) {
  constexpr int kInstances = 52;
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP, Method::kOPT};
  int nontrivially_pruned = 0;
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      if (method == Method::kOPT) {
        options.budget.max_branch_nodes = 40000;
      }
      options.preprocess = false;
      auto plain = Solve(g, options);
      options.preprocess = true;
      auto pruned = Solve(g, options);
      ASSERT_EQ(plain.ok(), pruned.ok())
          << (plain.ok() ? pruned.status().ToString()
                         : plain.status().ToString());
      if (!plain.ok()) continue;  // identical deterministic abort
      EXPECT_EQ(ToVectors(pruned->set), ToVectors(plain->set));
      EXPECT_EQ(pruned->preprocess.nodes_before, g.num_nodes());
      EXPECT_LE(pruned->preprocess.nodes_after,
                pruned->preprocess.nodes_before);
      if (pruned->preprocess.edges_removed() > 0) ++nontrivially_pruned;
    }
  }
  // The sweep must include instances where pruning actually bites, or the
  // byte-identity claim is only ever tested on no-op remaps.
  EXPECT_GE(nontrivially_pruned, 10);
}

// The opt-in reorder mode waives byte-identity (the pruned graph gets its
// own degeneracy order) but must still produce valid maximal disjoint
// k-clique sets, mutually within the Theorem-3 k-approximation band of the
// preprocess-off run.
TEST(DifferentialTest, ReorderModeStaysValidAndComparable) {
  for (int case_index = 0; case_index < 24; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kHeuristics) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      options.preprocess = false;
      auto plain = Solve(g, options);
      options.preprocess = true;
      options.preprocess_reorder = true;
      auto reordered = Solve(g, options);
      ASSERT_TRUE(plain.ok() && reordered.ok());
      EXPECT_TRUE(reordered->preprocess.reordered);
      EXPECT_EQ(testing::OracleCheckDisjointCliques(g, reordered->set), "");
      EXPECT_TRUE(testing::OracleCheckMaximal(g, reordered->set));
      EXPECT_TRUE(VerifySolution(g, reordered->set).ok());
      EXPECT_LE(plain->size(), static_cast<NodeId>(k) * reordered->size());
      EXPECT_LE(reordered->size(), static_cast<NodeId>(k) * plain->size());
    }
  }
}

// Fuzzes the Section-V dynamic engine: random insert/delete streams, with
// invariants, both verifiers, and a from-scratch static re-solve
// cross-checked after every batch of updates.
TEST(DifferentialTest, DynamicSolverSurvivesRandomUpdateStreams) {
  constexpr int kStreams = 10;
  constexpr int kUpdatesPerStream = 220;
  constexpr int kBatch = 20;
  for (int stream = 0; stream < kStreams; ++stream) {
    SCOPED_TRACE("stream=" + std::to_string(stream));
    Rng rng(7300 + static_cast<uint64_t>(stream) * 97);
    // Doubled from n in [40, 50] once the kernel refactor paid for it; the
    // stream fuzz is the safety net every perf PR leans on.
    const NodeId n = 80 + static_cast<NodeId>(stream % 3) * 10;
    const double p = 0.10 + 0.02 * static_cast<double>(stream % 4);
    const Graph initial = ErdosRenyi(n, p, rng).value();
    const int k = 3 + stream % 2;

    DynamicOptions options;
    options.k = k;
    auto solver = DynamicSolver::Build(initial, options);
    ASSERT_TRUE(solver.ok()) << solver.status().ToString();

    // Mirror edge list for uniform sampling of deletions.
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < initial.num_nodes(); ++u) {
      for (NodeId v : initial.Neighbors(u)) {
        if (u < v) edges.emplace_back(u, v);
      }
    }

    for (int update = 1; update <= kUpdatesPerStream; ++update) {
      const bool do_insert = edges.empty() || rng.NextBool(0.55);
      if (do_insert) {
        NodeId u = 0, v = 0;
        do {
          u = static_cast<NodeId>(rng.NextBounded(n));
          v = static_cast<NodeId>(rng.NextBounded(n));
        } while (u == v || solver->graph().HasEdge(u, v));
        ASSERT_TRUE(solver->InsertEdge(u, v).ok())
            << "insert (" << u << "," << v << ") at update " << update;
        edges.emplace_back(std::min(u, v), std::max(u, v));
      } else {
        const size_t pick = rng.NextBounded(edges.size());
        const auto [u, v] = edges[pick];
        edges[pick] = edges.back();
        edges.pop_back();
        ASSERT_TRUE(solver->DeleteEdge(u, v).ok())
            << "delete (" << u << "," << v << ") at update " << update;
      }

      if (update % kBatch != 0) continue;
      SCOPED_TRACE("update=" + std::to_string(update));

      std::string invariant_error;
      ASSERT_TRUE(solver->CheckInvariants(&invariant_error))
          << invariant_error;
      ASSERT_TRUE(solver->CheckCandidateCompleteness(&invariant_error))
          << invariant_error;

      const Graph current = solver->graph().ToGraph();
      ASSERT_EQ(current.num_edges(), edges.size());
      const CliqueStore snapshot = solver->Snapshot();
      EXPECT_EQ(testing::OracleCheckDisjointCliques(current, snapshot), "");
      EXPECT_TRUE(testing::OracleCheckMaximal(current, snapshot));
      const Status lib = VerifySolution(current, snapshot);
      EXPECT_TRUE(lib.ok()) << lib.ToString();

      // From-scratch static re-solve: both solutions are maximal, hence
      // both are k-approximations of the optimum, so each is within a
      // factor k of the other.
      SolverOptions resolve;
      resolve.k = k;
      resolve.method = Method::kLP;
      auto fresh = Solve(current, resolve);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      EXPECT_LE(fresh->size(),
                static_cast<NodeId>(k) * solver->solution_size());
      EXPECT_LE(solver->solution_size(),
                static_cast<NodeId>(k) * fresh->size());
    }
  }
}

}  // namespace
}  // namespace dkc
