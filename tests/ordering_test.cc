#include "graph/ordering.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

void ExpectValidPermutation(const Ordering& o, NodeId n) {
  ASSERT_EQ(o.rank.size(), n);
  ASSERT_EQ(o.nodes.size(), n);
  std::vector<bool> seen(n, false);
  for (NodeId i = 0; i < n; ++i) {
    ASSERT_LT(o.nodes[i], n);
    EXPECT_FALSE(seen[o.nodes[i]]) << "duplicate node in ordering";
    seen[o.nodes[i]] = true;
    EXPECT_EQ(o.rank[o.nodes[i]], i) << "rank and nodes disagree";
  }
}

TEST(OrderingTest, IdentityIsIdentity) {
  Ordering o = IdentityOrdering(5);
  ExpectValidPermutation(o, 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(o.rank[v], v);
}

TEST(OrderingTest, DegreeOrderingIsAscending) {
  Graph g = testing::RandomGraph(50, 0.2, /*seed=*/10);
  Ordering o = DegreeOrdering(g);
  ExpectValidPermutation(o, g.num_nodes());
  for (NodeId i = 1; i < g.num_nodes(); ++i) {
    EXPECT_LE(g.Degree(o.nodes[i - 1]), g.Degree(o.nodes[i]));
  }
}

TEST(OrderingTest, OrderByKeyAscendingSortsAndBreaksTiesById) {
  std::vector<Count> key = {5, 1, 5, 0, 1};
  Ordering o = OrderByKeyAscending(key);
  ExpectValidPermutation(o, 5);
  EXPECT_EQ(o.nodes[0], 3u);  // key 0
  EXPECT_EQ(o.nodes[1], 1u);  // key 1, smaller id first
  EXPECT_EQ(o.nodes[2], 4u);
  EXPECT_EQ(o.nodes[3], 0u);  // key 5, smaller id first
  EXPECT_EQ(o.nodes[4], 2u);
}

TEST(OrderingTest, DegeneracyOrderingIsPermutation) {
  Graph g = testing::RandomGraph(70, 0.15, /*seed=*/11);
  ExpectValidPermutation(DegeneracyOrdering(g), g.num_nodes());
}

TEST(OrderingTest, DegeneracyOfCompleteGraphIsNMinus1) {
  GraphBuilder b;
  const NodeId n = 8;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  EXPECT_EQ(Degeneracy(b.Build()), n - 1);
}

TEST(OrderingTest, DegeneracyOfTreeIsOne) {
  GraphBuilder b;
  for (NodeId v = 1; v < 20; ++v) b.AddEdge(v, v / 2);
  EXPECT_EQ(Degeneracy(b.Build()), 1u);
}

TEST(OrderingTest, DegeneracyOfEmptyGraphIsZero) {
  Graph g;
  EXPECT_EQ(Degeneracy(g), 0u);
}

TEST(OrderingTest, DegeneracyOfKarateClub) {
  // Known value for Zachary's karate club.
  EXPECT_EQ(Degeneracy(KarateClub()), 4u);
}

// Degeneracy must match the naive peel on random graphs of various shapes.
class DegeneracySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DegeneracySweep, MatchesBruteForce) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const NodeId n = 20 + static_cast<NodeId>(rng.NextBounded(40));
  const double p = 0.05 + rng.NextDouble() * 0.3;
  Graph g = testing::RandomGraph(n, p, seed * 977 + 1);
  EXPECT_EQ(Degeneracy(g), testing::BruteForceDegeneracy(g))
      << "n=" << n << " p=" << p << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DegeneracySweep,
                         ::testing::Range<uint64_t>(0, 12));

// The degeneracy ordering is the reversed peel sequence: every node has at
// most `degeneracy` neighbors of *lower* rank (those peeled after it).
TEST(OrderingTest, DegeneracyOrderingHasBoundedBackwardDegree) {
  Graph g = testing::RandomGraph(60, 0.2, /*seed=*/12);
  const Count d = Degeneracy(g);
  Ordering o = DegeneracyOrdering(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    Count backward = 0;
    for (NodeId v : g.Neighbors(u)) {
      if (o.rank[v] < o.rank[u]) ++backward;
    }
    EXPECT_LE(backward, d) << "node " << u;
  }
}

}  // namespace
}  // namespace dkc
