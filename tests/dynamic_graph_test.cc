#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace dkc {
namespace {

TEST(DynamicGraphTest, EmptyOverN) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraphTest, InsertAndQuery) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
}

TEST(DynamicGraphTest, DuplicateInsertRejected) {
  DynamicGraph g(3);
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(0, 1));
  EXPECT_FALSE(g.InsertEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynamicGraphTest, SelfLoopRejected) {
  DynamicGraph g(3);
  EXPECT_FALSE(g.InsertEdge(1, 1));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraphTest, InsertGrowsNodeSet) {
  DynamicGraph g(2);
  EXPECT_TRUE(g.InsertEdge(0, 7));
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_TRUE(g.HasEdge(7, 0));
}

TEST(DynamicGraphTest, DeleteExisting) {
  DynamicGraph g(3);
  g.InsertEdge(0, 1);
  g.InsertEdge(1, 2);
  EXPECT_TRUE(g.DeleteEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynamicGraphTest, DeleteMissingFails) {
  DynamicGraph g(3);
  g.InsertEdge(0, 1);
  EXPECT_FALSE(g.DeleteEdge(0, 2));
  EXPECT_FALSE(g.DeleteEdge(0, 99));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(DynamicGraphTest, ReinsertAfterDelete) {
  DynamicGraph g(3);
  g.InsertEdge(0, 1);
  g.DeleteEdge(0, 1);
  EXPECT_TRUE(g.InsertEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(DynamicGraphTest, FromStaticSnapshotPreservesEverything) {
  Graph base = testing::RandomGraph(40, 0.2, /*seed=*/30);
  DynamicGraph g(base);
  EXPECT_EQ(g.num_nodes(), base.num_nodes());
  EXPECT_EQ(g.num_edges(), base.num_edges());
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    for (NodeId v : base.Neighbors(u)) EXPECT_TRUE(g.HasEdge(u, v));
  }
}

TEST(DynamicGraphTest, ToGraphRoundTrip) {
  Graph base = testing::RandomGraph(30, 0.25, /*seed=*/31);
  DynamicGraph g(base);
  Graph back = g.ToGraph();
  ASSERT_EQ(back.num_nodes(), base.num_nodes());
  ASSERT_EQ(back.num_edges(), base.num_edges());
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    auto a = base.Neighbors(u);
    auto b = back.Neighbors(u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(DynamicGraphTest, NeighborListsStaySorted) {
  DynamicGraph g(10);
  Rng rng(32);
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(10));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(10));
    if (u != v) g.InsertEdge(u, v);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
}

TEST(DynamicGraphTest, RandomChurnMatchesReferenceSet) {
  DynamicGraph g(20);
  std::set<std::pair<NodeId, NodeId>> reference;
  Rng rng(33);
  for (int i = 0; i < 500; ++i) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(20));
    NodeId v = static_cast<NodeId>(rng.NextBounded(20));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (rng.NextBool(0.6)) {
      EXPECT_EQ(g.InsertEdge(u, v), reference.insert({u, v}).second);
    } else {
      EXPECT_EQ(g.DeleteEdge(u, v), reference.erase({u, v}) > 0);
    }
    EXPECT_EQ(g.num_edges(), reference.size());
  }
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = u + 1; v < 20; ++v) {
      EXPECT_EQ(g.HasEdge(u, v), reference.count({u, v}) > 0);
    }
  }
}

}  // namespace
}  // namespace dkc
