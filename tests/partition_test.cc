// Partitioned execution model invariants (core/partitioned_solve.h,
// partition/partition.h):
//
//  * the headline contract — partitioned solve at P ∈ {1,2,4,8} is
//    byte-identical to the unpartitioned engine for all four heuristic
//    methods, across the 52 mixed differential instances, serially and on
//    2/4-thread pools (same cliques, same order, same node order);
//  * ghost-map round-trips — monotone remap, inverse maps, complete rows
//    for owned nodes, every node owned exactly once, stats consistency;
//  * degenerate shapes — empty graphs, singleton partitions, P > n.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/solver.h"
#include "core/verify.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/ordering.h"
#include "partition/partition.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

TEST(PartitionTest, PartitionedSolveIsByteIdenticalToUnpartitioned) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  constexpr int kPartitionCounts[] = {1, 2, 4, 8};
  constexpr int kInstances = 52;
  ThreadPool pool2(2), pool4(4);
  ThreadPool* pools[] = {nullptr, &pool2, &pool4};
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      auto classic = Solve(g, options);
      ASSERT_TRUE(classic.ok()) << classic.status().ToString();
      ASSERT_TRUE(classic->partitions.empty());
      const auto expected = ToVectors(classic->set);
      EXPECT_TRUE(VerifySolution(g, classic->set).ok());
      for (int partitions : kPartitionCounts) {
        SCOPED_TRACE("partitions=" + std::to_string(partitions));
        for (ThreadPool* pool : pools) {
          SCOPED_TRACE("threads=" +
                       std::to_string(pool == nullptr ? 0
                                                      : pool->num_threads()));
          options.partitions = partitions;
          options.pool = pool;
          auto partitioned = Solve(g, options);
          ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
          // Byte-identical: same cliques, same order, no canonicalization.
          EXPECT_EQ(ToVectors(partitioned->set), expected);
          EXPECT_EQ(partitioned->partitions.size(),
                    static_cast<size_t>(partitions));
        }
        options.pool = nullptr;
      }
      options.partitions = 0;
    }
  }
}

// The byte-identity promise must not lean on preprocessing quirks: with the
// pipeline disabled the partitioned driver orients the raw graph itself and
// must still reproduce the classic path.
TEST(PartitionTest, PartitionedSolveMatchesWithPreprocessingDisabled) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  for (int case_index = 0; case_index < 12; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = 3 + case_index % 3;
      options.method = method;
      options.preprocess = false;
      auto classic = Solve(g, options);
      ASSERT_TRUE(classic.ok()) << classic.status().ToString();
      options.partitions = 4;
      auto partitioned = Solve(g, options);
      ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
      EXPECT_EQ(ToVectors(partitioned->set), ToVectors(classic->set));
    }
  }
}

TEST(PartitionTest, GhostMapsRoundTrip) {
  const RangePartitioner partitioner;
  for (int case_index = 0; case_index < 16; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/9100);
    const NodeId n = g.num_nodes();
    const Ordering order = DegeneracyOrdering(g);
    for (int partitions : {1, 2, 4, 8}) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions));
      const std::vector<int> owner = partitioner.Assign(g, order, partitions);
      ASSERT_EQ(owner.size(), static_cast<size_t>(n));
      for (NodeId u = 0; u < n; ++u) {
        ASSERT_GE(owner[u], 0);
        ASSERT_LT(owner[u], partitions);
      }
      const auto parts = BuildPartitions(g, order, owner, partitions);
      ASSERT_EQ(parts.size(), static_cast<size_t>(partitions));
      std::vector<int> owned_by(n, 0);
      for (const GraphPartition& part : parts) {
        const NodeId local_n = part.local.num_nodes();
        ASSERT_EQ(part.new_to_old.size(), static_cast<size_t>(local_n));
        ASSERT_EQ(part.old_to_new.size(), static_cast<size_t>(n));
        ASSERT_EQ(part.owned.size(), static_cast<size_t>(local_n));
        ASSERT_EQ(part.uncertain0.size(), static_cast<size_t>(local_n));
        // Monotone remap: new_to_old strictly ascending, old_to_new inverse.
        for (NodeId lu = 0; lu < local_n; ++lu) {
          if (lu > 0) {
            ASSERT_LT(part.new_to_old[lu - 1], part.new_to_old[lu]);
          }
          ASSERT_EQ(part.old_to_new[part.new_to_old[lu]], lu);
        }
        for (NodeId u = 0; u < n; ++u) {
          if (part.old_to_new[u] != kInvalidNode) {
            ASSERT_EQ(part.new_to_old[part.old_to_new[u]], u);
          }
        }
        NodeId owned_nodes = 0, ghost_nodes = 0, boundary_nodes = 0;
        for (NodeId lu = 0; lu < local_n; ++lu) {
          const NodeId u = part.new_to_old[lu];
          const auto local_row = part.local.Neighbors(lu);
          const auto global_row = g.Neighbors(u);
          if (part.owned[lu] != 0) {
            owned_by[u] += 1;
            ++owned_nodes;
            // An owned node keeps its entire row, ghosts included.
            ASSERT_EQ(local_row.size(), global_row.size());
            bool boundary = false;
            for (size_t i = 0; i < local_row.size(); ++i) {
              ASSERT_EQ(part.new_to_old[local_row[i]], global_row[i]);
              if (part.owned[local_row[i]] == 0) boundary = true;
            }
            if (boundary) ++boundary_nodes;
            // Ghosts are uncertain by seed; owned certainty is refined.
          } else {
            ++ghost_nodes;
            ASSERT_EQ(part.uncertain0[lu], 1);
            // A ghost's local row is the induced subset of its global row.
            size_t cursor = 0;
            for (NodeId gv : global_row) {
              if (part.old_to_new[gv] == kInvalidNode) continue;
              ASSERT_LT(cursor, local_row.size());
              ASSERT_EQ(part.new_to_old[local_row[cursor]], gv);
              ++cursor;
            }
            ASSERT_EQ(cursor, local_row.size());
          }
        }
        EXPECT_EQ(part.stats.owned_nodes, owned_nodes);
        EXPECT_EQ(part.stats.ghost_nodes, ghost_nodes);
        EXPECT_EQ(part.stats.boundary_nodes, boundary_nodes);
        EXPECT_EQ(part.stats.local_edges, part.local.num_edges());
        // The restricted ordering ranks exactly the local nodes, densely.
        ASSERT_EQ(part.orientation.nodes.size(), static_cast<size_t>(local_n));
        for (NodeId lu = 0; lu < local_n; ++lu) {
          ASSERT_EQ(part.orientation.rank[part.orientation.nodes[lu]], lu);
        }
        // Rank comparisons agree with the global order.
        for (NodeId lu = 1; lu < local_n; ++lu) {
          const NodeId a = part.orientation.nodes[lu - 1];
          const NodeId b = part.orientation.nodes[lu];
          ASSERT_LT(order.rank[part.new_to_old[a]],
                    order.rank[part.new_to_old[b]]);
        }
      }
      // Every node owned exactly once across the partition set.
      for (NodeId u = 0; u < n; ++u) ASSERT_EQ(owned_by[u], 1);
    }
  }
}

// BuildPartitions must fan out to the same bytes it produces serially.
TEST(PartitionTest, PartitionConstructionIsThreadCountInvariant) {
  ThreadPool pool4(4);
  const RangePartitioner partitioner;
  for (int case_index = 0; case_index < 8; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/9100);
    const Ordering order = DegeneracyOrdering(g);
    const std::vector<int> owner = partitioner.Assign(g, order, 4);
    const auto serial = BuildPartitions(g, order, owner, 4);
    const auto pooled = BuildPartitions(g, order, owner, 4, &pool4);
    ASSERT_EQ(serial.size(), pooled.size());
    for (size_t p = 0; p < serial.size(); ++p) {
      EXPECT_EQ(serial[p].new_to_old, pooled[p].new_to_old);
      EXPECT_EQ(serial[p].old_to_new, pooled[p].old_to_new);
      EXPECT_EQ(serial[p].owned, pooled[p].owned);
      EXPECT_EQ(serial[p].uncertain0, pooled[p].uncertain0);
      EXPECT_EQ(serial[p].orientation.nodes, pooled[p].orientation.nodes);
      EXPECT_EQ(serial[p].orientation.rank, pooled[p].orientation.rank);
      ASSERT_EQ(serial[p].local.num_nodes(), pooled[p].local.num_nodes());
      for (NodeId u = 0; u < serial[p].local.num_nodes(); ++u) {
        const auto a = serial[p].local.Neighbors(u);
        const auto b = pooled[p].local.Neighbors(u);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
    }
  }
}

TEST(PartitionTest, DegenerateShapes) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  // Empty graph, a graph smaller than P (singleton/empty partitions), and a
  // single triangle split across 8 partitions.
  std::vector<Graph> graphs;
  graphs.push_back(Graph());
  {
    GraphBuilder b;
    b.EnsureNode(3);  // 3 isolated nodes
    graphs.push_back(b.Build());
  }
  {
    GraphBuilder b;
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(0, 2);
    graphs.push_back(b.Build());
  }
  {
    // Two triangles sharing node 2: exercises cross-partition conflicts.
    GraphBuilder b;
    b.AddEdge(0, 1);
    b.AddEdge(1, 2);
    b.AddEdge(0, 2);
    b.AddEdge(2, 3);
    b.AddEdge(3, 4);
    b.AddEdge(2, 4);
    graphs.push_back(b.Build());
  }
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    SCOPED_TRACE("graph=" + std::to_string(gi));
    const Graph& g = graphs[gi];
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = 3;
      options.method = method;
      auto classic = Solve(g, options);
      ASSERT_TRUE(classic.ok()) << classic.status().ToString();
      for (int partitions : {1, 8}) {
        SCOPED_TRACE("partitions=" + std::to_string(partitions));
        options.partitions = partitions;
        auto partitioned = Solve(g, options);
        ASSERT_TRUE(partitioned.ok()) << partitioned.status().ToString();
        EXPECT_EQ(ToVectors(partitioned->set), ToVectors(classic->set));
        NodeId owned_total = 0;
        for (const PartitionStats& stats : partitioned->partitions) {
          owned_total += stats.owned_nodes;
        }
        EXPECT_LE(owned_total, g.num_nodes());
      }
      options.partitions = 0;
    }
  }
}

// OPT ignores the partitions knob (its MIS already decomposes by component)
// and must keep working when it is set.
TEST(PartitionTest, OptFallsBackToClassicPath) {
  const Graph g = testing::RandomGraphMixed(0, /*seed=*/7000);
  SolverOptions options;
  options.k = 3;
  options.method = Method::kOPT;
  auto classic = Solve(g, options);
  ASSERT_TRUE(classic.ok()) << classic.status().ToString();
  options.partitions = 4;
  auto routed = Solve(g, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(ToVectors(routed->set), ToVectors(classic->set));
  EXPECT_TRUE(routed->partitions.empty());
}

}  // namespace
}  // namespace dkc
