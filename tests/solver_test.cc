#include "core/solver.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(SolverTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kHG), "HG");
  EXPECT_STREQ(MethodName(Method::kGC), "GC");
  EXPECT_STREQ(MethodName(Method::kL), "L");
  EXPECT_STREQ(MethodName(Method::kLP), "LP");
  EXPECT_STREQ(MethodName(Method::kOPT), "OPT");
}

TEST(SolverTest, ParseMethodRoundTrip) {
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP,
                   Method::kOPT}) {
    auto parsed = ParseMethod(MethodName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, m);
  }
}

TEST(SolverTest, ParseMethodCaseInsensitive) {
  auto parsed = ParseMethod("lp");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, Method::kLP);
}

TEST(SolverTest, ParseUnknownMethodFails) {
  EXPECT_FALSE(ParseMethod("MAGIC").ok());
  EXPECT_EQ(ParseMethod("").status().code(), Status::Code::kNotFound);
}

TEST(SolverTest, AllMethodsProduceValidSolutions) {
  Graph g = PaperFig2Graph();
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP,
                   Method::kOPT}) {
    SolverOptions options;
    options.k = 3;
    options.method = m;
    auto result = Solve(g, options);
    ASSERT_TRUE(result.ok()) << MethodName(m);
    EXPECT_TRUE(VerifyDisjointCliques(g, result->set).ok()) << MethodName(m);
    EXPECT_GE(result->size(), 2u) << MethodName(m);
    EXPECT_LE(result->size(), 3u) << MethodName(m);
  }
}

TEST(SolverTest, AllMethodsRejectBadK) {
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP,
                   Method::kOPT}) {
    SolverOptions options;
    options.k = 1;
    options.method = m;
    EXPECT_FALSE(Solve(PaperFig2Graph(), options).ok()) << MethodName(m);
  }
}

TEST(SolverTest, BudgetBranchCapReachesOptAndIsIgnoredByHeuristics) {
  // The unified Budget.max_branch_nodes flows through the facade into
  // OPT's exact-MIS search: the hard planted-partition instance aborts
  // deterministically (OOT) under a tiny cap, while the polynomial
  // heuristics ignore the field entirely.
  Graph g = testing::RandomGraphMixed(/*case_index=*/3, /*seed=*/7000);
  SolverOptions options;
  options.k = 3;
  options.method = Method::kOPT;
  options.budget.max_branch_nodes = 10;
  auto opt = Solve(g, options);
  ASSERT_FALSE(opt.ok());
  EXPECT_TRUE(opt.status().IsTimeBudgetExceeded());
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP}) {
    options.method = m;
    EXPECT_TRUE(Solve(g, options).ok()) << MethodName(m);
  }
}

TEST(SolverTest, QualityOrderingOnKarate) {
  // OPT >= GC/LP >= ... all must be valid; OPT must dominate.
  Graph g = KarateClub();
  SolverOptions options;
  options.k = 3;
  options.method = Method::kOPT;
  auto opt = Solve(g, options);
  ASSERT_TRUE(opt.ok());
  for (Method m : {Method::kHG, Method::kGC, Method::kL, Method::kLP}) {
    options.method = m;
    auto result = Solve(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->size(), opt->size()) << MethodName(m);
    EXPECT_GE(static_cast<int>(result->size()) * options.k,
              static_cast<int>(opt->size()))
        << MethodName(m) << " breaks the k-approximation";
  }
}

}  // namespace
}  // namespace dkc
