#include "dynamic/dynamic_solver.h"

#include <gtest/gtest.h>

#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

DynamicOptions Opts(int k) {
  DynamicOptions options;
  options.k = k;
  return options;
}

// Maximality of the maintained solution against the *current* graph.
void ExpectMaximal(const DynamicSolver& solver) {
  Graph current = solver.graph().ToGraph();
  CliqueStore snap = solver.Snapshot();
  EXPECT_TRUE(VerifySolution(current, snap).ok())
      << VerifySolution(current, snap).ToString();
}

TEST(DynamicSolverTest, BuildSeedsFromStaticSolver) {
  auto solver = DynamicSolver::Build(PaperFig2Graph(), Opts(3));
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->solution_size(), 3u);
  EXPECT_GE(solver->build_stats().index_ms, 0.0);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, PaperFig5InsertionTriggersSwap) {
  // Section V-C: inserting (v5,v7) into G1 lets TrySwap replace (v3,v4,v5)
  // with (v1,v2,v3) + (v5,v6,v7): |S| grows 2 -> 3.
  auto solver = DynamicSolver::Build(PaperFig5G1(), Opts(3));
  ASSERT_TRUE(solver.ok());
  ASSERT_EQ(solver->solution_size(), 2u);
  ASSERT_TRUE(solver->InsertEdge(4, 6).ok());  // (v5, v7)
  EXPECT_EQ(solver->solution_size(), 3u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, PaperFig5DeletionShrinksBackGracefully) {
  auto solver = DynamicSolver::Build(PaperFig5G2(), Opts(3));
  ASSERT_TRUE(solver.ok());
  ASSERT_EQ(solver->solution_size(), 3u);
  ASSERT_TRUE(solver->DeleteEdge(4, 6).ok());  // remove (v5, v7) again
  // The paper's walkthrough: S becomes {(v1,v2,v3), (v9,v10,v11)} or any
  // other maximum packing of G1, which has size 2.
  EXPECT_EQ(solver->solution_size(), 2u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, BuildFromSolutionSeedsExactly) {
  Graph g = PaperFig2Graph();
  // Example 1's maximal-but-not-maximum S1; maximal, so a legal seed.
  CliqueStore seed(3);
  seed.Add(std::vector<NodeId>{2, 4, 5});  // v3,v5,v6
  seed.Add(std::vector<NodeId>{6, 7, 8});  // v7,v8,v9
  auto solver = DynamicSolver::BuildFromSolution(g, seed, Opts(3));
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  EXPECT_EQ(solver->solution_size(), 2u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  // Updates still work on the seeded state.
  ASSERT_TRUE(solver->DeleteEdge(2, 4).ok());
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, BuildFromSolutionRejectsWrongK) {
  CliqueStore seed(4);
  auto solver = DynamicSolver::BuildFromSolution(PaperFig2Graph(), seed,
                                                 Opts(3));
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), Status::Code::kInvalidArgument);
}

TEST(DynamicSolverTest, BuildFromSolutionRejectsInvalidCliques) {
  CliqueStore seed(3);
  seed.Add(std::vector<NodeId>{0, 1, 2});  // not a clique in Fig. 2
  auto solver = DynamicSolver::BuildFromSolution(PaperFig2Graph(), seed,
                                                 Opts(3));
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), Status::Code::kCorruption);
}

TEST(DynamicSolverTest, BuildFromSolutionRejectsNonMaximalSeed) {
  CliqueStore seed(3);
  seed.Add(std::vector<NodeId>{4, 5, 7});  // leaves (v2,v4,v9) packable
  auto solver = DynamicSolver::BuildFromSolution(PaperFig2Graph(), seed,
                                                 Opts(3));
  ASSERT_FALSE(solver.ok());
}

TEST(DynamicSolverTest, BuildFromSolutionMatchesBuildBehaviour) {
  // Seeding with LP's own output must behave like Build() end to end.
  Graph g = testing::RandomGraph(60, 0.25, 4242);
  SolverOptions lp;
  lp.k = 3;
  lp.method = Method::kLP;
  auto solved = Solve(g, lp);
  ASSERT_TRUE(solved.ok());
  auto seeded = DynamicSolver::BuildFromSolution(g, solved->set, Opts(3));
  auto direct = DynamicSolver::Build(g, Opts(3));
  ASSERT_TRUE(seeded.ok() && direct.ok());
  EXPECT_EQ(seeded->solution_size(), direct->solution_size());
  EXPECT_EQ(seeded->index_size(), direct->index_size());
}

TEST(DynamicSolverTest, InsertDuplicateEdgeRejected) {
  auto solver = DynamicSolver::Build(PaperFig2Graph(), Opts(3));
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->InsertEdge(0, 2).code(),
            Status::Code::kInvalidArgument);
}

TEST(DynamicSolverTest, DeleteMissingEdgeRejected) {
  auto solver = DynamicSolver::Build(PaperFig2Graph(), Opts(3));
  ASSERT_TRUE(solver.ok());
  EXPECT_EQ(solver->DeleteEdge(0, 8).code(), Status::Code::kNotFound);
}

TEST(DynamicSolverTest, InsertBetweenTwoSolutionCliquesIsNoop) {
  auto solver = DynamicSolver::Build(PaperFig5G1(), Opts(3));
  ASSERT_TRUE(solver.ok());
  const NodeId before = solver->solution_size();
  // v4 (in C1) to v10 (in C2): both non-free.
  ASSERT_TRUE(solver->InsertEdge(3, 9).ok());
  EXPECT_EQ(solver->solution_size(), before);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
}

TEST(DynamicSolverTest, InsertFormingFreeCliqueAddsDirectly) {
  // G1 free nodes: v1? No — v1,v2 are in C(v1,v2,v3)? The LP seed solution
  // may differ from the paper's; rebuild a controlled case instead: start
  // from a triangle-pair graph where two free nodes await one edge.
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);  // solution triangle
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);  // path among free nodes
  auto solver = DynamicSolver::Build(b.Build(), Opts(3));
  ASSERT_TRUE(solver.ok());
  ASSERT_EQ(solver->solution_size(), 1u);
  ASSERT_TRUE(solver->InsertEdge(3, 5).ok());  // closes free triangle
  EXPECT_EQ(solver->solution_size(), 2u);
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, DeletionInsideSolutionCliqueRepacks) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  auto solver = DynamicSolver::Build(b.Build(), Opts(3));
  ASSERT_TRUE(solver.ok());
  ASSERT_EQ(solver->solution_size(), 1u);
  ASSERT_TRUE(solver->DeleteEdge(0, 1).ok());
  EXPECT_EQ(solver->solution_size(), 0u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  ExpectMaximal(*solver);
}

TEST(DynamicSolverTest, DeletionOutsideSolutionKeepsSize) {
  auto solver = DynamicSolver::Build(PaperFig2Graph(), Opts(3));
  ASSERT_TRUE(solver.ok());
  const NodeId before = solver->solution_size();
  // Find an edge whose endpoints are in different cliques of S (or free).
  Graph g = solver->graph().ToGraph();
  CliqueStore snap = solver->Snapshot();
  std::vector<uint32_t> owner(g.num_nodes(), UINT32_MAX);
  for (CliqueId c = 0; c < snap.size(); ++c) {
    for (NodeId u : snap.Get(c)) owner[u] = c;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && (owner[u] == UINT32_MAX || owner[u] != owner[v])) {
        ASSERT_TRUE(solver->DeleteEdge(u, v).ok());
        EXPECT_EQ(solver->solution_size(), before);
        std::string error;
        EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
        return;
      }
    }
  }
  GTEST_SKIP() << "no cross-clique edge found";
}

TEST(DynamicSolverTest, InsertEdgeWithNewNodeGrowsGraph) {
  auto solver = DynamicSolver::Build(PaperFig2Graph(), Opts(3));
  ASSERT_TRUE(solver.ok());
  ASSERT_TRUE(solver->InsertEdge(0, 20).ok());
  EXPECT_EQ(solver->graph().num_nodes(), 21u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
}

// Random churn: invariants and maximality must hold after every update,
// and the final size must be close to a from-scratch LP solve.
class DynamicChurnSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(DynamicChurnSweep, InvariantsSurviveChurn) {
  const auto [k, seed] = GetParam();
  Rng rng(seed);
  Graph g = testing::RandomGraph(50, 0.25, seed + 1400);
  auto solver = DynamicSolver::Build(g, Opts(k));
  ASSERT_TRUE(solver.ok());

  std::vector<std::pair<NodeId, NodeId>> deleted;
  for (int step = 0; step < 120; ++step) {
    const bool do_insert = !deleted.empty() && rng.NextBool(0.5);
    if (do_insert) {
      const size_t i = rng.NextBounded(deleted.size());
      auto [u, v] = deleted[i];
      deleted.erase(deleted.begin() + static_cast<ptrdiff_t>(i));
      ASSERT_TRUE(solver->InsertEdge(u, v).ok());
    } else {
      // Delete a random existing edge.
      const Graph current = solver->graph().ToGraph();
      if (current.num_edges() == 0) continue;
      Count target = rng.NextBounded(current.num_edges());
      for (NodeId u = 0; u < current.num_nodes(); ++u) {
        for (NodeId v : current.Neighbors(u)) {
          if (u < v && target-- == 0) {
            ASSERT_TRUE(solver->DeleteEdge(u, v).ok());
            deleted.emplace_back(u, v);
          }
        }
      }
    }
    std::string error;
    ASSERT_TRUE(solver->CheckInvariants(&error))
        << "step " << step << ": " << error;
    // The completeness audit is what would catch a stale candidate (kept
    // though invalid) or a forgotten registration — classes of index rot
    // CheckInvariants cannot see.
    ASSERT_TRUE(solver->CheckCandidateCompleteness(&error))
        << "step " << step << ": " << error;
  }
  ExpectMaximal(*solver);

  // Quality: within k-approximation of a fresh static solve (both are
  // maximal, so both are k-approximations of the same optimum).
  SolverOptions fresh;
  fresh.k = k;
  fresh.method = Method::kLP;
  auto from_scratch = Solve(solver->graph().ToGraph(), fresh);
  ASSERT_TRUE(from_scratch.ok());
  EXPECT_LE(from_scratch->size(),
            static_cast<NodeId>(k) * solver->solution_size() +
                (from_scratch->size() == 0 ? 0u : 0u));
}

INSTANTIATE_TEST_SUITE_P(
    Churn, DynamicChurnSweep,
    ::testing::Combine(::testing::Values(3, 4),
                       ::testing::Range<uint64_t>(0, 4)));

// Satellite-1 regression: InsertEdge's both-endpoints-free path adds a
// brand-new all-free clique, consuming free nodes that other cliques'
// candidates were using. Those candidates must die with the consumption —
// a stale survivor would be packed into the solution by a follow-up
// DeleteEdge and break disjointness.
TEST(DynamicSolverTest, FreeCliqueInsertionKillsOtherCliquesCandidates) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);  // seed solution triangle C = {0,1,2}
  b.AddEdge(0, 3);
  b.AddEdge(0, 4);
  b.AddEdge(3, 4);  // X = {0,3,4}: a candidate of C through free 3,4
  b.AddEdge(4, 5);
  b.AddEdge(4, 6);  // {4,5,6} closes into a free triangle once 5-6 lands
  Graph g = b.Build();

  CliqueStore seed(3);
  seed.Add(std::vector<NodeId>{0, 1, 2});
  auto solver = DynamicSolver::BuildFromSolution(g, seed, Opts(3));
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  ASSERT_EQ(solver->index_size(), 1u);  // exactly X

  // Both endpoints free; FindFreeCliqueWithEdge finds {4,5,6} and consumes
  // node 4 — X must die with it.
  ASSERT_TRUE(solver->InsertEdge(5, 6).ok());
  EXPECT_EQ(solver->solution_size(), 2u);
  EXPECT_EQ(solver->index_size(), 0u);
  std::string error;
  ASSERT_TRUE(solver->CheckInvariants(&error)) << error;
  ASSERT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;

  // The trip-wire: breaking C packs its surviving candidates into S. A
  // stale X would resurrect {0,3,4} with node 4 already owned by {4,5,6}.
  ASSERT_TRUE(solver->DeleteEdge(0, 1).ok());
  EXPECT_EQ(solver->solution_size(), 1u);
  ASSERT_TRUE(solver->CheckInvariants(&error)) << error;
  ASSERT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;
  ExpectMaximal(*solver);
}

// Same shape under churn: free-clique insertions interleaved with deletes
// that immediately repack the consumed candidates' owners.
TEST(DynamicSolverTest, FreeCliqueInsertionChurnKeepsIndexExact) {
  Rng rng(9100);
  Graph g = testing::RandomGraph(60, 0.18, 9100);
  auto solver = DynamicSolver::Build(g, Opts(3));
  ASSERT_TRUE(solver.ok());
  std::vector<std::pair<NodeId, NodeId>> deleted;
  for (int step = 0; step < 150; ++step) {
    if (!deleted.empty() && rng.NextBool(0.5)) {
      const size_t i = rng.NextBounded(deleted.size());
      const auto [u, v] = deleted[i];
      deleted.erase(deleted.begin() + static_cast<ptrdiff_t>(i));
      ASSERT_TRUE(solver->InsertEdge(u, v).ok());
    } else {
      const Graph current = solver->graph().ToGraph();
      if (current.num_edges() == 0) continue;
      Count target = rng.NextBounded(current.num_edges());
      for (NodeId u = 0; u < current.num_nodes(); ++u) {
        for (NodeId v : current.Neighbors(u)) {
          if (u < v && target-- == 0) {
            ASSERT_TRUE(solver->DeleteEdge(u, v).ok());
            deleted.emplace_back(u, v);
          }
        }
      }
    }
    std::string error;
    ASSERT_TRUE(solver->CheckCandidateCompleteness(&error))
        << "step " << step << ": " << error;
  }
}

// The paper's Fig. 5(a) solution S = {(v3,v4,v5), (v9,v10,v11)} — seeding
// it exactly (instead of whatever LP picks) pins the insertion of (v5,v7)
// to the one-endpoint-free path, where TrySwap normally grows |S| 2 -> 3.
StatusOr<DynamicSolver> Fig5Solver(const DynamicOptions& options) {
  CliqueStore seed(3);
  seed.Add(std::vector<NodeId>{2, 3, 4});    // v3,v4,v5
  seed.Add(std::vector<NodeId>{8, 9, 10});   // v9,v10,v11
  return DynamicSolver::BuildFromSolution(PaperFig5G1(), seed, options);
}

TEST(DynamicSolverTest, UpdateBudgetAbortIsSurfacedAndSolutionStaysValid) {
  // A one-unit work cap exhausts before the first swap pop, so the growth
  // is skipped — but the solution must stay a valid (previous) disjoint
  // set and the abort must be surfaced, not silent.
  DynamicOptions options = Opts(3);
  options.update_budget.max_branch_nodes = 1;
  auto solver = Fig5Solver(options);
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  ASSERT_EQ(solver->solution_size(), 2u);
  ASSERT_TRUE(solver->InsertEdge(4, 6).ok());
  EXPECT_TRUE(solver->last_update_stats().aborted());
  EXPECT_EQ(solver->aborted_updates(), 1u);
  EXPECT_GE(solver->last_update_stats().work, 1u);
  EXPECT_EQ(solver->last_update_stats().swaps.commits, 0u);
  EXPECT_EQ(solver->solution_size(), 2u);  // growth skipped, not corrupted
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  Graph current = solver->graph().ToGraph();
  EXPECT_TRUE(VerifyDisjointCliques(current, solver->Snapshot()).ok());
}

TEST(DynamicSolverTest, UnlimitedBudgetNeverAborts) {
  auto solver = Fig5Solver(Opts(3));
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  ASSERT_TRUE(solver->InsertEdge(4, 6).ok());
  EXPECT_FALSE(solver->last_update_stats().aborted());
  EXPECT_EQ(solver->aborted_updates(), 0u);
  EXPECT_EQ(solver->last_update_stats().swaps.commits, 1u);
  EXPECT_GT(solver->last_update_stats().work, 0u);
  EXPECT_EQ(solver->solution_size(), 3u);
}

TEST(DynamicSolverTest, ErroredUpdatesResetLastUpdateStats) {
  // last_update_stats() describes the *most recent call*: a rejected
  // duplicate-insert or missing-delete must not leave the previous
  // update's work/abort outcome dangling.
  auto solver = Fig5Solver(Opts(3));
  ASSERT_TRUE(solver.ok()) << solver.status().ToString();
  ASSERT_TRUE(solver->InsertEdge(4, 6).ok());
  ASSERT_GT(solver->last_update_stats().work, 0u);
  EXPECT_FALSE(solver->InsertEdge(4, 6).ok());  // duplicate
  EXPECT_EQ(solver->last_update_stats().work, 0u);
  EXPECT_EQ(solver->last_update_stats().swaps.commits, 0u);
  EXPECT_FALSE(solver->DeleteEdge(0, 7).ok());  // no such edge
  EXPECT_EQ(solver->last_update_stats().work, 0u);
  EXPECT_FALSE(solver->last_update_stats().aborted());
}

// Satellite-2 regression: long delete-heavy streams used to grow stale refs
// without bound in every per-node list except the one KillCandidatesWithEdge
// happened to scan. The bounded compaction keeps the total ref count within
// the documented linear envelope at every public-call boundary.
TEST(DynamicSolverTest, NodeCandRefsStayBoundedOverLongStreams) {
  Rng rng(9200);
  Graph g = testing::RandomGraph(120, 0.12, 9200);
  auto solver = DynamicSolver::Build(g, Opts(3));
  ASSERT_TRUE(solver.ok());

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> deleted;
  size_t max_refs = 0;
  for (int update = 0; update < 10000; ++update) {
    // Delete-heavy: 70% deletions while edges remain.
    const bool do_delete = !edges.empty() && rng.NextBool(0.7);
    if (do_delete) {
      const size_t pick = rng.NextBounded(edges.size());
      const auto [u, v] = edges[pick];
      edges[pick] = edges.back();
      edges.pop_back();
      ASSERT_TRUE(solver->DeleteEdge(u, v).ok());
      deleted.emplace_back(u, v);
    } else if (!deleted.empty()) {
      const size_t pick = rng.NextBounded(deleted.size());
      const auto [u, v] = deleted[pick];
      deleted[pick] = deleted.back();
      deleted.pop_back();
      ASSERT_TRUE(solver->InsertEdge(u, v).ok());
      edges.emplace_back(u, v);
    }
    max_refs = std::max(max_refs, solver->node_cand_ref_count());
    // Every update ends at a public-call boundary, where the compaction
    // envelope must hold: refs <= 2 * alive refs + n + 64.
    const size_t bound = 2 * 3 * static_cast<size_t>(solver->index_size()) +
                         solver->graph().num_nodes() + 64;
    ASSERT_LE(solver->node_cand_ref_count(), bound)
        << "stale refs escaped the compaction bound at update " << update;
  }
  EXPECT_GT(max_refs, 0u);
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  EXPECT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;
}

TEST(DynamicSolverTest, InsertionNeverShrinksSolution) {
  Rng rng(1500);
  Graph g = testing::RandomGraph(40, 0.15, 1500);
  auto solver = DynamicSolver::Build(g, Opts(3));
  ASSERT_TRUE(solver.ok());
  NodeId last = solver->solution_size();
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(40));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(40));
    if (u == v || solver->graph().HasEdge(u, v)) continue;
    ASSERT_TRUE(solver->InsertEdge(u, v).ok());
    EXPECT_GE(solver->solution_size(), last);
    last = solver->solution_size();
  }
}

}  // namespace
}  // namespace dkc
