// Brute-force reference implementations and helpers shared by the tests.
// Everything here is deliberately naive: correctness oracles must not share
// code (or cleverness, or bugs) with the library under test.

#ifndef DKC_TESTS_TEST_UTIL_H_
#define DKC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "clique/clique_store.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace dkc {
namespace testing {

/// All k-subsets of nodes that are cliques, each sorted ascending.
/// O(n^k); keep n small.
inline std::vector<std::vector<NodeId>> BruteForceKCliques(const Graph& g,
                                                           int k) {
  std::vector<std::vector<NodeId>> cliques;
  std::vector<NodeId> current;
  auto extend = [&](auto&& self, NodeId start) -> void {
    if (current.size() == static_cast<size_t>(k)) {
      cliques.push_back(current);
      return;
    }
    for (NodeId v = start; v < g.num_nodes(); ++v) {
      bool ok = true;
      for (NodeId u : current) {
        if (!g.HasEdge(u, v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      current.push_back(v);
      self(self, v + 1);
      current.pop_back();
    }
  };
  extend(extend, 0);
  return cliques;
}

/// Exact maximum disjoint k-clique packing size by exhaustive search over
/// the brute-forced clique list. Exponential; tiny graphs only.
inline size_t BruteForceMaxDisjointPacking(const Graph& g, int k) {
  const auto cliques = BruteForceKCliques(g, k);
  size_t best = 0;
  std::vector<uint8_t> used(g.num_nodes(), 0);
  auto rec = [&](auto&& self, size_t index, size_t chosen) -> void {
    best = std::max(best, chosen);
    // Bound: even taking every remaining clique cannot beat best.
    if (chosen + (cliques.size() - index) <= best) return;
    for (size_t i = index; i < cliques.size(); ++i) {
      bool free = true;
      for (NodeId u : cliques[i]) {
        if (used[u]) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      for (NodeId u : cliques[i]) used[u] = 1;
      self(self, i + 1, chosen + 1);
      for (NodeId u : cliques[i]) used[u] = 0;
    }
  };
  rec(rec, 0, 0);
  return best;
}

/// Per-node k-clique membership counts, brute force.
inline std::vector<Count> BruteForceNodeScores(const Graph& g, int k) {
  std::vector<Count> scores(g.num_nodes(), 0);
  for (const auto& clique : BruteForceKCliques(g, k)) {
    for (NodeId u : clique) ++scores[u];
  }
  return scores;
}

/// Degeneracy by repeated min-degree peeling with naive rescans.
inline Count BruteForceDegeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> removed(n, false);
  std::vector<Count> degree(n, 0);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.Degree(u);
  Count degeneracy = 0;
  for (NodeId round = 0; round < n; ++round) {
    NodeId best = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
      if (!removed[u] && (best == kInvalidNode || degree[u] < degree[best])) {
        best = u;
      }
    }
    degeneracy = std::max(degeneracy, degree[best]);
    removed[best] = true;
    for (NodeId v : g.Neighbors(best)) {
      if (!removed[v]) --degree[v];
    }
  }
  return degeneracy;
}

/// Small random simple graph via G(n, p) (deterministic per seed).
inline Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  auto g = ErdosRenyi(n, p, rng);
  return std::move(g).value();
}

/// Naive re-validation of a solver's output: every member must be a k-clique
/// of `g` with distinct in-range nodes, and members must be pairwise
/// node-disjoint. Returns "" on success, else a description of the first
/// violation. Independent of core/verify.cc on purpose — the differential
/// harness cross-checks the two.
inline std::string OracleCheckDisjointCliques(const Graph& g,
                                              const CliqueStore& set) {
  const int k = set.k();
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    for (int i = 0; i < k; ++i) {
      const NodeId u = clique[i];
      if (u >= g.num_nodes()) {
        std::ostringstream os;
        os << "clique " << c << " node " << u << " out of range";
        return os.str();
      }
      if (used[u]) {
        std::ostringstream os;
        os << "node " << u << " used by clique " << c << " and an earlier one";
        return os.str();
      }
      used[u] = 1;
      for (int j = i + 1; j < k; ++j) {
        if (clique[i] == clique[j] || !g.HasEdge(clique[i], clique[j])) {
          std::ostringstream os;
          os << "clique " << c << " pair (" << clique[i] << "," << clique[j]
             << ") is not an edge";
          return os.str();
        }
      }
    }
  }
  return "";
}

/// True iff the nodes of `g` not used by `set` contain no k-clique, i.e.
/// `set` is maximal. Pruned recursive search restricted to free nodes.
inline bool OracleCheckMaximal(const Graph& g, const CliqueStore& set) {
  const int k = set.k();
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (CliqueId c = 0; c < set.size(); ++c) {
    for (NodeId u : set.Get(c)) used[u] = 1;
  }
  std::vector<NodeId> current;
  bool found = false;
  auto extend = [&](auto&& self, NodeId start) -> void {
    if (found) return;
    if (current.size() == static_cast<size_t>(k)) {
      found = true;
      return;
    }
    for (NodeId v = start; v < g.num_nodes() && !found; ++v) {
      if (used[v]) continue;
      bool ok = true;
      for (NodeId u : current) {
        if (!g.HasEdge(u, v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      current.push_back(v);
      self(self, v + 1);
      current.pop_back();
    }
  };
  extend(extend, 0);
  return !found;
}

/// Mixed-model random instance for the differential harness: cycles through
/// Erdős–Rényi, Watts–Strogatz, Barabási–Albert, and planted-partition so
/// every solver sees sparse, clustered, heavy-tailed, and community-shaped
/// graphs. Deterministic per (case_index, seed).
inline Graph RandomGraphMixed(int case_index, uint64_t seed) {
  // Sizes were doubled once the solvers moved to the bitmap neighborhood
  // kernel; the harness should keep pace with solver speed (ROADMAP).
  Rng rng(seed * 0x9E3779B9ull + static_cast<uint64_t>(case_index));
  switch (case_index % 4) {
    case 0: {
      const NodeId n = 40 + static_cast<NodeId>(case_index % 5) * 10;
      const double p = 0.20 + 0.05 * static_cast<double>(case_index % 4);
      return ErdosRenyi(n, p, rng).value();
    }
    case 1: {
      const NodeId n = 48 + static_cast<NodeId>(case_index % 3) * 16;
      return WattsStrogatz(n, 6, 0.2, rng).value();
    }
    case 2: {
      const NodeId n = 50 + static_cast<NodeId>(case_index % 4) * 12;
      return BarabasiAlbert(n, 4, rng).value();
    }
    default: {
      PlantedPartitionSpec spec;
      spec.num_communities = 4;
      spec.community_size = 14 + 2 * static_cast<NodeId>(case_index % 3);
      spec.p_in = 0.6;
      spec.p_out = 0.02;
      return PlantedPartition(spec, rng).value();
    }
  }
}

/// Canonical (sorted) form of a clique set for set-equality comparisons.
inline std::set<std::vector<NodeId>> Canonicalize(
    const std::vector<std::vector<NodeId>>& cliques) {
  std::set<std::vector<NodeId>> out;
  for (auto clique : cliques) {
    std::sort(clique.begin(), clique.end());
    out.insert(std::move(clique));
  }
  return out;
}

}  // namespace testing
}  // namespace dkc

#endif  // DKC_TESTS_TEST_UTIL_H_
