// Brute-force reference implementations and helpers shared by the tests.
// Everything here is deliberately naive: correctness oracles must not share
// code (or cleverness, or bugs) with the library under test.

#ifndef DKC_TESTS_TEST_UTIL_H_
#define DKC_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/rng.h"

namespace dkc {
namespace testing {

/// All k-subsets of nodes that are cliques, each sorted ascending.
/// O(n^k); keep n small.
inline std::vector<std::vector<NodeId>> BruteForceKCliques(const Graph& g,
                                                           int k) {
  std::vector<std::vector<NodeId>> cliques;
  std::vector<NodeId> current;
  auto extend = [&](auto&& self, NodeId start) -> void {
    if (current.size() == static_cast<size_t>(k)) {
      cliques.push_back(current);
      return;
    }
    for (NodeId v = start; v < g.num_nodes(); ++v) {
      bool ok = true;
      for (NodeId u : current) {
        if (!g.HasEdge(u, v)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      current.push_back(v);
      self(self, v + 1);
      current.pop_back();
    }
  };
  extend(extend, 0);
  return cliques;
}

/// Exact maximum disjoint k-clique packing size by exhaustive search over
/// the brute-forced clique list. Exponential; tiny graphs only.
inline size_t BruteForceMaxDisjointPacking(const Graph& g, int k) {
  const auto cliques = BruteForceKCliques(g, k);
  size_t best = 0;
  std::vector<uint8_t> used(g.num_nodes(), 0);
  auto rec = [&](auto&& self, size_t index, size_t chosen) -> void {
    best = std::max(best, chosen);
    // Bound: even taking every remaining clique cannot beat best.
    if (chosen + (cliques.size() - index) <= best) return;
    for (size_t i = index; i < cliques.size(); ++i) {
      bool free = true;
      for (NodeId u : cliques[i]) {
        if (used[u]) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      for (NodeId u : cliques[i]) used[u] = 1;
      self(self, i + 1, chosen + 1);
      for (NodeId u : cliques[i]) used[u] = 0;
    }
  };
  rec(rec, 0, 0);
  return best;
}

/// Per-node k-clique membership counts, brute force.
inline std::vector<Count> BruteForceNodeScores(const Graph& g, int k) {
  std::vector<Count> scores(g.num_nodes(), 0);
  for (const auto& clique : BruteForceKCliques(g, k)) {
    for (NodeId u : clique) ++scores[u];
  }
  return scores;
}

/// Degeneracy by repeated min-degree peeling with naive rescans.
inline Count BruteForceDegeneracy(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<bool> removed(n, false);
  std::vector<Count> degree(n, 0);
  for (NodeId u = 0; u < n; ++u) degree[u] = g.Degree(u);
  Count degeneracy = 0;
  for (NodeId round = 0; round < n; ++round) {
    NodeId best = kInvalidNode;
    for (NodeId u = 0; u < n; ++u) {
      if (!removed[u] && (best == kInvalidNode || degree[u] < degree[best])) {
        best = u;
      }
    }
    degeneracy = std::max(degeneracy, degree[best]);
    removed[best] = true;
    for (NodeId v : g.Neighbors(best)) {
      if (!removed[v]) --degree[v];
    }
  }
  return degeneracy;
}

/// Small random simple graph via G(n, p) (deterministic per seed).
inline Graph RandomGraph(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  auto g = ErdosRenyi(n, p, rng);
  return std::move(g).value();
}

/// Canonical (sorted) form of a clique set for set-equality comparisons.
inline std::set<std::vector<NodeId>> Canonicalize(
    const std::vector<std::vector<NodeId>>& cliques) {
  std::set<std::vector<NodeId>> out;
  for (auto clique : cliques) {
    std::sort(clique.begin(), clique.end());
    out.insert(std::move(clique));
  }
  return out;
}

}  // namespace testing
}  // namespace dkc

#endif  // DKC_TESTS_TEST_UTIL_H_
