#include "core/gc_solver.h"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "clique/clique_graph.h"
#include "clique/kclique.h"
#include "core/clique_score.h"
#include "core/opt_solver.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(GcSolverTest, RejectsKBelow3) {
  GcOptions options;
  options.k = 2;
  EXPECT_FALSE(SolveGc(PaperFig2Graph(), options).ok());
}

TEST(GcSolverTest, PaperFig2FindsMaximumPacking) {
  // On the running example the score ordering recovers a maximum set
  // (|S2| = 3 in Example 1).
  GcOptions options;
  options.k = 3;
  auto result = SolveGc(PaperFig2Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(result->stats.cliques_listed, 7u);
}

TEST(GcSolverTest, OutputIsValidAndMaximal) {
  Graph g = testing::RandomGraph(60, 0.25, /*seed=*/80);
  GcOptions options;
  options.k = 4;
  auto result = SolveGc(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(VerifySolution(g, result->set).ok());
}

TEST(GcSolverTest, RecoversPlantedPacking) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 10;
  spec.k = 5;
  spec.filler_nodes = 25;
  Rng rng(81);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  GcOptions options;
  options.k = 5;
  auto result = SolveGc(planted->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), planted->planted_count);
}

TEST(GcSolverTest, TinyMemoryBudgetIsOom) {
  Graph g = testing::RandomGraph(120, 0.3, /*seed=*/82);
  GcOptions options;
  options.k = 3;
  options.budget.memory_bytes = 128;
  auto result = SolveGc(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsMemoryBudgetExceeded());
}

TEST(GcSolverTest, ExpiredDeadlineIsOot) {
  Graph g = testing::RandomGraph(200, 0.3, /*seed=*/83);
  GcOptions options;
  options.k = 4;
  options.budget.time_ms = 0.000001;
  auto result = SolveGc(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded());
}

TEST(GcSolverTest, CliquesListedMatchesActualCount) {
  Graph g = testing::RandomGraph(30, 0.4, /*seed=*/84);
  GcOptions options;
  options.k = 3;
  auto result = SolveGc(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.cliques_listed,
            testing::BruteForceKCliques(g, 3).size());
}

// Theorem 4 oracle: Algorithm 2 must behave exactly like the min-clique-
// score greedy run on the *explicit* clique graph (the straw-man pipeline
// the paper replaces). We rebuild that pipeline here — materialize cliques,
// build the clique graph, greedily accept by ascending (score, id) skipping
// neighbors of accepted cliques — and demand the identical selection.
TEST(GcSolverTest, MatchesExplicitCliqueGraphGreedy) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = testing::RandomGraph(24, 0.45, seed + 8500);
    const int k = 3;

    // Reference pipeline.
    Dag dag(g, DegeneracyOrdering(g));
    CliqueStore all(k);
    std::vector<Count> node_scores(g.num_nodes(), 0);
    KCliqueEnumerator enumerator(dag, k);
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      all.Add(nodes);
      for (NodeId u : nodes) ++node_scores[u];
      return true;
    });
    auto cg = CliqueGraph::Build(all, g.num_nodes());
    ASSERT_TRUE(cg.ok());
    std::vector<CliqueId> order(all.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<Count> score(all.size());
    for (CliqueId c = 0; c < all.size(); ++c) {
      score[c] = CliqueScoreOf(all.Get(c), node_scores);
    }
    std::sort(order.begin(), order.end(), [&](CliqueId a, CliqueId b) {
      return std::tie(score[a], a) < std::tie(score[b], b);
    });
    std::vector<uint8_t> dead(all.size(), 0);
    std::vector<std::vector<NodeId>> reference;
    for (CliqueId c : order) {
      if (dead[c]) continue;
      auto nodes = all.Get(c);
      reference.emplace_back(nodes.begin(), nodes.end());
      for (CliqueId d : cg->Neighbors(c)) dead[d] = 1;
    }

    // Algorithm 2 (which never builds the clique graph).
    GcOptions options;
    options.k = k;
    auto gc = SolveGc(g, options);
    ASSERT_TRUE(gc.ok());
    std::vector<std::vector<NodeId>> produced;
    for (CliqueId c = 0; c < gc->set.size(); ++c) {
      auto nodes = gc->set.Get(c);
      produced.emplace_back(nodes.begin(), nodes.end());
    }
    EXPECT_EQ(testing::Canonicalize(produced),
              testing::Canonicalize(reference))
        << "seed " << seed;
  }
}

class GcSweep : public ::testing::TestWithParam<std::tuple<int, double, int>> {
};

TEST_P(GcSweep, ValidMaximalAndNeverWorseThanHalfOptimal) {
  const auto [n, p, k] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 53 + n * k);
    GcOptions options;
    options.k = k;
    auto result = SolveGc(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(VerifySolution(g, result->set).ok());
    // Theorem 3 guarantees k-approximation; oracle is the exact OPT solver
    // (brute-force-verified in opt_solver_test), which is far faster than
    // the naive packing search at the denser sweep points.
    OptOptions opt_options;
    opt_options.k = k;
    auto optimal = SolveOpt(g, opt_options);
    ASSERT_TRUE(optimal.ok());
    EXPECT_LE(optimal->size(), static_cast<NodeId>(k) * result->size());
    EXPECT_LE(result->size(), optimal->size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcSweep,
    ::testing::Combine(::testing::Values(16, 22, 30), ::testing::Values(0.3, 0.5),
                       ::testing::Values(3, 4)));

}  // namespace
}  // namespace dkc
