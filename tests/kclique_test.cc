#include "clique/kclique.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "gen/named_graphs.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(IntersectSortedTest, Basic) {
  std::vector<NodeId> a = {1, 3, 5, 7};
  std::vector<NodeId> b = {2, 3, 4, 7, 9};
  std::vector<NodeId> out;
  IntersectSorted(a, b, &out);
  EXPECT_EQ(out, (std::vector<NodeId>{3, 7}));
}

TEST(IntersectSortedTest, Disjoint) {
  std::vector<NodeId> a = {1, 2};
  std::vector<NodeId> b = {3, 4};
  std::vector<NodeId> out = {99};
  IntersectSorted(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectSortedTest, OneEmpty) {
  std::vector<NodeId> a = {};
  std::vector<NodeId> b = {1, 2};
  std::vector<NodeId> out;
  IntersectSorted(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(KCliqueTest, TriangleCountOnPaperExample) {
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  EXPECT_EQ(CountKCliques(dag, 3), 7u);  // Example 1
}

TEST(KCliqueTest, ForEachEnumeratesEachCliqueOnce) {
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  KCliqueEnumerator enumerator(dag, 3);
  std::vector<std::vector<NodeId>> found;
  enumerator.ForEach([&](std::span<const NodeId> nodes) {
    found.emplace_back(nodes.begin(), nodes.end());
    return true;
  });
  EXPECT_EQ(found.size(), 7u);
  EXPECT_EQ(testing::Canonicalize(found),
            testing::Canonicalize(testing::BruteForceKCliques(g, 3)));
}

TEST(KCliqueTest, EarlyStopHonored) {
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  KCliqueEnumerator enumerator(dag, 3);
  int seen = 0;
  const bool completed = enumerator.ForEach([&](std::span<const NodeId>) {
    return ++seen < 3;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3);
}

TEST(KCliqueTest, RootIsHighestRanked) {
  Graph g = testing::RandomGraph(30, 0.35, /*seed=*/50);
  Dag dag(g, DegeneracyOrdering(g));
  KCliqueEnumerator enumerator(dag, 4);
  enumerator.ForEach([&](std::span<const NodeId> nodes) {
    for (size_t i = 1; i < nodes.size(); ++i) {
      EXPECT_GT(dag.ordering().rank[nodes[0]], dag.ordering().rank[nodes[i]]);
    }
    return true;
  });
}

TEST(KCliqueTest, NodeScoresOnPaperExample) {
  // Example 3: s_n(v6) = s_n(v5) = s_n(v8) = 3.
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  NodeScores scores = ComputeNodeScores(dag, 3);
  EXPECT_EQ(scores.total_cliques, 7u);
  EXPECT_EQ(scores.per_node[5 - 1], 3u);
  EXPECT_EQ(scores.per_node[6 - 1], 3u);
  EXPECT_EQ(scores.per_node[8 - 1], 3u);
  EXPECT_EQ(scores.per_node[1 - 1], 1u);
  EXPECT_EQ(scores.per_node[2 - 1], 1u);
}

TEST(KCliqueTest, KarateTriangles) {
  Graph g = KarateClub();
  Dag dag(g, DegeneracyOrdering(g));
  EXPECT_EQ(CountKCliques(dag, 3), 45u);
  EXPECT_EQ(CountKCliques(dag, 4), 11u);
  EXPECT_EQ(CountKCliques(dag, 5), 2u);
}

TEST(KCliqueTest, CompleteGraphBinomialCounts) {
  GraphBuilder b;
  const NodeId n = 10;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  Graph g = b.Build();
  Dag dag(g, DegeneracyOrdering(g));
  EXPECT_EQ(CountKCliques(dag, 3), 120u);  // C(10,3)
  EXPECT_EQ(CountKCliques(dag, 4), 210u);  // C(10,4)
  EXPECT_EQ(CountKCliques(dag, 5), 252u);  // C(10,5)
  EXPECT_EQ(CountKCliques(dag, 10), 1u);
  EXPECT_EQ(CountKCliques(dag, 11), 0u);
}

TEST(KCliqueTest, TriangleFreeGraphHasNoTriangles) {
  GraphBuilder b;  // bipartite: triangle-free
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = 5; v < 10; ++v) b.AddEdge(u, v);
  }
  Graph g = b.Build();
  Dag dag(g, DegeneracyOrdering(g));
  EXPECT_EQ(CountKCliques(dag, 3), 0u);
}

TEST(KCliqueTest, DeadlineReportsOot) {
  Graph g = testing::RandomGraph(200, 0.3, /*seed=*/51);
  Dag dag(g, DegeneracyOrdering(g));
  bool oot = false;
  CountKCliques(dag, 5, nullptr, Deadline::AfterMillis(0), &oot);
  EXPECT_TRUE(oot);
}

TEST(KCliqueTest, ParallelCountMatchesSerial) {
  Graph g = testing::RandomGraph(2000, 0.01, /*seed=*/52);
  Dag dag(g, DegeneracyOrdering(g));
  ThreadPool pool(4);
  EXPECT_EQ(CountKCliques(dag, 3, &pool), CountKCliques(dag, 3));
}

TEST(KCliqueTest, ParallelScoresMatchSerial) {
  Graph g = testing::RandomGraph(2000, 0.01, /*seed=*/53);
  Dag dag(g, DegeneracyOrdering(g));
  ThreadPool pool(4);
  NodeScores serial = ComputeNodeScores(dag, 3);
  NodeScores parallel = ComputeNodeScores(dag, 3, &pool);
  EXPECT_EQ(serial.total_cliques, parallel.total_cliques);
  EXPECT_EQ(serial.per_node, parallel.per_node);
}

// Property sweep: counts, scores, and enumeration against brute force over
// (n, p, k) combinations.
class KCliqueSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(KCliqueSweep, MatchesBruteForce) {
  const auto [n, p, k] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 7919 + n + k);
    Dag dag(g, DegeneracyOrdering(g));
    const auto brute = testing::BruteForceKCliques(g, k);

    EXPECT_EQ(CountKCliques(dag, k), brute.size());

    NodeScores scores = ComputeNodeScores(dag, k);
    EXPECT_EQ(scores.total_cliques, brute.size());
    EXPECT_EQ(scores.per_node, testing::BruteForceNodeScores(g, k));

    KCliqueEnumerator enumerator(dag, k);
    std::vector<std::vector<NodeId>> listed;
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      listed.emplace_back(nodes.begin(), nodes.end());
      return true;
    });
    EXPECT_EQ(testing::Canonicalize(listed), testing::Canonicalize(brute));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KCliqueSweep,
    ::testing::Combine(::testing::Values(12, 18, 24),
                       ::testing::Values(0.2, 0.4, 0.6),
                       ::testing::Values(3, 4, 5)));

// ------------------------------------------------- subset enumeration
TEST(SubsetCliqueTest, FindsCliquesInInducedSubgraph) {
  Graph base = PaperFig2Graph();
  DynamicGraph g(base);
  // Subset {v5, v6, v7, v8} (0-based: 4,5,6,7) induces triangles
  // (v5,v6,v8) and (v5,v7,v8).
  std::vector<NodeId> subset = {4, 5, 6, 7};
  std::vector<std::vector<NodeId>> found;
  ForEachKCliqueInSubset(g, subset, 3, [&](std::span<const NodeId> nodes) {
    found.emplace_back(nodes.begin(), nodes.end());
    return true;
  });
  auto canonical = testing::Canonicalize(found);
  EXPECT_EQ(canonical.size(), 2u);
  EXPECT_TRUE(canonical.count({4, 5, 7}));
  EXPECT_TRUE(canonical.count({4, 6, 7}));
}

TEST(SubsetCliqueTest, SubsetSmallerThanKYieldsNothing) {
  DynamicGraph g(PaperFig2Graph());
  std::vector<NodeId> subset = {0, 2};
  int count = 0;
  ForEachKCliqueInSubset(g, subset, 3, [&](std::span<const NodeId>) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);
}

TEST(SubsetCliqueTest, WholeGraphSubsetMatchesGlobalEnumeration) {
  Graph base = testing::RandomGraph(20, 0.4, /*seed=*/54);
  DynamicGraph g(base);
  std::vector<NodeId> all(base.num_nodes());
  for (NodeId u = 0; u < base.num_nodes(); ++u) all[u] = u;
  std::vector<std::vector<NodeId>> found;
  ForEachKCliqueInSubset(g, all, 4, [&](std::span<const NodeId> nodes) {
    found.emplace_back(nodes.begin(), nodes.end());
    return true;
  });
  EXPECT_EQ(testing::Canonicalize(found),
            testing::Canonicalize(testing::BruteForceKCliques(base, 4)));
}

TEST(SubsetCliqueTest, BudgetTruncatesAtExactBranchBoundaries) {
  // K6: rich enough that the 3-clique DFS has many branch nodes. The
  // budgeted enumeration must emit exactly the cliques whose recorded
  // charge point fits the cap, charge min(total, cap) units, and latch
  // `cut` iff the cap actually truncated — for EVERY cap value.
  GraphBuilder b;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  Graph base = b.Build();
  DynamicGraph g(base);
  std::vector<NodeId> all = {0, 1, 2, 3, 4, 5};

  std::vector<std::vector<NodeId>> reference;
  std::vector<uint64_t> charge_points;
  EnumBudget recorder;
  recorder.emit_used = &charge_points;
  ForEachKCliqueInSubset(
      g, all, 3,
      [&](std::span<const NodeId> nodes) {
        reference.emplace_back(nodes.begin(), nodes.end());
        return true;
      },
      nullptr, &recorder);
  ASSERT_EQ(reference.size(), 20u);  // C(6,3)
  ASSERT_EQ(charge_points.size(), reference.size());
  ASSERT_FALSE(recorder.cut);
  const uint64_t total = recorder.used;
  ASSERT_GT(total, 0u);

  for (uint64_t cap = 1; cap <= total + 2; ++cap) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    std::vector<std::vector<NodeId>> found;
    EnumBudget budget;
    budget.cap = cap;
    ForEachKCliqueInSubset(
        g, all, 3,
        [&](std::span<const NodeId> nodes) {
          found.emplace_back(nodes.begin(), nodes.end());
          return true;
        },
        nullptr, &budget);
    std::vector<std::vector<NodeId>> expected;
    for (size_t i = 0; i < reference.size(); ++i) {
      if (charge_points[i] <= cap) expected.push_back(reference[i]);
    }
    EXPECT_EQ(found, expected);  // a prefix of the unbudgeted order
    EXPECT_EQ(budget.used, std::min(total, cap));
    EXPECT_EQ(budget.cut, total > cap);
  }
}

TEST(SubsetCliqueTest, EarlyStop) {
  Graph base = testing::RandomGraph(20, 0.5, /*seed=*/55);
  DynamicGraph g(base);
  std::vector<NodeId> all(base.num_nodes());
  for (NodeId u = 0; u < base.num_nodes(); ++u) all[u] = u;
  int count = 0;
  ForEachKCliqueInSubset(g, all, 3, [&](std::span<const NodeId>) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace dkc
