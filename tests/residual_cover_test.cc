#include "core/residual_cover.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

void ExpectGroupsAreDisjointRealCliques(const Graph& g,
                                        const ResidualCoverResult& result) {
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  Count covered = 0;
  for (const auto& group : result.groups) {
    ASSERT_EQ(group.nodes.size(), static_cast<size_t>(group.k));
    for (size_t i = 0; i < group.nodes.size(); ++i) {
      EXPECT_FALSE(seen[group.nodes[i]]) << "node in two groups";
      seen[group.nodes[i]] = 1;
      ++covered;
      for (size_t j = i + 1; j < group.nodes.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(group.nodes[i], group.nodes[j]));
      }
    }
  }
  EXPECT_EQ(covered, result.covered_nodes);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(static_cast<bool>(seen[u]), static_cast<bool>(result.covered[u]));
  }
}

TEST(ResidualCoverTest, RejectsBadKRange) {
  ResidualCoverOptions options;
  options.k = 3;
  options.min_k = 4;
  EXPECT_FALSE(ResidualCover(PaperFig2Graph(), options).ok());
  options.k = 4;
  options.min_k = 2;
  EXPECT_FALSE(ResidualCover(PaperFig2Graph(), options).ok());
}

TEST(ResidualCoverTest, SingleRoundEqualsSolve) {
  Graph g = PaperFig2Graph();
  ResidualCoverOptions options;
  options.k = 3;
  options.min_k = 3;
  auto result = ResidualCover(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->groups.size(), 3u);  // LP finds the maximum packing
  ExpectGroupsAreDisjointRealCliques(g, *result);
}

TEST(ResidualCoverTest, MultiRoundIncreasesCoverage) {
  Rng rng(2300);
  auto g = WattsStrogatz(2000, 10, 0.1, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions one_round;
  one_round.k = 5;
  one_round.min_k = 5;
  ResidualCoverOptions many_rounds;
  many_rounds.k = 5;
  many_rounds.min_k = 3;
  auto single = ResidualCover(*g, one_round);
  auto multi = ResidualCover(*g, many_rounds);
  ASSERT_TRUE(single.ok() && multi.ok());
  EXPECT_GE(multi->covered_nodes, single->covered_nodes);
  ExpectGroupsAreDisjointRealCliques(*g, *multi);
}

TEST(ResidualCoverTest, PairRoundCoversLeftovers) {
  Rng rng(2301);
  auto g = WattsStrogatz(1000, 8, 0.1, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions without_pairs;
  without_pairs.k = 4;
  ResidualCoverOptions with_pairs = without_pairs;
  with_pairs.pair_round = true;
  auto base = ResidualCover(*g, without_pairs);
  auto paired = ResidualCover(*g, with_pairs);
  ASSERT_TRUE(base.ok() && paired.ok());
  EXPECT_GE(paired->covered_nodes, base->covered_nodes);
  ExpectGroupsAreDisjointRealCliques(*g, *paired);
  bool has_pair = false;
  for (const auto& group : paired->groups) has_pair |= (group.k == 2);
  EXPECT_TRUE(has_pair);
}

TEST(ResidualCoverTest, RoundsAreDescendingInK) {
  Rng rng(2302);
  auto g = WattsStrogatz(800, 10, 0.15, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions options;
  options.k = 5;
  options.min_k = 3;
  auto result = ResidualCover(*g, options);
  ASSERT_TRUE(result.ok());
  int last_k = options.k;
  for (const auto& group : result->groups) {
    EXPECT_LE(group.k, last_k);
    last_k = group.k;
  }
}

TEST(ResidualCoverTest, EmptyGraph) {
  ResidualCoverOptions options;
  auto result = ResidualCover(Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->groups.empty());
  EXPECT_EQ(result->coverage(0), 0.0);
}

TEST(ResidualCoverTest, PlantedInstancesFullyCovered) {
  // Planted disjoint 4-cliques, no filler: one round covers everything.
  PlantedCliqueSpec spec;
  spec.num_cliques = 15;
  spec.k = 4;
  spec.filler_nodes = 0;
  Rng rng(2303);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  ResidualCoverOptions options;
  options.k = 4;
  auto result = ResidualCover(planted->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_nodes, planted->graph.num_nodes());
  EXPECT_DOUBLE_EQ(result->coverage(planted->graph.num_nodes()), 1.0);
}

}  // namespace
}  // namespace dkc
