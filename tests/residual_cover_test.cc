#include "core/residual_cover.h"

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "gen/named_graphs.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

void ExpectGroupsAreDisjointRealCliques(const Graph& g,
                                        const ResidualCoverResult& result) {
  std::vector<uint8_t> seen(g.num_nodes(), 0);
  Count covered = 0;
  for (const auto& group : result.groups) {
    ASSERT_EQ(group.nodes.size(), static_cast<size_t>(group.k));
    for (size_t i = 0; i < group.nodes.size(); ++i) {
      EXPECT_FALSE(seen[group.nodes[i]]) << "node in two groups";
      seen[group.nodes[i]] = 1;
      ++covered;
      for (size_t j = i + 1; j < group.nodes.size(); ++j) {
        EXPECT_TRUE(g.HasEdge(group.nodes[i], group.nodes[j]));
      }
    }
  }
  EXPECT_EQ(covered, result.covered_nodes);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(static_cast<bool>(seen[u]), static_cast<bool>(result.covered[u]));
  }
}

TEST(ResidualCoverTest, RejectsBadKRange) {
  ResidualCoverOptions options;
  options.k = 3;
  options.min_k = 4;
  EXPECT_FALSE(ResidualCover(PaperFig2Graph(), options).ok());
  options.k = 4;
  options.min_k = 2;
  EXPECT_FALSE(ResidualCover(PaperFig2Graph(), options).ok());
}

TEST(ResidualCoverTest, SingleRoundEqualsSolve) {
  Graph g = PaperFig2Graph();
  ResidualCoverOptions options;
  options.k = 3;
  options.min_k = 3;
  auto result = ResidualCover(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->groups.size(), 3u);  // LP finds the maximum packing
  ExpectGroupsAreDisjointRealCliques(g, *result);
}

TEST(ResidualCoverTest, MultiRoundIncreasesCoverage) {
  Rng rng(2300);
  auto g = WattsStrogatz(2000, 10, 0.1, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions one_round;
  one_round.k = 5;
  one_round.min_k = 5;
  ResidualCoverOptions many_rounds;
  many_rounds.k = 5;
  many_rounds.min_k = 3;
  auto single = ResidualCover(*g, one_round);
  auto multi = ResidualCover(*g, many_rounds);
  ASSERT_TRUE(single.ok() && multi.ok());
  EXPECT_GE(multi->covered_nodes, single->covered_nodes);
  ExpectGroupsAreDisjointRealCliques(*g, *multi);
}

TEST(ResidualCoverTest, PairRoundCoversLeftovers) {
  Rng rng(2301);
  auto g = WattsStrogatz(1000, 8, 0.1, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions without_pairs;
  without_pairs.k = 4;
  ResidualCoverOptions with_pairs = without_pairs;
  with_pairs.pair_round = true;
  auto base = ResidualCover(*g, without_pairs);
  auto paired = ResidualCover(*g, with_pairs);
  ASSERT_TRUE(base.ok() && paired.ok());
  EXPECT_GE(paired->covered_nodes, base->covered_nodes);
  ExpectGroupsAreDisjointRealCliques(*g, *paired);
  bool has_pair = false;
  for (const auto& group : paired->groups) has_pair |= (group.k == 2);
  EXPECT_TRUE(has_pair);
}

TEST(ResidualCoverTest, RoundsAreDescendingInK) {
  Rng rng(2302);
  auto g = WattsStrogatz(800, 10, 0.15, rng);
  ASSERT_TRUE(g.ok());
  ResidualCoverOptions options;
  options.k = 5;
  options.min_k = 3;
  auto result = ResidualCover(*g, options);
  ASSERT_TRUE(result.ok());
  int last_k = options.k;
  for (const auto& group : result->groups) {
    EXPECT_LE(group.k, last_k);
    last_k = group.k;
  }
}

TEST(ResidualCoverTest, EmptyGraph) {
  ResidualCoverOptions options;
  auto result = ResidualCover(Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->groups.empty());
  EXPECT_EQ(result->coverage(0), 0.0);
}

// K4-free random tripartite core (triangle packing on it is 3-dimensional-
// matching shaped — proving MIS optimality on its clique graph genuinely
// branches) plus `extra_k4s` disjoint K4 components the k=4 round packs
// trivially. The result: the first round succeeds, the k=3 round aborts
// under a branch budget.
Graph TripartitePlusK4s(NodeId part, double p, uint64_t seed, int extra_k4s) {
  Rng rng(seed);
  GraphBuilder gb(3 * part + 4 * static_cast<NodeId>(extra_k4s));
  for (NodeId a = 0; a < part; ++a) {
    for (NodeId b = 0; b < part; ++b) {
      if (rng.NextBool(p)) gb.AddEdge(a, part + b);
      if (rng.NextBool(p)) gb.AddEdge(a, 2 * part + b);
      if (rng.NextBool(p)) gb.AddEdge(part + a, 2 * part + b);
    }
  }
  NodeId base = 3 * part;
  for (int c = 0; c < extra_k4s; ++c, base += 4) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) gb.AddEdge(base + i, base + j);
    }
  }
  return gb.Build();
}

TEST(ResidualCoverTest, BranchBudgetAbortIsSurfacedAndDeterministic) {
  // OPT rounds under a deterministic branch budget: the k=4 round packs
  // the K4 components and completes; the k=3 round hits the cap. The
  // cover must keep the finished rounds, mark where it stopped — and do
  // both *identically* at every thread count.
  Graph g = TripartitePlusK4s(/*part=*/14, /*p=*/0.35, /*seed=*/1,
                              /*extra_k4s=*/3);
  ResidualCoverOptions options;
  options.k = 4;
  options.min_k = 3;
  options.method = Method::kOPT;
  options.budget_per_round.max_branch_nodes = 100;
  auto serial = ResidualCover(g, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->aborted);
  EXPECT_EQ(serial->aborted_round_k, 3);
  EXPECT_EQ(serial->groups.size(), 3u);    // the k=4 round survived
  EXPECT_EQ(serial->covered_nodes, 12u);
  ExpectGroupsAreDisjointRealCliques(g, *serial);

  ThreadPool pool2(2), pool4(4);
  for (ThreadPool* pool : {&pool2, &pool4}) {
    options.pool = pool;
    auto pooled = ResidualCover(g, options);
    ASSERT_TRUE(pooled.ok());
    EXPECT_EQ(pooled->aborted, serial->aborted);
    EXPECT_EQ(pooled->aborted_round_k, serial->aborted_round_k);
    ASSERT_EQ(pooled->groups.size(), serial->groups.size());
    for (size_t i = 0; i < pooled->groups.size(); ++i) {
      EXPECT_EQ(pooled->groups[i].k, serial->groups[i].k);
      EXPECT_EQ(pooled->groups[i].nodes, serial->groups[i].nodes);
    }
  }

  // The polynomial heuristics ignore the branch cap: same options under LP
  // never abort.
  options.pool = nullptr;
  options.method = Method::kLP;
  auto lp = ResidualCover(g, options);
  ASSERT_TRUE(lp.ok());
  EXPECT_FALSE(lp->aborted);
  EXPECT_EQ(lp->aborted_round_k, 0);
}

TEST(ResidualCoverTest, PlantedInstancesFullyCovered) {
  // Planted disjoint 4-cliques, no filler: one round covers everything.
  PlantedCliqueSpec spec;
  spec.num_cliques = 15;
  spec.k = 4;
  spec.filler_nodes = 0;
  Rng rng(2303);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  ResidualCoverOptions options;
  options.k = 4;
  auto result = ResidualCover(planted->graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->covered_nodes, planted->graph.num_nodes());
  EXPECT_DOUBLE_EQ(result->coverage(planted->graph.num_nodes()), 1.0);
}

}  // namespace
}  // namespace dkc
