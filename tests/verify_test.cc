#include "core/verify.h"

#include <gtest/gtest.h>

#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(VerifyTest, EmptySetOnEmptyGraphIsValidAndMaximal) {
  CliqueStore set(3);
  EXPECT_TRUE(VerifySolution(Graph(), set).ok());
}

TEST(VerifyTest, AcceptsRealDisjointCliques) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{0, 2, 5});  // v1,v3,v6
  set.Add(std::vector<NodeId>{6, 7, 8});  // v7,v8,v9
  EXPECT_TRUE(VerifyDisjointCliques(g, set).ok());
}

TEST(VerifyTest, RejectsNonClique) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{0, 1, 2});  // v1,v2,v3: no edges v1-v2 etc.
  auto status = VerifyDisjointCliques(g, set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST(VerifyTest, RejectsOverlap) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{0, 2, 5});
  set.Add(std::vector<NodeId>{2, 4, 5});  // shares v3 and v6
  EXPECT_FALSE(VerifyDisjointCliques(g, set).ok());
}

TEST(VerifyTest, RejectsRepeatedNodeInsideClique) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{0, 0, 2});
  EXPECT_FALSE(VerifyDisjointCliques(g, set).ok());
}

TEST(VerifyTest, RejectsUnknownNode) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{0, 2, 99});
  EXPECT_FALSE(VerifyDisjointCliques(g, set).ok());
}

TEST(VerifyTest, DetectsNonMaximality) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{4, 5, 7});  // v5,v6,v8 — one clique only
  EXPECT_TRUE(VerifyDisjointCliques(g, set).ok());
  // (v2,v4,v9) remains available, so the set is not maximal.
  auto status = VerifyMaximality(g, set);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), Status::Code::kCorruption);
}

TEST(VerifyTest, AcceptsMaximalButNotMaximumSet) {
  // Example 1's S1 (size 2) is maximal though not maximum.
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  set.Add(std::vector<NodeId>{2, 4, 5});  // v3,v5,v6
  set.Add(std::vector<NodeId>{6, 7, 8});  // v7,v8,v9
  EXPECT_TRUE(VerifySolution(g, set).ok());
}

TEST(VerifyTest, EmptySetOnTriangleRichGraphIsNotMaximal) {
  Graph g = PaperFig2Graph();
  CliqueStore set(3);
  EXPECT_FALSE(VerifyMaximality(g, set).ok());
}

}  // namespace
}  // namespace dkc
