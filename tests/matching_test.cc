#include "matching/matching.h"

#include <gtest/gtest.h>

#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

// Exponential reference: maximum matching by trying all edge subsets over
// the brute-forced edge list (bounded-size graphs only).
Count BruteForceMatchingSize(const Graph& g) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  Count best = 0;
  std::vector<uint8_t> used(g.num_nodes(), 0);
  auto rec = [&](auto&& self, size_t index, Count chosen) -> void {
    best = std::max(best, chosen);
    if (chosen + (edges.size() - index) <= best) return;
    for (size_t i = index; i < edges.size(); ++i) {
      auto [u, v] = edges[i];
      if (used[u] || used[v]) continue;
      used[u] = used[v] = 1;
      self(self, i + 1, chosen + 1);
      used[u] = used[v] = 0;
    }
  };
  rec(rec, 0, 0);
  return best;
}

TEST(GreedyMatchingTest, EmptyGraph) {
  EXPECT_EQ(GreedyMatching(Graph()).size, 0u);
}

TEST(GreedyMatchingTest, SingleEdge) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  auto m = GreedyMatching(b.Build());
  EXPECT_EQ(m.size, 1u);
  EXPECT_EQ(m.mate[0], 1u);
  EXPECT_EQ(m.mate[1], 0u);
}

TEST(GreedyMatchingTest, AlwaysValidAndMaximal) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = testing::RandomGraph(40, 0.15, seed + 2000);
    auto m = GreedyMatching(g);
    EXPECT_TRUE(IsValidMatching(g, m.mate));
    // Maximal: no edge with both endpoints unmatched.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (m.mate[u] != kInvalidNode) continue;
      for (NodeId v : g.Neighbors(u)) {
        EXPECT_NE(m.mate[v], kInvalidNode)
            << "edge (" << u << "," << v << ") both free";
      }
    }
  }
}

TEST(MaximumMatchingTest, EvenPathIsPerfect) {
  GraphBuilder b;  // path 0-1-2-3
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 3);
  auto m = MaximumMatching(b.Build());
  EXPECT_EQ(m.size, 2u);
}

TEST(MaximumMatchingTest, OddCycleNeedsBlossom) {
  GraphBuilder b;  // C5: maximum matching 2
  for (int i = 0; i < 5; ++i) b.AddEdge(i, (i + 1) % 5);
  auto m = MaximumMatching(b.Build());
  EXPECT_EQ(m.size, 2u);
}

TEST(MaximumMatchingTest, PetersenIsPerfect) {
  GraphBuilder b;
  for (NodeId i = 0; i < 5; ++i) {
    b.AddEdge(i, (i + 1) % 5);
    b.AddEdge(5 + i, 5 + (i + 2) % 5);
    b.AddEdge(i, 5 + i);
  }
  auto m = MaximumMatching(b.Build());
  EXPECT_EQ(m.size, 5u);  // Petersen has a perfect matching
}

TEST(MaximumMatchingTest, TwoTrianglesSharingNoNode) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  auto m = MaximumMatching(b.Build());
  EXPECT_EQ(m.size, 2u);
}

TEST(MaximumMatchingTest, KarateClub) {
  // No perfect matching exists: nodes {15,16,19,21,23} (1-based) are
  // adjacent only to {33,34}, so at least 3 of them stay unmatched
  // (deficiency >= 3 by Tutte-Berge) => matching <= 15. The blossom
  // algorithm finds 13; cross-checked against the brute-force sweep below
  // and the Tutte-Berge certificate S={1,33,34}.
  Graph g = KarateClub();
  auto m = MaximumMatching(g);
  EXPECT_TRUE(IsValidMatching(g, m.mate));
  EXPECT_EQ(m.size, 13u);
  EXPECT_GE(m.size, GreedyMatching(g).size);
}

TEST(MaximumMatchingTest, EdgesAccessorConsistent) {
  Graph g = testing::RandomGraph(30, 0.2, 2100);
  auto m = MaximumMatching(g);
  EXPECT_EQ(m.Edges().size(), m.size);
}

class MatchingSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingSweep, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  // Larger instances than the clique sweeps: blossom bugs hide in nested
  // odd structures that only appear at n ~ 20. Sparser p keeps the edge
  // count low enough for the exponential reference.
  const NodeId n = 10 + static_cast<NodeId>(rng.NextBounded(12));
  const double p = 0.10 + rng.NextDouble() * 0.25;
  Graph g = testing::RandomGraph(n, p, GetParam() * 419 + 3);
  auto m = MaximumMatching(g);
  ASSERT_TRUE(IsValidMatching(g, m.mate));
  EXPECT_EQ(m.size, BruteForceMatchingSize(g))
      << "n=" << n << " p=" << p << " seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, MatchingSweep,
                         ::testing::Range<uint64_t>(0, 24));

TEST(MatchingSweepExtra, OddStructureStressVsBruteForce) {
  // Disjoint odd cycles plus chords: classic blossom stress shapes.
  for (int cycles = 1; cycles <= 3; ++cycles) {
    GraphBuilder b;
    NodeId base = 0;
    for (int c = 0; c < cycles; ++c) {
      const NodeId len = 5 + 2 * static_cast<NodeId>(c);  // 5, 7, 9
      for (NodeId i = 0; i < len; ++i) {
        b.AddEdge(base + i, base + (i + 1) % len);
      }
      if (c > 0) b.AddEdge(base - 1, base);  // bridge between cycles
      base += len;
    }
    Graph g = b.Build();
    auto m = MaximumMatching(g);
    ASSERT_TRUE(IsValidMatching(g, m.mate));
    EXPECT_EQ(m.size, BruteForceMatchingSize(g)) << "cycles=" << cycles;
  }
}

TEST(MatchingSweepExtra, GreedyNeverBeatsExact) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = testing::RandomGraph(50, 0.1, seed + 2200);
    EXPECT_LE(GreedyMatching(g).size, MaximumMatching(g).size);
    // And greedy maximal matching is a 1/2-approximation.
    EXPECT_GE(2 * GreedyMatching(g).size, MaximumMatching(g).size);
  }
}

TEST(IsValidMatchingTest, RejectsAsymmetry) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  std::vector<NodeId> mate = {1, kInvalidNode, kInvalidNode};
  EXPECT_FALSE(IsValidMatching(g, mate));
}

TEST(IsValidMatchingTest, RejectsNonEdge) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.EnsureNode(3);
  Graph g = b.Build();
  std::vector<NodeId> mate = {3, kInvalidNode, kInvalidNode, 0};
  EXPECT_FALSE(IsValidMatching(g, mate));
}

}  // namespace
}  // namespace dkc
