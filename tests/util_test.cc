#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "util/flags.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {
namespace {

// ---------------------------------------------------------------- Timer
TEST(TimerTest, ElapsedIsMonotonic) {
  Timer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, UnitsAreConsistent) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double seconds = t.ElapsedSeconds();
  const double millis = t.ElapsedMillis();
  EXPECT_NEAR(millis, seconds * 1e3, seconds * 1e3 * 0.5 + 1.0);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double before = t.ElapsedNanos();
  t.Restart();
  EXPECT_LT(t.ElapsedNanos(), before + 1000000000LL);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  EXPECT_FALSE(Deadline::Unlimited().Expired());
  EXPECT_TRUE(Deadline::Unlimited().unlimited());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  EXPECT_FALSE(Deadline::AfterMillis(60000).Expired());
}

// --------------------------------------------------------------- Memory
TEST(MemoryTest, RssReadersReturnPositiveOnLinux) {
  EXPECT_GT(CurrentRssBytes(), 0);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
}

TEST(MemoryBudgetTest, UnlimitedNeverFails) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.Charge(int64_t{1} << 40));
}

TEST(MemoryBudgetTest, ChargeUpToLimitSucceeds) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(400));
  EXPECT_TRUE(budget.Charge(600));
  EXPECT_EQ(budget.used_bytes(), 1000);
}

TEST(MemoryBudgetTest, ExceedingLimitFails) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(999));
  EXPECT_FALSE(budget.Charge(2));
}

TEST(MemoryBudgetTest, ReleaseMakesRoom) {
  MemoryBudget budget(1000);
  EXPECT_TRUE(budget.Charge(900));
  budget.Release(500);
  EXPECT_TRUE(budget.Charge(500));
}

TEST(MemoryBudgetTest, PeakTracksHighWater) {
  MemoryBudget budget(0);
  budget.Charge(700);
  budget.Release(600);
  budget.Charge(100);
  EXPECT_EQ(budget.peak_bytes(), 700);
  EXPECT_EQ(budget.used_bytes(), 200);
}

// ------------------------------------------------------------------ Rng
TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.05);  // law of large numbers, loose
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng forked = a.Fork();
  EXPECT_NE(a.Next(), forked.Next());
}

// ------------------------------------------------------------ ThreadPool
TEST(ThreadPoolTest, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForTinyRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.ParallelFor(3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, RunPerWorkerRunsOncePerThread) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(pool.num_threads());
  pool.RunPerWorker([&](size_t w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, RunPerWorkerSingleThreadRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.RunPerWorker([&](size_t w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SequentialSubmitBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, ParallelForChunkBoundaries) {
  // ParallelFor goes parallel at count >= 2 * workers and chunks by
  // count / (workers * 8); sweep counts around those boundaries (and the
  // chunk-size-1 regime) so off-by-one in the cursor arithmetic would
  // double-visit or drop an index.
  ThreadPool pool(4);
  const size_t workers = pool.num_threads();
  const size_t counts[] = {1,
                           workers,
                           2 * workers - 1,
                           2 * workers,
                           2 * workers + 1,
                           8 * workers - 1,
                           8 * workers,
                           8 * workers + 1,
                           64 * workers + 3};
  for (size_t count : counts) {
    SCOPED_TRACE(count);
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForSingleIteration) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::atomic<size_t> seen_index{999};
  pool.ParallelFor(1, [&](size_t i) {
    counter.fetch_add(1);
    seen_index.store(i);
  });
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(seen_index.load(), 0u);
}

TEST(ThreadPoolTest, SubmitWaitInterleaving) {
  // Wait() must cover tasks submitted *by running tasks*: the child is
  // enqueued while the parent is still in flight, so in_flight_ never hits
  // zero between them.
  ThreadPool pool(3);
  std::atomic<int> parents{0};
  std::atomic<int> children{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      parents.fetch_add(1);
      pool.Submit([&] { children.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(parents.load(), 50);
  EXPECT_EQ(children.load(), 50);
  // Wait on the now-idle pool must return immediately, and the pool must
  // still accept work afterwards.
  pool.Wait();
  std::atomic<int> more{0};
  pool.Submit([&] { more.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(more.load(), 1);
}

TEST(ThreadPoolTest, DestructionDrainsQueuedWork) {
  // Destroying the pool with work still queued must run it, not drop it:
  // the worker loop only exits on shutdown once the queue is empty.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No Wait(): the destructor races the queue.
  }
  EXPECT_EQ(counter.load(), 64);
}

// ---------------------------------------------------------------- Flags
TEST(FlagsTest, ParsesKeyValue) {
  const char* argv[] = {"prog", "--k=5", "--name=orkut"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 3), 5);
  EXPECT_EQ(flags.GetString("name", ""), "orkut");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 3), 3);
  EXPECT_EQ(flags.GetDouble("beta", 0.1), 0.1);
  EXPECT_FALSE(flags.Has("k"));
}

TEST(FlagsTest, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, ExplicitFalse) {
  const char* argv[] = {"prog", "--verbose=false", "--debug=0"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("verbose", true));
  EXPECT_FALSE(flags.GetBool("debug", true));
}

TEST(FlagsTest, PositionalArgumentsPreserved) {
  const char* argv[] = {"prog", "input.txt", "--k=4", "more"};
  Flags flags(4, const_cast<char**>(argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(FlagsTest, DoubleParsing) {
  const char* argv[] = {"prog", "--beta=0.25"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("beta", 0.0), 0.25);
}

TEST(FlagsTest, EmptyArgvIsHarmless) {
  Flags flags(0, nullptr);
  EXPECT_EQ(flags.program_name(), "");
  EXPECT_TRUE(flags.positional().empty());
  EXPECT_FALSE(flags.Has("anything"));
  EXPECT_EQ(flags.GetInt("k", 3), 3);
}

TEST(FlagsTest, DuplicateFlagLastOneWins) {
  const char* argv[] = {"prog", "--k=3", "--k=7"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 0), 7);
}

TEST(FlagsTest, EmptyValueIsPresentButEmpty) {
  const char* argv[] = {"prog", "--name="};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", "default"), "");
  // Numeric lookups on an empty value fall back to strtoll/strtod of "".
  EXPECT_EQ(flags.GetInt("name", 9), 0);
}

TEST(FlagsTest, UnknownFlagFallsBackToDefaults) {
  const char* argv[] = {"prog", "--known=1"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_FALSE(flags.Has("unknown"));
  EXPECT_EQ(flags.GetString("unknown", "d"), "d");
  EXPECT_TRUE(flags.GetBool("unknown", true));
  EXPECT_FALSE(flags.GetBool("unknown", false));
}

TEST(FlagsTest, NonNumericValueParsesAsZero) {
  const char* argv[] = {"prog", "--k=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("k", 5), 0);
  EXPECT_EQ(flags.GetDouble("k", 5.0), 0.0);
}

}  // namespace
}  // namespace dkc
