#include "graph/dag.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(DagTest, OutNeighborsHaveSmallerRank) {
  Graph g = testing::RandomGraph(50, 0.2, /*seed=*/20);
  Dag dag(g, DegeneracyOrdering(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : dag.OutNeighbors(u)) {
      EXPECT_LT(dag.ordering().rank[v], dag.ordering().rank[u]);
      EXPECT_TRUE(dag.Precedes(v, u));
    }
  }
}

TEST(DagTest, EveryEdgeOrientedExactlyOnce) {
  Graph g = testing::RandomGraph(50, 0.25, /*seed=*/21);
  Dag dag(g, DegreeOrdering(g));
  Count directed = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) directed += dag.OutDegree(u);
  EXPECT_EQ(directed, g.num_edges());
}

TEST(DagTest, OutNeighborsSortedById) {
  Graph g = testing::RandomGraph(50, 0.2, /*seed=*/22);
  Dag dag(g, DegeneracyOrdering(g));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto out = dag.OutNeighbors(u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  }
}

TEST(DagTest, IdentityOrderingOrientsHighToLow) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  Dag dag(g, IdentityOrdering(3));
  EXPECT_EQ(dag.OutDegree(0), 0u);
  EXPECT_EQ(dag.OutDegree(1), 1u);
  EXPECT_EQ(dag.OutDegree(2), 2u);
}

TEST(DagTest, MaxOutDegreeIsMaxOfOutDegrees) {
  Graph g = testing::RandomGraph(40, 0.3, /*seed=*/23);
  Dag dag(g, DegeneracyOrdering(g));
  Count expected = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    expected = std::max(expected, dag.OutDegree(u));
  }
  EXPECT_EQ(dag.MaxOutDegree(), expected);
}

TEST(DagTest, DegeneracyOrientationBoundsOutDegree) {
  // DegeneracyOrdering is the reversed peel sequence, so the DAG's
  // out-degree (edges toward lower ranks = later-peeled nodes) is bounded
  // by the degeneracy — the kClist complexity guarantee.
  Graph g = testing::RandomGraph(60, 0.2, /*seed=*/24);
  Dag dag(g, DegeneracyOrdering(g));
  EXPECT_LE(dag.MaxOutDegree(), Degeneracy(g));
}

TEST(DagTest, EmptyGraph) {
  Graph g;
  Dag dag(g, IdentityOrdering(0));
  EXPECT_EQ(dag.num_nodes(), 0u);
  EXPECT_EQ(dag.MaxOutDegree(), 0u);
}

}  // namespace
}  // namespace dkc
