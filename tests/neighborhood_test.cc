// NeighborhoodKernel cross-checks against the pre-refactor naive
// recursions: the sorted-merge DFS that CountRec/ScoreRec, FindMin and the
// subset lambda used before they became kernel adapters is reimplemented
// here (deliberately share-nothing) and every kernel visitor must match it
// exactly — counts, scores, the min-clique *identity* (DFS-order
// tie-breaks), and enumeration order.

#include "clique/neighborhood.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/dag.h"
#include "graph/dynamic_graph.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

std::vector<NodeId> Intersect(std::span<const NodeId> a,
                              std::span<const NodeId> b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Pre-refactor CountRec: plain sorted-merge recursion over N+(u).
Count NaiveCountRooted(const Dag& dag, NodeId u, int k) {
  if (k == 1) return 1;
  auto out = dag.OutNeighbors(u);
  if (out.size() + 1 < static_cast<size_t>(k)) return 0;
  auto rec = [&](auto&& self, int remaining,
                 std::span<const NodeId> cand) -> Count {
    if (remaining == 1) return cand.size();
    Count total = 0;
    for (NodeId v : cand) {
      auto next = Intersect(cand, dag.OutNeighbors(v));
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      total += self(self, remaining - 1, next);
    }
    return total;
  };
  return rec(rec, k - 1, out);
}

// Pre-refactor ScoreRec: per-node participation counts for cliques rooted
// at u (prefix includes the root).
Count NaiveScoreRooted(const Dag& dag, NodeId u, int k,
                       std::vector<Count>* counts) {
  if (k == 1) {
    ++(*counts)[u];
    return 1;
  }
  auto out = dag.OutNeighbors(u);
  if (out.size() + 1 < static_cast<size_t>(k)) return 0;
  std::vector<NodeId> prefix = {u};
  auto rec = [&](auto&& self, int remaining,
                 std::span<const NodeId> cand) -> Count {
    if (remaining == 1) {
      for (NodeId v : cand) ++(*counts)[v];
      for (NodeId p : prefix) (*counts)[p] += cand.size();
      return cand.size();
    }
    Count total = 0;
    for (NodeId v : cand) {
      auto next = Intersect(cand, dag.OutNeighbors(v));
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      prefix.push_back(v);
      total += self(self, remaining - 1, next);
      prefix.pop_back();
    }
    return total;
  };
  return rec(rec, k - 1, out);
}

// Pre-refactor FindMin without pruning: first-found-in-DFS-order minimum
// clique-score k-clique among valid nodes rooted at u.
bool NaiveFindMinRooted(const Dag& dag, NodeId u, int k,
                        const std::vector<uint8_t>& valid,
                        const std::vector<Count>& scores,
                        std::vector<NodeId>* best_clique, Count* best_score) {
  std::vector<NodeId> seed;
  for (NodeId v : dag.OutNeighbors(u)) {
    if (valid[v]) seed.push_back(v);
  }
  if (seed.size() + 1 < static_cast<size_t>(k)) return false;
  std::vector<NodeId> prefix = {u};
  bool have = false;
  auto rec = [&](auto&& self, int remaining, std::span<const NodeId> cand,
                 Count sum) -> void {
    if (remaining == 1) {
      for (NodeId v : cand) {
        const Count total = sum + scores[v];
        if (!have || total < *best_score) {
          have = true;
          *best_score = total;
          *best_clique = prefix;
          best_clique->push_back(v);
        }
      }
      return;
    }
    for (NodeId v : cand) {
      std::vector<NodeId> next;
      for (NodeId w : dag.OutNeighbors(v)) {
        if (valid[w] && std::binary_search(cand.begin(), cand.end(), w)) {
          next.push_back(w);
        }
      }
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      prefix.push_back(v);
      self(self, remaining - 1, next, sum + scores[v]);
      prefix.pop_back();
    }
  };
  rec(rec, k - 1, seed, scores[u]);
  return have;
}

TEST(NeighborhoodKernelTest, CountMatchesNaivePerRoot) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = testing::RandomGraph(32, 0.3 + 0.1 * (seed % 3), 400 + seed);
    Dag dag(g, DegeneracyOrdering(g));
    for (int k = 3; k <= 6; ++k) {
      NeighborhoodKernel kernel;
      Count total = 0;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        kernel.BuildFromRoot(dag, u);
        EXPECT_TRUE(kernel.uses_bitmap());
        const Count got = kernel.CountCliques(k - 1);
        EXPECT_EQ(got, NaiveCountRooted(dag, u, k)) << "u=" << u << " k=" << k;
        total += got;
      }
      EXPECT_EQ(total, testing::BruteForceKCliques(g, k).size());
    }
  }
}

TEST(NeighborhoodKernelTest, ScoresMatchNaivePerRoot) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = testing::RandomGraph(28, 0.35, 500 + seed);
    Dag dag(g, DegeneracyOrdering(g));
    const int k = 3 + static_cast<int>(seed % 3);
    std::vector<Count> naive(g.num_nodes(), 0);
    std::vector<Count> kernel_counts(g.num_nodes(), 0);
    NeighborhoodKernel kernel;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const Count naive_total = NaiveScoreRooted(dag, u, k, &naive);
      Count kernel_total = 0;
      if (dag.OutDegree(u) + 1 >= static_cast<Count>(k)) {
        kernel.BuildFromRoot(dag, u);
        kernel_total = kernel.ScoreCliques(k - 1, &kernel_counts);
        kernel_counts[u] += kernel_total;  // the adapter's root credit
      }
      EXPECT_EQ(kernel_total, naive_total) << "u=" << u;
    }
    EXPECT_EQ(kernel_counts, naive);
    EXPECT_EQ(naive, testing::BruteForceNodeScores(g, k));
  }
}

TEST(NeighborhoodKernelTest, MinCliqueMatchesNaiveIncludingTieBreaks) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Graph g = testing::RandomGraph(26, 0.4, 600 + seed);
    Dag dag(g, DegeneracyOrdering(g));
    const int k = 3 + static_cast<int>(seed % 2);
    Rng rng(800 + seed);
    // Random validity mask and deliberately collision-heavy scores so ties
    // are common: only DFS-first tie-breaking reproduces the naive pick.
    std::vector<uint8_t> valid(g.num_nodes(), 1);
    std::vector<Count> scores(g.num_nodes(), 0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      valid[u] = rng.NextBool(0.8) ? 1 : 0;
      scores[u] = rng.NextBounded(3);
    }
    NeighborhoodKernel kernel;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::vector<NodeId> naive_clique;
      Count naive_score = 0;
      const bool naive_found = NaiveFindMinRooted(dag, u, k, valid, scores,
                                                  &naive_clique, &naive_score);
      for (bool prune : {false, true}) {
        kernel.BuildFromRoot(dag, u, valid.data());
        std::vector<NodeId> rest;
        Count got_score = 0;
        const bool found = kernel.FindMinScoreClique(
            k - 1, scores, scores[u], prune, &rest, &got_score);
        ASSERT_EQ(found, naive_found) << "u=" << u << " prune=" << prune;
        if (!found) continue;
        std::vector<NodeId> got = {u};
        got.insert(got.end(), rest.begin(), rest.end());
        EXPECT_EQ(got, naive_clique) << "u=" << u << " prune=" << prune;
        EXPECT_EQ(got_score, naive_score);
      }
    }
  }
}

TEST(NeighborhoodKernelTest, SubsetEnumerationMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph base = testing::RandomGraph(24, 0.4, 700 + seed);
    DynamicGraph g(base);
    Rng rng(900 + seed);
    std::vector<NodeId> subset;
    for (NodeId u = 0; u < base.num_nodes(); ++u) {
      if (rng.NextBool(0.7)) subset.push_back(u);
    }
    const int k = 3 + static_cast<int>(seed % 2);
    NeighborhoodKernel kernel;
    kernel.BuildFromSubset(g, subset);
    std::vector<std::vector<NodeId>> found;
    kernel.ForEachClique(k, [&](std::span<const NodeId> nodes) {
      found.emplace_back(nodes.begin(), nodes.end());
      return true;
    });
    // Brute-force over the induced subgraph.
    std::vector<std::vector<NodeId>> expected;
    for (const auto& clique : testing::BruteForceKCliques(base, k)) {
      bool inside = true;
      for (NodeId u : clique) {
        if (!std::binary_search(subset.begin(), subset.end(), u)) {
          inside = false;
          break;
        }
      }
      if (inside) expected.push_back(clique);
    }
    EXPECT_EQ(testing::Canonicalize(found), testing::Canonicalize(expected));
  }
}

TEST(NeighborhoodKernelTest, AlternatingBuildModesKeepsMapClean) {
  // Regression guard: a root build populates the global->local map; a
  // following subset build replaces local_nodes_ without touching the map,
  // and the next root build must still start from a clean map.
  Graph base = testing::RandomGraph(30, 0.4, 1000);
  Dag dag(base, DegeneracyOrdering(base));
  DynamicGraph dyn(base);
  std::vector<NodeId> all(base.num_nodes());
  for (NodeId u = 0; u < base.num_nodes(); ++u) all[u] = u;
  NeighborhoodKernel kernel;
  for (NodeId u = 0; u < base.num_nodes(); ++u) {
    kernel.BuildFromRoot(dag, u);
    const Count direct = kernel.CountCliques(2);
    kernel.BuildFromSubset(dyn, all);  // interleave a subset build
    kernel.BuildFromRoot(dag, u);
    EXPECT_EQ(kernel.CountCliques(2), direct) << "u=" << u;
  }
}

TEST(NeighborhoodKernelTest, EpochWrapResetsRemapStamps) {
  // The global->local map is validated by epoch stamps; PrepareMap bumps
  // the epoch per build and, on uint32 wrap, must reset every stamp before
  // restarting at epoch 1. If the reset were missing, entries stamped
  // during the arena's *first* life (epoch 1) would alias the first
  // post-wrap build: nodes outside the new universe would pass the stamp
  // check with stale local ids and corrupt rows. Force the wrap through
  // the arena seam and cross-check every root against a fresh kernel.
  Graph g = testing::RandomGraph(32, 0.4, 2025);
  Dag dag(g, DegeneracyOrdering(g));
  KernelArena arena;
  NeighborhoodKernel kernel(&arena);
  // First life: populate the map at epoch 1 (the exact stamp value the
  // post-wrap epoch restarts at).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    kernel.BuildFromRoot(dag, u);
  }
  ASSERT_GE(arena.epoch, 1u);
  // Jump to the wrap boundary: the next PrepareMap increments MAX -> 0,
  // which must trigger the full stamp reset and land on epoch 1.
  arena.epoch = std::numeric_limits<uint32_t>::max();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    kernel.BuildFromRoot(dag, u);
    if (u == 0) {
      EXPECT_EQ(arena.epoch, 1u) << "wrap must reset the epoch to 1";
    }
    NeighborhoodKernel fresh;
    fresh.BuildFromRoot(dag, u);
    for (int k = 3; k <= 5; ++k) {
      EXPECT_EQ(kernel.CountCliques(k - 1), fresh.CountCliques(k - 1))
          << "u=" << u << " k=" << k;
    }
  }
  // A second forced wrap from the now-dirty map must behave identically.
  arena.epoch = std::numeric_limits<uint32_t>::max();
  kernel.BuildFromRoot(dag, 5);
  EXPECT_EQ(arena.epoch, 1u);
  NeighborhoodKernel fresh;
  fresh.BuildFromRoot(dag, 5);
  EXPECT_EQ(kernel.CountCliques(3), fresh.CountCliques(3));
}

TEST(NeighborhoodKernelTest, HugeSparseNeighborhoodFallsBackToMerge) {
  // Hub + ring under the *identity* ordering (degeneracy would cap every
  // out-degree, which is exactly why real roots stay on the bitmap path):
  // the hub is the highest id, so its out-neighborhood is the whole ring —
  // beyond kMaxBitmapNodes, forcing the sorted-merge path, which must
  // still count one triangle per ring edge.
  const NodeId ring = NeighborhoodKernel::kMaxBitmapNodes + 500;
  GraphBuilder builder;
  for (NodeId i = 0; i < ring; ++i) {
    builder.AddEdge(i, (i + 1) % ring);
    builder.AddEdge(i, ring);  // hub
  }
  Graph g = builder.Build();
  Dag dag(g, IdentityOrdering(g.num_nodes()));
  const NodeId hub = ring;
  ASSERT_EQ(dag.OutDegree(hub), ring);
  NeighborhoodKernel kernel;
  kernel.BuildFromRoot(dag, hub);
  EXPECT_FALSE(kernel.uses_bitmap());
  EXPECT_EQ(kernel.CountCliques(2), ring);  // triangles rooted at the hub
  // The small ring version takes the bitmap path and must agree in kind.
  const NodeId small_ring = 100;
  GraphBuilder small_builder;
  for (NodeId i = 0; i < small_ring; ++i) {
    small_builder.AddEdge(i, (i + 1) % small_ring);
    small_builder.AddEdge(i, small_ring);
  }
  Graph small = small_builder.Build();
  Dag small_dag(small, IdentityOrdering(small.num_nodes()));
  kernel.BuildFromRoot(small_dag, small_ring);
  EXPECT_TRUE(kernel.uses_bitmap());
  EXPECT_EQ(kernel.CountCliques(2), small_ring);
}

TEST(NeighborhoodKernelTest, EnumerationEarlyStops) {
  Graph g = testing::RandomGraph(20, 0.5, 1100);
  Dag dag(g, DegeneracyOrdering(g));
  NeighborhoodKernel kernel;
  int seen = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dag.OutDegree(u) + 1 < 3) continue;
    kernel.BuildFromRoot(dag, u);
    const bool completed = kernel.ForEachClique(2, [&](std::span<const NodeId> nodes) {
      EXPECT_EQ(nodes.size(), 3u);
      EXPECT_EQ(nodes[0], u);  // root-first emission
      return ++seen < 2;
    });
    if (!completed) break;
  }
  EXPECT_EQ(seen, 2);
}

// ------------------------------------------------------- lazy row builds
TEST(LazyRowTest, RowsBuildAtMostOncePerRoot) {
  // The built-bitmap must make every row build idempotent: re-traversing
  // the same build (even with a different visitor mix) must not rebuild,
  // and the per-build counter can never exceed the universe size.
  Graph g = testing::RandomGraph(40, 0.35, 1300);
  Dag dag(g, DegeneracyOrdering(g));
  std::vector<uint8_t> valid(g.num_nodes(), 1);
  NeighborhoodKernel kernel;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    kernel.BuildFromRoot(dag, u, valid.data());
    EXPECT_EQ(kernel.rows_built(), 0u) << "build must not materialize rows";
    int hits = 0;
    kernel.ForEachClique(3, [&](std::span<const NodeId>) {
      ++hits;
      return true;
    });
    const NodeId after_first = kernel.rows_built();
    EXPECT_LE(after_first, kernel.size());
    // A second full traversal touches at least every row the first one
    // did; the counter must not move — each row was built exactly once.
    int hits_again = 0;
    kernel.ForEachClique(3, [&](std::span<const NodeId>) {
      ++hits_again;
      return true;
    });
    EXPECT_EQ(kernel.rows_built(), after_first) << "u=" << u;
    EXPECT_EQ(hits, hits_again);
    if (kernel.size() < 3) continue;  // q > s: traversals never touch rows
    // An exhaustive counting pass on the same build materializes the rest,
    // exactly up to the universe size, and is idempotent too.
    kernel.CountCliques(3);
    EXPECT_EQ(kernel.rows_built(), kernel.size());
    kernel.CountCliques(3);
    EXPECT_EQ(kernel.rows_built(), kernel.size());
  }
}

TEST(LazyRowTest, PrunedSearchesBuildFewerRowsThanEager) {
  // A star of m spokes whose only interconnection is one triangle at the
  // low-id end: under the identity ordering the hub's universe is all m
  // spokes, but a first-hit search (HG FindOne) resolves inside the
  // triangle and must leave the overwhelming majority of rows unbuilt.
  constexpr NodeId kSpokes = 60;
  GraphBuilder builder;
  const NodeId hub = kSpokes;
  for (NodeId i = 0; i < kSpokes; ++i) builder.AddEdge(i, hub);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  Graph g = builder.Build();
  Dag dag(g, IdentityOrdering(g.num_nodes()));
  NeighborhoodKernel kernel;
  kernel.BuildFromRoot(dag, hub);
  ASSERT_EQ(kernel.size(), kSpokes);
  bool found = false;
  kernel.ForEachClique(3, [&](std::span<const NodeId> nodes) {
    EXPECT_EQ(nodes.size(), 4u);
    found = true;
    return false;  // first hit wins, as in Algorithm 1's FindOne
  });
  EXPECT_TRUE(found);
  // Eager would have materialized all kSpokes rows; the lazy first-hit
  // search needs only the prefix up to the triangle.
  EXPECT_LT(kernel.rows_built(), kernel.size() / 4);
  EXPECT_GT(kernel.rows_built(), 0u);

  // Even driven to exhaustion the lazy traversal stays cheap — the degree
  // upper bound keeps the leaf-degree spokes rowless — yet finds exactly
  // the planted clique; the eager counting pass is what builds the rest.
  Count total = 0;
  kernel.ForEachClique(3, [&](std::span<const NodeId>) {
    ++total;
    return true;
  });
  EXPECT_EQ(total, 1u);  // exactly the one planted 4-clique
  EXPECT_LT(kernel.rows_built(), kernel.size() / 4);
  EXPECT_EQ(kernel.CountCliques(3), 1u);
  EXPECT_EQ(kernel.rows_built(), kernel.size());
}

TEST(LazyRowTest, FindMinScoreCliqueMatchesAcrossRowModes) {
  // FindMin materializes rows for its greedy seed pass; interleave it with
  // lazy enumeration on the same kernel object across roots to shake out
  // stale row/degree state between modes.
  Graph g = testing::RandomGraph(34, 0.4, 1400);
  Dag dag(g, DegeneracyOrdering(g));
  Rng rng(1500);
  std::vector<uint8_t> valid(g.num_nodes(), 1);
  std::vector<Count> scores(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) scores[u] = rng.NextBounded(4);
  NeighborhoodKernel reused;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    NeighborhoodKernel fresh;
    std::vector<NodeId> got_reused, got_fresh;
    Count score_reused = 0, score_fresh = 0;
    reused.BuildFromRoot(dag, u, valid.data());
    // Lazy enumeration first so some rows pre-exist when FindMin runs.
    reused.ForEachClique(2, [&](std::span<const NodeId>) { return false; });
    const bool found_reused = reused.FindMinScoreClique(
        3, scores, scores[u], true, &got_reused, &score_reused);
    fresh.BuildFromRoot(dag, u, valid.data());
    const bool found_fresh = fresh.FindMinScoreClique(
        3, scores, scores[u], false, &got_fresh, &score_fresh);
    ASSERT_EQ(found_reused, found_fresh) << "u=" << u;
    if (found_fresh) {
      EXPECT_EQ(got_reused, got_fresh) << "u=" << u;
      EXPECT_EQ(score_reused, score_fresh);
    }
  }
}

// ---------------------------------------------------- galloping intersect
TEST(IntersectSkewTest, GallopingMatchesMergeAcrossTheCrossover) {
  // Sweep the size ratio through the kGallopSkew crossover; both code
  // paths must agree with std::set_intersection exactly.
  Rng rng(1200);
  for (size_t small_size : {1u, 3u, 8u}) {
    for (size_t factor : {1u, 8u, 31u, 32u, 33u, 64u, 200u}) {
      const size_t large_size = small_size * factor;
      std::vector<NodeId> small_set, large_set;
      while (small_set.size() < small_size) {
        small_set.push_back(static_cast<NodeId>(rng.NextBounded(10000)));
        std::sort(small_set.begin(), small_set.end());
        small_set.erase(std::unique(small_set.begin(), small_set.end()),
                        small_set.end());
      }
      while (large_set.size() < large_size) {
        large_set.push_back(static_cast<NodeId>(rng.NextBounded(10000)));
        std::sort(large_set.begin(), large_set.end());
        large_set.erase(std::unique(large_set.begin(), large_set.end()),
                        large_set.end());
      }
      // Plant guaranteed overlaps so the intersection is non-trivial.
      for (size_t i = 0; i < small_set.size(); i += 2) {
        large_set.push_back(small_set[i]);
      }
      std::sort(large_set.begin(), large_set.end());
      large_set.erase(std::unique(large_set.begin(), large_set.end()),
                      large_set.end());

      std::vector<NodeId> expected;
      std::set_intersection(small_set.begin(), small_set.end(),
                            large_set.begin(), large_set.end(),
                            std::back_inserter(expected));
      std::vector<NodeId> got;
      IntersectSorted(small_set, large_set, &got);
      EXPECT_EQ(got, expected) << "small=" << small_size
                               << " large=" << large_set.size();
      // Argument order must not matter.
      IntersectSorted(large_set, small_set, &got);
      EXPECT_EQ(got, expected);
    }
  }
}

// Whatever merge dispatch selected for the fallback (the dispatched
// scalar/SIMD merge — see intersect_simd.h; the per-level sweep lives in
// intersect_simd_test.cc) — and the retired branch-free implementation,
// which stays exposed in every configuration — must agree with the
// reference on every overlap pattern, including the n=4096 shape whose
// layout sensitivity motivated the branch-free variant.
TEST(IntersectMergeTest, MergePathsMatchReferenceAcrossOverlapPatterns) {
  Rng rng(2024);
  std::vector<NodeId> got;  // reused across cases: stale contents must die
  for (size_t n : {2u, 15u, 64u, 333u, 4096u}) {
    for (double overlap : {0.0, 0.1, 0.5, 1.0}) {
      std::vector<NodeId> a, b;
      NodeId next = 0;
      while (a.size() < n || b.size() < n) {
        next += 1 + static_cast<NodeId>(rng.NextBounded(3));
        const bool both = rng.NextBool(overlap);
        if (both) {
          if (a.size() < n) a.push_back(next);
          if (b.size() < n) b.push_back(next);
        } else if (rng.NextBool(0.5)) {
          if (a.size() < n) a.push_back(next);
        } else {
          if (b.size() < n) b.push_back(next);
        }
      }
      std::vector<NodeId> expected;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(expected));
      IntersectSorted(a, b, &got);
      EXPECT_EQ(got, expected) << "n=" << n << " overlap=" << overlap;
      IntersectSorted(b, a, &got);
      EXPECT_EQ(got, expected) << "n=" << n << " overlap=" << overlap;
      IntersectSortedBranchFree(a, b, &got);
      EXPECT_EQ(got, expected) << "n=" << n << " overlap=" << overlap;
      IntersectSortedBranchFree(b, a, &got);
      EXPECT_EQ(got, expected) << "n=" << n << " overlap=" << overlap;
    }
  }
}

TEST(IntersectMergeTest, BranchFreeMergeHandlesEdgeCases) {
  std::vector<NodeId> out = {99};  // stale contents must be overwritten
  IntersectSortedBranchFree({}, {}, &out);
  EXPECT_TRUE(out.empty());
  const std::vector<NodeId> single = {5};
  IntersectSortedBranchFree(single, single, &out);
  EXPECT_EQ(out, single);
  const std::vector<NodeId> other = {6};
  IntersectSortedBranchFree(single, other, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectMergeTest, MergeAndGallopAgreeAtTheCrossover) {
  // Sizes straddling small * kGallopSkew == large flip the implementation
  // between the merge fallback and galloping; the planted pattern keeps
  // the expected intersection identical on both sides of the flip.
  Rng rng(2025);
  for (size_t small_size : {2u, 5u, 9u}) {
    std::vector<NodeId> small_set;
    for (size_t i = 0; i < small_size; ++i) {
      small_set.push_back(static_cast<NodeId>(100 * (i + 1)));
    }
    for (long delta = -1; delta <= 1; ++delta) {
      const size_t large_size =
          static_cast<size_t>(static_cast<long>(small_size * kGallopSkew) + delta);
      std::vector<NodeId> large_set;
      for (size_t i = 0; large_set.size() < large_size; ++i) {
        large_set.push_back(static_cast<NodeId>(3 * i + 1));
      }
      // Plant every other small element.
      for (size_t i = 0; i < small_set.size(); i += 2) {
        large_set.push_back(small_set[i]);
      }
      std::sort(large_set.begin(), large_set.end());
      large_set.erase(std::unique(large_set.begin(), large_set.end()),
                      large_set.end());
      std::vector<NodeId> expected;
      std::set_intersection(small_set.begin(), small_set.end(),
                            large_set.begin(), large_set.end(),
                            std::back_inserter(expected));
      std::vector<NodeId> got;
      IntersectSorted(small_set, large_set, &got);
      EXPECT_EQ(got, expected)
          << "small=" << small_size << " delta=" << delta;
      IntersectSorted(large_set, small_set, &got);
      EXPECT_EQ(got, expected)
          << "small=" << small_size << " delta=" << delta;
      // The branch-free merge must agree with the galloping side of the
      // crossover too (it never gallops itself).
      IntersectSortedBranchFree(small_set, large_set, &got);
      EXPECT_EQ(got, expected)
          << "small=" << small_size << " delta=" << delta;
    }
  }
}

TEST(IntersectSkewTest, ExtremeSkewEdgeCases) {
  std::vector<NodeId> tiny = {500};
  std::vector<NodeId> big(4096);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<NodeId>(i * 2);
  std::vector<NodeId> out;
  IntersectSorted(tiny, big, &out);  // 500 = 250*2 is present
  EXPECT_EQ(out, std::vector<NodeId>{500});
  tiny[0] = 501;  // absent
  IntersectSorted(tiny, big, &out);
  EXPECT_TRUE(out.empty());
  tiny[0] = 9999;  // beyond the end
  IntersectSorted(tiny, big, &out);
  EXPECT_TRUE(out.empty());
  IntersectSorted({}, big, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dkc
