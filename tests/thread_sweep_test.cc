// Thread-sweep differential harness: every static solver (HG, GC, L, LP,
// OPT) on the same 52 mixed-model instances the randomized differential
// harness uses, solved serially and across 1/2/4-thread pools, asserting
// *byte-identical* solutions — same cliques, same order, same node order
// within each clique — at every thread count.
//
// This is the contract the pool plumbing claims: HG's speculative FindOne
// batches, GC/OPT's ordered enumeration reduction, OPT's per-component
// exact-MIS solves and L/LP's heap passes must all be deterministic up to
// the last byte regardless of scheduling. OPT additionally runs under a
// *branch budget* instead of a wall-clock deadline: whether an instance
// aborts is then a property of the instance, not of timing, so even the
// abort outcomes must agree across thread counts.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/opt_solver.h"
#include "core/solver.h"
#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/cpu.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

// Deterministic OPT abort threshold: large enough that most of the mixed
// instances solve to optimality, small enough that the planted-partition
// triangle instances (whose clique-graph MIS is genuinely hard) abort in
// well under a second. Either outcome must be identical at every thread
// count.
constexpr uint64_t kOptBranchBudget = 40000;

TEST(ThreadSweepTest, HeuristicSolutionsAreByteIdenticalAcrossThreadCounts) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      auto serial = Solve(g, options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      const auto expected = ToVectors(serial->set);
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
      for (ThreadPool* pool : pools) {
        SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
        options.pool = pool;
        auto pooled = Solve(g, options);
        ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
        // Byte-identical: same cliques, same order, no canonicalization.
        EXPECT_EQ(ToVectors(pooled->set), expected);
      }
      options.pool = nullptr;
    }
  }
}

// Scheduling and SIMD dispatch are independent determinism claims; this
// crosses them. Reference = serial at forced-scalar dispatch; every
// (thread count, dispatch level) pair the host supports must reproduce it
// byte-for-byte. A smaller instance slice than the full sweep — the cross
// product multiplies the work and the single-axis sweeps above and in
// differential_test already cover each axis exhaustively.
TEST(ThreadSweepTest, SolutionsAreByteIdenticalAcrossThreadsAndSimdLevels) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (CpuSimdLevel() >= SimdLevel::kSse42) levels.push_back(SimdLevel::kSse42);
  if (CpuSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  ThreadPool pool2(2), pool4(4);
  ThreadPool* pools[] = {nullptr, &pool2, &pool4};
  for (int case_index = 0; case_index < 12; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = 3 + case_index % 3;
      options.method = method;
      SetSimdLevelOverride(SimdLevel::kScalar);
      auto reference = Solve(g, options);
      ClearSimdLevelOverride();
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      const auto expected = ToVectors(reference->set);
      for (SimdLevel level : levels) {
        SCOPED_TRACE(std::string("level=") + SimdLevelName(level));
        for (ThreadPool* pool : pools) {
          SCOPED_TRACE("threads=" +
                       std::to_string(pool == nullptr ? 0
                                                      : pool->num_threads()));
          SetSimdLevelOverride(level);
          options.pool = pool;
          auto got = Solve(g, options);
          ClearSimdLevelOverride();
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          EXPECT_EQ(ToVectors(got->set), expected);
        }
        options.pool = nullptr;
      }
    }
  }
}

TEST(ThreadSweepTest, OptOutcomesAreByteIdenticalAcrossThreadCounts) {
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  int solved = 0;
  int aborted = 0;
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    OptOptions options;
    options.k = 3 + case_index % 3;
    options.max_mis_branch_nodes = kOptBranchBudget;
    auto serial = SolveOpt(g, options);
    if (serial.ok()) {
      ++solved;
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
    } else {
      ++aborted;
    }
    for (ThreadPool* pool : pools) {
      SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
      options.pool = pool;
      auto pooled = SolveOpt(g, options);
      ASSERT_EQ(pooled.ok(), serial.ok())
          << (pooled.ok() ? "pooled solved but serial aborted"
                          : pooled.status().ToString());
      if (serial.ok()) {
        EXPECT_EQ(ToVectors(pooled->set), ToVectors(serial->set));
      }
    }
    options.pool = nullptr;
  }
  // The budget must actually bite on the hard instances yet leave the bulk
  // solvable, or the sweep silently degenerates into testing one path.
  EXPECT_GE(solved, 40) << "branch budget aborts too much of the sweep";
  EXPECT_GE(aborted, 1) << "branch budget never engaged; raise difficulty";
}

// ---------------------------------------------------------------------------
// Dynamic engine sweep: the same 10 random update streams the differential
// harness fuzzes, replayed serially and across 1/2/4-thread pools, with and
// without a per-update work budget. The pool parallelizes the candidate-
// rebuild fan-outs and the packing sort; the budget's max_branch_nodes cap
// is deterministic by design. So at every thread count the maintained
// solution must be byte-identical after every update batch, and the
// per-update abort outcomes must match the serial run exactly.

struct StreamTrace {
  std::vector<uint8_t> aborted;              // per update
  std::vector<uint64_t> work;                // per update
  std::vector<uint64_t> rebuild_cuts;        // per update (mid-DFS aborts)
  std::vector<std::vector<std::vector<NodeId>>> snapshots;  // per batch
  NodeId final_size = 0;
};

StreamTrace RunStream(const Graph& initial, const std::vector<UpdateOp>& ops,
                      int k, ThreadPool* pool, uint64_t max_branch_nodes,
                      int batch) {
  DynamicOptions options;
  options.k = k;
  options.pool = pool;
  options.update_budget.max_branch_nodes = max_branch_nodes;
  auto solver = DynamicSolver::Build(initial, options);
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  StreamTrace trace;
  int step = 0;
  for (const UpdateOp& op : ops) {
    const Status status =
        op.is_insert ? solver->InsertEdge(op.edge.first, op.edge.second)
                     : solver->DeleteEdge(op.edge.first, op.edge.second);
    EXPECT_TRUE(status.ok()) << status.ToString();
    trace.aborted.push_back(solver->last_update_stats().aborted() ? 1 : 0);
    trace.work.push_back(solver->last_update_stats().work);
    trace.rebuild_cuts.push_back(solver->last_update_stats().rebuild_cuts);
    if (++step % batch == 0) {
      trace.snapshots.push_back(ToVectors(solver->Snapshot()));
    }
  }
  trace.final_size = solver->solution_size();
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  return trace;
}

TEST(ThreadSweepTest, DynamicStreamsAreByteIdenticalAcrossThreadCounts) {
  constexpr int kStreams = 10;
  constexpr int kUpdatesPerStream = 220;
  constexpr int kBatch = 20;
  // Small enough that modest swap cascades hit it, large enough that most
  // updates complete — both regimes must be exercised on every stream set.
  constexpr uint64_t kUpdateWorkBudget = 8;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};

  uint64_t budget_aborts = 0;
  uint64_t budget_completions = 0;
  uint64_t budget_rebuild_cuts = 0;
  for (int stream = 0; stream < kStreams; ++stream) {
    SCOPED_TRACE("stream=" + std::to_string(stream));
    Rng rng(7300 + static_cast<uint64_t>(stream) * 97);
    const NodeId n = 80 + static_cast<NodeId>(stream % 3) * 10;
    const double p = 0.10 + 0.02 * static_cast<double>(stream % 4);
    const Graph initial = ErdosRenyi(n, p, rng).value();
    const int k = 3 + stream % 2;
    const auto ops = MakeChurnStream(initial, kUpdatesPerStream, rng);

    for (uint64_t budget : {uint64_t{0}, kUpdateWorkBudget}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      const StreamTrace serial =
          RunStream(initial, ops, k, nullptr, budget, kBatch);
      for (size_t i = 0; i < serial.aborted.size(); ++i) {
        if (budget == 0) {
          ASSERT_EQ(serial.aborted[i], 0)
              << "unlimited budget aborted an update";
          ASSERT_EQ(serial.rebuild_cuts[i], 0u)
              << "unlimited budget cut a rebuild";
        } else {
          (serial.aborted[i] != 0 ? budget_aborts : budget_completions) += 1;
          budget_rebuild_cuts += serial.rebuild_cuts[i];
        }
      }
      for (ThreadPool* pool : pools) {
        SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
        const StreamTrace pooled =
            RunStream(initial, ops, k, pool, budget, kBatch);
        // Identical abort outcomes, update by update — including where the
        // budget cut a rebuild enumeration mid-DFS (the pooled fan-out
        // replays the serial DFS's truncation point exactly)...
        EXPECT_EQ(pooled.aborted, serial.aborted);
        EXPECT_EQ(pooled.work, serial.work);
        EXPECT_EQ(pooled.rebuild_cuts, serial.rebuild_cuts);
        // ...and byte-identical solutions after every batch: same cliques,
        // same order, same node order within each clique.
        EXPECT_EQ(pooled.snapshots, serial.snapshots);
        EXPECT_EQ(pooled.final_size, serial.final_size);
      }
    }
  }
  // The budgeted sweep must exercise both regimes — and the mid-rebuild
  // abort path — or it proves nothing.
  EXPECT_GE(budget_aborts, 10u) << "work budget never bit; lower it";
  EXPECT_GE(budget_completions, 100u) << "work budget starves every update";
  EXPECT_GE(budget_rebuild_cuts, 10u)
      << "work budget never cut a rebuild mid-enumeration";
}

// ---------------------------------------------------------------------------
// Batched ingestion sweep: the same streams pushed through ApplyBatch in
// epochs of 1, 8, and 64. The epoch boundary runs the deduped rebuild
// fan-out (the same pool plumbing as the per-update paths), so the
// maintained solution and the per-epoch work/abort traces must be
// byte-identical at every thread count — and an epoch of one update must
// reproduce the unbatched engine exactly, snapshot for snapshot.

struct EpochTrace {
  std::vector<uint8_t> aborted;    // per epoch
  std::vector<uint64_t> work;      // per epoch
  std::vector<uint64_t> dirty;     // per epoch (deduped rebuild slots)
  std::vector<std::vector<std::vector<NodeId>>> snapshots;  // per epoch
  uint64_t dirty_rebuilds = 0;     // lifetime deduped-rebuild total
  NodeId final_size = 0;
};

EpochTrace RunEpochStream(const Graph& initial,
                          const std::vector<UpdateOp>& ops, int k,
                          ThreadPool* pool, uint64_t max_branch_nodes,
                          size_t epoch_size) {
  DynamicOptions options;
  options.k = k;
  options.pool = pool;
  options.update_budget.max_branch_nodes = max_branch_nodes;
  auto solver = DynamicSolver::Build(initial, options);
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  EpochTrace trace;
  const std::span<const UpdateOp> all(ops);
  for (size_t i = 0; i < all.size(); i += epoch_size) {
    const Status status =
        solver->ApplyBatch(all.subspan(i, std::min(epoch_size,
                                                   all.size() - i)));
    EXPECT_TRUE(status.ok()) << status.ToString();
    trace.aborted.push_back(solver->last_batch_stats().aborted() ? 1 : 0);
    trace.work.push_back(solver->last_batch_stats().work);
    trace.dirty.push_back(solver->last_batch_stats().dirty_slots);
    trace.snapshots.push_back(ToVectors(solver->Snapshot()));
  }
  trace.dirty_rebuilds = solver->batch_dirty_rebuilds();
  trace.final_size = solver->solution_size();
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  if (max_branch_nodes == 0) {
    // Only the unbudgeted runs promise a complete index — a budget may cut
    // a rebuild mid-enumeration by design.
    EXPECT_TRUE(solver->CheckCandidateCompleteness(&error)) << error;
  }
  return trace;
}

TEST(ThreadSweepTest, BatchedStreamsAreByteIdenticalAcrossThreadCounts) {
  constexpr int kStreams = 10;
  constexpr int kUpdatesPerStream = 220;
  constexpr size_t kEpochSizes[] = {1, 8, 64};
  // Per-update cap; the epoch budget scales with the epoch's op count, so
  // at epoch_size=1 this is exactly the unbatched budget.
  constexpr uint64_t kUpdateWorkBudget = 8;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};

  uint64_t dedup_savings = 0;  // epochs where dirty slots < epoch updates
  for (int stream = 0; stream < kStreams; ++stream) {
    SCOPED_TRACE("stream=" + std::to_string(stream));
    Rng rng(7300 + static_cast<uint64_t>(stream) * 97);
    const NodeId n = 80 + static_cast<NodeId>(stream % 3) * 10;
    const double p = 0.10 + 0.02 * static_cast<double>(stream % 4);
    const Graph initial = ErdosRenyi(n, p, rng).value();
    const int k = 3 + stream % 2;
    const auto ops = MakeChurnStream(initial, kUpdatesPerStream, rng);

    for (uint64_t budget : {uint64_t{0}, kUpdateWorkBudget}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      // The unbatched engine, snapshotted after every update, is the
      // reference that epoch_size=1 must reproduce byte for byte.
      const StreamTrace unbatched =
          RunStream(initial, ops, k, nullptr, budget, /*batch=*/1);
      for (size_t epoch_size : kEpochSizes) {
        SCOPED_TRACE("epoch_size=" + std::to_string(epoch_size));
        const EpochTrace serial =
            RunEpochStream(initial, ops, k, nullptr, budget, epoch_size);
        if (epoch_size == 1) {
          ASSERT_EQ(serial.snapshots, unbatched.snapshots)
              << "an epoch of one update diverged from the unbatched engine";
          ASSERT_EQ(serial.work, unbatched.work);
          ASSERT_EQ(serial.aborted, unbatched.aborted);
          ASSERT_EQ(serial.final_size, unbatched.final_size);
        } else {
          for (size_t e = 0; e < serial.dirty.size(); ++e) {
            const size_t updates_in_epoch =
                std::min(epoch_size, ops.size() - e * epoch_size);
            if (serial.dirty[e] < updates_in_epoch) ++dedup_savings;
          }
        }
        for (ThreadPool* pool : pools) {
          SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
          const EpochTrace pooled =
              RunEpochStream(initial, ops, k, pool, budget, epoch_size);
          EXPECT_EQ(pooled.aborted, serial.aborted);
          EXPECT_EQ(pooled.work, serial.work);
          EXPECT_EQ(pooled.dirty, serial.dirty);
          EXPECT_EQ(pooled.snapshots, serial.snapshots);
          EXPECT_EQ(pooled.dirty_rebuilds, serial.dirty_rebuilds);
          EXPECT_EQ(pooled.final_size, serial.final_size);
        }
      }
    }
  }
  // The dedup must actually engage somewhere in the sweep, or the batched
  // path degenerates into a loop over the serial one.
  EXPECT_GE(dedup_savings, 50u) << "no epoch ever merged rebuild work";
}

}  // namespace
}  // namespace dkc
