// Thread-sweep differential harness: every static solver (HG, GC, L, LP,
// OPT) on the same 52 mixed-model instances the randomized differential
// harness uses, solved serially and across 1/2/4-thread pools, asserting
// *byte-identical* solutions — same cliques, same order, same node order
// within each clique — at every thread count.
//
// This is the contract the pool plumbing claims: HG's speculative FindOne
// batches, GC/OPT's ordered enumeration reduction, OPT's per-component
// exact-MIS solves and L/LP's heap passes must all be deterministic up to
// the last byte regardless of scheduling. OPT additionally runs under a
// *branch budget* instead of a wall-clock deadline: whether an instance
// aborts is then a property of the instance, not of timing, so even the
// abort outcomes must agree across thread counts.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/opt_solver.h"
#include "core/solver.h"
#include "core/verify.h"
#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

// Deterministic OPT abort threshold: large enough that most of the mixed
// instances solve to optimality, small enough that the planted-partition
// triangle instances (whose clique-graph MIS is genuinely hard) abort in
// well under a second. Either outcome must be identical at every thread
// count.
constexpr uint64_t kOptBranchBudget = 40000;

TEST(ThreadSweepTest, HeuristicSolutionsAreByteIdenticalAcrossThreadCounts) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      auto serial = Solve(g, options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      const auto expected = ToVectors(serial->set);
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
      for (ThreadPool* pool : pools) {
        SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
        options.pool = pool;
        auto pooled = Solve(g, options);
        ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
        // Byte-identical: same cliques, same order, no canonicalization.
        EXPECT_EQ(ToVectors(pooled->set), expected);
      }
      options.pool = nullptr;
    }
  }
}

TEST(ThreadSweepTest, OptOutcomesAreByteIdenticalAcrossThreadCounts) {
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  int solved = 0;
  int aborted = 0;
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    OptOptions options;
    options.k = 3 + case_index % 3;
    options.max_mis_branch_nodes = kOptBranchBudget;
    auto serial = SolveOpt(g, options);
    if (serial.ok()) {
      ++solved;
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
    } else {
      ++aborted;
    }
    for (ThreadPool* pool : pools) {
      SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
      options.pool = pool;
      auto pooled = SolveOpt(g, options);
      ASSERT_EQ(pooled.ok(), serial.ok())
          << (pooled.ok() ? "pooled solved but serial aborted"
                          : pooled.status().ToString());
      if (serial.ok()) {
        EXPECT_EQ(ToVectors(pooled->set), ToVectors(serial->set));
      }
    }
    options.pool = nullptr;
  }
  // The budget must actually bite on the hard instances yet leave the bulk
  // solvable, or the sweep silently degenerates into testing one path.
  EXPECT_GE(solved, 40) << "branch budget aborts too much of the sweep";
  EXPECT_GE(aborted, 1) << "branch budget never engaged; raise difficulty";
}

// ---------------------------------------------------------------------------
// Dynamic engine sweep: the same 10 random update streams the differential
// harness fuzzes, replayed serially and across 1/2/4-thread pools, with and
// without a per-update work budget. The pool parallelizes the candidate-
// rebuild fan-outs and the packing sort; the budget's max_branch_nodes cap
// is deterministic by design. So at every thread count the maintained
// solution must be byte-identical after every update batch, and the
// per-update abort outcomes must match the serial run exactly.

struct StreamTrace {
  std::vector<uint8_t> aborted;              // per update
  std::vector<uint64_t> work;                // per update
  std::vector<uint64_t> rebuild_cuts;        // per update (mid-DFS aborts)
  std::vector<std::vector<std::vector<NodeId>>> snapshots;  // per batch
  NodeId final_size = 0;
};

StreamTrace RunStream(const Graph& initial, const std::vector<UpdateOp>& ops,
                      int k, ThreadPool* pool, uint64_t max_branch_nodes,
                      int batch) {
  DynamicOptions options;
  options.k = k;
  options.pool = pool;
  options.update_budget.max_branch_nodes = max_branch_nodes;
  auto solver = DynamicSolver::Build(initial, options);
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  StreamTrace trace;
  int step = 0;
  for (const UpdateOp& op : ops) {
    const Status status =
        op.is_insert ? solver->InsertEdge(op.edge.first, op.edge.second)
                     : solver->DeleteEdge(op.edge.first, op.edge.second);
    EXPECT_TRUE(status.ok()) << status.ToString();
    trace.aborted.push_back(solver->last_update_stats().aborted() ? 1 : 0);
    trace.work.push_back(solver->last_update_stats().work);
    trace.rebuild_cuts.push_back(solver->last_update_stats().rebuild_cuts);
    if (++step % batch == 0) {
      trace.snapshots.push_back(ToVectors(solver->Snapshot()));
    }
  }
  trace.final_size = solver->solution_size();
  std::string error;
  EXPECT_TRUE(solver->CheckInvariants(&error)) << error;
  return trace;
}

TEST(ThreadSweepTest, DynamicStreamsAreByteIdenticalAcrossThreadCounts) {
  constexpr int kStreams = 10;
  constexpr int kUpdatesPerStream = 220;
  constexpr int kBatch = 20;
  // Small enough that modest swap cascades hit it, large enough that most
  // updates complete — both regimes must be exercised on every stream set.
  constexpr uint64_t kUpdateWorkBudget = 8;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};

  uint64_t budget_aborts = 0;
  uint64_t budget_completions = 0;
  uint64_t budget_rebuild_cuts = 0;
  for (int stream = 0; stream < kStreams; ++stream) {
    SCOPED_TRACE("stream=" + std::to_string(stream));
    Rng rng(7300 + static_cast<uint64_t>(stream) * 97);
    const NodeId n = 80 + static_cast<NodeId>(stream % 3) * 10;
    const double p = 0.10 + 0.02 * static_cast<double>(stream % 4);
    const Graph initial = ErdosRenyi(n, p, rng).value();
    const int k = 3 + stream % 2;
    const auto ops = MakeChurnStream(initial, kUpdatesPerStream, rng);

    for (uint64_t budget : {uint64_t{0}, kUpdateWorkBudget}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      const StreamTrace serial =
          RunStream(initial, ops, k, nullptr, budget, kBatch);
      for (size_t i = 0; i < serial.aborted.size(); ++i) {
        if (budget == 0) {
          ASSERT_EQ(serial.aborted[i], 0)
              << "unlimited budget aborted an update";
          ASSERT_EQ(serial.rebuild_cuts[i], 0u)
              << "unlimited budget cut a rebuild";
        } else {
          (serial.aborted[i] != 0 ? budget_aborts : budget_completions) += 1;
          budget_rebuild_cuts += serial.rebuild_cuts[i];
        }
      }
      for (ThreadPool* pool : pools) {
        SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
        const StreamTrace pooled =
            RunStream(initial, ops, k, pool, budget, kBatch);
        // Identical abort outcomes, update by update — including where the
        // budget cut a rebuild enumeration mid-DFS (the pooled fan-out
        // replays the serial DFS's truncation point exactly)...
        EXPECT_EQ(pooled.aborted, serial.aborted);
        EXPECT_EQ(pooled.work, serial.work);
        EXPECT_EQ(pooled.rebuild_cuts, serial.rebuild_cuts);
        // ...and byte-identical solutions after every batch: same cliques,
        // same order, same node order within each clique.
        EXPECT_EQ(pooled.snapshots, serial.snapshots);
        EXPECT_EQ(pooled.final_size, serial.final_size);
      }
    }
  }
  // The budgeted sweep must exercise both regimes — and the mid-rebuild
  // abort path — or it proves nothing.
  EXPECT_GE(budget_aborts, 10u) << "work budget never bit; lower it";
  EXPECT_GE(budget_completions, 100u) << "work budget starves every update";
  EXPECT_GE(budget_rebuild_cuts, 10u)
      << "work budget never cut a rebuild mid-enumeration";
}

}  // namespace
}  // namespace dkc
