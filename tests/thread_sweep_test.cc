// Thread-sweep differential harness: every static solver (HG, GC, L, LP,
// OPT) on the same 52 mixed-model instances the randomized differential
// harness uses, solved serially and across 1/2/4-thread pools, asserting
// *byte-identical* solutions — same cliques, same order, same node order
// within each clique — at every thread count.
//
// This is the contract the pool plumbing claims: HG's speculative FindOne
// batches, GC/OPT's ordered enumeration reduction, OPT's per-component
// exact-MIS solves and L/LP's heap passes must all be deterministic up to
// the last byte regardless of scheduling. OPT additionally runs under a
// *branch budget* instead of a wall-clock deadline: whether an instance
// aborts is then a property of the instance, not of timing, so even the
// abort outcomes must agree across thread counts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/opt_solver.h"
#include "core/solver.h"
#include "core/verify.h"
#include "graph/graph.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

std::vector<std::vector<NodeId>> ToVectors(const CliqueStore& set) {
  std::vector<std::vector<NodeId>> out;
  out.reserve(set.size());
  for (CliqueId c = 0; c < set.size(); ++c) {
    const auto clique = set.Get(c);
    out.emplace_back(clique.begin(), clique.end());
  }
  return out;
}

// Deterministic OPT abort threshold: large enough that most of the mixed
// instances solve to optimality, small enough that the planted-partition
// triangle instances (whose clique-graph MIS is genuinely hard) abort in
// well under a second. Either outcome must be identical at every thread
// count.
constexpr uint64_t kOptBranchBudget = 40000;

TEST(ThreadSweepTest, HeuristicSolutionsAreByteIdenticalAcrossThreadCounts) {
  constexpr Method kMethods[] = {Method::kHG, Method::kGC, Method::kL,
                                 Method::kLP};
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    for (Method method : kMethods) {
      SCOPED_TRACE(MethodName(method));
      SolverOptions options;
      options.k = k;
      options.method = method;
      auto serial = Solve(g, options);
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      const auto expected = ToVectors(serial->set);
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
      for (ThreadPool* pool : pools) {
        SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
        options.pool = pool;
        auto pooled = Solve(g, options);
        ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
        // Byte-identical: same cliques, same order, no canonicalization.
        EXPECT_EQ(ToVectors(pooled->set), expected);
      }
      options.pool = nullptr;
    }
  }
}

TEST(ThreadSweepTest, OptOutcomesAreByteIdenticalAcrossThreadCounts) {
  constexpr int kInstances = 52;
  ThreadPool pool1(1), pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool1, &pool2, &pool4};
  int solved = 0;
  int aborted = 0;
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    OptOptions options;
    options.k = 3 + case_index % 3;
    options.max_mis_branch_nodes = kOptBranchBudget;
    auto serial = SolveOpt(g, options);
    if (serial.ok()) {
      ++solved;
      EXPECT_TRUE(VerifySolution(g, serial->set).ok());
    } else {
      ++aborted;
    }
    for (ThreadPool* pool : pools) {
      SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
      options.pool = pool;
      auto pooled = SolveOpt(g, options);
      ASSERT_EQ(pooled.ok(), serial.ok())
          << (pooled.ok() ? "pooled solved but serial aborted"
                          : pooled.status().ToString());
      if (serial.ok()) {
        EXPECT_EQ(ToVectors(pooled->set), ToVectors(serial->set));
      }
    }
    options.pool = nullptr;
  }
  // The budget must actually bite on the hard instances yet leave the bulk
  // solvable, or the sweep silently degenerates into testing one path.
  EXPECT_GE(solved, 40) << "branch budget aborts too much of the sweep";
  EXPECT_GE(aborted, 1) << "branch budget never engaged; raise difficulty";
}

}  // namespace
}  // namespace dkc
