#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mis/exact_mis.h"
#include "mis/greedy_mis.h"
#include "util/rng.h"

namespace dkc {
namespace {

using Adj = std::vector<std::vector<uint32_t>>;

Adj RandomAdjacency(uint32_t n, double p, uint64_t seed) {
  Rng rng(seed);
  Adj adj(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.NextBool(p)) {
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());
  return adj;
}

bool IsIndependentSet(const Adj& adj, const std::vector<uint32_t>& set) {
  for (uint32_t u : set) {
    for (uint32_t v : set) {
      if (u != v &&
          std::binary_search(adj[u].begin(), adj[u].end(), v)) {
        return false;
      }
    }
  }
  return true;
}

bool IsMaximalIndependentSet(const Adj& adj,
                             const std::vector<uint32_t>& set) {
  if (!IsIndependentSet(adj, set)) return false;
  std::vector<bool> in(adj.size(), false);
  for (uint32_t u : set) in[u] = true;
  for (uint32_t v = 0; v < adj.size(); ++v) {
    if (in[v]) continue;
    bool blocked = false;
    for (uint32_t w : adj[v]) {
      if (in[w]) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // v could be added
  }
  return true;
}

// Exponential reference for tiny instances.
size_t BruteForceMisSize(const Adj& adj) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  size_t best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (uint32_t u = 0; u < n && ok; ++u) {
      if (!(mask & (1u << u))) continue;
      for (uint32_t v : adj[u]) {
        if (v > u && (mask & (1u << v))) {
          ok = false;
          break;
        }
      }
    }
    if (ok) best = std::max(best, static_cast<size_t>(__builtin_popcount(mask)));
  }
  return best;
}

// ------------------------------------------------------------- greedy
TEST(GreedyMisTest, EmptyGraph) {
  EXPECT_TRUE(GreedyMinDegreeMis({}).empty());
}

TEST(GreedyMisTest, NoEdgesTakesAll) {
  Adj adj(5);
  EXPECT_EQ(GreedyMinDegreeMis(adj).size(), 5u);
}

TEST(GreedyMisTest, TriangleTakesOne) {
  Adj adj = {{1, 2}, {0, 2}, {0, 1}};
  EXPECT_EQ(GreedyMinDegreeMis(adj).size(), 1u);
}

TEST(GreedyMisTest, PathTakesEnds) {
  // Path 0-1-2: min degree greedy takes 0 and 2.
  Adj adj = {{1}, {0, 2}, {1}};
  auto mis = GreedyMinDegreeMis(adj);
  EXPECT_EQ(mis.size(), 2u);
  EXPECT_TRUE(IsIndependentSet(adj, mis));
}

TEST(GreedyMisTest, ExpiredDeadlineReturnsPartialAndFlags) {
  Adj adj = RandomAdjacency(200, 0.1, 9);
  bool expired = false;
  auto mis = GreedyMinDegreeMis(adj, Deadline::AfterMillis(0), &expired);
  EXPECT_TRUE(expired);
  EXPECT_TRUE(IsIndependentSet(adj, mis));  // partial but still independent
}

TEST(GreedyMisTest, UnlimitedDeadlineDoesNotFlag) {
  Adj adj = RandomAdjacency(30, 0.2, 10);
  bool expired = true;
  auto mis = GreedyMinDegreeMis(adj, Deadline::Unlimited(), &expired);
  EXPECT_FALSE(expired);
  EXPECT_TRUE(IsMaximalIndependentSet(adj, mis));
}

TEST(GreedyMisTest, StarTakesLeaves) {
  Adj adj(6);
  for (uint32_t v = 1; v < 6; ++v) {
    adj[0].push_back(v);
    adj[v].push_back(0);
  }
  EXPECT_EQ(GreedyMinDegreeMis(adj).size(), 5u);
}

class GreedyMisSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyMisSweep, AlwaysMaximalIndependent) {
  Rng rng(GetParam());
  const uint32_t n = 10 + static_cast<uint32_t>(rng.NextBounded(40));
  const double p = 0.05 + rng.NextDouble() * 0.4;
  Adj adj = RandomAdjacency(n, p, GetParam() * 31 + 7);
  auto mis = GreedyMinDegreeMis(adj);
  EXPECT_TRUE(IsMaximalIndependentSet(adj, mis));
}

INSTANTIATE_TEST_SUITE_P(Random, GreedyMisSweep,
                         ::testing::Range<uint64_t>(0, 10));

// -------------------------------------------------------------- exact
TEST(ExactMisTest, EmptyGraph) {
  auto result = ExactMis({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->vertices.empty());
}

TEST(ExactMisTest, SingleVertex) {
  auto result = ExactMis(Adj(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 1u);
}

TEST(ExactMisTest, CompleteGraphIsOne) {
  Adj adj = RandomAdjacency(6, 1.0, 0);
  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 1u);
}

TEST(ExactMisTest, C5IsTwo) {
  Adj adj = {{1, 4}, {0, 2}, {1, 3}, {2, 4}, {0, 3}};
  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 2u);
  EXPECT_TRUE(IsIndependentSet(adj, result->vertices));
}

TEST(ExactMisTest, PetersenGraphIsFour) {
  // Petersen graph: MIS size 4.
  Adj adj(10);
  auto add = [&adj](uint32_t u, uint32_t v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  for (uint32_t i = 0; i < 5; ++i) {
    add(i, (i + 1) % 5);        // outer cycle
    add(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    add(i, 5 + i);              // spokes
  }
  for (auto& l : adj) std::sort(l.begin(), l.end());
  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 4u);
}

TEST(ExactMisTest, ExpiredDeadlineIsOot) {
  Adj adj = RandomAdjacency(60, 0.3, 1);
  auto result = ExactMis(adj, Deadline::AfterMillis(0));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded());
}

class ExactMisSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactMisSweep, MatchesBruteForceAndIsIndependent) {
  Rng rng(GetParam() + 100);
  const uint32_t n = 8 + static_cast<uint32_t>(rng.NextBounded(9));  // <= 16
  const double p = 0.1 + rng.NextDouble() * 0.6;
  Adj adj = RandomAdjacency(n, p, GetParam() * 131 + 5);
  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsIndependentSet(adj, result->vertices));
  EXPECT_EQ(result->vertices.size(), BruteForceMisSize(adj));
}

INSTANTIATE_TEST_SUITE_P(Random, ExactMisSweep,
                         ::testing::Range<uint64_t>(0, 15));

TEST(ExactMisTest, UpperBoundStopsAtIncumbent) {
  // With a caller-supplied tight bound the search may stop at the first
  // incumbent of that size; the result must still be that optimum.
  Adj adj = {{1, 4}, {0, 2}, {1, 3}, {2, 4}, {0, 3}};  // C5, MIS = 2
  auto bounded = ExactMis(adj, Deadline::Unlimited(), /*upper_bound=*/2);
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->vertices.size(), 2u);
  EXPECT_TRUE(IsIndependentSet(adj, bounded->vertices));
}

TEST(ExactMisTest, LooseUpperBoundDoesNotChangeTheOptimum) {
  // A bound above the true MIS must leave the result exact: the search
  // cannot terminate early, so it behaves like the unbounded call.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Adj adj = RandomAdjacency(14, 0.35, seed * 17 + 3);
    auto unbounded = ExactMis(adj);
    auto bounded = ExactMis(adj, Deadline::Unlimited(),
                            static_cast<uint32_t>(adj.size()));
    ASSERT_TRUE(unbounded.ok() && bounded.ok());
    EXPECT_EQ(bounded->vertices.size(), unbounded->vertices.size());
    EXPECT_TRUE(IsIndependentSet(adj, bounded->vertices));
    EXPECT_EQ(bounded->vertices.size(), BruteForceMisSize(adj));
  }
}

TEST(ExactMisTest, TightUpperBoundPrunesProvingWork) {
  // The whole point of the bound: when greedy already finds an MIS of the
  // promised size, the exact search should not branch at all.
  Adj adj = RandomAdjacency(40, 0.9, 11);  // dense => tiny MIS, greedy-easy
  auto unbounded = ExactMis(adj);
  ASSERT_TRUE(unbounded.ok());
  auto bounded = ExactMis(adj, Deadline::Unlimited(),
                          static_cast<uint32_t>(unbounded->vertices.size()));
  ASSERT_TRUE(bounded.ok());
  EXPECT_EQ(bounded->vertices.size(), unbounded->vertices.size());
  EXPECT_LE(bounded->branch_nodes, unbounded->branch_nodes);
}

TEST(ExactMisTest, DisconnectedComponentsSumExactly) {
  // Two C5s plus three isolated vertices: MIS = 2 + 2 + 3. The components
  // are solved independently and summed.
  Adj adj(13);
  auto add = [&adj](uint32_t u, uint32_t v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  for (uint32_t i = 0; i < 5; ++i) {
    add(i, (i + 1) % 5);
    add(5 + i, 5 + (i + 1) % 5);
  }
  for (auto& l : adj) std::sort(l.begin(), l.end());
  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 7u);
  EXPECT_TRUE(IsIndependentSet(adj, result->vertices));
  EXPECT_EQ(result->vertices.size(), BruteForceMisSize(adj));
}

TEST(ExactMisTest, DecompositionShrinksTheSearchTree) {
  // Four disjoint copies of a 12-vertex random graph. Decomposed, the
  // search tree is at most the sum of the per-copy trees — far below one
  // coupled search, and in particular no more than 4x a single copy's.
  const Adj one = RandomAdjacency(12, 0.3, 77);
  Adj four(48);
  for (uint32_t copy = 0; copy < 4; ++copy) {
    for (uint32_t u = 0; u < 12; ++u) {
      for (uint32_t v : one[u]) four[copy * 12 + u].push_back(copy * 12 + v);
    }
  }
  auto single = ExactMis(one);
  auto whole = ExactMis(four);
  ASSERT_TRUE(single.ok() && whole.ok());
  EXPECT_EQ(whole->vertices.size(), 4 * single->vertices.size());
  EXPECT_TRUE(IsIndependentSet(four, whole->vertices));
  EXPECT_LE(whole->branch_nodes, 4 * single->branch_nodes);
}

TEST(ExactMisTest, ComponentBoundTightensAsComponentsResolve) {
  // A true global upper bound still early-stops per component: two C5s
  // with bound 4 (the exact total) must come back optimal.
  Adj adj(10);
  auto add = [&adj](uint32_t u, uint32_t v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  for (uint32_t i = 0; i < 5; ++i) {
    add(i, (i + 1) % 5);
    add(5 + i, 5 + (i + 1) % 5);
  }
  for (auto& l : adj) std::sort(l.begin(), l.end());
  auto result = ExactMis(adj, Deadline::Unlimited(), /*upper_bound=*/4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->vertices.size(), 4u);
  EXPECT_TRUE(IsIndependentSet(adj, result->vertices));
}

TEST(ExactMisTest, AtLeastAsGoodAsGreedy) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Adj adj = RandomAdjacency(40, 0.2, seed);
    auto exact = ExactMis(adj);
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(exact->vertices.size(), GreedyMinDegreeMis(adj).size());
  }
}

TEST(ExactMisTest, FreeVertexListAvoidsQuadraticScans) {
  // Regression for the free-vertex list (before it, pivot selection and
  // every reduction pass scanned all n vertices per branch node): a long
  // pendant path welded to a small hard core. The path reduces away at the
  // root, after which every branch node must touch only the ~core-sized
  // free list — under the old full scans free_scan_steps would be about
  // branch_nodes * n, orders of magnitude above the bound asserted here.
  constexpr uint32_t kPath = 8000;  // even, so MIS(path) = kPath / 2
  constexpr uint32_t kCore = 20;
  const Adj core = RandomAdjacency(kCore, 0.3, 123);
  Adj adj(kPath + kCore);
  auto add = [&adj](uint32_t u, uint32_t v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
  };
  for (uint32_t i = 0; i + 1 < kPath; ++i) add(i, i + 1);
  add(kPath - 1, kPath);  // weld the path's far end onto core vertex 0
  for (uint32_t u = 0; u < kCore; ++u) {
    for (uint32_t v : core[u]) {
      if (v > u) add(kPath + u, kPath + v);
    }
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());

  auto result = ExactMis(adj);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsIndependentSet(adj, result->vertices));
  // An even pendant path contributes exactly kPath/2 on top of the core
  // optimum (its optimum avoids the welded endpoint).
  EXPECT_EQ(result->vertices.size(), kPath / 2 + BruteForceMisSize(core));
  ASSERT_GE(result->branch_nodes, 1u);
  // Root-level reduction may legitimately walk the full free list a few
  // times while the path collapses; after that, scans must be core-sized.
  const uint64_t n = kPath + kCore;
  EXPECT_LT(result->free_scan_steps, 10 * n + result->branch_nodes * 500)
      << "branch_nodes=" << result->branch_nodes
      << " — per-branch scans look O(n) again";
}

TEST(ExactMisTest, BranchBudgetAbortsDeterministically) {
  // The branch budget (unlike a wall-clock deadline) must be a pure
  // function of the instance: identical runs agree on abort vs success,
  // and a budget one below the instance's true branch count aborts.
  Adj adj = RandomAdjacency(60, 0.25, 31);
  auto full = ExactMis(adj);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full->branch_nodes, 2u);

  ExactMisParams exact_fit;
  exact_fit.max_branch_nodes = full->branch_nodes;
  auto fits = ExactMis(adj, exact_fit);
  ASSERT_TRUE(fits.ok());
  EXPECT_EQ(fits->vertices, full->vertices);

  ExactMisParams starved;
  starved.max_branch_nodes = full->branch_nodes - 1;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto aborted = ExactMis(adj, starved);
    EXPECT_FALSE(aborted.ok()) << "attempt " << attempt;
  }
}

}  // namespace
}  // namespace dkc
