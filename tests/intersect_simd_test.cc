// Byte-identity sweep for the dispatched intersection and kernel-row
// primitives: every compiled level (scalar / SSE4.2 / AVX2 where the host
// supports it), the galloping path, and the retired-but-exposed branch-free
// merge must produce identical bytes on identical inputs — the dispatch
// level is only ever allowed to change speed. The sweep is exhaustive over
// small sizes (0..80 on both sides) because that is where the block
// kernels' tail handling, both-advance break, and store slack live.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "clique/intersect_simd.h"
#include "gtest/gtest.h"
#include "util/cpu.h"

namespace dkc {
namespace {

using simd_internal::AndPopcountScalar;
using simd_internal::GatherValidScalar;
using simd_internal::MergeScalar;
using simd_internal::PopcountScalar;

std::vector<NodeId> Reference(const std::vector<NodeId>& a,
                              const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Sorted unique draw of `n` values from [base, base + universe), seeded
// deterministically per (n, salt) so failures replay.
std::vector<NodeId> Draw(size_t n, uint64_t salt, NodeId base,
                         NodeId universe) {
  std::mt19937_64 rng(0x1D5EC7ULL * (n + 1) + salt);
  std::vector<NodeId> pool(universe);
  for (NodeId i = 0; i < universe; ++i) pool[i] = base + i;
  std::shuffle(pool.begin(), pool.end(), rng);
  pool.resize(std::min<size_t>(n, pool.size()));
  std::sort(pool.begin(), pool.end());
  return pool;
}

// Every level the host can actually run. kScalar is always present, so the
// sweep is meaningful even on a non-SIMD host (it still pins galloping and
// branch-free against the reference).
std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (CpuSimdLevel() >= SimdLevel::kSse42) levels.push_back(SimdLevel::kSse42);
  if (CpuSimdLevel() >= SimdLevel::kAvx2) levels.push_back(SimdLevel::kAvx2);
  return levels;
}

class LevelOverrideGuard {
 public:
  explicit LevelOverrideGuard(SimdLevel level) { SetSimdLevelOverride(level); }
  ~LevelOverrideGuard() { ClearSimdLevelOverride(); }
};

void ExpectAllVariantsMatch(const std::vector<NodeId>& a,
                            const std::vector<NodeId>& b,
                            const std::string& what) {
  const std::vector<NodeId> want = Reference(a, b);
  std::vector<NodeId> got;
  for (SimdLevel level : AvailableLevels()) {
    LevelOverrideGuard guard(level);
    IntersectSorted(a, b, &got);
    EXPECT_EQ(got, want) << what << " IntersectSorted@" << SimdLevelName(level)
                         << " na=" << a.size() << " nb=" << b.size();
    IntersectSorted(b, a, &got);
    EXPECT_EQ(got, want) << what << " IntersectSorted(swapped)@"
                         << SimdLevelName(level) << " na=" << a.size()
                         << " nb=" << b.size();
  }
  // Raw kernels, bypassing the gallop-skew front end.
  MergeScalar(a.data(), a.size(), b.data(), b.size(), &got);
  EXPECT_EQ(got, want) << what << " MergeScalar na=" << a.size()
                       << " nb=" << b.size();
#if DKC_X86_SIMD
  if (CpuSimdLevel() >= SimdLevel::kSse42) {
    simd_internal::MergeSse(a.data(), a.size(), b.data(), b.size(), &got);
    EXPECT_EQ(got, want) << what << " MergeSse na=" << a.size()
                         << " nb=" << b.size();
    simd_internal::MergeSse(b.data(), b.size(), a.data(), a.size(), &got);
    EXPECT_EQ(got, want) << what << " MergeSse(swapped) na=" << a.size()
                         << " nb=" << b.size();
  }
  if (CpuSimdLevel() >= SimdLevel::kAvx2) {
    simd_internal::MergeAvx2(a.data(), a.size(), b.data(), b.size(), &got);
    EXPECT_EQ(got, want) << what << " MergeAvx2 na=" << a.size()
                         << " nb=" << b.size();
    simd_internal::MergeAvx2(b.data(), b.size(), a.data(), a.size(), &got);
    EXPECT_EQ(got, want) << what << " MergeAvx2(swapped) na=" << a.size()
                         << " nb=" << b.size();
  }
#endif
  IntersectSortedBranchFree(a, b, &got);
  EXPECT_EQ(got, want) << what << " BranchFree na=" << a.size()
                       << " nb=" << b.size();
}

// Exhaustive small-size sweep: all (na, nb) in [0, 80]^2 from a tight
// universe (high collision rate — every block compare finds hits and the
// left-pack tables see varied masks). 81x81 pairs x all variants.
TEST(IntersectByteIdentityTest, ExhaustiveSmallSizes) {
  for (size_t na = 0; na <= 80; ++na) {
    for (size_t nb = 0; nb <= 80; ++nb) {
      const std::vector<NodeId> a = Draw(na, 7 * nb + 1, 0, 128);
      const std::vector<NodeId> b = Draw(nb, 13 * na + 2, 0, 128);
      const std::vector<NodeId> want = Reference(a, b);
      std::vector<NodeId> got;
      for (SimdLevel level : AvailableLevels()) {
        LevelOverrideGuard guard(level);
        IntersectSorted(a, b, &got);
        ASSERT_EQ(got, want) << "IntersectSorted@" << SimdLevelName(level)
                             << " na=" << na << " nb=" << nb;
      }
#if DKC_X86_SIMD
      if (CpuSimdLevel() >= SimdLevel::kSse42) {
        simd_internal::MergeSse(a.data(), na, b.data(), nb, &got);
        ASSERT_EQ(got, want) << "MergeSse na=" << na << " nb=" << nb;
      }
      if (CpuSimdLevel() >= SimdLevel::kAvx2) {
        simd_internal::MergeAvx2(a.data(), na, b.data(), nb, &got);
        ASSERT_EQ(got, want) << "MergeAvx2 na=" << na << " nb=" << nb;
      }
#endif
      IntersectSortedBranchFree(a, b, &got);
      ASSERT_EQ(got, want) << "BranchFree na=" << na << " nb=" << nb;
    }
  }
}

// Structured boundary inputs the random sweep is unlikely to hit: identical
// lists, fully disjoint interleaves, shared prefixes/suffixes, single
// straddling match — each at block-boundary sizes (multiples of 4/8 +/- 1).
TEST(IntersectByteIdentityTest, StructuredBoundaryInputs) {
  const size_t sizes[] = {1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63,
                          64, 65};
  for (size_t n : sizes) {
    std::vector<NodeId> evens, odds, all;
    for (size_t i = 0; i < n; ++i) {
      evens.push_back(static_cast<NodeId>(2 * i));
      odds.push_back(static_cast<NodeId>(2 * i + 1));
      all.push_back(static_cast<NodeId>(i));
    }
    ExpectAllVariantsMatch(all, all, "identical");
    ExpectAllVariantsMatch(evens, odds, "disjoint-interleaved");
    // Shared prefix, disjoint tails.
    std::vector<NodeId> pre_a = all, pre_b = all;
    pre_a.push_back(static_cast<NodeId>(n + 10));
    pre_b.push_back(static_cast<NodeId>(n + 20));
    ExpectAllVariantsMatch(pre_a, pre_b, "shared-prefix");
    // One match at the very last lane of the last full block.
    std::vector<NodeId> lo = all;
    std::vector<NodeId> hi;
    for (size_t i = 0; i < n; ++i) {
      hi.push_back(static_cast<NodeId>(n - 1 + i));
    }
    ExpectAllVariantsMatch(lo, hi, "single-straddle");
  }
}

// Values at the top of the NodeId range: the block-advance comparisons are
// scalar unsigned and the lane compares are equality-only, so ids near
// 2^32 - 1 must behave exactly like small ones.
TEST(IntersectByteIdentityTest, MaxNodeIdValues) {
  const NodeId top = std::numeric_limits<NodeId>::max();
  for (size_t n : {4u, 8u, 9u, 16u, 33u}) {
    std::vector<NodeId> a, b;
    for (size_t i = 0; i < n; ++i) {
      a.push_back(top - static_cast<NodeId>(2 * (n - i) - 2));
      b.push_back(top - static_cast<NodeId>(3 * (n - i) - 3));
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    ExpectAllVariantsMatch(a, b, "max-nodeid");
  }
  // The literal extremes in one list.
  const std::vector<NodeId> extremes = {0, 1, top - 1, top};
  ExpectAllVariantsMatch(extremes, extremes, "extremes-identical");
  const std::vector<NodeId> other = {1, 2, top};
  ExpectAllVariantsMatch(extremes, other, "extremes-partial");
}

// Exactly the kGallopSkew boundary: small * kGallopSkew == large flips
// IntersectSorted from the dispatched merge to galloping. Both sides of the
// flip (and the boundary itself) must agree with the reference at every
// level.
TEST(IntersectByteIdentityTest, GallopSkewBoundary) {
  for (size_t small_n : {1u, 2u, 5u, 8u}) {
    for (long delta : {-1L, 0L, 1L}) {
      const size_t large_n = static_cast<size_t>(
          static_cast<long>(small_n * kGallopSkew) + delta);
      const std::vector<NodeId> small_set = Draw(small_n, 5, 0, 4096);
      const std::vector<NodeId> large_set =
          Draw(large_n, 11, 0, static_cast<NodeId>(4 * large_n + 8));
      ExpectAllVariantsMatch(small_set, large_set, "gallop-boundary");
    }
  }
}

// Larger randomized spot-check so the block loop runs many iterations with
// mixed advance patterns (a-only, b-only, both) before the tail.
TEST(IntersectByteIdentityTest, LargeRandomSpotCheck) {
  for (uint64_t salt = 0; salt < 4; ++salt) {
    const std::vector<NodeId> a = Draw(1500, salt, 0, 5000);
    const std::vector<NodeId> b = Draw(1400, salt + 100, 0, 5000);
    ExpectAllVariantsMatch(a, b, "large-random");
  }
}

// ---------------------------------------------------------------- words ---

TEST(WordPrimitiveByteIdentityTest, AndPopcountAllLevels) {
  std::mt19937_64 rng(0xC0DE);
  for (size_t words : {0u, 1u, 3u, 4u, 7u, 8u, 9u, 16u, 63u, 64u, 65u}) {
    std::vector<uint64_t> a(words), b(words);
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    std::vector<uint64_t> want_out(words);
    const Count want =
        AndPopcountScalar(a.data(), b.data(), want_out.data(), words);
    for (SimdLevel level : AvailableLevels()) {
      LevelOverrideGuard guard(level);
      std::vector<uint64_t> out(words, ~uint64_t{0});
      const Count got = AndPopcountWords(a.data(), b.data(), out.data(), words);
      EXPECT_EQ(got, want) << "words=" << words << " @"
                           << SimdLevelName(level);
      EXPECT_EQ(out, want_out) << "words=" << words << " @"
                               << SimdLevelName(level);
      // The documented aliasing allowance: out == a (the kernel's
      // cand &= row runs in place).
      std::vector<uint64_t> in_place = a;
      const Count got2 =
          AndPopcountWords(in_place.data(), b.data(), in_place.data(), words);
      EXPECT_EQ(got2, want) << "in-place words=" << words;
      EXPECT_EQ(in_place, want_out) << "in-place words=" << words;
    }
  }
}

TEST(WordPrimitiveByteIdentityTest, PopcountAllLevels) {
  std::mt19937_64 rng(0xFACE);
  for (size_t n : {0u, 1u, 5u, 8u, 12u, 64u, 100u}) {
    std::vector<uint64_t> words(n);
    for (auto& w : words) w = rng();
    const Count want = PopcountScalar(words.data(), n);
    for (SimdLevel level : AvailableLevels()) {
      LevelOverrideGuard guard(level);
      EXPECT_EQ(PopcountWords(words.data(), n), want)
          << "n=" << n << " @" << SimdLevelName(level);
    }
  }
  // All-ones / all-zeros saturate the nibble LUT accumulator paths.
  std::vector<uint64_t> ones(64, ~uint64_t{0});
  std::vector<uint64_t> zeros(64, 0);
  for (SimdLevel level : AvailableLevels()) {
    LevelOverrideGuard guard(level);
    EXPECT_EQ(PopcountWords(ones.data(), ones.size()), Count{64 * 64});
    EXPECT_EQ(PopcountWords(zeros.data(), zeros.size()), Count{0});
  }
}

TEST(WordPrimitiveByteIdentityTest, GatherValidAllLevels) {
  std::mt19937_64 rng(0xBEEF);
  constexpr uint32_t kEpoch = 7;
  constexpr size_t kUniverse = 512;
  std::vector<uint32_t> stamps(kUniverse);
  std::vector<NodeId> local_of(kUniverse);
  for (size_t v = 0; v < kUniverse; ++v) {
    stamps[v] = (rng() % 3 == 0) ? kEpoch : static_cast<uint32_t>(rng() % 6);
    local_of[v] = static_cast<NodeId>(rng() % 4096);
  }
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 40u, 100u}) {
    std::vector<NodeId> nbrs(n);
    for (auto& x : nbrs) x = static_cast<NodeId>(rng() % kUniverse);
    std::vector<NodeId> want(n, 0);
    const size_t want_n = GatherValidScalar(nbrs.data(), n, stamps.data(),
                                            kEpoch, local_of.data(),
                                            want.data());
    want.resize(want_n);
    for (SimdLevel level : AvailableLevels()) {
      LevelOverrideGuard guard(level);
      std::vector<NodeId> got(n, 0);
      const size_t got_n =
          GatherValidLocalIds(nbrs.data(), n, stamps.data(), kEpoch,
                              local_of.data(), got.data());
      got.resize(got_n);
      EXPECT_EQ(got, want) << "n=" << n << " @" << SimdLevelName(level);
    }
  }
  // All-invalid and all-valid blocks (the mask==0 skip and the full
  // left-pack).
  std::vector<NodeId> nbrs(32);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    nbrs[i] = static_cast<NodeId>(i);
  }
  std::vector<uint32_t> none(kUniverse, 0), every(kUniverse, kEpoch);
  for (SimdLevel level : AvailableLevels()) {
    LevelOverrideGuard guard(level);
    std::vector<NodeId> out(nbrs.size(), 0);
    EXPECT_EQ(GatherValidLocalIds(nbrs.data(), nbrs.size(), none.data(),
                                  kEpoch, local_of.data(), out.data()),
              0u);
    EXPECT_EQ(GatherValidLocalIds(nbrs.data(), nbrs.size(), every.data(),
                                  kEpoch, local_of.data(), out.data()),
              nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(out[i], local_of[i]) << i;
    }
  }
}

// ------------------------------------------------------------- dispatch ---

TEST(SimdDispatchTest, OverrideClampsAndRestores) {
  const SimdLevel cpu = CpuSimdLevel();
  SetSimdLevelOverride(SimdLevel::kAvx2);
  EXPECT_LE(ActiveSimdLevel(), cpu);  // never above the host's capability
  SetSimdLevelOverride(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ClearSimdLevelOverride();
  EXPECT_LE(ActiveSimdLevel(), cpu);
#if defined(DKC_PORTABLE)
  EXPECT_EQ(cpu, SimdLevel::kScalar);
#endif
}

TEST(SimdDispatchTest, LevelNamesRoundTrip) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse42), "sse4.2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

// ------------------------------------------------------------- aliasing ---

// Regression for the aliasing contract (the bug class this PR's sweep was
// chartered to close): out sharing storage with an input reads freed or
// clobbered memory once the implementation resizes out. Debug builds must
// refuse loudly rather than return garbage.
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(IntersectAliasingDeathTest, OutAliasingInputAsserts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  std::vector<NodeId> buf = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::span<const NodeId> view(buf.data(), 4);
  std::vector<NodeId> other = {2, 4, 6, 8};
  EXPECT_DEATH(IntersectSorted(view, other, &buf), "must not alias");
  EXPECT_DEATH(IntersectSorted(other, view, &buf), "must not alias");
  EXPECT_DEATH(IntersectSortedBranchFree(view, other, &buf),
               "must not alias");
}
#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace dkc
