#include "core/basic_framework.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(BasicFrameworkTest, RejectsKBelow3) {
  BasicOptions options;
  options.k = 2;
  auto result = SolveBasic(PaperFig2Graph(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(BasicFrameworkTest, EmptyGraphYieldsEmptySet) {
  BasicOptions options;
  options.k = 3;
  auto result = SolveBasic(Graph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(BasicFrameworkTest, PaperExample2Trace) {
  // Example 2 setting: identity ordering on the Fig. 2 graph. The paper's
  // walkthrough happens to pick (v6,v5,v3) at root v6 and ends with |S|=2;
  // FindOne's tie-break is unspecified there. Our DFS visits N+(u) in
  // ascending node id, so root v6 yields (v6,v3,v1), after which (v8,v7,v5)
  // and (v9,v2,v4) are found — a maximum packing of size 3. Lock the trace.
  Graph g = PaperFig2Graph();
  BasicOptions options;
  options.k = 3;
  options.order = NodeOrderKind::kIdentity;
  auto result = SolveBasic(g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  std::vector<std::vector<NodeId>> cliques;
  for (CliqueId c = 0; c < result->set.size(); ++c) {
    auto nodes = result->set.Get(c);
    cliques.emplace_back(nodes.begin(), nodes.end());
  }
  auto canonical = testing::Canonicalize(cliques);
  EXPECT_TRUE(canonical.count({0, 2, 5}));  // v1, v3, v6
  EXPECT_TRUE(canonical.count({4, 6, 7}));  // v5, v7, v8
  EXPECT_TRUE(canonical.count({1, 3, 8}));  // v2, v4, v9
}

TEST(BasicFrameworkTest, TriangleFreeGraphYieldsNothing) {
  GraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 4; v < 8; ++v) b.AddEdge(u, v);
  }
  BasicOptions options;
  options.k = 3;
  auto result = SolveBasic(b.Build(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(BasicFrameworkTest, RecoversPlantedPackingExactly) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 8;
  spec.k = 4;
  spec.filler_nodes = 30;
  Rng rng(70);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  BasicOptions options;
  options.k = 4;
  auto result = SolveBasic(planted->graph, options);
  ASSERT_TRUE(result.ok());
  // Planted cliques are disjoint and the filler is clique-free, so even the
  // greedy framework must find all of them.
  EXPECT_EQ(result->size(), planted->planted_count);
  EXPECT_TRUE(VerifySolution(planted->graph, result->set).ok());
}

TEST(BasicFrameworkTest, ExpiredBudgetIsOot) {
  Graph g = testing::RandomGraph(300, 0.2, /*seed=*/71);
  BasicOptions options;
  options.k = 4;
  options.budget.time_ms = 0.000001;
  auto result = SolveBasic(g, options);
  // With a sub-microsecond budget the deadline check must fire.
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded());
}

TEST(BasicFrameworkTest, StatsArePopulated) {
  Graph g = testing::RandomGraph(100, 0.2, /*seed=*/72);
  BasicOptions options;
  options.k = 3;
  auto result = SolveBasic(g, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.init_ms, 0.0);
  EXPECT_GE(result->stats.compute_ms, 0.0);
  EXPECT_GT(result->stats.structure_bytes, 0);
}

// Property: for any graph, ordering, and k, the output is a valid maximal
// disjoint k-clique set (maximality is what Theorem 3's k-approximation
// rests on).
class BasicFrameworkSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, int, NodeOrderKind>> {};

TEST_P(BasicFrameworkSweep, OutputIsValidAndMaximal) {
  const auto [n, p, k, order] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 37 + n + k);
    BasicOptions options;
    options.k = k;
    options.order = order;
    auto result = SolveBasic(g, options);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(VerifySolution(g, result->set).ok())
        << VerifySolution(g, result->set).ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasicFrameworkSweep,
    ::testing::Combine(::testing::Values(20, 40), ::testing::Values(0.2, 0.4),
                       ::testing::Values(3, 4, 5),
                       ::testing::Values(NodeOrderKind::kIdentity,
                                         NodeOrderKind::kDegree,
                                         NodeOrderKind::kDegeneracy)));

TEST(BasicFrameworkTest, KApproximationHolds) {
  // Theorem 3: |OPT| <= k * |S| for any maximal S.
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph g = testing::RandomGraph(18, 0.45, seed + 700);
    const int k = 3;
    BasicOptions options;
    options.k = k;
    auto result = SolveBasic(g, options);
    ASSERT_TRUE(result.ok());
    const size_t optimal = testing::BruteForceMaxDisjointPacking(g, k);
    EXPECT_LE(optimal, static_cast<size_t>(k) * result->size());
    if (optimal > 0) {
      EXPECT_GE(result->size(), 1u);
    }
  }
}

}  // namespace
}  // namespace dkc
