#include "dynamic/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(SampleEdgesTest, SamplesDistinctExistingEdges) {
  Graph g = testing::RandomGraph(40, 0.2, /*seed=*/120);
  Rng rng(1);
  auto sample = SampleEdges(g, 30, rng);
  EXPECT_EQ(sample.size(), 30u);
  std::set<Edge> seen;
  for (auto [u, v] : sample) {
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_TRUE(seen.insert({std::min(u, v), std::max(u, v)}).second)
        << "duplicate edge sampled";
  }
}

TEST(SampleEdgesTest, ClampsToEdgeCount) {
  Graph g = testing::RandomGraph(10, 0.3, /*seed=*/121);
  Rng rng(2);
  auto sample = SampleEdges(g, 100000, rng);
  EXPECT_EQ(sample.size(), g.num_edges());
}

TEST(SampleEdgesTest, DeterministicPerSeed) {
  Graph g = testing::RandomGraph(30, 0.3, /*seed=*/122);
  Rng rng1(7), rng2(7);
  EXPECT_EQ(SampleEdges(g, 10, rng1), SampleEdges(g, 10, rng2));
}

TEST(RemoveEdgesTest, RemovesExactlyTheGivenEdges) {
  Graph g = testing::RandomGraph(30, 0.3, /*seed=*/123);
  Rng rng(3);
  auto victims = SampleEdges(g, 15, rng);
  Graph pruned = RemoveEdges(g, victims);
  EXPECT_EQ(pruned.num_edges(), g.num_edges() - 15);
  for (auto [u, v] : victims) EXPECT_FALSE(pruned.HasEdge(u, v));
}

TEST(RemoveEdgesTest, KeepsNodeCount) {
  Graph g = testing::RandomGraph(30, 0.3, /*seed=*/124);
  Rng rng(4);
  Graph pruned = RemoveEdges(g, SampleEdges(g, 5, rng));
  EXPECT_EQ(pruned.num_nodes(), g.num_nodes());
}

TEST(MixedWorkloadTest, ShapeAndConsistency) {
  Graph g = testing::RandomGraph(60, 0.25, /*seed=*/125);
  Rng rng(5);
  MixedWorkload w = MakeMixedWorkload(g, 20, 20, rng);
  EXPECT_EQ(w.ops.size(), 40u);
  EXPECT_EQ(w.prepared.num_edges(), g.num_edges() - 20);

  size_t inserts = 0, deletes = 0;
  for (const auto& op : w.ops) {
    if (op.is_insert) {
      ++inserts;
      // Insertions re-add edges that were stripped from the prepared graph.
      EXPECT_FALSE(w.prepared.HasEdge(op.edge.first, op.edge.second));
      EXPECT_TRUE(g.HasEdge(op.edge.first, op.edge.second));
    } else {
      ++deletes;
      EXPECT_TRUE(w.prepared.HasEdge(op.edge.first, op.edge.second));
    }
  }
  EXPECT_EQ(inserts, 20u);
  EXPECT_EQ(deletes, 20u);
}

TEST(MixedWorkloadTest, OpsAreApplicableInOrder) {
  Graph g = testing::RandomGraph(50, 0.3, /*seed=*/126);
  Rng rng(6);
  MixedWorkload w = MakeMixedWorkload(g, 15, 15, rng);
  DynamicGraph dyn(w.prepared);
  for (const auto& op : w.ops) {
    if (op.is_insert) {
      EXPECT_TRUE(dyn.InsertEdge(op.edge.first, op.edge.second));
    } else {
      EXPECT_TRUE(dyn.DeleteEdge(op.edge.first, op.edge.second));
    }
  }
  // Net effect: inserts restore stripped edges, deletes remove others.
  EXPECT_EQ(dyn.num_edges(), g.num_edges() - 15);
}

TEST(MixedWorkloadTest, ClampsWhenGraphTooSmall) {
  Graph g = testing::RandomGraph(8, 0.3, /*seed=*/127);
  Rng rng(7);
  MixedWorkload w = MakeMixedWorkload(g, 1000, 1000, rng);
  EXPECT_EQ(w.ops.size(), g.num_edges());
}

TEST(ChurnStreamTest, OpsAreValidInReplayOrderAndDeterministic) {
  Graph g = testing::RandomGraph(40, 0.15, /*seed=*/128);
  Rng rng(9);
  const auto ops = MakeChurnStream(g, 300, rng);
  ASSERT_EQ(ops.size(), 300u);
  // Replaying against a mirror must see every insert hit an absent pair
  // and every delete hit a live edge — the generator's contract.
  DynamicGraph dyn(g);
  size_t inserts = 0;
  for (const auto& op : ops) {
    if (op.is_insert) {
      EXPECT_TRUE(dyn.InsertEdge(op.edge.first, op.edge.second));
      ++inserts;
    } else {
      EXPECT_TRUE(dyn.DeleteEdge(op.edge.first, op.edge.second));
    }
  }
  EXPECT_GT(inserts, 0u);
  EXPECT_LT(inserts, ops.size());
  // Same rng state, same stream.
  Rng replay(9);
  const auto again = MakeChurnStream(g, 300, replay);
  ASSERT_EQ(again.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(again[i].is_insert, ops[i].is_insert);
    EXPECT_EQ(again[i].edge, ops[i].edge);
  }
}

TEST(ChurnStreamTest, SaturatedMirrorForcesDeletionsInsteadOfSpinning) {
  // 5 nodes = 10 possible edges; the 0.55 insert bias quickly saturates
  // the mirror, which must flip to deletions instead of rejection-sampling
  // forever for an absent pair.
  Graph g = testing::RandomGraph(5, 0.5, /*seed=*/129);
  Rng rng(11);
  const auto ops = MakeChurnStream(g, 500, rng);
  ASSERT_EQ(ops.size(), 500u);
  DynamicGraph dyn(g);
  for (const auto& op : ops) {
    if (op.is_insert) {
      ASSERT_TRUE(dyn.InsertEdge(op.edge.first, op.edge.second));
    } else {
      ASSERT_TRUE(dyn.DeleteEdge(op.edge.first, op.edge.second));
    }
  }
}

TEST(ChurnStreamTest, DegenerateGraphsYieldEmptyStreams) {
  Rng rng(12);
  EXPECT_TRUE(MakeChurnStream(Graph(), 10, rng).empty());
}

// Recomputes the generator's node pool: the `hot` highest-degree nodes
// (ties by id) plus their neighborhoods.
std::set<NodeId> HotPool(const Graph& g, size_t hot) {
  std::vector<NodeId> by_degree(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) by_degree[u] = u;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](NodeId a, NodeId b) {
                     return g.Degree(a) != g.Degree(b)
                                ? g.Degree(a) > g.Degree(b)
                                : a < b;
                   });
  hot = std::min(hot, by_degree.size());
  std::set<NodeId> pool(by_degree.begin(), by_degree.begin() + hot);
  for (size_t i = 0; i < hot; ++i) {
    for (NodeId w : g.Neighbors(by_degree[i])) pool.insert(w);
  }
  return pool;
}

TEST(HotStreamTest, OpsAreValidInReplayOrderAndStayInsideThePool) {
  Graph g = testing::RandomGraph(60, 0.12, /*seed=*/130);
  Rng rng(13);
  const auto ops = MakeHotNeighborhoodStream(g, 400, /*hot_nodes=*/6, rng);
  ASSERT_EQ(ops.size(), 400u);
  const std::set<NodeId> pool = HotPool(g, 6);
  // The pool is a strict subset of the graph — otherwise "concentrated"
  // means nothing and the test degenerates into the churn-stream one.
  ASSERT_LT(pool.size(), g.num_nodes());
  DynamicGraph dyn(g);
  size_t inserts = 0;
  for (const auto& op : ops) {
    EXPECT_TRUE(pool.count(op.edge.first)) << "node " << op.edge.first;
    EXPECT_TRUE(pool.count(op.edge.second)) << "node " << op.edge.second;
    if (op.is_insert) {
      ASSERT_TRUE(dyn.InsertEdge(op.edge.first, op.edge.second));
      ++inserts;
    } else {
      ASSERT_TRUE(dyn.DeleteEdge(op.edge.first, op.edge.second));
    }
  }
  EXPECT_GT(inserts, 0u);
  EXPECT_LT(inserts, ops.size());
}

TEST(HotStreamTest, DeterministicPerRngState) {
  Graph g = testing::RandomGraph(50, 0.15, /*seed=*/131);
  Rng rng1(14), rng2(14);
  const auto a = MakeHotNeighborhoodStream(g, 200, 8, rng1);
  const auto b = MakeHotNeighborhoodStream(g, 200, 8, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_insert, b[i].is_insert);
    EXPECT_EQ(a[i].edge, b[i].edge);
  }
}

TEST(HotStreamTest, TinyPoolSaturatesWithoutSpinning) {
  // One hot node with two neighbors: at most 3 pool pairs, so the insert
  // bias saturates almost immediately and the generator must keep
  // alternating instead of rejection-sampling forever.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  Graph g = b.Build();
  Rng rng(15);
  const auto ops = MakeHotNeighborhoodStream(g, 100, /*hot_nodes=*/1, rng);
  ASSERT_EQ(ops.size(), 100u);
  DynamicGraph dyn(g);
  for (const auto& op : ops) {
    if (op.is_insert) {
      ASSERT_TRUE(dyn.InsertEdge(op.edge.first, op.edge.second));
    } else {
      ASSERT_TRUE(dyn.DeleteEdge(op.edge.first, op.edge.second));
    }
  }
}

TEST(HotStreamTest, DegeneratePoolYieldsEmptyStream) {
  Rng rng(16);
  EXPECT_TRUE(MakeHotNeighborhoodStream(Graph(), 10, 4, rng).empty());
  // A single isolated node: pool of one, no pair to churn.
  GraphBuilder lone;
  lone.EnsureNode(0);
  Graph g = lone.Build();
  ASSERT_EQ(g.num_nodes(), 1u);
  EXPECT_TRUE(MakeHotNeighborhoodStream(g, 10, 4, rng).empty());
}

}  // namespace
}  // namespace dkc
