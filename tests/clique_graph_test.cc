#include "clique/clique_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/kclique.h"
#include "gen/named_graphs.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

CliqueStore MaterializeCliques(const Graph& g, int k) {
  Dag dag(g, DegeneracyOrdering(g));
  KCliqueEnumerator enumerator(dag, k);
  CliqueStore store(k);
  enumerator.ForEach([&](std::span<const NodeId> nodes) {
    store.Add(nodes);
    return true;
  });
  return store;
}

TEST(CliqueStoreTest, AddAndGet) {
  CliqueStore store(3);
  EXPECT_TRUE(store.empty());
  std::vector<NodeId> c1 = {5, 2, 9};
  std::vector<NodeId> c2 = {1, 0, 3};
  EXPECT_EQ(store.Add(c1), 0u);
  EXPECT_EQ(store.Add(c2), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(std::vector<NodeId>(store.Get(0).begin(), store.Get(0).end()), c1);
  EXPECT_EQ(std::vector<NodeId>(store.Get(1).begin(), store.Get(1).end()), c2);
}

TEST(CliqueStoreTest, MemoryGrowsWithContent) {
  CliqueStore store(4);
  std::vector<NodeId> c = {0, 1, 2, 3};
  for (int i = 0; i < 100; ++i) store.Add(c);
  EXPECT_GE(store.MemoryBytes(), 100 * 4 * static_cast<int64_t>(sizeof(NodeId)));
}

TEST(CliqueGraphTest, PaperFig3Structure) {
  // Fig. 3: the clique graph of the Fig. 2 graph is a path-like chain
  // C1-C2-C3-C4-C5-C6-C7 with extra chords; degree of C1 is 2 (Example 3).
  Graph g = PaperFig2Graph();
  CliqueStore store = MaterializeCliques(g, 3);
  ASSERT_EQ(store.size(), 7u);
  auto cg = CliqueGraph::Build(store, g.num_nodes());
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->num_cliques(), 7u);

  // Locate C1 = {v1,v3,v6} = {0,2,5} and check deg(C1) == 2.
  for (CliqueId c = 0; c < store.size(); ++c) {
    std::vector<NodeId> nodes(store.Get(c).begin(), store.Get(c).end());
    std::sort(nodes.begin(), nodes.end());
    if (nodes == std::vector<NodeId>{0, 2, 5}) {
      EXPECT_EQ(cg->Degree(c), 2u);
    }
  }
}

TEST(CliqueGraphTest, EdgesMatchPairwiseIntersectionDefinition) {
  Graph g = testing::RandomGraph(18, 0.5, /*seed=*/60);
  CliqueStore store = MaterializeCliques(g, 3);
  auto cg = CliqueGraph::Build(store, g.num_nodes());
  ASSERT_TRUE(cg.ok());
  for (CliqueId a = 0; a < store.size(); ++a) {
    for (CliqueId b = 0; b < store.size(); ++b) {
      if (a == b) continue;
      auto na = store.Get(a);
      auto nb = store.Get(b);
      bool shares = false;
      for (NodeId u : na) {
        for (NodeId v : nb) {
          if (u == v) shares = true;
        }
      }
      auto nbrs = cg->Neighbors(a);
      const bool adjacent =
          std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end();
      EXPECT_EQ(adjacent, shares) << "cliques " << a << "," << b;
    }
  }
}

TEST(CliqueGraphTest, AdjacencyIsSymmetricAndDeduplicated) {
  Graph g = testing::RandomGraph(16, 0.6, /*seed=*/61);
  CliqueStore store = MaterializeCliques(g, 4);  // shares >= 2 nodes often
  auto cg = CliqueGraph::Build(store, g.num_nodes());
  ASSERT_TRUE(cg.ok());
  Count total = 0;
  for (CliqueId c = 0; c < cg->num_cliques(); ++c) {
    auto nbrs = cg->Neighbors(c);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
    for (CliqueId d : nbrs) {
      auto back = cg->Neighbors(d);
      EXPECT_TRUE(std::find(back.begin(), back.end(), c) != back.end());
    }
    total += nbrs.size();
  }
  EXPECT_EQ(total, 2 * cg->num_edges());
}

TEST(CliqueGraphTest, DisjointCliquesYieldNoEdges) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 6;
  spec.k = 3;
  spec.filler_nodes = 0;
  spec.shuffle_ids = false;
  Rng rng(62);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  CliqueStore store = MaterializeCliques(planted->graph, 3);
  ASSERT_EQ(store.size(), 6u);
  auto cg = CliqueGraph::Build(store, planted->graph.num_nodes());
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->num_edges(), 0u);
}

TEST(CliqueGraphTest, TinyMemoryBudgetYieldsOom) {
  Graph g = testing::RandomGraph(40, 0.5, /*seed=*/63);
  CliqueStore store = MaterializeCliques(g, 3);
  ASSERT_GT(store.size(), 10u);
  MemoryBudget budget(64);  // absurdly small
  auto cg = CliqueGraph::Build(store, g.num_nodes(), &budget);
  ASSERT_FALSE(cg.ok());
  EXPECT_TRUE(cg.status().IsMemoryBudgetExceeded());
}

TEST(CliqueGraphTest, ExpiredDeadlineYieldsOot) {
  Graph g = testing::RandomGraph(40, 0.5, /*seed=*/64);
  CliqueStore store = MaterializeCliques(g, 3);
  auto cg = CliqueGraph::Build(store, g.num_nodes(), nullptr,
                               Deadline::AfterMillis(0));
  ASSERT_FALSE(cg.ok());
  EXPECT_TRUE(cg.status().IsTimeBudgetExceeded());
}

TEST(CliqueGraphTest, EmptyStore) {
  CliqueStore store(3);
  auto cg = CliqueGraph::Build(store, 10);
  ASSERT_TRUE(cg.ok());
  EXPECT_EQ(cg->num_cliques(), 0u);
  EXPECT_EQ(cg->num_edges(), 0u);
}

}  // namespace
}  // namespace dkc
