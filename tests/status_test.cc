#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace dkc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("k must be >= 3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be >= 3");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be >= 3");
}

TEST(StatusTest, NotFound) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
}

TEST(StatusTest, Corruption) {
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
}

TEST(StatusTest, IOError) {
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
}

TEST(StatusTest, NotSupported) {
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
}

TEST(StatusTest, Internal) {
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(StatusTest, TimeBudgetIsAbortedWithOotSubcode) {
  Status s = Status::TimeBudgetExceeded();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kAborted);
  EXPECT_TRUE(s.IsTimeBudgetExceeded());
  EXPECT_FALSE(s.IsMemoryBudgetExceeded());
  EXPECT_NE(s.ToString().find("OOT"), std::string::npos);
}

TEST(StatusTest, MemoryBudgetIsAbortedWithOomSubcode) {
  Status s = Status::MemoryBudgetExceeded();
  EXPECT_EQ(s.code(), Status::Code::kAborted);
  EXPECT_TRUE(s.IsMemoryBudgetExceeded());
  EXPECT_FALSE(s.IsTimeBudgetExceeded());
  EXPECT_NE(s.ToString().find("OOM"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndSubcode) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::InvalidArgument("a"), Status::InvalidArgument("b"));
  EXPECT_FALSE(Status::TimeBudgetExceeded() == Status::MemoryBudgetExceeded());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

TEST(StatusOrTest, HoldsMoveOnlyType) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, MoveConstructionPreservesValue) {
  StatusOr<std::string> original = std::string("payload");
  StatusOr<std::string> moved = std::move(original);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, "payload");
}

TEST(StatusOrTest, MoveConstructionPreservesError) {
  StatusOr<int> original = Status::TimeBudgetExceeded("slow");
  StatusOr<int> moved = std::move(original);
  EXPECT_FALSE(moved.ok());
  EXPECT_TRUE(moved.status().IsTimeBudgetExceeded());
  EXPECT_EQ(moved.status().message(), "slow");
}

TEST(StatusOrTest, ErrorRendersOotOomMarkers) {
  StatusOr<int> oot = Status::TimeBudgetExceeded();
  StatusOr<int> oom = Status::MemoryBudgetExceeded();
  EXPECT_NE(oot.status().ToString().find("(OOT)"), std::string::npos);
  EXPECT_NE(oom.status().ToString().find("(OOM)"), std::string::npos);
}

TEST(StatusOrTest, MutableAccessThroughReference) {
  StatusOr<std::string> v = std::string("ab");
  v.value() += "c";
  *v += "d";
  EXPECT_EQ(*v, "abcd");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::Corruption("bad"); };
  auto outer = [&]() -> Status {
    DKC_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), Status::Code::kCorruption);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto outer = []() -> Status {
    DKC_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace dkc
