#include "gen/generators.h"

#include <gtest/gtest.h>

#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

// ------------------------------------------------------- Watts-Strogatz
TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(1);
  auto g = WattsStrogatz(20, 4, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 20u);
  EXPECT_EQ(g->num_edges(), 40u);  // n * degree / 2
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(g->Degree(u), 4u);
    EXPECT_TRUE(g->HasEdge(u, (u + 1) % 20));
    EXPECT_TRUE(g->HasEdge(u, (u + 2) % 20));
  }
}

TEST(WattsStrogatzTest, RingLatticeIsTriangleRich) {
  Rng rng(2);
  auto g = WattsStrogatz(30, 6, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(testing::BruteForceKCliques(*g, 3).size(), 0u);
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeCountClose) {
  Rng rng(3);
  auto g = WattsStrogatz(200, 8, 0.2, rng);
  ASSERT_TRUE(g.ok());
  // Rewiring can only lose edges to collisions; losses are few.
  EXPECT_LE(g->num_edges(), 800u);
  EXPECT_GE(g->num_edges(), 750u);
}

TEST(WattsStrogatzTest, OddDegreeRejected) {
  Rng rng(4);
  EXPECT_FALSE(WattsStrogatz(10, 3, 0.1, rng).ok());
}

TEST(WattsStrogatzTest, DegreeGeNRejected) {
  Rng rng(5);
  EXPECT_FALSE(WattsStrogatz(10, 10, 0.1, rng).ok());
}

TEST(WattsStrogatzTest, BadBetaRejected) {
  Rng rng(6);
  EXPECT_FALSE(WattsStrogatz(10, 4, -0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(10, 4, 1.5, rng).ok());
}

TEST(WattsStrogatzTest, DeterministicPerSeed) {
  Rng rng1(7), rng2(7);
  auto a = WattsStrogatz(50, 6, 0.3, rng1);
  auto b = WattsStrogatz(50, 6, 0.3, rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  for (NodeId u = 0; u < 50; ++u) EXPECT_EQ(a->Degree(u), b->Degree(u));
}

// --------------------------------------------------------- Erdos-Renyi
TEST(ErdosRenyiTest, PZeroIsEmpty) {
  Rng rng(10);
  auto g = ErdosRenyi(50, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 50u);
  EXPECT_EQ(g->num_edges(), 0u);
}

TEST(ErdosRenyiTest, POneIsComplete) {
  Rng rng(11);
  auto g = ErdosRenyi(20, 1.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 20u * 19 / 2);
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(12);
  auto g = ErdosRenyi(300, 0.1, rng);
  ASSERT_TRUE(g.ok());
  const double expected = 0.1 * 300 * 299 / 2;
  EXPECT_NEAR(static_cast<double>(g->num_edges()), expected, expected * 0.15);
}

TEST(ErdosRenyiTest, BadPRejected) {
  Rng rng(13);
  EXPECT_FALSE(ErdosRenyi(10, -0.5, rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.5, rng).ok());
}

TEST(ErdosRenyiTest, SingleNode) {
  Rng rng(14);
  auto g = ErdosRenyi(1, 0.5, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 1u);
  EXPECT_EQ(g->num_edges(), 0u);
}

// ----------------------------------------------------- Barabasi-Albert
TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(20);
  const NodeId n = 100;
  const Count attach = 3;
  auto g = BarabasiAlbert(n, attach, rng);
  ASSERT_TRUE(g.ok());
  // Seed clique of attach+1 nodes, then attach edges per new node.
  const Count expected =
      (attach + 1) * attach / 2 + (n - attach - 1) * attach;
  EXPECT_EQ(g->num_edges(), expected);
}

TEST(BarabasiAlbertTest, HeavyTail) {
  Rng rng(21);
  auto g = BarabasiAlbert(500, 2, rng);
  ASSERT_TRUE(g.ok());
  // Preferential attachment: max degree far above the mean.
  const double mean = 2.0 * g->num_edges() / g->num_nodes();
  EXPECT_GT(static_cast<double>(g->MaxDegree()), 3 * mean);
}

TEST(BarabasiAlbertTest, InvalidParamsRejected) {
  Rng rng(22);
  EXPECT_FALSE(BarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, rng).ok());
}

// ----------------------------------------------------- Planted cliques
TEST(PlantedCliquesTest, PlantedPackingIsExactOptimum) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 5;
  spec.k = 3;
  spec.filler_nodes = 20;
  spec.noise_p = 0.0;
  Rng rng(30);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  EXPECT_EQ(planted->planted_count, 5u);
  EXPECT_EQ(testing::BruteForceMaxDisjointPacking(planted->graph, 3), 5u);
}

TEST(PlantedCliquesTest, FillerIsCliqueFree) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 0;
  spec.k = 4;
  spec.filler_nodes = 40;
  Rng rng(31);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  EXPECT_TRUE(testing::BruteForceKCliques(planted->graph, 3).empty());
}

TEST(PlantedCliquesTest, ShuffleKeepsOptimum) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 4;
  spec.k = 4;
  spec.filler_nodes = 10;
  spec.shuffle_ids = true;
  Rng rng(32);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  EXPECT_EQ(testing::BruteForceMaxDisjointPacking(planted->graph, 4), 4u);
}

TEST(PlantedCliquesTest, KBelow3Rejected) {
  PlantedCliqueSpec spec;
  spec.k = 2;
  Rng rng(33);
  EXPECT_FALSE(PlantedCliques(spec, rng).ok());
}

// -------------------------------------------------- Planted partition
TEST(PlantedPartitionTest, ShapeAndDensityContrast) {
  PlantedPartitionSpec spec;
  spec.num_communities = 10;
  spec.community_size = 20;
  spec.p_in = 0.5;
  spec.p_out = 0.005;
  Rng rng(40);
  auto g = PlantedPartition(spec, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 200u);
  // Count intra vs inter edges; intra must dominate despite fewer pairs.
  Count intra = 0, inter = 0;
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    for (NodeId v : g->Neighbors(u)) {
      if (u < v) (u / 20 == v / 20 ? intra : inter) += 1;
    }
  }
  EXPECT_GT(intra, 10 * inter);
}

TEST(PlantedPartitionTest, ZeroCrossProbabilityDisconnectsBlocks) {
  PlantedPartitionSpec spec;
  spec.num_communities = 4;
  spec.community_size = 10;
  spec.p_in = 0.8;
  spec.p_out = 0.0;
  Rng rng(41);
  auto g = PlantedPartition(spec, rng);
  ASSERT_TRUE(g.ok());
  for (NodeId u = 0; u < g->num_nodes(); ++u) {
    for (NodeId v : g->Neighbors(u)) {
      EXPECT_EQ(u / 10, v / 10) << "cross edge " << u << "-" << v;
    }
  }
}

TEST(PlantedPartitionTest, BadProbabilityRejected) {
  PlantedPartitionSpec spec;
  spec.p_in = 1.5;
  Rng rng(42);
  EXPECT_FALSE(PlantedPartition(spec, rng).ok());
}

TEST(PlantedPartitionTest, CommunitiesAreCliqueRich) {
  PlantedPartitionSpec spec;
  spec.num_communities = 5;
  spec.community_size = 12;
  spec.p_in = 0.7;
  spec.p_out = 0.0;
  Rng rng(43);
  auto g = PlantedPartition(spec, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(testing::BruteForceKCliques(*g, 4).size(), 10u);
}

// -------------------------------------------------------- Named graphs
TEST(NamedGraphsTest, PaperFig2HasSevenTriangles) {
  Graph g = PaperFig2Graph();
  EXPECT_EQ(g.num_nodes(), 9u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_EQ(testing::BruteForceKCliques(g, 3).size(), 7u);  // Example 1
}

TEST(NamedGraphsTest, PaperFig2MaximumPackingIsThree) {
  // Example 1: S2 = {C1, C4, C7} is maximum with size 3.
  EXPECT_EQ(testing::BruteForceMaxDisjointPacking(PaperFig2Graph(), 3), 3u);
}

TEST(NamedGraphsTest, Fig5G1HasThreeTriangles) {
  Graph g1 = PaperFig5G1();
  EXPECT_EQ(g1.num_nodes(), 11u);
  EXPECT_EQ(testing::BruteForceKCliques(g1, 3).size(), 3u);
  EXPECT_EQ(testing::BruteForceMaxDisjointPacking(g1, 3), 2u);
}

TEST(NamedGraphsTest, Fig5G2GainsTheSwapTriangle) {
  Graph g2 = PaperFig5G2();
  EXPECT_EQ(testing::BruteForceKCliques(g2, 3).size(), 4u);
  EXPECT_EQ(testing::BruteForceMaxDisjointPacking(g2, 3), 3u);
}

TEST(NamedGraphsTest, KarateClubShape) {
  Graph g = KarateClub();
  EXPECT_EQ(g.num_nodes(), 34u);
  EXPECT_EQ(g.num_edges(), 78u);
  EXPECT_EQ(testing::BruteForceKCliques(g, 3).size(), 45u);  // known value
}

}  // namespace
}  // namespace dkc
