// Unit tests for the graph-shrinking preprocessing pipeline: peel/support
// fixpoint behaviour on structured graphs (windmill, tripartite, star),
// the "everything pruned" / "nothing pruned" edges, remap invariants, and
// the order-preserving orientation contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/ordering.h"
#include "graph/preprocess.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dkc {
namespace {

// Windmill: `blades` triangles all sharing node 0.
Graph Windmill(NodeId blades) {
  GraphBuilder b;
  for (NodeId i = 0; i < blades; ++i) {
    const NodeId x = 1 + 2 * i;
    const NodeId y = 2 + 2 * i;
    b.AddEdge(0, x);
    b.AddEdge(0, y);
    b.AddEdge(x, y);
  }
  return b.Build();
}

// Complete tripartite K_{size,size,size}.
Graph Tripartite(NodeId size) {
  GraphBuilder b;
  for (NodeId u = 0; u < 3 * size; ++u) {
    for (NodeId v = u + 1; v < 3 * size; ++v) {
      if (u / size != v / size) b.AddEdge(u, v);
    }
  }
  return b.Build();
}

Graph Star(NodeId leaves) {
  GraphBuilder b;
  for (NodeId i = 1; i <= leaves; ++i) b.AddEdge(0, i);
  return b.Build();
}

// Shared sanity pack: stats add up, the maps invert each other, the remap
// is monotone (order-preserving), and the orientation is a permutation of
// the pruned graph's nodes.
void CheckInvariants(const Graph& g, const PreprocessResult& result) {
  const PreprocessStats& stats = result.stats;
  EXPECT_EQ(stats.nodes_before, g.num_nodes());
  EXPECT_EQ(stats.edges_before, g.num_edges());
  EXPECT_EQ(stats.nodes_after, result.pruned.num_nodes());
  EXPECT_EQ(stats.edges_after, result.pruned.num_edges());
  EXPECT_EQ(stats.nodes_removed(), stats.peeled_nodes);
  EXPECT_EQ(stats.edges_removed(),
            stats.peeled_edges + stats.unsupported_edges);

  ASSERT_EQ(result.new_to_old.size(), result.pruned.num_nodes());
  ASSERT_EQ(result.old_to_new.size(), g.num_nodes());
  for (NodeId pu = 0; pu < result.new_to_old.size(); ++pu) {
    EXPECT_EQ(result.old_to_new[result.new_to_old[pu]], pu);
    if (pu > 0) {  // ascending == order-preserving
      EXPECT_LT(result.new_to_old[pu - 1], result.new_to_old[pu]);
    }
  }

  const NodeId pruned_n = result.pruned.num_nodes();
  ASSERT_EQ(result.orientation.nodes.size(), pruned_n);
  ASSERT_EQ(result.orientation.rank.size(), pruned_n);
  std::vector<uint8_t> seen(pruned_n, 0);
  for (NodeId i = 0; i < pruned_n; ++i) {
    const NodeId u = result.orientation.nodes[i];
    ASSERT_LT(u, pruned_n);
    EXPECT_EQ(result.orientation.rank[u], i);
    EXPECT_EQ(seen[u], 0);
    seen[u] = 1;
  }
}

PreprocessResult RunPipeline(const Graph& g, int k, bool reorder = false) {
  PreprocessOptions options;
  options.k = k;
  options.reorder = reorder;
  PreprocessResult result = PreprocessForKCliques(g, options);
  CheckInvariants(g, result);
  return result;
}

TEST(PreprocessTest, WindmillKeepsEverythingForTriangles) {
  const Graph g = Windmill(5);
  const auto result = RunPipeline(g, 3);
  // Every node sits in a triangle and every edge supports one: fixpoint in
  // one (verification) round, nothing pruned.
  EXPECT_EQ(result.pruned.num_nodes(), g.num_nodes());
  EXPECT_EQ(result.pruned.num_edges(), g.num_edges());
  EXPECT_EQ(result.stats.peeled_nodes, 0u);
  EXPECT_EQ(result.stats.unsupported_edges, 0u);
  EXPECT_GE(result.stats.rounds, 1);
}

TEST(PreprocessTest, WindmillFullyPrunedForK4) {
  const Graph g = Windmill(5);
  const auto result = RunPipeline(g, 4);
  // No 4-clique anywhere: blade nodes have degree 2 < 3 and are peeled,
  // which empties the graph entirely.
  EXPECT_EQ(result.pruned.num_nodes(), 0u);
  EXPECT_EQ(result.pruned.num_edges(), 0u);
  EXPECT_EQ(result.stats.nodes_removed(), g.num_nodes());
  EXPECT_EQ(result.stats.edges_removed(), g.num_edges());
}

TEST(PreprocessTest, TripartiteIsCliqueFreeButUnprunable) {
  // K_{2,2,2} has no 4-clique, yet every node has degree 4 >= 3 and every
  // edge has support 2 >= 2: the necessary conditions cannot see it. The
  // pipeline must keep it whole (conservative, never unsound) — catching
  // over-aggressive pruning rules.
  const Graph g = Tripartite(2);
  ASSERT_TRUE(testing::BruteForceKCliques(g, 4).empty());
  const auto result = RunPipeline(g, 4);
  EXPECT_EQ(result.pruned.num_nodes(), g.num_nodes());
  EXPECT_EQ(result.pruned.num_edges(), g.num_edges());
}

TEST(PreprocessTest, TripartiteKeepsTrianglesDropsNothingForK3) {
  const Graph g = Tripartite(3);
  const auto result = RunPipeline(g, 3);
  EXPECT_EQ(result.pruned.num_nodes(), g.num_nodes());
  EXPECT_EQ(result.pruned.num_edges(), g.num_edges());
}

TEST(PreprocessTest, StarIsFullyPeeled) {
  const Graph g = Star(16);
  const auto result = RunPipeline(g, 3);
  // Leaves have degree 1 < 2; peeling them strands the hub.
  EXPECT_EQ(result.pruned.num_nodes(), 0u);
  EXPECT_EQ(result.stats.peeled_nodes, g.num_nodes());
  EXPECT_EQ(result.stats.peeled_edges, g.num_edges());
  EXPECT_EQ(result.stats.unsupported_edges, 0u);
}

TEST(PreprocessTest, SupportPruningCascadesIntoASecondPeelRound) {
  // Two K4s sharing node 6, plus node 7 wired to three clique nodes that
  // span both cliques: 7 survives the degree peel (degree 3) but all of
  // its edges have triangle support <= 1 < 2, so the support phase drops
  // them and the *next* peel round removes the now-isolated node.
  GraphBuilder b;
  const NodeId k4a[] = {0, 1, 2, 6};
  const NodeId k4b[] = {3, 4, 5, 6};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      b.AddEdge(k4a[i], k4a[j]);
      b.AddEdge(k4b[i], k4b[j]);
    }
  }
  b.AddEdge(7, 0);
  b.AddEdge(7, 1);
  b.AddEdge(7, 3);
  const Graph g = b.Build();
  const auto result = RunPipeline(g, 4);
  EXPECT_EQ(result.pruned.num_nodes(), 7u);  // both K4s survive
  EXPECT_EQ(result.pruned.num_edges(), 12u);
  EXPECT_EQ(result.stats.peeled_nodes, 1u);
  EXPECT_EQ(result.stats.unsupported_edges, 3u);
  EXPECT_GE(result.stats.rounds, 1);
  // Node 7 is gone; everyone else keeps their (remapped) ids in order.
  EXPECT_EQ(result.old_to_new[7], kInvalidNode);
  for (NodeId u = 0; u < 7; ++u) EXPECT_EQ(result.old_to_new[u], u);
}

TEST(PreprocessTest, PruningNeverRemovesACliqueNodeOrEdge) {
  // Randomized soundness check: every k-clique of the input must appear,
  // with all of its edges, in the pruned graph (under the id remap).
  for (int case_index = 0; case_index < 12; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraph(28 + case_index, 0.25,
                                         9000 + case_index);
    for (int k = 3; k <= 5; ++k) {
      SCOPED_TRACE("k=" + std::to_string(k));
      const auto result = RunPipeline(g, k);
      const auto before = testing::BruteForceKCliques(g, k);
      auto after = testing::BruteForceKCliques(result.pruned, k);
      for (auto& clique : after) {
        for (NodeId& u : clique) u = result.new_to_old[u];
      }
      EXPECT_EQ(testing::Canonicalize(before), testing::Canonicalize(after));
    }
  }
}

TEST(PreprocessTest, DefaultOrientationRestrictsTheOriginalDegeneracyOrder) {
  const Graph g = testing::RandomGraph(60, 0.15, 9100);
  const auto result = RunPipeline(g, 4);
  ASSERT_GT(result.pruned.num_nodes(), 0u);
  ASSERT_LT(result.pruned.num_nodes(), g.num_nodes());  // pruning bit
  const Ordering original = DegeneracyOrdering(g);
  // Relative ranks of survivors must match the original order exactly.
  std::vector<NodeId> expected;
  for (NodeId id : original.nodes) {
    if (result.old_to_new[id] != kInvalidNode) {
      expected.push_back(result.old_to_new[id]);
    }
  }
  EXPECT_EQ(result.orientation.nodes, expected);
  EXPECT_FALSE(result.stats.reordered);
}

TEST(PreprocessTest, ReorderModeRecomputesDegeneracyOnThePrunedGraph) {
  const Graph g = testing::RandomGraph(60, 0.15, 9100);
  const auto result = RunPipeline(g, 4, /*reorder=*/true);
  EXPECT_TRUE(result.stats.reordered);
  const Ordering fresh = DegeneracyOrdering(result.pruned);
  EXPECT_EQ(result.orientation.nodes, fresh.nodes);
  EXPECT_EQ(result.orientation.rank, fresh.rank);
}

TEST(PreprocessTest, EmptyGraphAndSmallKPassThrough) {
  const Graph empty;
  const auto result = RunPipeline(empty, 4);
  EXPECT_EQ(result.pruned.num_nodes(), 0u);
  EXPECT_EQ(result.stats.rounds, 1);

  // k < 3: identity pass-through (no prune rules exist).
  const Graph g = Star(4);
  const auto identity = RunPipeline(g, 2);
  EXPECT_EQ(identity.pruned.num_nodes(), g.num_nodes());
  EXPECT_EQ(identity.pruned.num_edges(), g.num_edges());
}

// The partitioned stage-1 peel (per-range peels + buffered cross-range
// decrements + global cascade) must reach the exact fixpoint of the serial
// cascade: same pruned CSR, same maps, same orientation, same statistics —
// the peel is confluent and the accounting is order-independent. Forcing
// parallel_peel_min_nodes=0 exercises the fan-out even on tiny graphs.
TEST(PreprocessTest, ParallelPeelMatchesSerialOnEveryInstance) {
  constexpr int kInstances = 52;
  ThreadPool pool2(2), pool4(4);
  ThreadPool* pools[] = {&pool2, &pool4};
  for (int case_index = 0; case_index < kInstances; ++case_index) {
    SCOPED_TRACE("case_index=" + std::to_string(case_index));
    const Graph g = testing::RandomGraphMixed(case_index, /*seed=*/7000);
    const int k = 3 + case_index % 3;
    PreprocessOptions options;
    options.k = k;
    const PreprocessResult serial = PreprocessForKCliques(g, options);
    CheckInvariants(g, serial);
    for (ThreadPool* pool : pools) {
      SCOPED_TRACE("threads=" + std::to_string(pool->num_threads()));
      options.pool = pool;
      options.parallel_peel_min_nodes = 0;
      const PreprocessResult parallel = PreprocessForKCliques(g, options);
      CheckInvariants(g, parallel);
      EXPECT_EQ(parallel.new_to_old, serial.new_to_old);
      EXPECT_EQ(parallel.old_to_new, serial.old_to_new);
      EXPECT_EQ(parallel.orientation.nodes, serial.orientation.nodes);
      EXPECT_EQ(parallel.orientation.rank, serial.orientation.rank);
      ASSERT_EQ(parallel.pruned.num_nodes(), serial.pruned.num_nodes());
      ASSERT_EQ(parallel.pruned.num_edges(), serial.pruned.num_edges());
      for (NodeId u = 0; u < serial.pruned.num_nodes(); ++u) {
        const auto a = serial.pruned.Neighbors(u);
        const auto b = parallel.pruned.Neighbors(u);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
      EXPECT_EQ(parallel.stats.peeled_nodes, serial.stats.peeled_nodes);
      EXPECT_EQ(parallel.stats.peeled_edges, serial.stats.peeled_edges);
      EXPECT_EQ(parallel.stats.unsupported_edges,
                serial.stats.unsupported_edges);
      EXPECT_EQ(parallel.stats.rounds, serial.stats.rounds);
    }
  }
}

}  // namespace
}  // namespace dkc
