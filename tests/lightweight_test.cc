#include "core/lightweight.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/basic_framework.h"
#include "core/gc_solver.h"
#include "core/opt_solver.h"
#include "core/verify.h"
#include "gen/named_graphs.h"
#include "test_util.h"

namespace dkc {
namespace {

LightweightOptions Opts(int k, bool prune) {
  LightweightOptions o;
  o.k = k;
  o.enable_score_pruning = prune;
  return o;
}

TEST(LightweightTest, RejectsKBelow3) {
  EXPECT_FALSE(SolveLightweight(PaperFig2Graph(), Opts(2, true)).ok());
}

TEST(LightweightTest, EmptyGraph) {
  auto result = SolveLightweight(Graph(), Opts(3, true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 0u);
}

TEST(LightweightTest, PaperFig2FindsMaximumPacking) {
  auto result = SolveLightweight(PaperFig2Graph(), Opts(3, true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);
  EXPECT_EQ(result->stats.cliques_listed, 7u);
  EXPECT_TRUE(VerifySolution(PaperFig2Graph(), result->set).ok());
}

TEST(LightweightTest, PruningDoesNotChangeTheResult) {
  // L and LP share everything except the FindMin branch cut; the paper
  // reports identical S ("Due to the same quality of S of L and LP").
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = testing::RandomGraph(40, 0.3, seed + 900);
    for (int k = 3; k <= 5; ++k) {
      auto with = SolveLightweight(g, Opts(k, true));
      auto without = SolveLightweight(g, Opts(k, false));
      ASSERT_TRUE(with.ok() && without.ok());
      ASSERT_EQ(with->size(), without->size()) << "k=" << k << " seed=" << seed;
      // Identical sets, not just sizes.
      for (CliqueId c = 0; c < with->set.size(); ++c) {
        auto a = with->set.Get(c);
        auto b = without->set.Get(c);
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
    }
  }
}

TEST(LightweightTest, MatchesGcSizeOnSmallGraphs) {
  // Theorem 4 modulo tie-breaking: both implement ascending-clique-score
  // greedy with static scores, so sizes should agree on small instances
  // (ties can differ; sizes rarely do — assert within 1 and usually 0).
  int exact_matches = 0;
  const int trials = 8;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    Graph g = testing::RandomGraph(30, 0.35, seed + 1000);
    auto lp = SolveLightweight(g, Opts(3, true));
    GcOptions gc_options;
    gc_options.k = 3;
    auto gc = SolveGc(g, gc_options);
    ASSERT_TRUE(lp.ok() && gc.ok());
    EXPECT_NEAR(static_cast<double>(lp->size()),
                static_cast<double>(gc->size()), 1.0);
    exact_matches += (lp->size() == gc->size());
  }
  EXPECT_GE(exact_matches, trials / 2);
}

TEST(LightweightTest, RecoversPlantedPacking) {
  PlantedCliqueSpec spec;
  spec.num_cliques = 12;
  spec.k = 4;
  spec.filler_nodes = 40;
  Rng rng(90);
  auto planted = PlantedCliques(spec, rng);
  ASSERT_TRUE(planted.ok());
  auto result = SolveLightweight(planted->graph, Opts(4, true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), planted->planted_count);
}

TEST(LightweightTest, ParallelHeapInitMatchesSerial) {
  Graph g = testing::RandomGraph(3000, 0.008, /*seed=*/91);
  auto serial = SolveLightweight(g, Opts(3, true));
  LightweightOptions par = Opts(3, true);
  ThreadPool pool(4);
  par.pool = &pool;
  auto parallel = SolveLightweight(g, par);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(serial->size(), parallel->size());
}

TEST(LightweightTest, ExpiredBudgetIsOot) {
  Graph g = testing::RandomGraph(400, 0.2, /*seed=*/92);
  LightweightOptions options = Opts(4, true);
  options.budget.time_ms = 0.000001;
  auto result = SolveLightweight(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeBudgetExceeded());
}

TEST(LightweightTest, CliquesListedMatchesTrueCount) {
  Graph g = testing::RandomGraph(25, 0.45, /*seed=*/93);
  auto result = SolveLightweight(g, Opts(3, true));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.cliques_listed,
            testing::BruteForceKCliques(g, 3).size());
}

class LightweightSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int, bool>> {};

TEST_P(LightweightSweep, ValidMaximalKApproximation) {
  const auto [n, p, k, prune] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 101 + n * k);
    auto result = SolveLightweight(g, Opts(k, prune));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(VerifySolution(g, result->set).ok())
        << VerifySolution(g, result->set).ToString();
    // Oracle: OPT (itself verified against brute force in opt_solver_test);
    // the naive packing search is too slow on the denser sweep points.
    OptOptions opt_options;
    opt_options.k = k;
    auto optimal = SolveOpt(g, opt_options);
    ASSERT_TRUE(optimal.ok());
    EXPECT_LE(optimal->size(), static_cast<NodeId>(k) * result->size());
    EXPECT_LE(result->size(), optimal->size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LightweightSweep,
    ::testing::Combine(::testing::Values(16, 24, 32), ::testing::Values(0.3, 0.5),
                       ::testing::Values(3, 4), ::testing::Bool()));

TEST(LightweightTest, QualityAtLeastMatchesBasicOnCluey) {
  // The headline claim (Table II): LP produces more cliques than HG. On
  // small random graphs the difference is noisy, so assert the aggregate
  // over a batch is non-negative.
  int64_t advantage = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Graph g = testing::RandomGraph(60, 0.3, seed + 1100);
    auto lp = SolveLightweight(g, Opts(3, true));
    ASSERT_TRUE(lp.ok());
    BasicOptions basic;
    basic.k = 3;
    auto hg = SolveBasic(g, basic);
    ASSERT_TRUE(hg.ok());
    advantage += static_cast<int64_t>(lp->size()) -
                 static_cast<int64_t>(hg->size());
  }
  EXPECT_GE(advantage, 0);
}

}  // namespace
}  // namespace dkc
