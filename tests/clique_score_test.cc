#include "core/clique_score.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clique/clique_graph.h"
#include "clique/kclique.h"
#include "gen/named_graphs.h"
#include "graph/ordering.h"
#include "test_util.h"

namespace dkc {
namespace {

TEST(CliqueScoreTest, SumsNodeScores) {
  std::vector<Count> node_scores = {3, 0, 5, 1};
  std::vector<NodeId> clique = {0, 2, 3};
  EXPECT_EQ(CliqueScoreOf(clique, node_scores), 9u);
}

TEST(CliqueScoreTest, PaperExampleC3Score) {
  // Example 3: s_c(C3) = s_n(v5) + s_n(v6) + s_n(v8) = 9.
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  NodeScores scores = ComputeNodeScores(dag, 3);
  std::vector<NodeId> c3 = {4, 5, 7};  // v5, v6, v8 zero-based
  EXPECT_EQ(CliqueScoreOf(c3, scores.per_node), 9u);
}

TEST(TheoremTwoTest, BoundsFormula) {
  auto b = TheoremTwoBounds(9, 3);
  EXPECT_EQ(b.upper, 6u);            // s_c - k
  EXPECT_DOUBLE_EQ(b.lower, 3.0);    // (s_c - k)/(k-1)
}

TEST(TheoremTwoTest, MinimumScoreCliqueHasZeroBounds) {
  // An isolated clique: every node has score 1, s_c = k, degree = 0.
  auto b = TheoremTwoBounds(4, 4);
  EXPECT_EQ(b.upper, 0u);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

TEST(TheoremTwoTest, DegenerateScoreBelowKClamps) {
  auto b = TheoremTwoBounds(2, 3);
  EXPECT_EQ(b.upper, 0u);
  EXPECT_DOUBLE_EQ(b.lower, 0.0);
}

// Theorem 2 must hold for every clique of real graphs: build the actual
// clique graph, measure true degrees, compare against the score bounds.
class TheoremTwoSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(TheoremTwoSweep, BoundsHoldOnRandomGraphs) {
  const auto [n, p, k] = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Graph g = testing::RandomGraph(static_cast<NodeId>(n), p,
                                   seed * 613 + n * k);
    Dag dag(g, DegeneracyOrdering(g));
    NodeScores scores = ComputeNodeScores(dag, k);

    CliqueStore store(k);
    KCliqueEnumerator enumerator(dag, k);
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      store.Add(nodes);
      return true;
    });
    auto cg = CliqueGraph::Build(store, g.num_nodes());
    ASSERT_TRUE(cg.ok());

    for (CliqueId c = 0; c < store.size(); ++c) {
      const Count score = CliqueScoreOf(store.Get(c), scores.per_node);
      const auto bounds = TheoremTwoBounds(score, k);
      const Count degree = cg->Degree(c);
      EXPECT_LE(static_cast<double>(bounds.lower) - 1e-9,
                static_cast<double>(degree))
          << "lower bound violated, clique " << c << " k=" << k;
      EXPECT_LE(degree, bounds.upper)
          << "upper bound violated, clique " << c << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TheoremTwoSweep,
    ::testing::Combine(::testing::Values(15, 22),
                       ::testing::Values(0.3, 0.5),
                       ::testing::Values(3, 4, 5)));

TEST(TheoremTwoTest, PaperFig3DegreesWithinBounds) {
  Graph g = PaperFig2Graph();
  Dag dag(g, DegeneracyOrdering(g));
  NodeScores scores = ComputeNodeScores(dag, 3);
  CliqueStore store(3);
  KCliqueEnumerator enumerator(dag, 3);
  enumerator.ForEach([&](std::span<const NodeId> nodes) {
    store.Add(nodes);
    return true;
  });
  auto cg = CliqueGraph::Build(store, g.num_nodes());
  ASSERT_TRUE(cg.ok());
  for (CliqueId c = 0; c < store.size(); ++c) {
    const auto bounds =
        TheoremTwoBounds(CliqueScoreOf(store.Get(c), scores.per_node), 3);
    EXPECT_GE(static_cast<double>(cg->Degree(c)), bounds.lower - 1e-9);
    EXPECT_LE(cg->Degree(c), bounds.upper);
  }
}

}  // namespace
}  // namespace dkc
