// Durability tests for src/store: CRC known answers, WAL torn-tail vs
// corruption semantics, snapshot round-trip/validation, and the kill-point
// harness — for every injected crash state (mid-WAL-append, mid-snapshot
// write, fully-written-but-unrenamed snapshot, between snapshot publish and
// WAL compaction), recovery must yield an engine byte-identical to the one
// that never crashed, and any bit-flipped record must be rejected as
// Corruption, never loaded.

#include "store/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "io/atomic_file.h"
#include "io/solution_io.h"
#include "store/crc32.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_util.h"
#include "util/rng.h"

namespace dkc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void AppendFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The byte-identity oracle: the engine's complete serialized state —
/// graph CSR, solution, candidate index, free lists, generation tags.
/// Two engines with equal fingerprints make identical future decisions.
std::string EngineFingerprint(const DynamicSolver& solver) {
  std::string bytes;
  solver.state().SerializeGraphTo(&bytes);
  solver.state().SerializeStateTo(&bytes);
  return bytes;
}

DynamicOptions TestOptions() {
  DynamicOptions options;
  options.k = 3;
  // A deterministic work cap (not wall clock): budget-truncated updates
  // must replay byte-identically too.
  options.update_budget.max_branch_nodes = 5000;
  return options;
}

struct TestWorld {
  Graph graph;
  std::vector<UpdateOp> ops;
};

TestWorld MakeWorld(size_t op_count, uint64_t seed) {
  TestWorld world;
  world.graph = testing::RandomGraph(28, 0.28, seed);
  Rng rng(seed * 7919 + 13);
  world.ops = MakeChurnStream(world.graph, op_count, rng);
  return world;
}

/// Reference run that never touches disk: Build + apply ops[0..count).
DynamicSolver ReferenceRun(const TestWorld& world, size_t count) {
  auto solver = DynamicSolver::Build(world.graph, TestOptions());
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  for (size_t i = 0; i < count; ++i) {
    const auto& op = world.ops[i];
    const Status s = op.is_insert
                         ? solver->InsertEdge(op.edge.first, op.edge.second)
                         : solver->DeleteEdge(op.edge.first, op.edge.second);
    EXPECT_TRUE(s.ok()) << "op " << i << ": " << s.ToString();
  }
  return std::move(solver).value();
}

/// Batched reference: Build + ApplyBatch over ops[0..count) in epochs of
/// `epoch` updates. Epoch boundaries are part of the stream, so recovery
/// of a batched store must be compared against *this*, not ReferenceRun.
DynamicSolver BatchedReferenceRun(const TestWorld& world, size_t count,
                                  size_t epoch) {
  auto solver = DynamicSolver::Build(world.graph, TestOptions());
  EXPECT_TRUE(solver.ok()) << solver.status().ToString();
  const std::span<const UpdateOp> all(world.ops);
  for (size_t i = 0; i < count; i += epoch) {
    const Status s =
        solver->ApplyBatch(all.subspan(i, std::min(epoch, count - i)));
    EXPECT_TRUE(s.ok()) << "epoch at op " << i << ": " << s.ToString();
  }
  return std::move(solver).value();
}

/// The WAL records AppendGroup would write for ops[first..first+count).
std::vector<WalRecord> GroupRecords(const TestWorld& world, size_t first,
                                    size_t count) {
  std::vector<WalRecord> recs(count);
  for (size_t i = 0; i < count; ++i) {
    recs[i].seq = first + i + 1;
    recs[i].is_insert = world.ops[first + i].is_insert;
    recs[i].u = world.ops[first + i].edge.first;
    recs[i].v = world.ops[first + i].edge.second;
  }
  return recs;
}

// ------------------------------------------------------------------ CRC ---

TEST(Crc32Test, KnownAnswers) {
  // The standard CRC-32/IEEE check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, SeedChainsIncrementally) {
  const std::string a = "hello ", b = "world";
  EXPECT_EQ(Crc32(a + b), Crc32(b, Crc32(a)));
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string data = "the quick brown fox";
  const uint32_t before = Crc32(data);
  data[7] ^= 0x01;
  EXPECT_NE(Crc32(data), before);
}

// ------------------------------------------------------------------ WAL ---

std::vector<WalRecord> MakeRecords(size_t count) {
  std::vector<WalRecord> records;
  for (size_t i = 0; i < count; ++i) {
    WalRecord rec;
    rec.seq = i + 1;
    rec.is_insert = (i % 3 != 0);
    rec.u = static_cast<NodeId>(i * 5 + 1);
    rec.v = static_cast<NodeId>(i * 5 + 3);
    records.push_back(rec);
  }
  return records;
}

TEST(WalTest, MissingFileReadsEmpty) {
  auto result = ReadWal(TempPath("dkc_wal_never_written.wal"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->records.empty());
  EXPECT_EQ(result->valid_bytes, 0u);
  EXPECT_FALSE(result->torn_tail);
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string path = TempPath("dkc_wal_roundtrip.wal");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& rec : MakeRecords(5)) {
      ASSERT_TRUE(writer->Append(rec).ok());
    }
  }
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->records.size(), 5u);
  EXPECT_EQ(result->valid_bytes, 5 * kWalRecordBytes);
  EXPECT_FALSE(result->torn_tail);
  const auto expected = MakeRecords(5);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result->records[i].seq, expected[i].seq);
    EXPECT_EQ(result->records[i].is_insert, expected[i].is_insert);
    EXPECT_EQ(result->records[i].u, expected[i].u);
    EXPECT_EQ(result->records[i].v, expected[i].v);
  }
  std::remove(path.c_str());
}

TEST(WalTest, FailedSyncPoisonsWriterOnFullDevice) {
  // fsyncgate regression that needs no injection seam (so it also runs in
  // Release builds): /dev/full accepts the buffered append but fails the
  // flush with ENOSPC. After that failed sync the writer must never again
  // report success — the kernel may already have dropped the page, and a
  // later "clean" sync would acknowledge a record that is not durable.
  if (!std::ifstream("/dev/full").is_open()) {
    GTEST_SKIP() << "no /dev/full on this system";
  }
  auto writer = WalWriter::Open("/dev/full");
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const auto records = MakeRecords(2);
  const Status failed = writer->Append(records[0], /*sync=*/true);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), Status::Code::kIOError);
  EXPECT_FALSE(writer->poisoned().ok());
  // Poisoned: the next append fails up front with the original error,
  // without touching the file.
  EXPECT_EQ(writer->Append(records[1], /*sync=*/false).ToString(),
            failed.ToString());
  EXPECT_EQ(writer->Sync().ToString(), failed.ToString());
}

TEST(WalTest, TornTailAtEveryCutPointTruncates) {
  // A crash mid-append leaves 1..20 bytes of the final record. Every cut
  // must be recognized as torn (not Corruption), keeping the two complete
  // records before it.
  const auto records = MakeRecords(3);
  std::string intact;
  intact += EncodeWalRecord(records[0]);
  intact += EncodeWalRecord(records[1]);
  const std::string last = EncodeWalRecord(records[2]);
  const std::string path = TempPath("dkc_wal_torn.wal");
  for (size_t cut = 1; cut < kWalRecordBytes; ++cut) {
    WriteFileBytes(path, intact + last.substr(0, cut));
    auto result = ReadWal(path);
    ASSERT_TRUE(result.ok()) << "cut=" << cut << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->torn_tail) << "cut=" << cut;
    EXPECT_EQ(result->records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(result->valid_bytes, intact.size()) << "cut=" << cut;
    // The recovery cut: after truncation the file reads clean.
    ASSERT_TRUE(TruncateWal(path, result->valid_bytes).ok());
    auto again = ReadWal(path);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again->torn_tail);
    EXPECT_EQ(again->records.size(), 2u);
  }
  std::remove(path.c_str());
}

TEST(WalTest, BitFlipInAnyByteIsCorruption) {
  // A *complete* record that fails its CRC is bit rot, not a torn append
  // — it must surface as Corruption, never replay, never truncate.
  const auto records = MakeRecords(2);
  const std::string clean =
      EncodeWalRecord(records[0]) + EncodeWalRecord(records[1]);
  const std::string path = TempPath("dkc_wal_bitflip.wal");
  for (size_t i = 0; i < clean.size(); ++i) {
    std::string damaged = clean;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x10);
    WriteFileBytes(path, damaged);
    auto result = ReadWal(path);
    // Flipping a bit inside the seq field of record 0 may still produce a
    // valid-CRC record only if the CRC collides — it cannot, CRC-32
    // detects all single-bit errors. So every flip must fail.
    ASSERT_FALSE(result.ok()) << "byte " << i;
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption)
        << "byte " << i;
  }
  std::remove(path.c_str());
}

TEST(WalTest, SequenceGapIsCorruption) {
  auto records = MakeRecords(3);
  records[2].seq = 5;  // 1, 2, 5
  std::string bytes;
  for (const auto& rec : records) bytes += EncodeWalRecord(rec);
  const std::string path = TempPath("dkc_wal_gap.wal");
  WriteFileBytes(path, bytes);
  auto result = ReadWal(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ WAL groups ---

TEST(WalTest, GroupRoundTripYieldsOneBatchedSegment) {
  const auto records = MakeRecords(6);
  const std::string path = TempPath("dkc_wal_group.wal");
  std::remove(path.c_str());
  {
    auto writer = WalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    // bare, group of 4, bare — mixed traffic in one log.
    ASSERT_TRUE(writer->Append(records[0]).ok());
    ASSERT_TRUE(
        writer->AppendGroup(std::span(records).subspan(1, 4)).ok());
    ASSERT_TRUE(writer->Append(records[5]).ok());
  }
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->records.size(), 6u);  // the commit marker is not a record
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result->records[i].seq, records[i].seq);
    EXPECT_EQ(result->records[i].is_insert, records[i].is_insert);
    EXPECT_EQ(result->records[i].u, records[i].u);
    EXPECT_EQ(result->records[i].v, records[i].v);
  }
  ASSERT_EQ(result->segments.size(), 3u);
  EXPECT_EQ(result->segments[0].count, 1u);
  EXPECT_FALSE(result->segments[0].batched);
  EXPECT_EQ(result->segments[1].first, 1u);
  EXPECT_EQ(result->segments[1].count, 4u);
  EXPECT_TRUE(result->segments[1].batched);
  EXPECT_EQ(result->segments[2].first, 5u);
  EXPECT_FALSE(result->segments[2].batched);
  EXPECT_FALSE(result->torn_tail);
  EXPECT_FALSE(result->torn_group);
  // 6 update records + 1 commit marker.
  EXPECT_EQ(result->valid_bytes, 7 * kWalRecordBytes);
  std::remove(path.c_str());
}

TEST(WalTest, TornGroupAtEveryCutPointRecoversToEpochBoundary) {
  // Intact prefix: one bare record + one committed group (an epoch). Then
  // a crash lands at every possible byte offset inside the next group's
  // frame — member records and the commit marker alike. Every cut must
  // recover to the committed boundary: the open group's members are
  // dropped even when they are individually complete and CRC-clean.
  const auto records = MakeRecords(8);
  std::string intact = EncodeWalRecord(records[0]);
  intact += EncodeWalGroup(std::span(records).subspan(1, 3));
  const std::string frame = EncodeWalGroup(std::span(records).subspan(4, 4));
  const std::string path = TempPath("dkc_wal_torngroup.wal");
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    WriteFileBytes(path, intact + frame.substr(0, cut));
    auto result = ReadWal(path);
    ASSERT_TRUE(result.ok()) << "cut=" << cut << ": "
                             << result.status().ToString();
    EXPECT_TRUE(result->torn_tail || result->torn_group) << "cut=" << cut;
    ASSERT_EQ(result->records.size(), 4u) << "cut=" << cut;
    ASSERT_EQ(result->segments.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(result->valid_bytes, intact.size()) << "cut=" << cut;
    // The recovery cut restores a clean, committed log.
    ASSERT_TRUE(TruncateWal(path, result->valid_bytes).ok());
    auto again = ReadWal(path);
    ASSERT_TRUE(again.ok());
    EXPECT_FALSE(again->torn_tail);
    EXPECT_FALSE(again->torn_group);
    EXPECT_EQ(again->records.size(), 4u);
  }
  // The full frame lands: the epoch becomes durable.
  WriteFileBytes(path, intact + frame);
  auto result = ReadWal(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records.size(), 8u);
  ASSERT_EQ(result->segments.size(), 3u);
  EXPECT_TRUE(result->segments[2].batched);
  std::remove(path.c_str());
}

TEST(WalTest, GroupFrameViolationsAreCorruption) {
  const auto records = MakeRecords(5);
  const std::string path = TempPath("dkc_wal_groupbad.wal");
  const std::string group = EncodeWalGroup(std::span(records).first(3));
  const size_t rec_bytes = kWalRecordBytes;

  // A bare record interleaved into an open group: members of group [0,3)
  // followed by a bare record 4 — appends are atomic frames, so this
  // cannot come from a crash. Corruption.
  {
    WalRecord bare = records[3];
    std::string bytes = group.substr(0, 3 * rec_bytes);  // members only
    bytes += EncodeWalRecord(bare);
    WriteFileBytes(path, bytes);
    auto result = ReadWal(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  }
  // A commit marker with no open group.
  {
    WalRecord commit;
    commit.seq = 3;
    commit.is_insert = false;
    commit.u = 3;
    commit.v = 0;
    // Fabricate the marker by taking the last record of a real frame.
    std::string marker = group.substr(3 * rec_bytes);
    WriteFileBytes(path, marker);
    auto result = ReadWal(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  }
  // A commit marker whose member count disagrees: drop one member record
  // but keep the count-3 marker.
  {
    std::string bytes = group.substr(0, 2 * rec_bytes);  // 2 of 3 members
    bytes += group.substr(3 * rec_bytes);                // count-3 marker
    WriteFileBytes(path, bytes);
    auto result = ReadWal(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  }
  // A bit flip inside a group member is caught by the member's CRC.
  {
    std::string bytes = group;
    bytes[rec_bytes + 5] = static_cast<char>(bytes[rec_bytes + 5] ^ 0x20);
    WriteFileBytes(path, bytes);
    auto result = ReadWal(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  }
  // An unknown op byte.
  {
    std::string bytes = group;
    bytes[0] = 9;  // not a WalOp — CRC fails before op interpretation
    WriteFileBytes(path, bytes);
    auto result = ReadWal(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------------- snapshot ---

TEST(SnapshotTest, RoundTripIsByteIdentical) {
  TestWorld world = MakeWorld(0, 91);
  DynamicSolver original = ReferenceRun(world, 0);
  const std::string path = TempPath("dkc_snap_roundtrip.bin");
  ASSERT_TRUE(WriteSnapshot(original.state(), 17, path).ok());

  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.k, 3);
  EXPECT_EQ(loaded->meta.applied_seq, 17u);
  EXPECT_EQ(loaded->meta.num_nodes, original.graph().num_nodes());

  std::string original_bytes, restored_bytes;
  original.state().SerializeGraphTo(&original_bytes);
  original.state().SerializeStateTo(&original_bytes);
  loaded->state->SerializeGraphTo(&restored_bytes);
  loaded->state->SerializeStateTo(&restored_bytes);
  EXPECT_EQ(original_bytes, restored_bytes);

  std::string error;
  EXPECT_TRUE(loaded->state->CheckInvariants(&error)) << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadSnapshot(TempPath("dkc_snap_missing.bin")).status().code(),
            Status::Code::kIOError);
}

TEST(SnapshotTest, BitFlipAnywhereIsCorruption) {
  TestWorld world = MakeWorld(0, 92);
  DynamicSolver original = ReferenceRun(world, 0);
  const std::string path = TempPath("dkc_snap_bitflip.bin");
  ASSERT_TRUE(WriteSnapshot(original.state(), 3, path).ok());
  const std::string clean = ReadFileBytes(path);
  ASSERT_GT(clean.size(), 24u);

  // Flip one bit at a stride of byte positions covering the header, every
  // section, and the trailing CRC. The whole-file checksum must catch all
  // of them — a damaged snapshot is never loaded.
  const size_t stride = std::max<size_t>(1, clean.size() / 211);
  for (size_t i = 0; i < clean.size(); i += stride) {
    std::string damaged = clean;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x04);
    WriteFileBytes(path, damaged);
    auto result = ReadSnapshot(path);
    ASSERT_FALSE(result.ok()) << "byte " << i << " of " << clean.size();
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption)
        << "byte " << i;
  }
  std::remove(path.c_str());
}

TEST(SnapshotTest, TruncationAtAnyLengthIsRejected) {
  TestWorld world = MakeWorld(0, 93);
  DynamicSolver original = ReferenceRun(world, 0);
  const std::string path = TempPath("dkc_snap_trunc.bin");
  ASSERT_TRUE(WriteSnapshot(original.state(), 0, path).ok());
  const std::string clean = ReadFileBytes(path);

  const size_t stride = std::max<size_t>(1, clean.size() / 211);
  for (size_t len = 0; len < clean.size(); len += stride) {
    WriteFileBytes(path, clean.substr(0, len));
    auto result = ReadSnapshot(path);
    ASSERT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption)
        << "prefix length " << len;
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- store ---

struct StorePaths {
  std::string snapshot;
  std::string wal;
};

StorePaths MakeStorePaths(const std::string& tag) {
  StorePaths paths;
  paths.snapshot = TempPath("dkc_store_" + tag + ".snap");
  paths.wal = TempPath("dkc_store_" + tag + ".wal");
  std::remove(paths.snapshot.c_str());
  std::remove(paths.wal.c_str());
  return paths;
}

StoreOptions MakeStoreOptions(uint64_t checkpoint_every = 0) {
  StoreOptions options;
  options.dynamic = TestOptions();
  options.checkpoint_every = checkpoint_every;
  return options;
}

void CleanUp(const StorePaths& paths) {
  std::remove(paths.snapshot.c_str());
  std::remove(paths.wal.c_str());
  std::remove(AtomicTempPath(paths.snapshot).c_str());
}

TEST(StoreTest, CreateApplyReopenIsByteIdentical) {
  TestWorld world = MakeWorld(60, 101);
  const StorePaths paths = MakeStorePaths("reopen");

  // Clean shutdown halfway through the stream...
  {
    auto store =
        DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                             MakeStoreOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(store->Apply(world.ops[i]).ok()) << "op " << i;
    }
    EXPECT_EQ(store->applied_seq(), 30u);
  }

  // ...then recovery replays the WAL and continues to the end.
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 30u);
  EXPECT_EQ(reopened->replayed_records(), 30u);
  EXPECT_FALSE(reopened->recovered_torn_tail());
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 30)));

  for (size_t i = 30; i < world.ops.size(); ++i) {
    ASSERT_TRUE(reopened->Apply(world.ops[i]).ok()) << "op " << i;
  }
  DynamicSolver reference = ReferenceRun(world, world.ops.size());
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(reference));
  EXPECT_EQ(SolutionToString(reopened->solver().Snapshot()),
            SolutionToString(reference.Snapshot()));
  CleanUp(paths);
}

TEST(StoreTest, AutoCheckpointCompactsWalAndStaysIdentical) {
  TestWorld world = MakeWorld(40, 102);
  const StorePaths paths = MakeStorePaths("checkpoint");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions(/*checkpoint_every=*/8));
    ASSERT_TRUE(store.ok());
    for (const auto& op : world.ops) ASSERT_TRUE(store->Apply(op).ok());
    EXPECT_EQ(store->checkpoints_taken(), 5u);
    EXPECT_EQ(store->checkpoint_seq(), 40u);
  }
  // The WAL was compacted at seq 40, so recovery replays nothing.
  EXPECT_EQ(ReadFileBytes(paths.wal).size(), 0u);
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions(8));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 40u);
  EXPECT_EQ(reopened->replayed_records(), 0u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 40)));
  CleanUp(paths);
}

TEST(StoreTest, KillPointMidWalAppendRecoversTornTail) {
  TestWorld world = MakeWorld(30, 103);
  const StorePaths paths = MakeStorePaths("midappend");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (size_t i = 0; i < 20; ++i) ASSERT_TRUE(store->Apply(world.ops[i]).ok());
  }
  // Crash cut the 21st append short: only 9 of its 21 bytes hit the disk.
  WalRecord torn;
  torn.seq = 21;
  torn.is_insert = world.ops[20].is_insert;
  torn.u = world.ops[20].edge.first;
  torn.v = world.ops[20].edge.second;
  AppendFileBytes(paths.wal, EncodeWalRecord(torn).substr(0, 9));

  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->recovered_torn_tail());
  EXPECT_EQ(reopened->applied_seq(), 20u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 20)));

  // The unacknowledged op is simply not there; re-applying it and the rest
  // of the stream converges with the uninterrupted run.
  for (size_t i = 20; i < world.ops.size(); ++i) {
    ASSERT_TRUE(reopened->Apply(world.ops[i]).ok()) << "op " << i;
  }
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, world.ops.size())));
  CleanUp(paths);
}

TEST(StoreTest, KillPointMidSnapshotWriteIsInvisible) {
  TestWorld world = MakeWorld(30, 104);
  const StorePaths paths = MakeStorePaths("midsnap");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (size_t i = 0; i < 15; ++i) ASSERT_TRUE(store->Apply(world.ops[i]).ok());
  }
  // Crash midway through writing the checkpoint temp file: a garbage
  // prefix sits at the temp path, the published snapshot is untouched.
  WriteFileBytes(AtomicTempPath(paths.snapshot),
                 std::string("DKCSNAP1 then the lights went out"));

  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 15u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 15)));
  CleanUp(paths);
}

TEST(StoreTest, KillPointPreRenameUsesOldSnapshotPlusWal) {
  TestWorld world = MakeWorld(30, 105);
  const StorePaths paths = MakeStorePaths("prerename");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (size_t i = 0; i < 12; ++i) ASSERT_TRUE(store->Apply(world.ops[i]).ok());
    // Crash after the checkpoint's temp snapshot was fully written and
    // fsynced but before the rename: fabricate exactly that state.
    ASSERT_TRUE(WriteSnapshot(store->solver().state(), store->applied_seq(),
                              AtomicTempPath(paths.snapshot) + ".fab")
                    .ok());
  }
  ASSERT_EQ(std::rename((AtomicTempPath(paths.snapshot) + ".fab").c_str(),
                        AtomicTempPath(paths.snapshot).c_str()),
            0);

  // Recovery ignores the orphaned temp: old snapshot (seq 0) + 12 WAL
  // records reach the same state the finished checkpoint would have.
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 12u);
  EXPECT_EQ(reopened->replayed_records(), 12u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 12)));
  CleanUp(paths);
}

TEST(StoreTest, KillPointBetweenSnapshotPublishAndWalCompaction) {
  TestWorld world = MakeWorld(30, 106);
  const StorePaths paths = MakeStorePaths("postpublish");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (size_t i = 0; i < 18; ++i) ASSERT_TRUE(store->Apply(world.ops[i]).ok());
    // A checkpoint's first half completed (snapshot published at seq 18)
    // but the crash hit before WAL compaction: all 18 records remain.
    ASSERT_TRUE(WriteSnapshot(store->solver().state(), store->applied_seq(),
                              paths.snapshot)
                    .ok());
  }
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // Every WAL record is covered by the snapshot — replayed nothing.
  EXPECT_EQ(reopened->applied_seq(), 18u);
  EXPECT_EQ(reopened->replayed_records(), 0u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 18)));
  CleanUp(paths);
}

TEST(StoreTest, BitFlippedSnapshotOrWalIsNeverLoaded) {
  TestWorld world = MakeWorld(20, 107);
  const StorePaths paths = MakeStorePaths("bitflip");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (const auto& op : world.ops) ASSERT_TRUE(store->Apply(op).ok());
  }
  const std::string snap = ReadFileBytes(paths.snapshot);
  const std::string wal = ReadFileBytes(paths.wal);

  std::string damaged = snap;
  damaged[snap.size() / 2] ^= 0x40;
  WriteFileBytes(paths.snapshot, damaged);
  auto bad_snap =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_FALSE(bad_snap.ok());
  EXPECT_EQ(bad_snap.status().code(), Status::Code::kCorruption);

  WriteFileBytes(paths.snapshot, snap);
  damaged = wal;
  damaged[wal.size() / 2] ^= 0x40;
  WriteFileBytes(paths.wal, damaged);
  auto bad_wal =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_FALSE(bad_wal.ok());
  EXPECT_EQ(bad_wal.status().code(), Status::Code::kCorruption);

  WriteFileBytes(paths.wal, wal);
  auto good = DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  EXPECT_TRUE(good.ok()) << good.status().ToString();
  CleanUp(paths);
}

TEST(StoreTest, RejectedUpdatesAreNeverLogged) {
  TestWorld world = MakeWorld(0, 108);
  const StorePaths paths = MakeStorePaths("reject");
  auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                    MakeStoreOptions());
  ASSERT_TRUE(store.ok());

  // Find one existing edge and one absent pair.
  const Graph& g = world.graph;
  NodeId eu = 0, ev = 0;
  for (NodeId u = 0; u < g.num_nodes() && ev == 0; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      eu = u;
      ev = v;
      break;
    }
  }
  ASSERT_NE(ev, 0u);

  UpdateOp bad_insert;
  bad_insert.is_insert = true;
  bad_insert.edge = {eu, ev};
  EXPECT_EQ(store->Apply(bad_insert).code(), Status::Code::kInvalidArgument);

  UpdateOp self_loop;
  self_loop.is_insert = true;
  self_loop.edge = {1, 1};
  EXPECT_EQ(store->Apply(self_loop).code(), Status::Code::kInvalidArgument);

  UpdateOp bad_delete;
  bad_delete.is_insert = false;
  // The churn mirror guarantees ops are valid; an absent pair is one we
  // just failed to insert as existing — invert: delete a pair that is
  // certainly absent. Scan for one.
  NodeId au = 0, av = 0;
  for (NodeId u = 0; u < g.num_nodes() && av == 0; ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (!g.HasEdge(u, v)) {
        au = u;
        av = v;
        break;
      }
    }
  }
  bad_delete.edge = {au, av};
  EXPECT_EQ(store->Apply(bad_delete).code(), Status::Code::kNotFound);

  EXPECT_EQ(store->applied_seq(), 0u);
  EXPECT_EQ(ReadFileBytes(paths.wal).size(), 0u);
  CleanUp(paths);
}

TEST(StoreTest, StaleWalFromPreviousStoreIsNotReplayed) {
  TestWorld world = MakeWorld(10, 109);
  const StorePaths paths = MakeStorePaths("stale");
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    for (const auto& op : world.ops) ASSERT_TRUE(store->Apply(op).ok());
  }
  // Re-creating at the same paths must reset the WAL: the fresh store's
  // snapshot is at seq 0 and the old ten records do not belong to it.
  {
    auto recreated = DurableStore::Create(
        world.graph, paths.snapshot, paths.wal, MakeStoreOptions());
    ASSERT_TRUE(recreated.ok());
    EXPECT_EQ(ReadFileBytes(paths.wal).size(), 0u);
  }
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->applied_seq(), 0u);
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(ReferenceRun(world, 0)));
  CleanUp(paths);
}

// -------------------------------------------------- store, group commit ---

TEST(StoreTest, BatchedApplyReopenIsByteIdentical) {
  constexpr size_t kEpoch = 8;
  TestWorld world = MakeWorld(64, 110);
  const StorePaths paths = MakeStorePaths("batched_reopen");
  const std::span<const UpdateOp> all(world.ops);

  uint64_t flushes = 0;
  StoreOptions options = MakeStoreOptions();
  options.after_group_flush = [&flushes](uint64_t) { ++flushes; };
  {
    auto store =
        DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 32; i += kEpoch) {
      ASSERT_TRUE(store->ApplyBatch(all.subspan(i, kEpoch)).ok());
    }
    EXPECT_EQ(store->applied_seq(), 32u);
    EXPECT_EQ(flushes, 4u);  // one group flush per epoch
  }

  // Recovery replays the four committed groups through ApplyBatch — the
  // same entry point, so byte-identical to the batched reference.
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 32u);
  EXPECT_EQ(reopened->replayed_records(), 32u);
  EXPECT_FALSE(reopened->recovered_torn_group());
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(BatchedReferenceRun(world, 32, kEpoch)));

  // Continue batched to the end; still identical.
  for (size_t i = 32; i < 64; i += kEpoch) {
    ASSERT_TRUE(reopened->ApplyBatch(all.subspan(i, kEpoch)).ok());
  }
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(BatchedReferenceRun(world, 64, kEpoch)));
  CleanUp(paths);
}

TEST(StoreTest, KillPointInsideGroupCommitWindowReplaysWholeEpoch) {
  // The crash-in-window state: the WAL group (members + commit marker) is
  // fully flushed, the engine never applied the epoch. Recovery must
  // replay the whole group — the acknowledged-at-flush epoch survives.
  constexpr size_t kEpoch = 8;
  TestWorld world = MakeWorld(24, 111);
  const StorePaths paths = MakeStorePaths("commit_window");
  const std::span<const UpdateOp> all(world.ops);
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(0, kEpoch)).ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(kEpoch, kEpoch)).ok());
  }
  // Epoch 3's frame hit the disk; the process died before the engine ran.
  AppendFileBytes(paths.wal,
                  EncodeWalGroup(GroupRecords(world, 16, kEpoch)));

  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 24u);
  EXPECT_EQ(reopened->replayed_records(), 24u);
  EXPECT_FALSE(reopened->recovered_torn_group());  // committed, not torn
  EXPECT_EQ(EngineFingerprint(reopened->solver()),
            EngineFingerprint(BatchedReferenceRun(world, 24, kEpoch)));
  CleanUp(paths);
}

TEST(StoreTest, KillPointAtEveryGroupFrameCutRecoversToEpochBoundary) {
  // The other half of the window: the crash cut the group frame itself
  // short, at *every possible byte offset*. Recovery must land exactly on
  // the previous epoch boundary — never a partial epoch — and re-applying
  // the lost epoch must converge with the uninterrupted batched run.
  constexpr size_t kEpoch = 6;
  TestWorld world = MakeWorld(18, 112);
  const StorePaths paths = MakeStorePaths("group_cut");
  const std::span<const UpdateOp> all(world.ops);
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(0, kEpoch)).ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(kEpoch, kEpoch)).ok());
  }
  const std::string committed = ReadFileBytes(paths.wal);
  const std::string frame =
      EncodeWalGroup(GroupRecords(world, 12, kEpoch));

  for (size_t cut = 1; cut < frame.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    WriteFileBytes(paths.wal, committed + frame.substr(0, cut));
    auto reopened =
        DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->applied_seq(), 12u);
    EXPECT_TRUE(reopened->recovered_torn_tail() ||
                reopened->recovered_torn_group());
    EXPECT_EQ(EngineFingerprint(reopened->solver()),
              EngineFingerprint(BatchedReferenceRun(world, 12, kEpoch)));
    // The WAL was truncated to the boundary: the lost epoch re-applies.
    ASSERT_TRUE(reopened->ApplyBatch(all.subspan(12, kEpoch)).ok());
    EXPECT_EQ(reopened->applied_seq(), 18u);
    EXPECT_EQ(EngineFingerprint(reopened->solver()),
              EngineFingerprint(BatchedReferenceRun(world, 18, kEpoch)));
  }
  CleanUp(paths);
}

TEST(StoreTest, GroupStraddlingSnapshotBoundaryIsCorruption) {
  // Checkpoints land only at epoch boundaries, so a snapshot seq strictly
  // inside a committed group cannot come from a crash — refuse to guess.
  constexpr size_t kEpoch = 4;
  TestWorld world = MakeWorld(8, 113);
  const StorePaths paths = MakeStorePaths("straddle");
  const std::span<const UpdateOp> all(world.ops);
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(0, kEpoch)).ok());
    ASSERT_TRUE(store->Checkpoint().ok());  // snapshot at seq 4, WAL empty
  }
  // A fabricated group [3, 6] straddles the snapshot's seq 4.
  AppendFileBytes(paths.wal, EncodeWalGroup(GroupRecords(world, 2, 4)));
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), Status::Code::kCorruption);
  CleanUp(paths);
}

TEST(StoreTest, MixedBareAndBatchedTrafficReplaysThroughMatchingPaths) {
  // A log interleaving bare appends and group commits must replay each
  // segment through the entry point that wrote it (batch boundaries are
  // part of the stream).
  TestWorld world = MakeWorld(20, 114);
  const StorePaths paths = MakeStorePaths("mixed_traffic");
  const std::span<const UpdateOp> all(world.ops);
  {
    auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                      MakeStoreOptions());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Apply(world.ops[0]).ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(1, 8)).ok());
    ASSERT_TRUE(store->Apply(world.ops[9]).ok());
    ASSERT_TRUE(store->ApplyBatch(all.subspan(10, 10)).ok());
    EXPECT_EQ(store->applied_seq(), 20u);
  }
  auto reopened =
      DurableStore::Open(paths.snapshot, paths.wal, MakeStoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->applied_seq(), 20u);
  EXPECT_EQ(reopened->replayed_records(), 20u);

  // The in-memory twin of the same interleaving.
  auto twin = DynamicSolver::Build(world.graph, TestOptions());
  ASSERT_TRUE(twin.ok());
  auto apply_one = [&](const UpdateOp& op) {
    return op.is_insert ? twin->InsertEdge(op.edge.first, op.edge.second)
                        : twin->DeleteEdge(op.edge.first, op.edge.second);
  };
  ASSERT_TRUE(apply_one(world.ops[0]).ok());
  ASSERT_TRUE(twin->ApplyBatch(all.subspan(1, 8)).ok());
  ASSERT_TRUE(apply_one(world.ops[9]).ok());
  ASSERT_TRUE(twin->ApplyBatch(all.subspan(10, 10)).ok());
  EXPECT_EQ(EngineFingerprint(reopened->solver()), EngineFingerprint(*twin));
  CleanUp(paths);
}

// ------------------------------------------------------- snapshot retention

bool FileExists(const std::string& path) {
  return std::ifstream(path, std::ios::binary).good();
}

std::string RetainedPath(const StorePaths& paths, uint64_t seq) {
  return paths.snapshot + "." + std::to_string(seq);
}

TEST(StoreTest, RetentionRotatesAndPrunesSnapshots) {
  TestWorld world = MakeWorld(60, 109);
  const StorePaths paths = MakeStorePaths("retention");
  StoreOptions options = MakeStoreOptions();
  options.keep_snapshots = 3;  // live + 2 retained

  auto store =
      DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(store->retained_snapshots().empty());

  size_t applied = 0;
  auto advance = [&](size_t count) {
    for (size_t i = 0; i < count; ++i, ++applied) {
      ASSERT_TRUE(store->Apply(world.ops[applied]).ok()) << "op " << applied;
    }
  };

  // Each checkpoint retires the outgoing snapshot under the seq it covers.
  advance(10);
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->retained_snapshots(), (std::vector<uint64_t>{0}));
  EXPECT_TRUE(FileExists(RetainedPath(paths, 0)));

  advance(10);
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->retained_snapshots(), (std::vector<uint64_t>{0, 10}));

  // Third rotation exceeds the window: the oldest file is pruned.
  advance(10);
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->retained_snapshots(), (std::vector<uint64_t>{10, 20}));
  EXPECT_FALSE(FileExists(RetainedPath(paths, 0)));
  EXPECT_TRUE(FileExists(RetainedPath(paths, 10)));
  EXPECT_TRUE(FileExists(RetainedPath(paths, 20)));

  // A checkpoint with nothing new to publish must not duplicate history.
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->retained_snapshots(), (std::vector<uint64_t>{10, 20}));

  // Every retained file is a complete point-in-time state: loading it
  // reproduces the engine exactly as it stood at that seq.
  for (uint64_t seq : store->retained_snapshots()) {
    auto past =
        DurableStore::LoadPointInTime(RetainedPath(paths, seq), TestOptions());
    ASSERT_TRUE(past.ok()) << past.status().ToString();
    EXPECT_EQ(EngineFingerprint(*past),
              EngineFingerprint(ReferenceRun(world, seq)));
  }

  for (uint64_t seq : {uint64_t{0}, uint64_t{10}, uint64_t{20}}) {
    std::remove(RetainedPath(paths, seq).c_str());
  }
  CleanUp(paths);
}

TEST(StoreTest, RetainedSnapshotsSurviveReopenAndCreateClearsThem) {
  TestWorld world = MakeWorld(40, 110);
  const StorePaths paths = MakeStorePaths("retention_reopen");
  StoreOptions options = MakeStoreOptions();
  options.keep_snapshots = 4;

  {
    auto store =
        DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(store->Apply(world.ops[i]).ok());
      if ((i + 1) % 5 == 0) {
        ASSERT_TRUE(store->Checkpoint().ok());
      }
    }
    // keep_snapshots = 4 → the live file plus the three newest rotations.
    EXPECT_EQ(store->retained_snapshots(), (std::vector<uint64_t>{5, 10, 15}));
  }

  // Open rediscovers the rotation history by directory scan.
  auto reopened = DurableStore::Open(paths.snapshot, paths.wal, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->retained_snapshots(),
            (std::vector<uint64_t>{5, 10, 15}));

  // Reopening with a smaller window shrinks history at the next rotation.
  StoreOptions narrow = options;
  narrow.keep_snapshots = 2;
  auto narrowed = DurableStore::Open(paths.snapshot, paths.wal, narrow);
  ASSERT_TRUE(narrowed.ok()) << narrowed.status().ToString();
  for (size_t i = 20; i < 25; ++i) {
    ASSERT_TRUE(narrowed->Apply(world.ops[i]).ok());
  }
  ASSERT_TRUE(narrowed->Checkpoint().ok());
  EXPECT_EQ(narrowed->retained_snapshots(), (std::vector<uint64_t>{20}));
  EXPECT_FALSE(FileExists(RetainedPath(paths, 0)));
  EXPECT_FALSE(FileExists(RetainedPath(paths, 15)));

  // A fresh Create at the same paths must not inherit the old history.
  auto recreated =
      DurableStore::Create(world.graph, paths.snapshot, paths.wal, options);
  ASSERT_TRUE(recreated.ok()) << recreated.status().ToString();
  EXPECT_TRUE(recreated->retained_snapshots().empty());
  EXPECT_FALSE(FileExists(RetainedPath(paths, 20)));

  CleanUp(paths);
}

TEST(StoreTest, DefaultRetentionKeepsOnlyTheLiveSnapshot) {
  TestWorld world = MakeWorld(20, 111);
  const StorePaths paths = MakeStorePaths("retention_default");
  auto store = DurableStore::Create(world.graph, paths.snapshot, paths.wal,
                                    MakeStoreOptions());
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Apply(world.ops[i]).ok());
    if ((i + 1) % 5 == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }
  EXPECT_TRUE(store->retained_snapshots().empty());
  EXPECT_FALSE(FileExists(RetainedPath(paths, 0)));
  EXPECT_FALSE(FileExists(RetainedPath(paths, 5)));
  CleanUp(paths);
}

}  // namespace
}  // namespace dkc
