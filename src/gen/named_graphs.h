// Small concrete graphs embedded in the library:
//  * the paper's running examples (Fig. 2 graph G, Fig. 5 graphs G1/G2),
//    used by unit tests to check algorithm traces against the paper;
//  * Zachary's karate club (public-domain classic), a real social network
//    small enough for the exact OPT baseline.

#ifndef DKC_GEN_NAMED_GRAPHS_H_
#define DKC_GEN_NAMED_GRAPHS_H_

#include "graph/graph.h"

namespace dkc {

/// The 9-node, 15-edge graph of the paper's Fig. 2. Node v_i of the paper is
/// node i-1 here. It has exactly seven 3-cliques (Example 1), a maximal
/// disjoint 3-clique set of size 2 and a maximum one of size 3.
Graph PaperFig2Graph();

/// Fig. 5(a): graph G1 with 11 nodes; its maximum disjoint 3-clique set has
/// size 2 ({v3,v4,v5}, {v9,v10,v11} in paper numbering).
Graph PaperFig5G1();

/// Fig. 5(b): G2 = G1 plus edge (v5, v7); the maximum disjoint 3-clique set
/// grows to size 3 after the swap the paper walks through.
Graph PaperFig5G2();

/// Zachary's karate club: 34 nodes, 78 edges.
Graph KarateClub();

}  // namespace dkc

#endif  // DKC_GEN_NAMED_GRAPHS_H_
