#include "gen/named_graphs.h"

#include <initializer_list>
#include <utility>

#include "graph/graph_builder.h"

namespace dkc {
namespace {

// Builds from 1-based edge pairs (papers and classic datasets are 1-based).
Graph FromOneBasedEdges(
    NodeId n, std::initializer_list<std::pair<int, int>> edges) {
  GraphBuilder builder(n);
  builder.EnsureNode(n - 1);
  for (const auto& [u, v] : edges) {
    builder.AddEdge(static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1));
  }
  return builder.Build();
}

}  // namespace

Graph PaperFig2Graph() {
  // Exactly the seven 3-cliques of Example 1:
  // C1=(v1,v3,v6) C2=(v3,v5,v6) C3=(v5,v6,v8) C4=(v5,v7,v8)
  // C5=(v7,v8,v9) C6=(v4,v7,v9) C7=(v2,v4,v9)
  return FromOneBasedEdges(9, {{1, 3}, {1, 6}, {3, 6},
                               {3, 5}, {5, 6},
                               {5, 8}, {6, 8},
                               {5, 7}, {7, 8},
                               {7, 9}, {8, 9},
                               {4, 7}, {4, 9},
                               {2, 4}, {2, 9}});
}

Graph PaperFig5G1() {
  // Triangles {v1,v2,v3}, {v3,v4,v5}, {v9,v10,v11} plus the path
  // v5-v6-v7-v8-v9 connecting them; adding (v5,v7) (=> G2) creates the
  // triangle {v5,v6,v7} the paper's running swap example relies on.
  return FromOneBasedEdges(11, {{1, 2}, {1, 3}, {2, 3},
                                {3, 4}, {3, 5}, {4, 5},
                                {5, 6}, {6, 7}, {7, 8}, {8, 9},
                                {9, 10}, {9, 11}, {10, 11}});
}

Graph PaperFig5G2() {
  return FromOneBasedEdges(11, {{1, 2}, {1, 3}, {2, 3},
                                {3, 4}, {3, 5}, {4, 5},
                                {5, 6}, {6, 7}, {7, 8}, {8, 9},
                                {9, 10}, {9, 11}, {10, 11},
                                {5, 7}});
}

Graph KarateClub() {
  return FromOneBasedEdges(
      34,
      {{1, 2},  {1, 3},  {1, 4},  {1, 5},  {1, 6},  {1, 7},  {1, 8},
       {1, 9},  {1, 11}, {1, 12}, {1, 13}, {1, 14}, {1, 18}, {1, 20},
       {1, 22}, {1, 32}, {2, 3},  {2, 4},  {2, 8},  {2, 14}, {2, 18},
       {2, 20}, {2, 22}, {2, 31}, {3, 4},  {3, 8},  {3, 9},  {3, 10},
       {3, 14}, {3, 28}, {3, 29}, {3, 33}, {4, 8},  {4, 13}, {4, 14},
       {5, 7},  {5, 11}, {6, 7},  {6, 11}, {6, 17}, {7, 17}, {9, 31},
       {9, 33}, {9, 34}, {10, 34}, {14, 34}, {15, 33}, {15, 34},
       {16, 33}, {16, 34}, {19, 33}, {19, 34}, {20, 34}, {21, 33},
       {21, 34}, {23, 33}, {23, 34}, {24, 26}, {24, 28}, {24, 30},
       {24, 33}, {24, 34}, {25, 26}, {25, 28}, {25, 32}, {26, 32},
       {27, 30}, {27, 34}, {28, 34}, {29, 32}, {29, 34}, {30, 33},
       {30, 34}, {31, 33}, {31, 34}, {32, 33}, {32, 34}, {33, 34}});
}

}  // namespace dkc
