#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "graph/graph_builder.h"

namespace dkc {

StatusOr<Graph> WattsStrogatz(NodeId n, Count degree, double beta, Rng& rng) {
  if (degree % 2 != 0) {
    return Status::InvalidArgument("Watts-Strogatz degree must be even");
  }
  if (degree >= n) {
    return Status::InvalidArgument("Watts-Strogatz degree must be < n");
  }
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("Watts-Strogatz beta must be in [0,1]");
  }
  GraphBuilder builder(n);
  builder.EnsureNode(n == 0 ? 0 : n - 1);
  const Count half = degree / 2;
  for (NodeId u = 0; u < n; ++u) {
    for (Count j = 1; j <= half; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.NextBool(beta)) {
        // Rewire to a uniform random non-self target. Collisions with an
        // existing edge simply collapse at Build() time, matching the usual
        // WS implementations (networkx does the same modulo resampling).
        v = static_cast<NodeId>(rng.NextBounded(n));
        if (v == u) v = static_cast<NodeId>((v + 1) % n);
      }
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

StatusOr<Graph> ErdosRenyi(NodeId n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument("Erdos-Renyi p must be in [0,1]");
  }
  GraphBuilder builder(n);
  if (n > 0) builder.EnsureNode(n - 1);
  if (p == 0.0 || n < 2) return builder.Build();

  // Geometric skipping over the lexicographic enumeration of pairs (u,v),
  // u < v: the gap between successive present edges is Geometric(p).
  const double log1mp = std::log1p(-p);
  uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
  uint64_t index = 0;
  // Pairs (u,v), u < v, are numbered lexicographically; row u owns n-1-u of
  // them. We walk rows incrementally, so decoding is amortized O(1)/edge.
  NodeId row = 0;
  uint64_t row_begin = 0;           // index of first pair in current row
  uint64_t row_len = n - 1;         // pairs in current row
  while (true) {
    double r = rng.NextDouble();
    uint64_t skip =
        p >= 1.0 ? 0
                 : static_cast<uint64_t>(std::floor(std::log1p(-r) / log1mp));
    index += skip;
    if (index >= total) break;
    while (index >= row_begin + row_len) {
      row_begin += row_len;
      ++row;
      row_len = n - 1 - row;
    }
    const NodeId u = row;
    const NodeId v = static_cast<NodeId>(u + 1 + (index - row_begin));
    builder.AddEdge(u, v);
    ++index;
  }
  return builder.Build();
}

StatusOr<Graph> BarabasiAlbert(NodeId n, Count attach, Rng& rng) {
  if (attach == 0) {
    return Status::InvalidArgument("Barabasi-Albert attach must be >= 1");
  }
  if (n < attach + 1) {
    return Status::InvalidArgument("Barabasi-Albert needs n >= attach + 1");
  }
  GraphBuilder builder(n);
  builder.EnsureNode(n - 1);
  // Repeated-endpoint list: sampling a uniform element of `endpoints` is
  // sampling proportional to degree (the standard linear-time BA trick).
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * attach * 2);
  const NodeId seed_size = static_cast<NodeId>(attach + 1);
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  for (NodeId u = seed_size; u < n; ++u) {
    targets.clear();
    while (targets.size() < attach) {
      NodeId t = endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      builder.AddEdge(u, t);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

StatusOr<PlantedCliqueGraph> PlantedCliques(const PlantedCliqueSpec& spec,
                                            Rng& rng) {
  if (spec.k < 3) {
    return Status::InvalidArgument("planted clique size k must be >= 3");
  }
  const NodeId clique_nodes =
      spec.num_cliques * static_cast<NodeId>(spec.k);
  const NodeId n = clique_nodes + spec.filler_nodes;
  if (n == 0) return Status::InvalidArgument("empty planted instance");

  std::vector<NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  if (spec.shuffle_ids) {
    for (NodeId i = n; i > 1; --i) {  // Fisher-Yates
      std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
    }
  }

  GraphBuilder builder(n);
  builder.EnsureNode(n - 1);
  for (NodeId c = 0; c < spec.num_cliques; ++c) {
    const NodeId base = c * static_cast<NodeId>(spec.k);
    for (int i = 0; i < spec.k; ++i) {
      for (int j = i + 1; j < spec.k; ++j) {
        builder.AddEdge(ids[base + i], ids[base + j]);
      }
    }
  }
  // Filler: a uniform random tree (clique-free for k >= 3) attached to
  // nothing in the planted part, so it cannot create new k-cliques.
  for (NodeId i = 1; i < spec.filler_nodes; ++i) {
    const NodeId u = clique_nodes + i;
    const NodeId parent = clique_nodes + static_cast<NodeId>(
                                             rng.NextBounded(i));
    builder.AddEdge(ids[u], ids[parent]);
  }
  // Optional ER noise across all nodes. This may create extra k-cliques, so
  // callers that need the exact optimum must keep noise_p == 0.
  if (spec.noise_p > 0.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        if (rng.NextBool(spec.noise_p)) builder.AddEdge(ids[u], ids[v]);
      }
    }
  }

  PlantedCliqueGraph out;
  out.graph = builder.Build();
  out.planted_count = spec.num_cliques;
  return out;
}

StatusOr<Graph> PlantedPartition(const PlantedPartitionSpec& spec, Rng& rng) {
  if (spec.p_in < 0 || spec.p_in > 1 || spec.p_out < 0 || spec.p_out > 1) {
    return Status::InvalidArgument("probabilities must be in [0,1]");
  }
  const NodeId n = spec.num_communities * spec.community_size;
  if (n == 0) return Status::InvalidArgument("empty planted partition");
  GraphBuilder builder(n);
  builder.EnsureNode(n - 1);

  // Dense intra-community part: direct Bernoulli per pair (communities are
  // small, so the quadratic loop stays cheap).
  for (NodeId c = 0; c < spec.num_communities; ++c) {
    const NodeId base = c * spec.community_size;
    for (NodeId i = 0; i < spec.community_size; ++i) {
      for (NodeId j = i + 1; j < spec.community_size; ++j) {
        if (rng.NextBool(spec.p_in)) builder.AddEdge(base + i, base + j);
      }
    }
  }
  // Sparse inter-community part: geometric skipping over cross pairs, the
  // same trick ErdosRenyi uses, restricted to pairs in different blocks.
  if (spec.p_out > 0 && spec.num_communities > 1) {
    const double log1mp = std::log1p(-spec.p_out);
    const uint64_t total = static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t index = 0;
    NodeId row = 0;
    uint64_t row_begin = 0;
    uint64_t row_len = n - 1;
    while (true) {
      const double r = rng.NextDouble();
      const uint64_t skip = spec.p_out >= 1.0
                                ? 0
                                : static_cast<uint64_t>(
                                      std::floor(std::log1p(-r) / log1mp));
      index += skip;
      if (index >= total) break;
      while (index >= row_begin + row_len) {
        row_begin += row_len;
        ++row;
        row_len = n - 1 - row;
      }
      const NodeId u = row;
      const NodeId v = static_cast<NodeId>(u + 1 + (index - row_begin));
      if (u / spec.community_size != v / spec.community_size) {
        builder.AddEdge(u, v);
      }
      ++index;
    }
  }
  return builder.Build();
}

}  // namespace dkc
