// Synthetic graph generators.
//
// Two roles:
//  * the Watts–Strogatz model reproduces the paper's Section VI-D synthetic
//    scalability study verbatim (n = 1M, average degree 8..64 in the paper;
//    scaled down by default here);
//  * the other models stand in for the SNAP/KONECT datasets that are not
//    available offline (see DESIGN.md §3): Barabási–Albert gives the
//    heavy-tailed degree distribution of social graphs, the planted-clique
//    model gives instances with a *known* optimal disjoint k-clique packing
//    for exactness tests.
//
// All generators are deterministic functions of their seed.

#ifndef DKC_GEN_GENERATORS_H_
#define DKC_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace dkc {

/// Watts–Strogatz small-world graph [43]: ring lattice over n nodes where
/// each node connects to its `degree` nearest neighbors (`degree` even),
/// then each edge endpoint is rewired with probability `beta`. High
/// clustering at low beta => rich in k-cliques, like social networks.
StatusOr<Graph> WattsStrogatz(NodeId n, Count degree, double beta, Rng& rng);

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 edges present independently
/// with probability p. Sparse-case generation via geometric skipping, so
/// cost is O(n + m), not O(n^2).
StatusOr<Graph> ErdosRenyi(NodeId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: start from a clique on
/// `attach + 1` nodes, then each new node attaches to `attach` distinct
/// existing nodes chosen proportionally to degree.
StatusOr<Graph> BarabasiAlbert(NodeId n, Count attach, Rng& rng);

struct PlantedCliqueSpec {
  NodeId num_cliques = 10;   // disjoint k-cliques planted
  int k = 4;                 // clique size
  NodeId filler_nodes = 50;  // extra nodes outside every planted clique
  double noise_p = 0.0;      // additional ER noise edges on top
  bool shuffle_ids = true;   // permute node ids so structure isn't positional
};

struct PlantedCliqueGraph {
  Graph graph;
  /// The planted packing size (== spec.num_cliques). With noise_p == 0 and
  /// spare filler edges below clique density, this is the exact optimum.
  NodeId planted_count = 0;
};

/// Disjoint k-cliques plus sparse filler: ground-truth instances for
/// correctness tests. With noise_p == 0 the filler part is a random tree
/// (clique-free for k >= 3), so the planted packing is the unique optimum
/// size.
StatusOr<PlantedCliqueGraph> PlantedCliques(const PlantedCliqueSpec& spec,
                                            Rng& rng);

struct PlantedPartitionSpec {
  NodeId num_communities = 50;
  NodeId community_size = 40;
  double p_in = 0.3;    // edge probability inside a community
  double p_out = 0.001; // edge probability across communities
};

/// Planted-partition (stochastic block) model: dense communities, sparse
/// cross edges — the "communities of friends" structure the paper's teaming
/// application runs on. Cliques concentrate inside communities, which makes
/// the clique-score ordering's advantage over first-fit visible.
StatusOr<Graph> PlantedPartition(const PlantedPartitionSpec& spec, Rng& rng);

}  // namespace dkc

#endif  // DKC_GEN_GENERATORS_H_
