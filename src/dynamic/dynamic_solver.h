// DynamicSolver — Section V end-to-end: builds an initial near-optimal
// disjoint k-clique set (any static method), constructs the candidate index
// (Algorithm 5), then maintains the solution under edge insertions
// (Algorithm 6) and deletions (Algorithm 7) via swap operations
// (Algorithm 4).

#ifndef DKC_DYNAMIC_DYNAMIC_SOLVER_H_
#define DKC_DYNAMIC_DYNAMIC_SOLVER_H_

#include <memory>

#include "core/solver.h"
#include "dynamic/candidate_index.h"
#include "dynamic/swap.h"
#include "util/status.h"

namespace dkc {

struct DynamicOptions {
  int k = 3;
  /// Static method that seeds the initial solution.
  Method initial_method = Method::kLP;
  Budget initial_budget;
  ThreadPool* pool = nullptr;  // initial solve + index build
};

struct DynamicBuildStats {
  double solve_ms = 0.0;  // initial static solve
  double index_ms = 0.0;  // Algorithm 5 over the whole solution (Table VII)
};

class DynamicSolver {
 public:
  /// Solve `g` statically, then index it. Fails if the static solve fails.
  static StatusOr<DynamicSolver> Build(const Graph& g,
                                       const DynamicOptions& options);

  /// Seed from a previously computed (e.g. persisted via io/solution_io)
  /// solution instead of re-solving. The seed must be a valid *maximal*
  /// disjoint k-clique set of `g` with the options' k — the maintenance
  /// invariants (Section V's candidate characterization) rely on
  /// maximality. Returns InvalidArgument/Corruption for malformed seeds.
  static StatusOr<DynamicSolver> BuildFromSolution(
      const Graph& g, const CliqueStore& solution,
      const DynamicOptions& options);

  /// Algorithm 6. Returns InvalidArgument if the edge already exists or
  /// u == v. New node ids grow the graph.
  Status InsertEdge(NodeId u, NodeId v);

  /// Algorithm 7. Returns NotFound if the edge does not exist.
  Status DeleteEdge(NodeId u, NodeId v);

  NodeId solution_size() const { return state_->solution_size(); }
  Count index_size() const { return state_->num_alive_candidates(); }
  const DynamicBuildStats& build_stats() const { return build_stats_; }
  const SwapStats& lifetime_swap_stats() const { return swap_stats_; }

  /// Copy of the current solution, e.g. for verification.
  CliqueStore Snapshot() const { return state_->Snapshot(); }
  const DynamicGraph& graph() const { return state_->graph(); }
  int64_t MemoryBytes() const { return state_->MemoryBytes(); }

  /// Invariant check for tests.
  bool CheckInvariants(std::string* error) const {
    return state_->CheckInvariants(error);
  }

 private:
  DynamicSolver(std::unique_ptr<SolutionState> state,
                DynamicBuildStats stats)
      : state_(std::move(state)), build_stats_(stats) {}

  // Finds one k-clique containing both u and v with every node free;
  // fills `clique` and returns true if found (Algorithm 6, lines 7-9).
  bool FindFreeCliqueWithEdge(NodeId u, NodeId v, std::vector<NodeId>* clique);

  // Registers the owners of would-be candidate cliques through the new
  // edge (u,v) and pushes them to `queue` (Algorithm 6, lines 12-15).
  void EnqueueOwnersOfNewCandidates(NodeId u, NodeId v, SwapQueue* queue);

  std::unique_ptr<SolutionState> state_;  // stable address for internals
  DynamicBuildStats build_stats_;
  SwapStats swap_stats_;
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_DYNAMIC_SOLVER_H_
