// DynamicSolver — Section V end-to-end: builds an initial near-optimal
// disjoint k-clique set (any static method), constructs the candidate index
// (Algorithm 5), then maintains the solution under edge insertions
// (Algorithm 6) and deletions (Algorithm 7) via swap operations
// (Algorithm 4).

#ifndef DKC_DYNAMIC_DYNAMIC_SOLVER_H_
#define DKC_DYNAMIC_DYNAMIC_SOLVER_H_

#include <memory>

#include "core/solver.h"
#include "dynamic/candidate_index.h"
#include "dynamic/swap.h"
#include "util/status.h"

namespace dkc {

struct DynamicOptions {
  int k = 3;
  /// Static method that seeds the initial solution.
  Method initial_method = Method::kLP;
  Budget initial_budget;
  /// Per-update maintenance budget for InsertEdge/DeleteEdge: time_ms is a
  /// wall-clock deadline per update (consulted at swap-pop boundaries),
  /// max_branch_nodes a *deterministic* work cap (units: swap pops +
  /// candidate rebuilds + DFS branch nodes entered during rebuild
  /// enumerations). Exhaustion never corrupts the solution — structural
  /// repair (broken-clique replacement, candidate kills) always runs, and
  /// every indexed candidate stays valid; the growth-chasing swap loop is
  /// cut at a pop boundary and an oversized rebuild enumeration at a DFS
  /// branch boundary (the slot's candidate set may then be incomplete
  /// until its next rebuild — see update_work.h). Both cuts are surfaced
  /// through last_update_stats(). With a pure work cap the abort outcome
  /// is byte-identical at every thread count. Zero fields = unlimited.
  Budget update_budget;
  /// Worker pool for the initial solve + index build *and* the per-update
  /// parallel paths (candidate-rebuild fan-out in insertions and swap
  /// commits, packing's candidate sort). Solutions and abort outcomes are
  /// byte-identical at any thread count.
  ThreadPool* pool = nullptr;
  /// Minimum rebuild batch size before the per-update candidate-rebuild
  /// fan-out engages the pool (scheduling only; results identical). The
  /// 2-3-slot batches typical per update lose to the Submit/Wait round
  /// trip, hence the high default; tune on multi-core hosts.
  size_t parallel_rebuild_min_slots = 8;
};

struct DynamicBuildStats {
  double solve_ms = 0.0;  // initial static solve
  double index_ms = 0.0;  // Algorithm 5 over the whole solution (Table VII)
};

/// Outcome of the most recent InsertEdge/DeleteEdge (budget/abort
/// accounting; the Status return carries only hard argument errors).
struct UpdateStats {
  uint64_t work = 0;  // deterministic units charged (see UpdateWork)
  /// Rebuild enumerations the work cap truncated mid-DFS this update
  /// (valid-but-incomplete candidate sets; see update_work.h).
  uint64_t rebuild_cuts = 0;
  SwapStats swaps;    // this update's swap activity

  /// True iff update_budget truncated any of this update's maintenance —
  /// the swap loop at a pop boundary or a rebuild mid-enumeration.
  bool aborted() const { return swaps.aborted || rebuild_cuts > 0; }
};

class DynamicSolver {
 public:
  /// Solve `g` statically, then index it. Fails if the static solve fails.
  static StatusOr<DynamicSolver> Build(const Graph& g,
                                       const DynamicOptions& options);

  /// Seed from a previously computed (e.g. persisted via io/solution_io)
  /// solution instead of re-solving. The seed must be a valid *maximal*
  /// disjoint k-clique set of `g` with the options' k — the maintenance
  /// invariants (Section V's candidate characterization) rely on
  /// maximality. Returns InvalidArgument/Corruption for malformed seeds.
  static StatusOr<DynamicSolver> BuildFromSolution(
      const Graph& g, const CliqueStore& solution,
      const DynamicOptions& options);

  /// Wrap a restored engine state (store/snapshot.h) without re-solving or
  /// re-indexing: the state already carries the solution *and* the exact
  /// candidate index, so the solver continues byte-identically to the one
  /// the state was serialized from. Lifetime stats restart at zero.
  /// InvalidArgument if options.k disagrees with the state's k.
  static StatusOr<DynamicSolver> FromState(
      std::unique_ptr<SolutionState> state, const DynamicOptions& options);

  /// The engine state (exposed for the durable store's snapshot writer).
  const SolutionState& state() const { return *state_; }

  /// Algorithm 6. Returns InvalidArgument if the edge already exists or
  /// u == v. New node ids grow the graph.
  Status InsertEdge(NodeId u, NodeId v);

  /// Algorithm 7. Returns NotFound if the edge does not exist.
  Status DeleteEdge(NodeId u, NodeId v);

  NodeId solution_size() const { return state_->solution_size(); }
  Count index_size() const { return state_->num_alive_candidates(); }
  const DynamicBuildStats& build_stats() const { return build_stats_; }
  const SwapStats& lifetime_swap_stats() const { return swap_stats_; }

  /// Budget/abort outcome of the most recent update.
  const UpdateStats& last_update_stats() const { return last_update_; }
  /// Lifetime count of updates whose maintenance the budget truncated.
  uint64_t aborted_updates() const { return aborted_updates_; }
  /// Entries (alive + stale) across the index's per-node candidate lists;
  /// bounded by compaction (see SolutionState::node_cand_ref_count).
  size_t node_cand_ref_count() const {
    return state_->node_cand_ref_count();
  }

  /// Copy of the current solution, e.g. for verification.
  CliqueStore Snapshot() const { return state_->Snapshot(); }
  const DynamicGraph& graph() const { return state_->graph(); }
  int64_t MemoryBytes() const { return state_->MemoryBytes(); }

  /// Invariant check for tests.
  bool CheckInvariants(std::string* error) const {
    return state_->CheckInvariants(error);
  }

  /// Index-vs-fresh-enumeration completeness check for tests (expensive;
  /// see SolutionState::CheckCandidateCompleteness).
  bool CheckCandidateCompleteness(std::string* error) const {
    return state_->CheckCandidateCompleteness(error);
  }

 private:
  DynamicSolver(std::unique_ptr<SolutionState> state, DynamicBuildStats stats,
                const DynamicOptions& options)
      : state_(std::move(state)),
        build_stats_(stats),
        update_budget_(options.update_budget),
        pool_(options.pool) {}

  // Finds one k-clique containing both u and v with every node free;
  // fills `clique` and returns true if found (Algorithm 6, lines 7-9).
  bool FindFreeCliqueWithEdge(NodeId u, NodeId v, std::vector<NodeId>* clique);

  // Registers the owners of would-be candidate cliques through the new
  // edge (u,v), charging `meter`, and pushes the ones that gained
  // candidates to `queue` (Algorithm 6, lines 12-15).
  void EnqueueOwnersOfNewCandidates(NodeId u, NodeId v, SwapQueue* queue,
                                    UpdateWork* meter);

  // Folds one update's meter + swap outcome into the surfaced stats.
  void FinishUpdate(const UpdateWork& meter, const SwapStats& swaps);

  std::unique_ptr<SolutionState> state_;  // stable address for internals
  DynamicBuildStats build_stats_;
  Budget update_budget_;
  ThreadPool* pool_ = nullptr;
  SwapStats swap_stats_;
  UpdateStats last_update_;
  uint64_t aborted_updates_ = 0;
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_DYNAMIC_SOLVER_H_
