// DynamicSolver — Section V end-to-end: builds an initial near-optimal
// disjoint k-clique set (any static method), constructs the candidate index
// (Algorithm 5), then maintains the solution under edge insertions
// (Algorithm 6) and deletions (Algorithm 7) via swap operations
// (Algorithm 4).

#ifndef DKC_DYNAMIC_DYNAMIC_SOLVER_H_
#define DKC_DYNAMIC_DYNAMIC_SOLVER_H_

#include <memory>
#include <span>
#include <vector>

#include "core/solver.h"
#include "dynamic/candidate_index.h"
#include "dynamic/solution_view.h"
#include "dynamic/swap.h"
#include "dynamic/workload.h"
#include "util/status.h"

namespace dkc {

struct DynamicOptions {
  int k = 3;
  /// Static method that seeds the initial solution.
  Method initial_method = Method::kLP;
  Budget initial_budget;
  /// Per-update maintenance budget for InsertEdge/DeleteEdge: time_ms is a
  /// wall-clock deadline per update (consulted at swap-pop boundaries),
  /// max_branch_nodes a *deterministic* work cap (units: swap pops +
  /// candidate rebuilds + DFS branch nodes entered during rebuild
  /// enumerations). Exhaustion never corrupts the solution — structural
  /// repair (broken-clique replacement, candidate kills) always runs, and
  /// every indexed candidate stays valid; the growth-chasing swap loop is
  /// cut at a pop boundary and an oversized rebuild enumeration at a DFS
  /// branch boundary (the slot's candidate set may then be incomplete
  /// until its next rebuild — see update_work.h). Both cuts are surfaced
  /// through last_update_stats(). With a pure work cap the abort outcome
  /// is byte-identical at every thread count. Zero fields = unlimited.
  Budget update_budget;
  /// Worker pool for the initial solve + index build *and* the per-update
  /// parallel paths (candidate-rebuild fan-out in insertions and swap
  /// commits, packing's candidate sort). Solutions and abort outcomes are
  /// byte-identical at any thread count.
  ThreadPool* pool = nullptr;
  /// Minimum rebuild batch size before the per-update candidate-rebuild
  /// fan-out engages the pool (scheduling only; results identical). The
  /// 2-3-slot batches typical per update lose to the Submit/Wait round
  /// trip, hence the high default; tune on multi-core hosts.
  size_t parallel_rebuild_min_slots = 8;
};

struct DynamicBuildStats {
  double solve_ms = 0.0;  // initial static solve
  double index_ms = 0.0;  // Algorithm 5 over the whole solution (Table VII)
};

/// Outcome of the most recent InsertEdge/DeleteEdge (budget/abort
/// accounting; the Status return carries only hard argument errors).
struct UpdateStats {
  uint64_t work = 0;  // deterministic units charged (see UpdateWork)
  /// Rebuild enumerations the work cap truncated mid-DFS this update
  /// (valid-but-incomplete candidate sets; see update_work.h).
  uint64_t rebuild_cuts = 0;
  SwapStats swaps;    // this update's swap activity

  /// True iff update_budget truncated any of this update's maintenance —
  /// the swap loop at a pop boundary or a rebuild mid-enumeration.
  bool aborted() const { return swaps.aborted || rebuild_cuts > 0; }
};

/// Per-update slice of an ApplyBatch epoch (see BatchStats::per_update).
struct BatchUpdateStats {
  bool is_insert = false;
  Edge edge{0, 0};
  /// Meter units charged while staging this op (mandatory structural work:
  /// candidate kills, repair packing — rebuilds are charged at the
  /// boundary, not per update).
  uint64_t staged_work = 0;
  /// Dirty slots this op marked *first* (later ops touching the same slot
  /// mark nothing — that sharing is the rebuild dedup).
  uint32_t slots_marked = 0;
  /// Insert materialized a brand-new all-free clique directly.
  bool direct_add = false;
  /// Delete broke a solution clique; the mandatory repair ran.
  bool repaired = false;
};

/// Outcome of the most recent ApplyBatch epoch: per-epoch aggregates (the
/// epoch shares one deterministic UpdateWork meter, scaled to the batch
/// size) plus the per-update breakdown. After an ApplyBatch the epoch
/// aggregate is also folded into last_update_stats()/aborted_updates(),
/// one epoch counting as one "update" there.
struct BatchStats {
  size_t updates = 0;
  size_t inserts = 0;
  size_t deletes = 0;
  /// Deduped boundary rebuild fan-out: dirty slots rebuilt once each,
  /// however many updates in the epoch touched them. dirty_slots <
  /// slots-marked-summed-over-updates is the measurable dedup win on
  /// bursty neighborhoods.
  size_t dirty_slots = 0;
  uint64_t work = 0;          // whole-epoch meter total
  uint64_t rebuild_cuts = 0;  // boundary rebuilds the cap truncated
  SwapStats swaps;            // the boundary swap loop
  std::vector<BatchUpdateStats> per_update;

  bool aborted() const { return swaps.aborted || rebuild_cuts > 0; }
};

class DynamicSolver {
 public:
  /// Solve `g` statically, then index it. Fails if the static solve fails.
  static StatusOr<DynamicSolver> Build(const Graph& g,
                                       const DynamicOptions& options);

  /// Seed from a previously computed (e.g. persisted via io/solution_io)
  /// solution instead of re-solving. The seed must be a valid *maximal*
  /// disjoint k-clique set of `g` with the options' k — the maintenance
  /// invariants (Section V's candidate characterization) rely on
  /// maximality. Returns InvalidArgument/Corruption for malformed seeds.
  static StatusOr<DynamicSolver> BuildFromSolution(
      const Graph& g, const CliqueStore& solution,
      const DynamicOptions& options);

  /// Wrap a restored engine state (store/snapshot.h) without re-solving or
  /// re-indexing: the state already carries the solution *and* the exact
  /// candidate index, so the solver continues byte-identically to the one
  /// the state was serialized from. Lifetime stats restart at zero.
  /// InvalidArgument if options.k disagrees with the state's k.
  static StatusOr<DynamicSolver> FromState(
      std::unique_ptr<SolutionState> state, const DynamicOptions& options);

  /// The engine state (exposed for the durable store's snapshot writer).
  const SolutionState& state() const { return *state_; }

  /// Algorithm 6. Returns InvalidArgument if the edge already exists or
  /// u == v. New node ids grow the graph.
  Status InsertEdge(NodeId u, NodeId v);

  /// Algorithm 7. Returns NotFound if the edge does not exist.
  Status DeleteEdge(NodeId u, NodeId v);

  /// Epoch-batched apply — the high-throughput ingestion path. Validates
  /// the whole batch up front (ValidateBatch) and rejects it atomically,
  /// state untouched, if any op is invalid. Otherwise every op's
  /// *mandatory* structural effect is applied in stream order (graph
  /// mutation, candidate kills through deleted edges, broken-clique
  /// repair, direct adds of brand-new all-free cliques), while candidate
  /// rebuilds are only *marked*; at the epoch boundary each dirty slot is
  /// rebuilt exactly once via a single RebuildCandidatesForMany fan-out —
  /// the dedup win on bursty streams, and batches finally big enough to
  /// feed parallel_rebuild_min_slots — followed by one swap loop and an
  /// atomic SolutionView publish.
  ///
  /// Determinism contract: batch boundaries are part of the stream. The
  /// epoch shares one UpdateWork meter whose deterministic cap scales to
  /// the batch (update_budget.max_branch_nodes × ops.size()) with the
  /// same schedule-independent abort boundaries, so for a fixed stream
  /// *and fixed batching* the outcome is byte-identical at any thread
  /// count; ApplyBatch of a single op is byte-identical to the
  /// corresponding InsertEdge/DeleteEdge. An empty batch is a no-op (no
  /// epoch, no publish).
  Status ApplyBatch(std::span<const UpdateOp> ops);

  /// The batch-level precondition check ApplyBatch runs: each op must be
  /// valid on the graph as left by the ops before it (self loops,
  /// duplicate inserts, deletes of absent edges — including intra-batch
  /// duplicates and conflicts). Exposed so the durable store can validate
  /// before logging. Errors name the offending op index.
  Status ValidateBatch(std::span<const UpdateOp> ops) const;

  /// Stats of the most recent successful ApplyBatch (reset to empty by an
  /// errored call — no stale per-update entries survive a rejected batch).
  const BatchStats& last_batch_stats() const { return last_batch_; }
  /// Lifetime batched-ingestion counters: epochs applied, updates applied
  /// through them, and deduped dirty-slot rebuilds at their boundaries
  /// (batch_dirty_rebuilds < batched_updates_applied on bursty streams is
  /// the dedup headline).
  uint64_t batches_applied() const { return batches_applied_; }
  uint64_t batched_updates_applied() const { return batched_updates_; }
  uint64_t batch_dirty_rebuilds() const { return batch_dirty_rebuilds_; }

  /// Epochs published (0 until the first ApplyBatch; Build publishes the
  /// initial solution as epoch 0).
  uint64_t epoch() const { return epoch_; }
  /// The last published read snapshot — lock-free for readers; never
  /// blocks on (and is never torn by) a concurrent ApplyBatch. See
  /// solution_view.h.
  std::shared_ptr<const SolutionView> published_view() const {
    return publisher_->Current();
  }
  /// Re-publish the current state under the current epoch. The unbatched
  /// InsertEdge/DeleteEdge paths do not publish automatically; callers
  /// mixing them with concurrent readers publish at their own boundaries.
  void PublishView();

  NodeId solution_size() const { return state_->solution_size(); }
  Count index_size() const { return state_->num_alive_candidates(); }
  const DynamicBuildStats& build_stats() const { return build_stats_; }
  const SwapStats& lifetime_swap_stats() const { return swap_stats_; }

  /// Budget/abort outcome of the most recent update.
  const UpdateStats& last_update_stats() const { return last_update_; }
  /// Lifetime count of updates whose maintenance the budget truncated.
  uint64_t aborted_updates() const { return aborted_updates_; }
  /// Entries (alive + stale) across the index's per-node candidate lists;
  /// bounded by compaction (see SolutionState::node_cand_ref_count).
  size_t node_cand_ref_count() const {
    return state_->node_cand_ref_count();
  }

  /// Copy of the current solution, e.g. for verification.
  CliqueStore Snapshot() const { return state_->Snapshot(); }
  const DynamicGraph& graph() const { return state_->graph(); }
  int64_t MemoryBytes() const { return state_->MemoryBytes(); }

  /// Invariant check for tests.
  bool CheckInvariants(std::string* error) const {
    return state_->CheckInvariants(error);
  }

  /// Index-vs-fresh-enumeration completeness check for tests (expensive;
  /// see SolutionState::CheckCandidateCompleteness).
  bool CheckCandidateCompleteness(std::string* error) const {
    return state_->CheckCandidateCompleteness(error);
  }

 private:
  DynamicSolver(std::unique_ptr<SolutionState> state, DynamicBuildStats stats,
                const DynamicOptions& options)
      : state_(std::move(state)),
        build_stats_(stats),
        update_budget_(options.update_budget),
        pool_(options.pool),
        publisher_(std::make_unique<SolutionPublisher>()) {
    PublishView();  // readers always have a view, epoch 0 = the build
  }

  // Finds one k-clique containing both u and v with every node free;
  // fills `clique` and returns true if found (Algorithm 6, lines 7-9).
  bool FindFreeCliqueWithEdge(NodeId u, NodeId v, std::vector<NodeId>* clique);

  // The owners of would-be candidate cliques through the new edge (u,v) —
  // the exact Algorithm-6 lines 12-15 enumeration (both endpoints free, no
  // all-free clique found), sorted, deduped, dead slots dropped. Uncharged:
  // the rebuilds it feeds carry the meter. Shared verbatim by the serial
  // path and the batched staging so their dirty sets agree bit-for-bit.
  std::vector<uint32_t> CollectOwnersOfNewCandidates(NodeId u, NodeId v) const;

  // Registers the owners of would-be candidate cliques through the new
  // edge (u,v), charging `meter`, and pushes the ones that gained
  // candidates to `queue` (Algorithm 6, lines 12-15).
  void EnqueueOwnersOfNewCandidates(NodeId u, NodeId v, SwapQueue* queue,
                                    UpdateWork* meter);

  // Folds one update's meter + swap outcome into the surfaced stats.
  void FinishUpdate(const UpdateWork& meter, const SwapStats& swaps);

  std::unique_ptr<SolutionState> state_;  // stable address for internals
  DynamicBuildStats build_stats_;
  Budget update_budget_;
  ThreadPool* pool_ = nullptr;
  // unique_ptr keeps the publisher's address stable across solver moves —
  // readers hold the publisher, not the solver.
  std::unique_ptr<SolutionPublisher> publisher_;
  SwapStats swap_stats_;
  UpdateStats last_update_;
  BatchStats last_batch_;
  uint64_t aborted_updates_ = 0;
  uint64_t updates_applied_ = 0;
  uint64_t epoch_ = 0;
  uint64_t batches_applied_ = 0;
  uint64_t batched_updates_ = 0;
  uint64_t batch_dirty_rebuilds_ = 0;
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_DYNAMIC_SOLVER_H_
