#include "dynamic/candidate_index.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <mutex>

#include "clique/kclique.h"
#include "core/clique_score.h"

namespace dkc {

SolutionState::SolutionState(DynamicGraph graph, int k,
                             std::vector<Count> node_scores)
    : graph_(std::move(graph)), k_(k), node_scores_(std::move(node_scores)) {
  node_to_clique_.assign(graph_.num_nodes(), kNoClique);
  node_cands_.resize(graph_.num_nodes());
  node_scores_.resize(graph_.num_nodes(), 0);
}

CliqueStore SolutionState::Snapshot() const {
  CliqueStore store(k_);
  for (const auto& clique : cliques_) {
    if (clique.alive) store.Add(clique.nodes);
  }
  return store;
}

int64_t SolutionState::MemoryBytes() const {
  int64_t bytes = graph_.MemoryBytes();
  bytes += static_cast<int64_t>(node_scores_.capacity() * sizeof(Count));
  bytes += static_cast<int64_t>(node_to_clique_.capacity() * sizeof(uint32_t));
  for (const auto& c : cliques_) {
    bytes += static_cast<int64_t>(sizeof(SolClique) +
                                  c.nodes.capacity() * sizeof(NodeId) +
                                  c.cands.capacity() * sizeof(CandRef));
  }
  for (const auto& c : candidates_) {
    bytes += static_cast<int64_t>(sizeof(Candidate) +
                                  c.nodes.capacity() * sizeof(NodeId));
  }
  for (const auto& list : node_cands_) {
    bytes += static_cast<int64_t>(list.capacity() * sizeof(CandRef));
  }
  return bytes;
}

uint32_t SolutionState::AddSolutionClique(std::span<const NodeId> nodes) {
  uint32_t slot;
  if (!clique_free_slots_.empty()) {
    slot = clique_free_slots_.back();
    clique_free_slots_.pop_back();
    ++cliques_[slot].gen;  // invalidate every parked SlotRef to this slot
  } else {
    slot = static_cast<uint32_t>(cliques_.size());
    cliques_.emplace_back();
  }
  SolClique& clique = cliques_[slot];
  clique.nodes.assign(nodes.begin(), nodes.end());
  clique.cands.clear();
  clique.alive = true;
  for (NodeId u : nodes) {
    assert(node_to_clique_[u] == kNoClique && "node must be free");
    node_to_clique_[u] = slot;
    // Every candidate through u referenced it as a free node (a non-free
    // member would have put u in a solution clique); all are now invalid —
    // their free/non-free split changed, or they now straddle two solution
    // cliques — so they die here, *whichever clique owns them*. This kill
    // is what keeps consuming free nodes (direct adds and swap commits
    // alike) from leaving stale candidates behind in other cliques' sets.
    // The per-node list can be cleared outright: all its alive entries die,
    // and stale ones are garbage anyway.
    for (CandRef ref : node_cands_[u]) {
      if (CandValid(ref)) KillCandidate(ref.idx);
    }
    node_cand_refs_ -= node_cands_[u].size();
    node_cands_[u].clear();
  }
  ++solution_size_;
  MaybeCompactNodeCands();
  return slot;
}

void SolutionState::RemoveSolutionClique(uint32_t slot) {
  KillOwnedCandidates(slot);
  SolClique& clique = cliques_[slot];
  for (NodeId u : clique.nodes) node_to_clique_[u] = kNoClique;
  clique.alive = false;
  clique.nodes.clear();
  clique_free_slots_.push_back(slot);
  --solution_size_;
  MaybeCompactNodeCands();
}

void SolutionState::KillCandidate(uint32_t idx) {
  Candidate& cand = candidates_[idx];
  assert(cand.alive);
  cand.alive = false;
  cand.nodes.clear();
  cand_free_slots_.push_back(idx);
  --alive_candidates_;
}

uint32_t SolutionState::RegisterCandidate(std::span<const NodeId> nodes,
                                          uint32_t owner) {
  uint32_t idx;
  if (!cand_free_slots_.empty()) {
    idx = cand_free_slots_.back();
    cand_free_slots_.pop_back();
    ++candidates_[idx].gen;
  } else {
    idx = static_cast<uint32_t>(candidates_.size());
    candidates_.emplace_back();
  }
  Candidate& cand = candidates_[idx];
  cand.nodes.assign(nodes.begin(), nodes.end());
  cand.score = CliqueScoreOf(nodes, node_scores_);
  cand.owner = owner;
  cand.alive = true;
  const CandRef ref{idx, cand.gen};
  cliques_[owner].cands.push_back(ref);
  for (NodeId u : nodes) node_cands_[u].push_back(ref);
  node_cand_refs_ += nodes.size();
  ++alive_candidates_;
  return idx;
}

void SolutionState::MaybeCompactNodeCands() {
  const size_t alive_refs =
      static_cast<size_t>(alive_candidates_) * static_cast<size_t>(k_);
  if (node_cand_refs_ <= 2 * alive_refs + node_cands_.size() + 64) return;
  size_t total = 0;
  for (auto& list : node_cands_) {
    size_t write = 0;
    for (const CandRef ref : list) {
      if (CandValid(ref)) list[write++] = ref;  // alive order preserved
    }
    list.resize(write);
    total += write;
  }
  node_cand_refs_ = total;
}

void SolutionState::EnumerateCandidatesFor(
    uint32_t slot, std::vector<std::vector<NodeId>>* out,
    NeighborhoodKernel* kernel, EnumBudget* budget) const {
  out->clear();
  const SolClique& clique = cliques_[slot];
  // B = C ∪ N_F(C): the clique's nodes plus their free neighbors. Any
  // candidate of C lives inside B — its free nodes are adjacent to some
  // node of C because a k-clique is fully connected and it intersects C.
  std::vector<NodeId> b(clique.nodes.begin(), clique.nodes.end());
  for (NodeId u : clique.nodes) {
    for (NodeId v : graph_.Neighbors(u)) {
      if (node_to_clique_[v] == kNoClique) b.push_back(v);
    }
  }
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());

  ForEachKCliqueInSubset(
      graph_, b, k_, [&](std::span<const NodeId> nodes) {
        // Recording mode tracks *candidates*, not raw cliques: drop the
        // charge point of a clique rejected below so emit_used stays
        // parallel to `out`.
        auto reject = [&] {
          if (budget != nullptr && budget->emit_used != nullptr) {
            budget->emit_used->pop_back();
          }
          return true;
        };
        int in_c = 0;
        int free_nodes = 0;
        for (NodeId u : nodes) {
          if (node_to_clique_[u] == slot) {
            ++in_c;
          } else if (node_to_clique_[u] == kNoClique) {
            ++free_nodes;
          } else {
            return reject();  // touches another solution clique
          }
        }
        // in_c == k would be C itself; free == k would contradict the
        // maximality the engine maintains, but guard anyway.
        if (in_c < 1 || free_nodes < 1) return reject();
        out->emplace_back(nodes.begin(), nodes.end());
        return true;
      },
      kernel, budget);
}

size_t SolutionState::RebuildCandidatesFor(uint32_t slot, UpdateWork* meter) {
  return RebuildCandidatesFor(slot, kInvalidNode, kInvalidNode, meter)
      .candidates;
}

namespace {

// Seeds the DFS budget for one serial rebuild: the enumeration continues
// charging where the update's meter left off, against its deterministic
// work cap (never the wall clock — see update_work.h).
EnumBudget BudgetFromMeter(const UpdateWork& meter) {
  EnumBudget budget;
  budget.used = meter.work;
  budget.cap = meter.max_work;
  return budget;
}

}  // namespace

void SolutionState::KillOwnedCandidates(uint32_t slot) {
  assert(SlotAlive(slot));
  SolClique& clique = cliques_[slot];
  for (CandRef ref : clique.cands) {
    if (CandValid(ref)) KillCandidate(ref.idx);
  }
  clique.cands.clear();
}

SolutionState::RebuildOutcome SolutionState::RebuildCandidatesFor(
    uint32_t slot, NodeId u, NodeId v, UpdateWork* meter) {
  KillOwnedCandidates(slot);

  RebuildOutcome outcome;
  std::vector<std::vector<NodeId>> found;
  if (meter != nullptr) {
    meter->Charge(1);  // the rebuild unit; DFS branches charge inside
    EnumBudget budget = BudgetFromMeter(*meter);
    EnumerateCandidatesFor(slot, &found, &subset_kernel_, &budget);
    meter->work = budget.used;
    if (budget.cut) ++meter->rebuild_cuts;
  } else {
    EnumerateCandidatesFor(slot, &found, &subset_kernel_);
  }
  for (const auto& nodes : found) {
    RegisterCandidate(nodes, slot);
    if (u != kInvalidNode && !outcome.has_edge) {
      outcome.has_edge =
          std::find(nodes.begin(), nodes.end(), u) != nodes.end() &&
          std::find(nodes.begin(), nodes.end(), v) != nodes.end();
    }
  }
  outcome.candidates = found.size();
  MaybeCompactNodeCands();
  return outcome;
}

void SolutionState::RebuildCandidatesForMany(std::span<const uint32_t> slots,
                                             ThreadPool* pool,
                                             std::vector<size_t>* counts,
                                             UpdateWork* meter) {
  if (counts != nullptr) counts->assign(slots.size(), 0);
  // The fan-out gate (see set_parallel_rebuild_min_slots) changes only
  // scheduling, never results: both paths are byte-identical, including
  // budgeted outcomes.
  if (pool == nullptr || pool->num_threads() <= 1 ||
      slots.size() < parallel_rebuild_min_slots_) {
    for (size_t i = 0; i < slots.size(); ++i) {
      const size_t n = RebuildCandidatesFor(slots[i], meter);
      if (counts != nullptr) (*counts)[i] = n;
    }
    return;
  }
  // Enumeration reads only the graph and the free/non-free map — never the
  // candidate slots — so fanning it out (worker-private kernels, shared
  // cursor) and registering serially afterwards in `slots` order yields
  // exactly the serial loop's candidates in exactly its registration
  // order. The shared subset_kernel_ is only for the serial path.
  //
  // Under a meter the workers enumerate speculatively (unbudgeted, with
  // per-candidate charge points recorded) and the serial registration loop
  // replays the charges: a budgeted serial DFS would have emitted exactly
  // the candidates whose charge point fits the remaining headroom, charged
  // min(total, headroom) branch units, and cut iff the total exceeds it —
  // so work, cuts, and the registered set match the serial path exactly,
  // at any thread count (overshoot enumeration work is wasted, never
  // observable).
  std::vector<std::vector<std::vector<NodeId>>> found(slots.size());
  std::vector<std::vector<uint64_t>> charge_points(slots.size());
  std::vector<uint64_t> total_used(slots.size(), 0);
  std::atomic<size_t> cursor{0};
  const bool metered = meter != nullptr;
  pool->RunPerWorker([&](size_t) {
    NeighborhoodKernel kernel;
    for (;;) {
      const size_t i = cursor.fetch_add(1);
      if (i >= slots.size()) break;
      if (metered) {
        EnumBudget recorder;  // unlimited; counts branches per slot
        recorder.emit_used = &charge_points[i];
        EnumerateCandidatesFor(slots[i], &found[i], &kernel, &recorder);
        total_used[i] = recorder.used;
      } else {
        EnumerateCandidatesFor(slots[i], &found[i], &kernel);
      }
    }
  });
  for (size_t i = 0; i < slots.size(); ++i) {
    const uint32_t slot = slots[i];
    KillOwnedCandidates(slot);
    size_t registered = 0;
    if (metered) {
      meter->Charge(1);  // the rebuild unit, as in the serial path
      const uint64_t headroom =
          meter->max_work == 0
              ? UINT64_MAX
              : (meter->max_work > meter->work ? meter->max_work - meter->work
                                               : 0);
      for (size_t c = 0; c < found[i].size(); ++c) {
        if (charge_points[i][c] > headroom) break;  // charge points ascend
        RegisterCandidate(found[i][c], slot);
        ++registered;
      }
      meter->work += std::min(total_used[i], headroom);
      if (total_used[i] > headroom) ++meter->rebuild_cuts;
    } else {
      for (const auto& nodes : found[i]) RegisterCandidate(nodes, slot);
      registered = found[i].size();
    }
    if (counts != nullptr) (*counts)[i] = registered;
  }
  MaybeCompactNodeCands();
}

void SolutionState::RebuildAllCandidates(ThreadPool* pool) {
  std::vector<uint32_t> slots;
  ForEachSlot([&slots](uint32_t s) { slots.push_back(s); });
  RebuildCandidatesForMany(slots, pool, nullptr);
}

size_t SolutionState::KillCandidatesWithEdge(NodeId u, NodeId v) {
  size_t killed = 0;
  auto& list = node_cands_[u];
  size_t write = 0;
  for (size_t read = 0; read < list.size(); ++read) {
    const CandRef ref = list[read];
    if (!CandValid(ref)) continue;  // compact stale entries while here
    const Candidate& cand = candidates_[ref.idx];
    if (std::find(cand.nodes.begin(), cand.nodes.end(), v) !=
        cand.nodes.end()) {
      KillCandidate(ref.idx);
      ++killed;
      continue;
    }
    list[write++] = ref;
  }
  node_cand_refs_ -= list.size() - write;
  list.resize(write);
  // The kills above went stale in every *other* member node's list; the
  // bounded compaction keeps a delete-heavy stream from accumulating them
  // without bound (the satellite-2 regression).
  MaybeCompactNodeCands();
  return killed;
}

std::vector<SolutionState::CandidateView> SolutionState::CandidatesOf(
    uint32_t slot) const {
  std::vector<CandidateView> out;
  if (!SlotAlive(slot)) return out;
  for (CandRef ref : cliques_[slot].cands) {
    if (!CandValid(ref)) continue;
    const Candidate& cand = candidates_[ref.idx];
    out.push_back(CandidateView{cand.nodes, cand.score});
  }
  return out;
}

void SolutionState::EnsureNodeCapacity(NodeId n) {
  if (n > node_to_clique_.size()) {
    node_to_clique_.resize(n, kNoClique);
    node_cands_.resize(n);
    node_scores_.resize(n, 0);
  }
}

bool SolutionState::CheckInvariants(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  // node_to_clique consistency.
  for (NodeId u = 0; u < node_to_clique_.size(); ++u) {
    const uint32_t s = node_to_clique_[u];
    if (s == kNoClique) continue;
    if (!SlotAlive(s)) return fail("node mapped to dead slot");
    const auto& nodes = cliques_[s].nodes;
    if (std::find(nodes.begin(), nodes.end(), u) == nodes.end()) {
      return fail("node mapped to clique that does not contain it");
    }
  }
  // Solution cliques are cliques, pairwise disjoint via node_to_clique.
  Count alive_slots = 0;
  for (uint32_t s = 0; s < cliques_.size(); ++s) {
    if (!cliques_[s].alive) continue;
    ++alive_slots;
    const auto& nodes = cliques_[s].nodes;
    if (nodes.size() != static_cast<size_t>(k_)) {
      return fail("solution clique of wrong size");
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (node_to_clique_[nodes[i]] != s) {
        return fail("solution clique node not mapped back");
      }
      for (size_t j = i + 1; j < nodes.size(); ++j) {
        if (!graph_.HasEdge(nodes[i], nodes[j])) {
          return fail("solution clique misses an edge");
        }
      }
    }
  }
  if (alive_slots != solution_size_) return fail("solution_size_ drifted");
  // Candidates: real cliques, >=1 free node, non-free nodes all in owner.
  Count alive_cands = 0;
  for (uint32_t i = 0; i < candidates_.size(); ++i) {
    const Candidate& cand = candidates_[i];
    if (!cand.alive) continue;
    ++alive_cands;
    if (!SlotAlive(cand.owner)) return fail("candidate with dead owner");
    int free_nodes = 0;
    for (size_t a = 0; a < cand.nodes.size(); ++a) {
      const uint32_t s = node_to_clique_[cand.nodes[a]];
      if (s == kNoClique) {
        ++free_nodes;
      } else if (s != cand.owner) {
        return fail("candidate non-free node outside owner");
      }
      for (size_t b = a + 1; b < cand.nodes.size(); ++b) {
        if (!graph_.HasEdge(cand.nodes[a], cand.nodes[b])) {
          return fail("candidate is not a clique");
        }
      }
    }
    if (free_nodes == 0) return fail("candidate without free nodes");
    if (free_nodes == k_) return fail("candidate with only free nodes");
  }
  if (alive_cands != alive_candidates_) {
    return fail("alive_candidates_ drifted");
  }
  return true;
}

bool SolutionState::CheckCandidateCompleteness(std::string* error) const {
  auto fail = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return false;
  };
  auto canonical = [](std::vector<std::vector<NodeId>> cliques) {
    for (auto& c : cliques) std::sort(c.begin(), c.end());
    std::sort(cliques.begin(), cliques.end());
    return cliques;
  };
  NeighborhoodKernel kernel;
  std::vector<std::vector<NodeId>> expected;
  for (uint32_t s = 0; s < cliques_.size(); ++s) {
    if (!cliques_[s].alive) continue;
    EnumerateCandidatesFor(s, &expected, &kernel);
    std::vector<std::vector<NodeId>> indexed;
    for (const auto& view : CandidatesOf(s)) indexed.push_back(view.nodes);
    if (canonical(expected) != canonical(std::move(indexed))) {
      return fail("candidate index of slot " + std::to_string(s) +
                  " disagrees with a fresh Algorithm-5 enumeration");
    }
  }
  return true;
}

}  // namespace dkc
