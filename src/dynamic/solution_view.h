// Non-blocking read snapshots of the dynamic solution.
//
// The batched ingestion path publishes an immutable SolutionView at every
// epoch boundary via an atomic shared_ptr swap (the classic double-buffer:
// writers build the next view off to the side, readers keep whatever view
// they grabbed alive for as long as they hold the pointer). Readers —
// `dkc serve` queries, top-k scores — therefore never block on writers and
// never observe a half-applied epoch: a view is always the exact solution
// at some epoch boundary of the update stream.

#ifndef DKC_DYNAMIC_SOLUTION_VIEW_H_
#define DKC_DYNAMIC_SOLUTION_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "clique/clique_store.h"
#include "graph/graph.h"

namespace dkc {

class SolutionState;

struct SolutionView {
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  /// Epoch boundary this view was published at (0 = the initial solve,
  /// before any update).
  uint64_t epoch = 0;
  /// Updates applied through that boundary.
  uint64_t updates_applied = 0;

  /// The solution at the boundary, densely numbered 0..size()-1.
  CliqueStore solution;
  /// Group id per node (kNoGroup for free nodes); indexed by NodeId.
  std::vector<uint32_t> node_to_group;
  /// Definition-6 clique score per group, aligned with `solution` ids.
  std::vector<Count> group_scores;

  explicit SolutionView(int k) : solution(k) {}

  /// The group containing `u`, or kNoGroup (out-of-range ids are free:
  /// the caller may hold a view older than the node's creation).
  uint32_t GroupOf(NodeId u) const {
    return u < node_to_group.size() ? node_to_group[u] : kNoGroup;
  }
  std::span<const NodeId> GroupMembers(uint32_t group) const {
    return solution.Get(group);
  }

  /// Top `n` groups by descending score (ties: lower group id first).
  std::vector<std::pair<Count, uint32_t>> TopK(size_t n) const;

  /// Internal cross-consistency (tests): node_to_group matches the store,
  /// scores array is aligned, every clique has k distinct in-range nodes.
  bool Consistent(std::string* error) const;
};

/// Materialize the current solution of `state` as an immutable view.
std::shared_ptr<const SolutionView> BuildSolutionView(
    const SolutionState& state, uint64_t epoch, uint64_t updates_applied);

/// The atomic publication point. Writers Publish at epoch boundaries;
/// readers Current() from any thread, lock-free with respect to writers
/// (the shared_ptr keeps a grabbed view alive across later publishes).
class SolutionPublisher {
 public:
  std::shared_ptr<const SolutionView> Current() const {
    return view_.load(std::memory_order_acquire);
  }
  void Publish(std::shared_ptr<const SolutionView> view) {
    view_.store(std::move(view), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const SolutionView>> view_;
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_SOLUTION_VIEW_H_
