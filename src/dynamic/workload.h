// Update workload generation mirroring Section VI-E: w deletions of
// uniformly sampled existing edges, w insertions (the same edges added
// back), and a mixed stream of i insertions + d deletions applied to a
// prepared graph G' (G minus the edges that will be inserted).

#ifndef DKC_DYNAMIC_WORKLOAD_H_
#define DKC_DYNAMIC_WORKLOAD_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dkc {

using Edge = std::pair<NodeId, NodeId>;

/// `count` distinct edges of `g`, uniformly sampled without replacement
/// (clamped to m).
std::vector<Edge> SampleEdges(const Graph& g, size_t count, Rng& rng);

struct UpdateOp {
  bool is_insert = false;
  Edge edge;
};

struct MixedWorkload {
  /// G' = G minus `insertions`; the stream is applied on top of this.
  Graph prepared;
  /// Shuffled interleaving of `insert_count` insertions (of removed edges)
  /// and `delete_count` deletions (of edges still present in G').
  std::vector<UpdateOp> ops;
};

/// Builds the paper's mixed workload: sample insert+delete edge sets
/// disjointly from g, strip the insert set to get G', shuffle the ops.
MixedWorkload MakeMixedWorkload(const Graph& g, size_t insert_count,
                                size_t delete_count, Rng& rng);

/// A length-`count` churn stream applied *on top of* `g`: each step is an
/// insertion of a uniformly sampled absent pair (p = 0.55, or always once
/// no edges remain) or a deletion of a uniformly sampled live edge,
/// chosen against an internal graph mirror so every op is valid when the
/// stream is replayed in order. This is the differential harness's churn
/// model, shared so the thread-sweep (and any bench) replays bit-equal
/// streams. Deterministic per rng state.
std::vector<UpdateOp> MakeChurnStream(const Graph& g, size_t count, Rng& rng);

/// A bursty churn stream concentrated on hot neighborhoods: the
/// `hot_nodes` highest-degree nodes of `g` (ties by id) plus their
/// neighbors form the node pool, and every op touches a pair inside it —
/// the millions-of-users traffic shape where a popular user's
/// neighborhood absorbs many updates in one burst. Same churn mechanics
/// as MakeChurnStream (p = 0.55 insert, internal mirror, every op valid
/// when replayed in order), so consecutive updates repeatedly dirty the
/// same solution cliques — the workload batched epochs dedup. Empty when
/// the pool has < 2 nodes. Deterministic per rng state.
std::vector<UpdateOp> MakeHotNeighborhoodStream(const Graph& g, size_t count,
                                                size_t hot_nodes, Rng& rng);

/// Copy of `g` without the given edges (helper for MakeMixedWorkload and
/// the deletion-then-insertion experiments).
Graph RemoveEdges(const Graph& g, const std::vector<Edge>& edges);

}  // namespace dkc

#endif  // DKC_DYNAMIC_WORKLOAD_H_
