// SolutionState (de)serialization — the engine half of the durable store.
//
// The encoding is deliberately verbatim: every member whose value can feed
// a future tie-break (candidate registration indices, generation tags,
// free-slot stack order, stale per-node refs that gate compaction timing)
// is written exactly as it sits in memory. That is what turns "load
// snapshot + replay WAL" into a byte-identical continuation of the
// never-crashed run instead of a merely-equivalent one. The only skipped
// member is the subset-enumeration kernel, which is scratch: enumeration
// results never depend on its arena contents.

#include <algorithm>

#include "dynamic/candidate_index.h"
#include "util/binio.h"

namespace dkc {
namespace {

constexpr uint32_t kGraphBlobVersion = 1;
constexpr uint32_t kStateBlobVersion = 1;

Status Corrupt(const char* what) {
  return Status::Corruption(std::string("engine state blob: ") + what);
}

}  // namespace

void SolutionState::SerializeGraphTo(std::string* out) const {
  PutU32(out, kGraphBlobVersion);
  const NodeId n = graph_.num_nodes();
  PutU64(out, n);
  PutU64(out, 2 * graph_.num_edges());  // total adjacency entries
  uint64_t offset = 0;
  for (NodeId u = 0; u < n; ++u) {
    PutU64(out, offset);
    offset += graph_.Neighbors(u).size();
  }
  PutU64(out, offset);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph_.Neighbors(u)) PutU32(out, v);
  }
}

void SolutionState::SerializeStateTo(std::string* out) const {
  PutU32(out, kStateBlobVersion);
  PutU32(out, static_cast<uint32_t>(k_));
  const NodeId n = graph_.num_nodes();
  PutU64(out, n);

  for (NodeId u = 0; u < n; ++u) PutU64(out, node_scores_[u]);
  for (NodeId u = 0; u < n; ++u) PutU32(out, node_to_clique_[u]);

  PutU64(out, cliques_.size());
  for (const SolClique& clique : cliques_) {
    PutU8(out, clique.alive ? 1 : 0);
    PutU32(out, clique.gen);
    PutU32(out, static_cast<uint32_t>(clique.nodes.size()));
    for (NodeId u : clique.nodes) PutU32(out, u);
    PutU64(out, clique.cands.size());
    for (const CandRef ref : clique.cands) {
      PutU32(out, ref.idx);
      PutU32(out, ref.gen);
    }
  }
  PutU64(out, clique_free_slots_.size());
  for (uint32_t slot : clique_free_slots_) PutU32(out, slot);

  PutU64(out, candidates_.size());
  for (const Candidate& cand : candidates_) {
    PutU8(out, cand.alive ? 1 : 0);
    PutU32(out, cand.gen);
    PutU32(out, cand.owner);
    PutU64(out, cand.score);
    PutU32(out, static_cast<uint32_t>(cand.nodes.size()));
    for (NodeId u : cand.nodes) PutU32(out, u);
  }
  PutU64(out, cand_free_slots_.size());
  for (uint32_t idx : cand_free_slots_) PutU32(out, idx);

  for (NodeId u = 0; u < n; ++u) {
    PutU64(out, node_cands_[u].size());
    for (const CandRef ref : node_cands_[u]) {
      PutU32(out, ref.idx);
      PutU32(out, ref.gen);
    }
  }

  // Derived counters, stored for cross-validation on load.
  PutU64(out, solution_size_);
  PutU64(out, alive_candidates_);
  PutU64(out, node_cand_refs_);
}

StatusOr<std::unique_ptr<SolutionState>> SolutionState::Deserialize(
    std::string_view graph_bytes, std::string_view state_bytes) {
  // --- graph blob: validated CSR -> DynamicGraph ---------------------
  ByteReader gr(graph_bytes);
  if (gr.U32() != kGraphBlobVersion) {
    return Corrupt("unknown graph blob version");
  }
  const uint64_t n64 = gr.U64();
  const uint64_t entries = gr.U64();
  if (n64 > UINT32_MAX - 1 || entries % 2 != 0) {
    return Corrupt("implausible graph dimensions");
  }
  const NodeId n = static_cast<NodeId>(n64);
  std::vector<Count> offsets(static_cast<size_t>(n) + 1);
  for (auto& o : offsets) o = gr.U64();
  if (gr.failed()) return Corrupt("truncated graph offsets");
  if (offsets.front() != 0 || offsets.back() != entries ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    return Corrupt("non-monotone CSR offsets");
  }
  std::vector<NodeId> neighbors(entries);
  for (auto& v : neighbors) v = gr.U32();
  if (!gr.AtEnd()) return Corrupt("graph blob size mismatch");
  for (NodeId u = 0; u < n; ++u) {
    for (Count i = offsets[u]; i < offsets[u + 1]; ++i) {
      if (neighbors[i] >= n || neighbors[i] == u) {
        return Corrupt("neighbor id out of range");
      }
      if (i > offsets[u] && neighbors[i] <= neighbors[i - 1]) {
        return Corrupt("adjacency row not sorted/unique");
      }
    }
  }
  Graph csr(std::move(offsets), std::move(neighbors));

  // --- state blob ----------------------------------------------------
  ByteReader sr(state_bytes);
  if (sr.U32() != kStateBlobVersion) {
    return Corrupt("unknown state blob version");
  }
  const uint32_t k = sr.U32();
  if (k < 2 || k > 64) return Corrupt("implausible k");
  if (sr.U64() != n) return Corrupt("graph/state node count mismatch");

  std::vector<Count> scores(n);
  for (auto& s : scores) s = sr.U64();
  auto state = std::make_unique<SolutionState>(DynamicGraph(csr),
                                               static_cast<int>(k),
                                               std::move(scores));
  for (NodeId u = 0; u < n; ++u) state->node_to_clique_[u] = sr.U32();

  const uint64_t num_cliques = sr.U64();
  if (num_cliques > sr.remaining()) return Corrupt("truncated clique table");
  state->cliques_.resize(static_cast<size_t>(num_cliques));
  for (SolClique& clique : state->cliques_) {
    clique.alive = sr.U8() != 0;
    clique.gen = sr.U32();
    const uint32_t num_nodes = sr.U32();
    if (num_nodes > k) return Corrupt("oversized solution clique");
    clique.nodes.resize(num_nodes);
    for (auto& u : clique.nodes) u = sr.U32();
    const uint64_t num_refs = sr.U64();
    if (num_refs > sr.remaining()) return Corrupt("truncated cand-ref list");
    clique.cands.resize(static_cast<size_t>(num_refs));
    for (auto& ref : clique.cands) {
      ref.idx = sr.U32();
      ref.gen = sr.U32();
    }
  }
  const uint64_t num_free_cliques = sr.U64();
  if (num_free_cliques > num_cliques) return Corrupt("free-slot overflow");
  state->clique_free_slots_.resize(static_cast<size_t>(num_free_cliques));
  for (auto& slot : state->clique_free_slots_) slot = sr.U32();

  const uint64_t num_cands = sr.U64();
  if (num_cands > sr.remaining()) return Corrupt("truncated candidate table");
  state->candidates_.resize(static_cast<size_t>(num_cands));
  for (Candidate& cand : state->candidates_) {
    cand.alive = sr.U8() != 0;
    cand.gen = sr.U32();
    cand.owner = sr.U32();
    cand.score = sr.U64();
    const uint32_t num_nodes = sr.U32();
    if (num_nodes > k) return Corrupt("oversized candidate");
    cand.nodes.resize(num_nodes);
    for (auto& u : cand.nodes) u = sr.U32();
  }
  const uint64_t num_free_cands = sr.U64();
  if (num_free_cands > num_cands) return Corrupt("free-slot overflow");
  state->cand_free_slots_.resize(static_cast<size_t>(num_free_cands));
  for (auto& idx : state->cand_free_slots_) idx = sr.U32();

  for (NodeId u = 0; u < n; ++u) {
    const uint64_t num_refs = sr.U64();
    if (num_refs > sr.remaining()) return Corrupt("truncated node-cand list");
    state->node_cands_[u].resize(static_cast<size_t>(num_refs));
    for (auto& ref : state->node_cands_[u]) {
      ref.idx = sr.U32();
      ref.gen = sr.U32();
    }
  }

  const uint64_t stored_solution_size = sr.U64();
  const uint64_t stored_alive_cands = sr.U64();
  const uint64_t stored_node_refs = sr.U64();
  if (!sr.AtEnd()) return Corrupt("state blob size mismatch");

  // --- cross-validation ---------------------------------------------
  // Free-slot stacks must enumerate exactly the dead table entries (any
  // drift would desynchronize slot reuse — and therefore tie-breaks —
  // from the serialized run).
  auto check_free_list = [](const std::vector<uint32_t>& list, size_t size,
                            auto&& dead) {
    size_t dead_count = 0;
    for (size_t i = 0; i < size; ++i) dead_count += dead(i) ? 1 : 0;
    if (list.size() != dead_count) return false;
    std::vector<uint32_t> sorted = list;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] >= size || !dead(sorted[i])) return false;
      if (i > 0 && sorted[i] == sorted[i - 1]) return false;
    }
    return true;
  };
  if (!check_free_list(state->clique_free_slots_, state->cliques_.size(),
                       [&](size_t i) { return !state->cliques_[i].alive; })) {
    return Corrupt("clique free-slot stack disagrees with table");
  }
  if (!check_free_list(state->cand_free_slots_, state->candidates_.size(),
                       [&](size_t i) {
                         return !state->candidates_[i].alive;
                       })) {
    return Corrupt("candidate free-slot stack disagrees with table");
  }
  for (const Candidate& cand : state->candidates_) {
    if (cand.alive && cand.owner >= state->cliques_.size()) {
      return Corrupt("candidate owner out of range");
    }
    for (NodeId u : cand.nodes) {
      if (u >= n) return Corrupt("candidate node out of range");
    }
  }
  for (const SolClique& clique : state->cliques_) {
    for (NodeId u : clique.nodes) {
      if (u >= n) return Corrupt("solution node out of range");
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t s = state->node_to_clique_[u];
    if (s != kNoClique && s >= state->cliques_.size()) {
      return Corrupt("node mapped past clique table");
    }
  }

  uint64_t solution_size = 0;
  for (const SolClique& clique : state->cliques_) {
    solution_size += clique.alive ? 1 : 0;
  }
  uint64_t alive_cands = 0;
  for (const Candidate& cand : state->candidates_) {
    alive_cands += cand.alive ? 1 : 0;
  }
  uint64_t node_refs = 0;
  for (NodeId u = 0; u < n; ++u) node_refs += state->node_cands_[u].size();
  if (solution_size != stored_solution_size ||
      alive_cands != stored_alive_cands || node_refs != stored_node_refs) {
    return Corrupt("derived counters disagree with stored values");
  }
  state->solution_size_ = static_cast<NodeId>(solution_size);
  state->alive_candidates_ = alive_cands;
  state->node_cand_refs_ = static_cast<size_t>(node_refs);

  // Deep structural validation: cliques are cliques of the restored graph,
  // candidates satisfy the Section V-A characterization, counters agree.
  std::string error;
  if (!state->CheckInvariants(&error)) {
    return Corrupt(("restored state fails invariants: " + error).c_str());
  }
  return StatusOr<std::unique_ptr<SolutionState>>(std::move(state));
}

}  // namespace dkc
