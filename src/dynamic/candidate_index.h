// Shared mutable state of the dynamic engine (Section V): the current
// solution S, the free/non-free status of every node, and the candidate
// k-clique index of Algorithm 5.
//
// Invariants maintained at every public-call boundary:
//  * a node is *free* iff it belongs to no clique of S;
//  * every alive candidate is a real k-clique of the current graph with at
//    least one free node and at least one non-free node, and all of its
//    non-free nodes belong to the single solution clique that owns it
//    (the paper's Section V-A characterization);
//  * a candidate is indexed under its owner and under each of its nodes
//    (the per-node index serves edge-deletion and node-consumption kills).
//
// Slots for solution cliques and candidates are generation-tagged so stale
// references parked in queues or per-node lists can never alias a reused
// slot.

#ifndef DKC_DYNAMIC_CANDIDATE_INDEX_H_
#define DKC_DYNAMIC_CANDIDATE_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "clique/clique_store.h"
#include "clique/neighborhood.h"
#include "dynamic/update_work.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dkc {

class SolutionState {
 public:
  static constexpr uint32_t kNoClique = UINT32_MAX;

  /// Generation-tagged reference to a solution-clique slot.
  struct SlotRef {
    uint32_t slot = 0;
    uint32_t gen = 0;
  };

  /// Takes over the graph; `node_scores` are the static Definition-5 scores
  /// used to order candidates inside swaps (kept fixed between rebuilds, an
  /// efficiency choice documented in DESIGN.md).
  SolutionState(DynamicGraph graph, int k, std::vector<Count> node_scores);

  // --- queries -------------------------------------------------------
  int k() const { return k_; }
  DynamicGraph& graph() { return graph_; }
  const DynamicGraph& graph() const { return graph_; }
  bool IsFree(NodeId u) const { return node_to_clique_[u] == kNoClique; }
  uint32_t CliqueOf(NodeId u) const { return node_to_clique_[u]; }
  NodeId solution_size() const { return solution_size_; }
  Count num_alive_candidates() const { return alive_candidates_; }
  const std::vector<Count>& node_scores() const { return node_scores_; }

  bool SlotAlive(uint32_t slot) const {
    return slot < cliques_.size() && cliques_[slot].alive;
  }
  bool RefValid(SlotRef ref) const {
    return SlotAlive(ref.slot) && cliques_[ref.slot].gen == ref.gen;
  }
  SlotRef RefOf(uint32_t slot) const {
    return SlotRef{slot, cliques_[slot].gen};
  }
  std::span<const NodeId> SlotNodes(uint32_t slot) const {
    return {cliques_[slot].nodes.data(), cliques_[slot].nodes.size()};
  }

  /// Copy of the current S.
  CliqueStore Snapshot() const;

  /// Approximate bytes held by the index structures (Table VII companion).
  int64_t MemoryBytes() const;

  // --- solution mutation ---------------------------------------------
  /// Adds a clique whose nodes are all currently free. Marks them non-free
  /// and kills every candidate that used them. Returns the slot.
  uint32_t AddSolutionClique(std::span<const NodeId> nodes);

  /// Removes a clique: its nodes become free, its candidates die.
  void RemoveSolutionClique(uint32_t slot);

  // --- candidate index -----------------------------------------------
  /// Algorithm 5 for one clique: drop its current candidates and
  /// re-enumerate the k-cliques on B = C ∪ N_F(C), registering the valid
  /// ones. Returns the number of alive candidates afterwards.
  ///
  /// With `meter`, the rebuild charges one unit plus one per branch node
  /// the subset-enumeration DFS enters, and the enumeration is truncated
  /// at a DFS branch boundary once the deterministic work cap is spent
  /// (meter->rebuild_cuts records it). A cut rebuild registers only the
  /// candidates found before the cut: each is valid, but the slot's set
  /// may be incomplete until its next rebuild — the documented trade for
  /// bounding a single huge neighborhood rebuild (see update_work.h).
  size_t RebuildCandidatesFor(uint32_t slot, UpdateWork* meter = nullptr);

  /// As above, additionally reporting whether any registered candidate
  /// contains both `u` and `v` — the new-edge detection InsertEdge's
  /// one-endpoint-free path needs, answered during registration instead of
  /// by re-scanning CandidatesOf afterwards.
  struct RebuildOutcome {
    size_t candidates = 0;
    bool has_edge = false;
  };
  RebuildOutcome RebuildCandidatesFor(uint32_t slot, NodeId u, NodeId v,
                                      UpdateWork* meter = nullptr);

  /// Rebuild several slots (each alive, no duplicates), optionally fanning
  /// the read-only enumeration across `pool` with worker-private kernels;
  /// registration stays serial in `slots` order, so candidates, their
  /// registration order, and hence every downstream tie-break are
  /// byte-identical to calling RebuildCandidatesFor per slot. Fills
  /// `counts` (when non-null) with the per-slot candidate counts. The
  /// pooled fan-out enumerates speculatively without the meter and then
  /// replays the charges serially in `slots` order (truncating exactly
  /// where the serial DFS would have cut), so budgeted outcomes — work,
  /// cuts, registered candidates — are byte-identical at any thread count.
  void RebuildCandidatesForMany(std::span<const uint32_t> slots,
                                ThreadPool* pool, std::vector<size_t>* counts,
                                UpdateWork* meter = nullptr);

  /// Algorithm 5 for the whole solution, optionally in parallel (never
  /// budgeted: the initial index build must be complete).
  void RebuildAllCandidates(ThreadPool* pool = nullptr);

  /// Minimum batch size before RebuildCandidatesForMany fans out across a
  /// pool (default 8): each fan-out pays one Submit/Wait round trip plus a
  /// worker-private kernel per thread, which swamps the microsecond-scale
  /// enumerations of the 2-3-slot batches typical per update. Scheduling
  /// only — results are byte-identical either way (DynamicOptions plumbs
  /// this through as parallel_rebuild_min_slots).
  void set_parallel_rebuild_min_slots(size_t min_slots) {
    parallel_rebuild_min_slots_ = min_slots;
  }
  size_t parallel_rebuild_min_slots() const {
    return parallel_rebuild_min_slots_;
  }

  /// Kill every candidate whose clique uses edge (u, v) — edge-deletion
  /// maintenance. Returns how many died.
  size_t KillCandidatesWithEdge(NodeId u, NodeId v);

  /// Copies the alive candidates of `slot` as (nodes, score) pairs.
  struct CandidateView {
    std::vector<NodeId> nodes;
    Count score = 0;
  };
  std::vector<CandidateView> CandidatesOf(uint32_t slot) const;

  /// Iterate alive solution slots.
  template <typename F>
  void ForEachSlot(F&& f) const {
    for (uint32_t s = 0; s < cliques_.size(); ++s) {
      if (cliques_[s].alive) f(s);
    }
  }

  /// Grow per-node structures after the graph gained nodes.
  void EnsureNodeCapacity(NodeId n);

  /// Entries across all per-node candidate lists, alive and stale. Stale
  /// refs are compacted whenever they outnumber a linear bound (see
  /// MaybeCompactNodeCands), so this stays O(alive index size + n) over
  /// arbitrarily long update streams — the memory-growth regression tests
  /// pin that bound.
  size_t node_cand_ref_count() const { return node_cand_refs_; }

  // --- persistence (store/snapshot.h) --------------------------------
  /// Appends the graph adjacency as a CSR blob (its own versioned layout;
  /// integrity/CRC framing is the snapshot writer's job).
  void SerializeGraphTo(std::string* out) const;

  /// Appends everything else the engine's future behavior depends on:
  /// scores, solution slots with generation tags, the candidate arena in
  /// registration order, both free-slot stacks, and the per-node candidate
  /// lists *including stale refs*. Verbatim capture is the point — slot
  /// reuse order, candidate registration indices, and compaction timing
  /// all feed downstream tie-breaks, so a restored state continues
  /// byte-identically to the state it was serialized from.
  void SerializeStateTo(std::string* out) const;

  /// Rebuilds a state from the two blobs. Bounds-checks every read,
  /// cross-validates the derived counters, and runs CheckInvariants;
  /// returns Corruption on any mismatch (the caller has already verified
  /// checksums, so a failure here means a logic bug or a forged file).
  /// The restored state uses default options (parallel_rebuild_min_slots);
  /// callers re-apply their configuration.
  static StatusOr<std::unique_ptr<SolutionState>> Deserialize(
      std::string_view graph_bytes, std::string_view state_bytes);

  /// Exhaustive invariant check (tests only; O(index size * k)).
  bool CheckInvariants(std::string* error) const;

  /// Completeness check (tests only, much more expensive than
  /// CheckInvariants): re-enumerates every alive clique's candidate set
  /// from scratch and compares it against the maintained index. Catches
  /// update paths that forget to register — or to kill — a candidate,
  /// which CheckInvariants (validity of what *is* indexed) cannot see.
  bool CheckCandidateCompleteness(std::string* error) const;

 private:
  struct CandRef {
    uint32_t idx = 0;
    uint32_t gen = 0;
  };
  struct Candidate {
    std::vector<NodeId> nodes;
    Count score = 0;
    uint32_t owner = kNoClique;
    uint32_t gen = 0;
    bool alive = false;
  };
  struct SolClique {
    std::vector<NodeId> nodes;
    std::vector<CandRef> cands;
    uint32_t gen = 0;
    bool alive = false;
  };

  bool CandValid(CandRef ref) const {
    return ref.idx < candidates_.size() && candidates_[ref.idx].alive &&
           candidates_[ref.idx].gen == ref.gen;
  }
  void KillCandidate(uint32_t idx);
  // Kills every alive candidate of `slot` and clears its cands list — the
  // shared first half of a rebuild (serial and pooled paths must stay
  // identical, so there is exactly one implementation).
  void KillOwnedCandidates(uint32_t slot);
  uint32_t RegisterCandidate(std::span<const NodeId> nodes, uint32_t owner);
  // Drops dead refs from every per-node list once they outnumber
  // 2 * alive refs + n + 64 — each compaction removes more entries than it
  // keeps stale, so list walking stays amortized O(1) per registered ref
  // while alive refs are never reordered (observable behavior unchanged).
  // Called at the end of the public mutators (never mid-iteration).
  void MaybeCompactNodeCands();
  // Enumerates valid candidates for `slot` into `out` without mutating the
  // index, driving the subset DFS through `kernel` (callers on the serial
  // per-update path pass `&subset_kernel_`; the parallel whole-solution
  // rebuild passes worker-private kernels). `budget`, when non-null,
  // charges/truncates the DFS (or records per-emission charge points for
  // the pooled replay — see EnumBudget).
  void EnumerateCandidatesFor(uint32_t slot,
                              std::vector<std::vector<NodeId>>* out,
                              NeighborhoodKernel* kernel,
                              EnumBudget* budget = nullptr) const;

  DynamicGraph graph_;
  int k_;
  std::vector<Count> node_scores_;

  // Persistent subset-enumeration kernel: every dynamic update runs
  // Algorithm 5 on a tiny subset B, and reusing one kernel (arena) across
  // updates makes those enumerations allocation-free in steady state.
  mutable NeighborhoodKernel subset_kernel_;

  std::vector<SolClique> cliques_;
  std::vector<uint32_t> clique_free_slots_;
  std::vector<uint32_t> node_to_clique_;
  NodeId solution_size_ = 0;

  std::vector<Candidate> candidates_;
  std::vector<uint32_t> cand_free_slots_;
  std::vector<std::vector<CandRef>> node_cands_;
  size_t node_cand_refs_ = 0;  // total entries across node_cands_ lists
  Count alive_candidates_ = 0;
  size_t parallel_rebuild_min_slots_ = 8;
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_CANDIDATE_INDEX_H_
