#include "dynamic/dynamic_solver.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "clique/kclique.h"
#include "core/verify.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/timer.h"

namespace dkc {
namespace {

void Accumulate(SwapStats* into, const SwapStats& delta) {
  into->pops += delta.pops;
  into->commits += delta.commits;
  into->cliques_gained += delta.cliques_gained;
  into->aborted |= delta.aborted;
}

// Shared tail of both Build paths: node scores, state seeding, index build.
// Returns the state plus the index-build time in ms (Table VII's quantity).
std::pair<std::unique_ptr<SolutionState>, double> SeedState(
    const Graph& g, const CliqueStore& solution,
    const DynamicOptions& options) {
  Timer timer;
  std::vector<Count> node_scores;
  {
    Dag dag(g, DegeneracyOrdering(g));
    node_scores = ComputeNodeScores(dag, options.k, options.pool).per_node;
  }
  auto state = std::make_unique<SolutionState>(DynamicGraph(g), options.k,
                                               std::move(node_scores));
  state->set_parallel_rebuild_min_slots(options.parallel_rebuild_min_slots);
  for (CliqueId c = 0; c < solution.size(); ++c) {
    state->AddSolutionClique(solution.Get(c));
  }
  state->RebuildAllCandidates(options.pool);  // Algorithm 5
  return {std::move(state), timer.ElapsedMillis()};
}

}  // namespace

StatusOr<DynamicSolver> DynamicSolver::Build(const Graph& g,
                                             const DynamicOptions& options) {
  Timer timer;
  SolverOptions solver_options;
  solver_options.k = options.k;
  solver_options.method = options.initial_method;
  solver_options.budget = options.initial_budget;
  solver_options.pool = options.pool;
  auto initial = Solve(g, solver_options);
  if (!initial.ok()) return initial.status();
  DynamicBuildStats stats;
  stats.solve_ms = timer.ElapsedMillis();

  auto [state, index_ms] = SeedState(g, initial->set, options);
  stats.index_ms = index_ms;
  return DynamicSolver(std::move(state), stats, options);
}

StatusOr<DynamicSolver> DynamicSolver::BuildFromSolution(
    const Graph& g, const CliqueStore& solution,
    const DynamicOptions& options) {
  if (solution.k() != options.k) {
    return Status::InvalidArgument("solution k does not match options.k");
  }
  DKC_RETURN_IF_ERROR(VerifyDisjointCliques(g, solution));
  // Maximality is load-bearing: the candidate characterization (non-free
  // nodes of a candidate live in exactly one clique of S) presumes no
  // all-free k-clique exists.
  DKC_RETURN_IF_ERROR(VerifyMaximality(g, solution));

  DynamicBuildStats stats;
  auto [state, index_ms] = SeedState(g, solution, options);
  stats.index_ms = index_ms;
  return DynamicSolver(std::move(state), stats, options);
}

StatusOr<DynamicSolver> DynamicSolver::FromState(
    std::unique_ptr<SolutionState> state, const DynamicOptions& options) {
  if (state == nullptr) {
    return Status::InvalidArgument("null engine state");
  }
  if (state->k() != options.k) {
    return Status::InvalidArgument("state k does not match options.k");
  }
  // Scheduling configuration is not persisted; re-apply the caller's.
  state->set_parallel_rebuild_min_slots(options.parallel_rebuild_min_slots);
  return DynamicSolver(std::move(state), DynamicBuildStats{}, options);
}

bool DynamicSolver::FindFreeCliqueWithEdge(NodeId u, NodeId v,
                                           std::vector<NodeId>* clique) {
  const int k = state_->k();
  const DynamicGraph& graph = state_->graph();
  // Free common neighbors of the new edge's endpoints.
  std::vector<NodeId> common;
  for (NodeId w : graph.Neighbors(u)) {
    if (w != v && state_->IsFree(w) && graph.HasEdge(w, v)) {
      common.push_back(w);
    }
  }
  if (common.size() + 2 < static_cast<size_t>(k)) return false;

  std::vector<NodeId> chosen;
  std::function<bool(size_t, int)> extend = [&](size_t start,
                                                int remaining) -> bool {
    if (remaining == 0) return true;
    for (size_t i = start; i < common.size(); ++i) {
      const NodeId w = common[i];
      bool adjacent_to_all = true;
      for (NodeId x : chosen) {
        if (!graph.HasEdge(w, x)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (!adjacent_to_all) continue;
      chosen.push_back(w);
      if (extend(i + 1, remaining - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  if (!extend(0, k - 2)) return false;
  clique->clear();
  clique->push_back(u);
  clique->push_back(v);
  clique->insert(clique->end(), chosen.begin(), chosen.end());
  return true;
}

std::vector<uint32_t> DynamicSolver::CollectOwnersOfNewCandidates(
    NodeId u, NodeId v) const {
  const int k = state_->k();
  const DynamicGraph& graph = state_->graph();
  std::vector<uint32_t> owners;
  std::vector<NodeId> common;
  for (NodeId w : graph.Neighbors(u)) {
    if (w != v && graph.HasEdge(w, v)) common.push_back(w);
  }
  if (common.size() + 2 < static_cast<size_t>(k)) return owners;

  // Enumerate k-cliques through (u,v) whose non-free nodes all belong to
  // one solution clique — those are exactly the candidates the new edge
  // creates (u and v are free here). We only need the set of owners.
  std::vector<NodeId> chosen;
  std::function<void(size_t, int, uint32_t)> extend =
      [&](size_t start, int remaining, uint32_t owner) {
        if (remaining == 0) {
          if (owner != SolutionState::kNoClique) owners.push_back(owner);
          return;
        }
        for (size_t i = start; i < common.size(); ++i) {
          const NodeId w = common[i];
          uint32_t next_owner = owner;
          const uint32_t cw = state_->CliqueOf(w);
          if (cw != SolutionState::kNoClique) {
            if (owner != SolutionState::kNoClique && cw != owner) continue;
            next_owner = cw;
          }
          bool adjacent_to_all = true;
          for (NodeId x : chosen) {
            if (!graph.HasEdge(w, x)) {
              adjacent_to_all = false;
              break;
            }
          }
          if (!adjacent_to_all) continue;
          chosen.push_back(w);
          extend(i + 1, remaining - 1, next_owner);
          chosen.pop_back();
        }
      };
  extend(0, k - 2, SolutionState::kNoClique);

  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  owners.erase(std::remove_if(owners.begin(), owners.end(),
                              [this](uint32_t owner) {
                                return !state_->SlotAlive(owner);
                              }),
               owners.end());
  return owners;
}

void DynamicSolver::EnqueueOwnersOfNewCandidates(NodeId u, NodeId v,
                                                 SwapQueue* queue,
                                                 UpdateWork* meter) {
  const std::vector<uint32_t> owners = CollectOwnersOfNewCandidates(u, v);
  // The rebuilds register the new edge's candidates as a side effect and
  // charge `meter` themselves (possibly truncated by its cap); the fan-out
  // runs the enumerations across the pool with byte-identical registration
  // order and budget outcomes (see RebuildCandidatesForMany).
  std::vector<size_t> counts;
  state_->RebuildCandidatesForMany(owners, pool_, &counts, meter);
  for (size_t i = 0; i < owners.size(); ++i) {
    if (counts[i] > 0) queue->push_back(state_->RefOf(owners[i]));
  }
}

void DynamicSolver::FinishUpdate(const UpdateWork& meter,
                                 const SwapStats& swaps) {
  last_update_.work = meter.work;
  last_update_.rebuild_cuts = meter.rebuild_cuts;
  last_update_.swaps = swaps;
  aborted_updates_ += last_update_.aborted() ? 1 : 0;
  Accumulate(&swap_stats_, swaps);
}

Status DynamicSolver::InsertEdge(NodeId u, NodeId v) {
  last_update_ = UpdateStats{};  // an errored call did no work
  if (!state_->graph().InsertEdge(u, v)) {
    return Status::InvalidArgument("edge already present (or u == v)");
  }
  ++updates_applied_;
  state_->EnsureNodeCapacity(state_->graph().num_nodes());
  UpdateWork meter = UpdateWork::FromBudget(update_budget_);

  const uint32_t cu = state_->CliqueOf(u);
  const uint32_t cv = state_->CliqueOf(v);
  if (cu != SolutionState::kNoClique && cv != SolutionState::kNoClique) {
    // Neither endpoint free: no candidate can use the edge (a candidate's
    // non-free nodes come from one clique, and (u,v) inside one clique is
    // impossible for a *new* edge). Nothing to do — Algorithm 6's silent
    // case.
    FinishUpdate(meter, SwapStats{});
    return Status::OK();
  }

  SwapQueue queue;
  SwapStats swaps;
  if (cu != SolutionState::kNoClique || cv != SolutionState::kNoClique) {
    // Exactly one endpoint free (lines 1-6): candidates through (u,v) can
    // only belong to the non-free endpoint's clique. The rebuild itself
    // reports whether the edge actually created a candidate there.
    const uint32_t owner = cu != SolutionState::kNoClique ? cu : cv;
    const auto rebuilt = state_->RebuildCandidatesFor(owner, u, v, &meter);
    if (rebuilt.has_edge) {
      queue.push_back(state_->RefOf(owner));
      swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
    }
    FinishUpdate(meter, swaps);
    return Status::OK();
  }

  // Both endpoints free (lines 7-15).
  std::vector<NodeId> clique;
  if (FindFreeCliqueWithEdge(u, v, &clique)) {
    // A brand-new all-free clique: add directly. AddSolutionClique kills
    // every candidate (of any owner) that used the consumed nodes as free
    // nodes — without that kill, a later DeleteEdge could pack a stale
    // candidate into the solution and break disjointness (pinned by the
    // StaleCandidate regression tests). No swapping is needed: every
    // candidate of the new clique contains both u and v (any other
    // combination was an all-free clique of the *pre-insert* graph,
    // contradicting maximality), so no two of them are disjoint.
    const uint32_t slot = state_->AddSolutionClique(clique);
    state_->RebuildCandidatesFor(slot, &meter);
    FinishUpdate(meter, SwapStats{});
    return Status::OK();
  }
  EnqueueOwnersOfNewCandidates(u, v, &queue, &meter);
  if (!queue.empty()) {
    swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
  }
  FinishUpdate(meter, swaps);
  return Status::OK();
}

Status DynamicSolver::DeleteEdge(NodeId u, NodeId v) {
  last_update_ = UpdateStats{};  // an errored call did no work
  if (!state_->graph().DeleteEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }
  ++updates_applied_;
  UpdateWork meter = UpdateWork::FromBudget(update_budget_);
  // Candidates through the edge are no longer cliques.
  state_->KillCandidatesWithEdge(u, v);
  meter.Charge(1);

  const uint32_t cu = state_->CliqueOf(u);
  const uint32_t cv = state_->CliqueOf(v);
  if (cu == SolutionState::kNoClique || cu != cv) {
    FinishUpdate(meter, SwapStats{});
    return Status::OK();  // lines 5-6: only candidates were affected
  }

  // Lines 1-4: the edge broke solution clique C. Replace it by the best
  // disjoint packing of its surviving candidates (possibly empty), then let
  // the swap loop chase follow-on opportunities. The repair itself is
  // mandatory and runs to completion whatever the budget says; only the
  // follow-on loop can be cut short.
  auto replacement = PackDisjointCandidates(*state_, cu, pool_);
  SwapQueue queue;
  CommitReplacement(state_.get(), cu, replacement, &queue, &meter, pool_);
  const SwapStats swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
  FinishUpdate(meter, swaps);
  return Status::OK();
}

namespace {

// Canonical 64-bit key of an undirected pair, for the batch validator's
// simulated edge delta.
uint64_t EdgeKey(NodeId u, NodeId v) {
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

// Per-epoch dirty-slot bookkeeping for ApplyBatch. A slot accumulates the
// union of the reasons updates touched it; at the boundary it is rebuilt
// once and enqueued for swapping iff any recorded reason fires — exactly
// the enqueue rule the corresponding serial update path would have used:
//
//   * want_any: enqueue iff the rebuilt slot has any candidate (the rule
//     of CommitReplacement and of the both-free insert's owner fan-out);
//   * probes:   enqueue iff some rebuilt candidate contains the probed
//     edge (the has_edge rule of the one-endpoint-free insert);
//   * neither ("rebuild only"): never enqueue (the direct-add insert —
//     its candidates are pairwise intersecting, so no swap can gain).
//
// Marks are kept in first-mark order, which for a batch of one reproduces
// the serial rebuild order verbatim; a slot that dies during staging is
// deactivated so a reused slot index never inherits a dead clique's marks.
class DirtySet {
 public:
  struct Mark {
    bool active = false;
    bool want_any = false;
    std::vector<Edge> probes;
    size_t order = 0;  // position in order_ of the first (live) mark
  };

  /// Each returns true iff this created the slot's first live mark (the
  /// per-update slots_marked accounting; repeats are the dedup win).
  bool MarkRebuild(uint32_t slot) {
    bool fresh = false;
    Touch(slot, &fresh);
    return fresh;
  }
  bool MarkWantAny(uint32_t slot) {
    bool fresh = false;
    Touch(slot, &fresh).want_any = true;
    return fresh;
  }
  bool MarkProbe(uint32_t slot, Edge edge) {
    bool fresh = false;
    Touch(slot, &fresh).probes.push_back(edge);
    return fresh;
  }

  /// The slot died during staging (its clique was removed); drop its
  /// marks so a reused slot index starts clean.
  void Deactivate(uint32_t slot) {
    if (slot < marks_.size()) marks_[slot].active = false;
  }

  /// True iff the slot currently carries a live mark — i.e. some earlier
  /// op of this epoch deferred a rebuild it still owes the slot.
  bool IsActive(uint32_t slot) const {
    return slot < marks_.size() && marks_[slot].active;
  }

  /// Visit live marks in first-mark order (re-marks after a death re-enter
  /// at their new position).
  template <typename F>
  void ForEachActive(F&& f) const {
    for (size_t i = 0; i < order_.size(); ++i) {
      const uint32_t slot = order_[i];
      const Mark& mark = marks_[slot];
      if (mark.active && mark.order == i) f(slot, mark);
    }
  }

 private:
  Mark& Touch(uint32_t slot, bool* fresh) {
    if (slot >= marks_.size()) marks_.resize(slot + 1);
    Mark& mark = marks_[slot];
    *fresh = !mark.active;
    if (!mark.active) {
      mark = Mark{};  // wipe whatever a dead former occupant left behind
      mark.active = true;
      mark.order = order_.size();
      order_.push_back(slot);
    }
    return mark;
  }

  std::vector<Mark> marks_;
  std::vector<uint32_t> order_;
};

}  // namespace

Status DynamicSolver::ValidateBatch(std::span<const UpdateOp> ops) const {
  // Simulated edge delta over the live graph: op i must be valid on the
  // graph as left by ops 0..i-1 (catches intra-batch duplicates and
  // self-canceling pairs as well as conflicts with the current graph).
  std::unordered_map<uint64_t, bool> delta;
  for (size_t i = 0; i < ops.size(); ++i) {
    const auto [u, v] = ops[i].edge;
    if (u == v) {
      return Status::InvalidArgument("batch op " + std::to_string(i) +
                                     ": self loop");
    }
    const uint64_t key = EdgeKey(u, v);
    const auto it = delta.find(key);
    const bool present =
        it != delta.end() ? it->second : state_->graph().HasEdge(u, v);
    if (ops[i].is_insert) {
      if (present) {
        return Status::InvalidArgument("batch op " + std::to_string(i) +
                                       ": edge already present");
      }
      delta[key] = true;
    } else {
      if (!present) {
        return Status::NotFound("batch op " + std::to_string(i) +
                                ": edge does not exist");
      }
      delta[key] = false;
    }
  }
  return Status::OK();
}

Status DynamicSolver::ApplyBatch(std::span<const UpdateOp> ops) {
  last_batch_ = BatchStats{};
  last_update_ = UpdateStats{};  // a rejected batch did no work
  DKC_RETURN_IF_ERROR(ValidateBatch(ops));
  if (ops.empty()) return Status::OK();  // no epoch, no publish

  // One meter for the whole epoch: the deterministic cap scales with the
  // batch so a stream batched differently gets proportional maintenance,
  // while the abort boundaries (swap pops, rebuild DFS branches) stay
  // schedule-independent.
  Budget epoch_budget = update_budget_;
  if (epoch_budget.max_branch_nodes > 0) {
    const uint64_t cap = epoch_budget.max_branch_nodes;
    epoch_budget.max_branch_nodes =
        cap > UINT64_MAX / ops.size() ? UINT64_MAX : cap * ops.size();
  }
  UpdateWork meter = UpdateWork::FromBudget(epoch_budget);

  // --- staging: mandatory structural work per op, rebuilds deferred ----
  DirtySet dirty;
  last_batch_.per_update.reserve(ops.size());
  for (const UpdateOp& op : ops) {
    BatchUpdateStats ustat;
    ustat.is_insert = op.is_insert;
    ustat.edge = op.edge;
    const uint64_t work_before = meter.work;
    const auto [u, v] = op.edge;
    if (op.is_insert) {
      ++last_batch_.inserts;
      const bool inserted = state_->graph().InsertEdge(u, v);
      (void)inserted;  // ValidateBatch guarantees it
      state_->EnsureNodeCapacity(state_->graph().num_nodes());
      const uint32_t cu = state_->CliqueOf(u);
      const uint32_t cv = state_->CliqueOf(v);
      if (cu != SolutionState::kNoClique && cv != SolutionState::kNoClique) {
        // Algorithm 6's silent case — no candidate can use the edge.
      } else if (cu != SolutionState::kNoClique ||
                 cv != SolutionState::kNoClique) {
        // One endpoint free: only the non-free endpoint's clique can own
        // candidates through (u,v). Whether it gained one is answered by
        // the boundary rebuild (the probe).
        const uint32_t owner = cu != SolutionState::kNoClique ? cu : cv;
        ustat.slots_marked += dirty.MarkProbe(owner, op.edge) ? 1 : 0;
      } else {
        std::vector<NodeId> clique;
        if (FindFreeCliqueWithEdge(u, v, &clique)) {
          // Brand-new all-free clique: add directly (see InsertEdge for
          // why no swap can follow), rebuild its candidates at the
          // boundary.
          const uint32_t slot = state_->AddSolutionClique(clique);
          ustat.direct_add = true;
          ustat.slots_marked += dirty.MarkRebuild(slot) ? 1 : 0;
        } else {
          for (const uint32_t owner : CollectOwnersOfNewCandidates(u, v)) {
            ustat.slots_marked += dirty.MarkWantAny(owner) ? 1 : 0;
          }
        }
      }
    } else {
      ++last_batch_.deletes;
      const bool deleted = state_->graph().DeleteEdge(u, v);
      (void)deleted;  // ValidateBatch guarantees it
      state_->KillCandidatesWithEdge(u, v);
      meter.Charge(1);
      const uint32_t cu = state_->CliqueOf(u);
      const uint32_t cv = state_->CliqueOf(v);
      if (cu != SolutionState::kNoClique && cu == cv) {
        // The edge broke solution clique C: mandatory repair, batched or
        // not. The replacement's rebuilds join the epoch's dirty set.
        ustat.repaired = true;
        if (dirty.IsActive(cu)) {
          // Earlier ops of this epoch deferred C's rebuild, so its indexed
          // candidate set is stale — missing k-cliques the epoch's inserts
          // created through C. The repair packs exactly that set, and the
          // maximality invariant rests on the packing being maximal over
          // C's *complete* candidates (a missed one goes all-free once C
          // dies and nothing ever materializes it). Settle the owed
          // rebuild now; a batch of one can never mark the slot it
          // repairs, so the unbatched equivalence is untouched.
          state_->RebuildCandidatesFor(cu, &meter);
        }
        dirty.Deactivate(cu);
        const auto replacement = PackDisjointCandidates(*state_, cu, pool_);
        for (const uint32_t slot :
             StageReplacement(state_.get(), cu, replacement)) {
          ustat.slots_marked += dirty.MarkWantAny(slot) ? 1 : 0;
        }
      }
    }
    ustat.staged_work = meter.work - work_before;
    last_batch_.per_update.push_back(ustat);
  }

  // --- boundary: one deduped rebuild fan-out, one swap loop ------------
  std::vector<uint32_t> slots;
  std::vector<const DirtySet::Mark*> marks;
  dirty.ForEachActive([&](uint32_t slot, const DirtySet::Mark& mark) {
    slots.push_back(slot);
    marks.push_back(&mark);
  });
  std::vector<size_t> counts;
  state_->RebuildCandidatesForMany(slots, pool_, &counts, &meter);

  SwapQueue queue;
  for (size_t i = 0; i < slots.size(); ++i) {
    const DirtySet::Mark& mark = *marks[i];
    bool enqueue = mark.want_any && counts[i] > 0;
    if (!enqueue && counts[i] > 0 && !mark.probes.empty()) {
      for (const auto& cand : state_->CandidatesOf(slots[i])) {
        for (const auto& [pu, pv] : mark.probes) {
          const auto& nodes = cand.nodes;
          if (std::find(nodes.begin(), nodes.end(), pu) != nodes.end() &&
              std::find(nodes.begin(), nodes.end(), pv) != nodes.end()) {
            enqueue = true;
            break;
          }
        }
        if (enqueue) break;
      }
    }
    if (enqueue) queue.push_back(state_->RefOf(slots[i]));
  }
  const SwapStats swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);

  // --- finalize: stats, counters, publish ------------------------------
  last_batch_.updates = ops.size();
  last_batch_.dirty_slots = slots.size();
  last_batch_.work = meter.work;
  last_batch_.rebuild_cuts = meter.rebuild_cuts;
  last_batch_.swaps = swaps;
  updates_applied_ += ops.size();
  ++epoch_;
  ++batches_applied_;
  batched_updates_ += ops.size();
  batch_dirty_rebuilds_ += slots.size();
  FinishUpdate(meter, swaps);  // the epoch aggregate, one epoch = one entry
  PublishView();
  return Status::OK();
}

void DynamicSolver::PublishView() {
  publisher_->Publish(BuildSolutionView(*state_, epoch_, updates_applied_));
}

}  // namespace dkc
