#include "dynamic/dynamic_solver.h"

#include <algorithm>
#include <functional>

#include "clique/kclique.h"
#include "core/verify.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/timer.h"

namespace dkc {
namespace {

void Accumulate(SwapStats* into, const SwapStats& delta) {
  into->pops += delta.pops;
  into->commits += delta.commits;
  into->cliques_gained += delta.cliques_gained;
  into->aborted |= delta.aborted;
}

// Shared tail of both Build paths: node scores, state seeding, index build.
// Returns the state plus the index-build time in ms (Table VII's quantity).
std::pair<std::unique_ptr<SolutionState>, double> SeedState(
    const Graph& g, const CliqueStore& solution,
    const DynamicOptions& options) {
  Timer timer;
  std::vector<Count> node_scores;
  {
    Dag dag(g, DegeneracyOrdering(g));
    node_scores = ComputeNodeScores(dag, options.k, options.pool).per_node;
  }
  auto state = std::make_unique<SolutionState>(DynamicGraph(g), options.k,
                                               std::move(node_scores));
  state->set_parallel_rebuild_min_slots(options.parallel_rebuild_min_slots);
  for (CliqueId c = 0; c < solution.size(); ++c) {
    state->AddSolutionClique(solution.Get(c));
  }
  state->RebuildAllCandidates(options.pool);  // Algorithm 5
  return {std::move(state), timer.ElapsedMillis()};
}

}  // namespace

StatusOr<DynamicSolver> DynamicSolver::Build(const Graph& g,
                                             const DynamicOptions& options) {
  Timer timer;
  SolverOptions solver_options;
  solver_options.k = options.k;
  solver_options.method = options.initial_method;
  solver_options.budget = options.initial_budget;
  solver_options.pool = options.pool;
  auto initial = Solve(g, solver_options);
  if (!initial.ok()) return initial.status();
  DynamicBuildStats stats;
  stats.solve_ms = timer.ElapsedMillis();

  auto [state, index_ms] = SeedState(g, initial->set, options);
  stats.index_ms = index_ms;
  return DynamicSolver(std::move(state), stats, options);
}

StatusOr<DynamicSolver> DynamicSolver::BuildFromSolution(
    const Graph& g, const CliqueStore& solution,
    const DynamicOptions& options) {
  if (solution.k() != options.k) {
    return Status::InvalidArgument("solution k does not match options.k");
  }
  DKC_RETURN_IF_ERROR(VerifyDisjointCliques(g, solution));
  // Maximality is load-bearing: the candidate characterization (non-free
  // nodes of a candidate live in exactly one clique of S) presumes no
  // all-free k-clique exists.
  DKC_RETURN_IF_ERROR(VerifyMaximality(g, solution));

  DynamicBuildStats stats;
  auto [state, index_ms] = SeedState(g, solution, options);
  stats.index_ms = index_ms;
  return DynamicSolver(std::move(state), stats, options);
}

StatusOr<DynamicSolver> DynamicSolver::FromState(
    std::unique_ptr<SolutionState> state, const DynamicOptions& options) {
  if (state == nullptr) {
    return Status::InvalidArgument("null engine state");
  }
  if (state->k() != options.k) {
    return Status::InvalidArgument("state k does not match options.k");
  }
  // Scheduling configuration is not persisted; re-apply the caller's.
  state->set_parallel_rebuild_min_slots(options.parallel_rebuild_min_slots);
  return DynamicSolver(std::move(state), DynamicBuildStats{}, options);
}

bool DynamicSolver::FindFreeCliqueWithEdge(NodeId u, NodeId v,
                                           std::vector<NodeId>* clique) {
  const int k = state_->k();
  const DynamicGraph& graph = state_->graph();
  // Free common neighbors of the new edge's endpoints.
  std::vector<NodeId> common;
  for (NodeId w : graph.Neighbors(u)) {
    if (w != v && state_->IsFree(w) && graph.HasEdge(w, v)) {
      common.push_back(w);
    }
  }
  if (common.size() + 2 < static_cast<size_t>(k)) return false;

  std::vector<NodeId> chosen;
  std::function<bool(size_t, int)> extend = [&](size_t start,
                                                int remaining) -> bool {
    if (remaining == 0) return true;
    for (size_t i = start; i < common.size(); ++i) {
      const NodeId w = common[i];
      bool adjacent_to_all = true;
      for (NodeId x : chosen) {
        if (!graph.HasEdge(w, x)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (!adjacent_to_all) continue;
      chosen.push_back(w);
      if (extend(i + 1, remaining - 1)) return true;
      chosen.pop_back();
    }
    return false;
  };
  if (!extend(0, k - 2)) return false;
  clique->clear();
  clique->push_back(u);
  clique->push_back(v);
  clique->insert(clique->end(), chosen.begin(), chosen.end());
  return true;
}

void DynamicSolver::EnqueueOwnersOfNewCandidates(NodeId u, NodeId v,
                                                 SwapQueue* queue,
                                                 UpdateWork* meter) {
  const int k = state_->k();
  const DynamicGraph& graph = state_->graph();
  std::vector<NodeId> common;
  for (NodeId w : graph.Neighbors(u)) {
    if (w != v && graph.HasEdge(w, v)) common.push_back(w);
  }
  if (common.size() + 2 < static_cast<size_t>(k)) return;

  // Enumerate k-cliques through (u,v) whose non-free nodes all belong to
  // one solution clique — those are exactly the candidates the new edge
  // creates (u and v are free here). We only need the set of owners.
  std::vector<uint32_t> owners;
  std::vector<NodeId> chosen;
  std::function<void(size_t, int, uint32_t)> extend =
      [&](size_t start, int remaining, uint32_t owner) {
        if (remaining == 0) {
          if (owner != SolutionState::kNoClique) owners.push_back(owner);
          return;
        }
        for (size_t i = start; i < common.size(); ++i) {
          const NodeId w = common[i];
          uint32_t next_owner = owner;
          const uint32_t cw = state_->CliqueOf(w);
          if (cw != SolutionState::kNoClique) {
            if (owner != SolutionState::kNoClique && cw != owner) continue;
            next_owner = cw;
          }
          bool adjacent_to_all = true;
          for (NodeId x : chosen) {
            if (!graph.HasEdge(w, x)) {
              adjacent_to_all = false;
              break;
            }
          }
          if (!adjacent_to_all) continue;
          chosen.push_back(w);
          extend(i + 1, remaining - 1, next_owner);
          chosen.pop_back();
        }
      };
  extend(0, k - 2, SolutionState::kNoClique);

  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  owners.erase(std::remove_if(owners.begin(), owners.end(),
                              [this](uint32_t owner) {
                                return !state_->SlotAlive(owner);
                              }),
               owners.end());
  // The rebuilds register the new edge's candidates as a side effect and
  // charge `meter` themselves (possibly truncated by its cap); the fan-out
  // runs the enumerations across the pool with byte-identical registration
  // order and budget outcomes (see RebuildCandidatesForMany).
  std::vector<size_t> counts;
  state_->RebuildCandidatesForMany(owners, pool_, &counts, meter);
  for (size_t i = 0; i < owners.size(); ++i) {
    if (counts[i] > 0) queue->push_back(state_->RefOf(owners[i]));
  }
}

void DynamicSolver::FinishUpdate(const UpdateWork& meter,
                                 const SwapStats& swaps) {
  last_update_.work = meter.work;
  last_update_.rebuild_cuts = meter.rebuild_cuts;
  last_update_.swaps = swaps;
  aborted_updates_ += last_update_.aborted() ? 1 : 0;
  Accumulate(&swap_stats_, swaps);
}

Status DynamicSolver::InsertEdge(NodeId u, NodeId v) {
  last_update_ = UpdateStats{};  // an errored call did no work
  if (!state_->graph().InsertEdge(u, v)) {
    return Status::InvalidArgument("edge already present (or u == v)");
  }
  state_->EnsureNodeCapacity(state_->graph().num_nodes());
  UpdateWork meter = UpdateWork::FromBudget(update_budget_);

  const uint32_t cu = state_->CliqueOf(u);
  const uint32_t cv = state_->CliqueOf(v);
  if (cu != SolutionState::kNoClique && cv != SolutionState::kNoClique) {
    // Neither endpoint free: no candidate can use the edge (a candidate's
    // non-free nodes come from one clique, and (u,v) inside one clique is
    // impossible for a *new* edge). Nothing to do — Algorithm 6's silent
    // case.
    FinishUpdate(meter, SwapStats{});
    return Status::OK();
  }

  SwapQueue queue;
  SwapStats swaps;
  if (cu != SolutionState::kNoClique || cv != SolutionState::kNoClique) {
    // Exactly one endpoint free (lines 1-6): candidates through (u,v) can
    // only belong to the non-free endpoint's clique. The rebuild itself
    // reports whether the edge actually created a candidate there.
    const uint32_t owner = cu != SolutionState::kNoClique ? cu : cv;
    const auto rebuilt = state_->RebuildCandidatesFor(owner, u, v, &meter);
    if (rebuilt.has_edge) {
      queue.push_back(state_->RefOf(owner));
      swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
    }
    FinishUpdate(meter, swaps);
    return Status::OK();
  }

  // Both endpoints free (lines 7-15).
  std::vector<NodeId> clique;
  if (FindFreeCliqueWithEdge(u, v, &clique)) {
    // A brand-new all-free clique: add directly. AddSolutionClique kills
    // every candidate (of any owner) that used the consumed nodes as free
    // nodes — without that kill, a later DeleteEdge could pack a stale
    // candidate into the solution and break disjointness (pinned by the
    // StaleCandidate regression tests). No swapping is needed: every
    // candidate of the new clique contains both u and v (any other
    // combination was an all-free clique of the *pre-insert* graph,
    // contradicting maximality), so no two of them are disjoint.
    const uint32_t slot = state_->AddSolutionClique(clique);
    state_->RebuildCandidatesFor(slot, &meter);
    FinishUpdate(meter, SwapStats{});
    return Status::OK();
  }
  EnqueueOwnersOfNewCandidates(u, v, &queue, &meter);
  if (!queue.empty()) {
    swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
  }
  FinishUpdate(meter, swaps);
  return Status::OK();
}

Status DynamicSolver::DeleteEdge(NodeId u, NodeId v) {
  last_update_ = UpdateStats{};  // an errored call did no work
  if (!state_->graph().DeleteEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }
  UpdateWork meter = UpdateWork::FromBudget(update_budget_);
  // Candidates through the edge are no longer cliques.
  state_->KillCandidatesWithEdge(u, v);
  meter.Charge(1);

  const uint32_t cu = state_->CliqueOf(u);
  const uint32_t cv = state_->CliqueOf(v);
  if (cu == SolutionState::kNoClique || cu != cv) {
    FinishUpdate(meter, SwapStats{});
    return Status::OK();  // lines 5-6: only candidates were affected
  }

  // Lines 1-4: the edge broke solution clique C. Replace it by the best
  // disjoint packing of its surviving candidates (possibly empty), then let
  // the swap loop chase follow-on opportunities. The repair itself is
  // mandatory and runs to completion whatever the budget says; only the
  // follow-on loop can be cut short.
  auto replacement = PackDisjointCandidates(*state_, cu, pool_);
  SwapQueue queue;
  CommitReplacement(state_.get(), cu, replacement, &queue, &meter, pool_);
  const SwapStats swaps = TrySwapLoop(state_.get(), &queue, &meter, pool_);
  FinishUpdate(meter, swaps);
  return Status::OK();
}

}  // namespace dkc
