#include "dynamic/swap.h"

#include <algorithm>
#include <numeric>

namespace dkc {
namespace {

// Fixed chunk geometry for the parallel candidate sort. The boundaries must
// not depend on the pool size: byte-identity across thread counts comes for
// free when every configuration sorts the same chunks under the same total
// order.
constexpr size_t kParallelSortMin = 64;
constexpr size_t kSortChunk = 32;

// Ascending (score, registration index) — a *total* order, so any sorting
// schedule produces the exact permutation the serial stable_sort (score
// only, stable on registration order) produces.
void SortCandidatesByScore(std::vector<SolutionState::CandidateView>* cands,
                           ThreadPool* pool) {
  auto& c = *cands;
  const size_t n = c.size();
  if (pool == nullptr || pool->num_threads() <= 1 || n < kParallelSortMin) {
    std::stable_sort(c.begin(), c.end(),
                     [](const SolutionState::CandidateView& a,
                        const SolutionState::CandidateView& b) {
                       return a.score < b.score;
                     });
    return;
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const auto less = [&c](uint32_t a, uint32_t b) {
    return c[a].score != c[b].score ? c[a].score < c[b].score : a < b;
  };
  const size_t chunks = (n + kSortChunk - 1) / kSortChunk;
  pool->ParallelFor(chunks, [&](size_t i) {
    const auto begin = order.begin() + static_cast<ptrdiff_t>(i * kSortChunk);
    const auto end =
        order.begin() + static_cast<ptrdiff_t>(std::min(n, (i + 1) * kSortChunk));
    std::sort(begin, end, less);
  });
  // Serial bottom-up merge over the fixed chunk boundaries.
  for (size_t width = kSortChunk; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const auto begin = order.begin() + static_cast<ptrdiff_t>(lo);
      std::inplace_merge(begin, begin + static_cast<ptrdiff_t>(width),
                         order.begin() +
                             static_cast<ptrdiff_t>(std::min(n, lo + 2 * width)),
                         less);
    }
  }
  std::vector<SolutionState::CandidateView> sorted;
  sorted.reserve(n);
  for (uint32_t idx : order) sorted.push_back(std::move(c[idx]));
  c = std::move(sorted);
}

}  // namespace

std::vector<std::vector<NodeId>> PackDisjointCandidates(
    const SolutionState& state, uint32_t slot, ThreadPool* pool) {
  auto candidates = state.CandidatesOf(slot);
  SortCandidatesByScore(&candidates, pool);
  std::vector<std::vector<NodeId>> chosen;
  std::vector<NodeId> taken;  // nodes consumed by chosen candidates
  for (auto& cand : candidates) {
    bool disjoint = true;
    for (NodeId u : cand.nodes) {
      if (std::find(taken.begin(), taken.end(), u) != taken.end()) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    taken.insert(taken.end(), cand.nodes.begin(), cand.nodes.end());
    chosen.push_back(std::move(cand.nodes));
  }
  return chosen;
}

std::vector<uint32_t> StageReplacement(
    SolutionState* state, uint32_t slot,
    const std::vector<std::vector<NodeId>>& replacement) {
  std::vector<NodeId> freed(state->SlotNodes(slot).begin(),
                            state->SlotNodes(slot).end());
  state->RemoveSolutionClique(slot);

  std::vector<uint32_t> added;
  added.reserve(replacement.size());
  for (const auto& nodes : replacement) {
    added.push_back(state->AddSolutionClique(nodes));
  }

  // Cliques needing a fresh candidate set (Algorithm 5 on their B): the
  // added cliques, then every clique adjacent to a node of the removed
  // clique that no replacement consumed — those nodes are free now, so
  // their neighbors' cliques may have gained candidates.
  std::vector<uint32_t> to_rebuild = added;
  std::vector<uint32_t> affected;
  for (NodeId f : freed) {
    if (!state->IsFree(f)) continue;
    for (NodeId w : state->graph().Neighbors(f)) {
      const uint32_t s = state->CliqueOf(w);
      if (s != SolutionState::kNoClique) affected.push_back(s);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (uint32_t s : affected) {
    if (std::find(added.begin(), added.end(), s) == added.end()) {
      to_rebuild.push_back(s);
    }
  }
  return to_rebuild;
}

void CommitReplacement(SolutionState* state, uint32_t slot,
                       const std::vector<std::vector<NodeId>>& replacement,
                       SwapQueue* queue, UpdateWork* budget,
                       ThreadPool* pool) {
  const std::vector<uint32_t> to_rebuild =
      StageReplacement(state, slot, replacement);

  // The rebuilds charge the meter themselves (one unit each plus one per
  // DFS branch entered) and may be truncated by its deterministic cap —
  // see RebuildCandidatesForMany.
  std::vector<size_t> counts;
  state->RebuildCandidatesForMany(to_rebuild, pool, &counts, budget);
  for (size_t i = 0; i < to_rebuild.size(); ++i) {
    if (queue != nullptr && counts[i] > 0) {
      queue->push_back(state->RefOf(to_rebuild[i]));
    }
  }
}

SwapStats TrySwapLoop(SolutionState* state, SwapQueue* queue,
                      UpdateWork* budget, ThreadPool* pool) {
  SwapStats stats;
  while (!queue->empty()) {
    if (budget != nullptr && budget->Exhausted()) {
      // Pop-boundary abort: everything committed so far stays, the
      // remaining entries were only growth opportunities.
      stats.aborted = true;
      queue->clear();
      break;
    }
    const SolutionState::SlotRef ref = queue->front();
    queue->pop_front();
    if (!state->RefValid(ref)) continue;  // swapped away since enqueue
    ++stats.pops;
    if (budget != nullptr) budget->Charge(1);
    auto replacement = PackDisjointCandidates(*state, ref.slot, pool);
    if (replacement.size() <= 1) continue;  // no net gain: keep C
    ++stats.commits;
    stats.cliques_gained += replacement.size() - 1;
    CommitReplacement(state, ref.slot, replacement, queue, budget, pool);
  }
  return stats;
}

}  // namespace dkc
