#include "dynamic/swap.h"

#include <algorithm>

namespace dkc {

std::vector<std::vector<NodeId>> PackDisjointCandidates(
    const SolutionState& state, uint32_t slot) {
  auto candidates = state.CandidatesOf(slot);
  // Ascending clique score; CandidatesOf yields registration order, and
  // stable_sort keeps it as the tie-break, so packing is deterministic.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const SolutionState::CandidateView& a,
                      const SolutionState::CandidateView& b) {
                     return a.score < b.score;
                   });
  std::vector<std::vector<NodeId>> chosen;
  std::vector<NodeId> taken;  // nodes consumed by chosen candidates
  for (auto& cand : candidates) {
    bool disjoint = true;
    for (NodeId u : cand.nodes) {
      if (std::find(taken.begin(), taken.end(), u) != taken.end()) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    taken.insert(taken.end(), cand.nodes.begin(), cand.nodes.end());
    chosen.push_back(std::move(cand.nodes));
  }
  return chosen;
}

void CommitReplacement(SolutionState* state, uint32_t slot,
                       const std::vector<std::vector<NodeId>>& replacement,
                       SwapQueue* queue) {
  std::vector<NodeId> freed(state->SlotNodes(slot).begin(),
                            state->SlotNodes(slot).end());
  state->RemoveSolutionClique(slot);

  std::vector<uint32_t> added;
  added.reserve(replacement.size());
  for (const auto& nodes : replacement) {
    added.push_back(state->AddSolutionClique(nodes));
  }

  // New cliques get a fresh candidate set (Algorithm 5 on their B).
  for (uint32_t s : added) {
    const size_t cands = state->RebuildCandidatesFor(s);
    if (queue != nullptr && cands > 0) queue->push_back(state->RefOf(s));
  }

  // Nodes of the removed clique that no replacement consumed are free now;
  // cliques adjacent to them may have gained candidates.
  std::vector<uint32_t> affected;
  for (NodeId f : freed) {
    if (!state->IsFree(f)) continue;
    for (NodeId w : state->graph().Neighbors(f)) {
      const uint32_t s = state->CliqueOf(w);
      if (s != SolutionState::kNoClique) affected.push_back(s);
    }
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  for (uint32_t s : added) {  // already rebuilt above
    affected.erase(std::remove(affected.begin(), affected.end(), s),
                   affected.end());
  }
  for (uint32_t s : affected) {
    if (!state->SlotAlive(s)) continue;
    const size_t cands = state->RebuildCandidatesFor(s);
    if (queue != nullptr && cands > 0) queue->push_back(state->RefOf(s));
  }
}

SwapStats TrySwapLoop(SolutionState* state, SwapQueue* queue) {
  SwapStats stats;
  while (!queue->empty()) {
    const SolutionState::SlotRef ref = queue->front();
    queue->pop_front();
    if (!state->RefValid(ref)) continue;  // swapped away since enqueue
    ++stats.pops;
    auto replacement = PackDisjointCandidates(*state, ref.slot);
    if (replacement.size() <= 1) continue;  // no net gain: keep C
    ++stats.commits;
    stats.cliques_gained += replacement.size() - 1;
    CommitReplacement(state, ref.slot, replacement, queue);
  }
  return stats;
}

}  // namespace dkc
