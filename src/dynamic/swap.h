// The swap operation (Algorithm 4) and the commit/propagation machinery it
// shares with the update handlers.
//
// TrySwap pops a solution clique C from a FIFO queue, greedily packs a
// maximal disjoint subset S_dis of C's candidate cliques in ascending
// clique-score order (the Algorithm-2 rule applied to the tiny candidate
// set), and commits — replace C by S_dis — iff |S_dis| >= 2, i.e. the
// solution strictly grows. Commits free leftover nodes and create fresh
// candidates, so affected cliques re-enter the queue; every commit grows
// |S| by >= 1, which bounds the loop.

#ifndef DKC_DYNAMIC_SWAP_H_
#define DKC_DYNAMIC_SWAP_H_

#include <deque>
#include <vector>

#include "dynamic/candidate_index.h"

namespace dkc {

using SwapQueue = std::deque<SolutionState::SlotRef>;

struct SwapStats {
  uint64_t pops = 0;
  uint64_t commits = 0;
  uint64_t cliques_gained = 0;  // sum over commits of |S_dis| - 1
};

/// Greedy maximal disjoint packing of the alive candidates of `slot`,
/// ascending clique score (deterministic: ties by registration order).
/// Returned cliques are node-vectors safe to use after the slot dies.
std::vector<std::vector<NodeId>> PackDisjointCandidates(
    const SolutionState& state, uint32_t slot);

/// Replace solution clique `slot` (must be alive) by `replacement` cliques
/// (each must consist of nodes that are free once `slot` is removed).
/// Rebuilds candidates for the added cliques and for every clique adjacent
/// to a node that ended up free, pushing the ones with candidates to
/// `queue` (when non-null) for further swapping.
void CommitReplacement(SolutionState* state, uint32_t slot,
                       const std::vector<std::vector<NodeId>>& replacement,
                       SwapQueue* queue);

/// Algorithm 4: drain the queue, swapping wherever |S_dis| >= 2.
SwapStats TrySwapLoop(SolutionState* state, SwapQueue* queue);

}  // namespace dkc

#endif  // DKC_DYNAMIC_SWAP_H_
