// The swap operation (Algorithm 4) and the commit/propagation machinery it
// shares with the update handlers.
//
// TrySwap pops a solution clique C from a FIFO queue, greedily packs a
// maximal disjoint subset S_dis of C's candidate cliques in ascending
// clique-score order (the Algorithm-2 rule applied to the tiny candidate
// set), and commits — replace C by S_dis — iff |S_dis| >= 2, i.e. the
// solution strictly grows. Commits free leftover nodes and create fresh
// candidates, so affected cliques re-enter the queue; every commit grows
// |S| by >= 1, which bounds the loop.
//
// Budgeted maintenance: the loop optionally runs under an UpdateWork meter.
// Work units are charged deterministically (one per pop, one per candidate
// rebuild plus one per branch node the rebuild's subset-enumeration DFS
// enters), and exhaustion cuts maintenance at deterministic boundaries:
// the loop aborts at a pop boundary, and a rebuild's enumeration stops at
// a DFS branch boundary (see update_work.h). The solution and every
// indexed candidate stay valid; a cut rebuild may leave a slot's candidate
// set *incomplete* (growth opportunities missing until its next rebuild),
// which is the price of bounding a single huge neighborhood rebuild. With
// a pure work cap (no wall-clock deadline) the abort outcome is a property
// of the update stream, byte-identical at every thread count.

#ifndef DKC_DYNAMIC_SWAP_H_
#define DKC_DYNAMIC_SWAP_H_

#include <deque>
#include <vector>

#include "core/types.h"
#include "dynamic/candidate_index.h"
#include "dynamic/update_work.h"
#include "util/timer.h"

namespace dkc {

using SwapQueue = std::deque<SolutionState::SlotRef>;

struct SwapStats {
  uint64_t pops = 0;
  uint64_t commits = 0;
  uint64_t cliques_gained = 0;  // sum over commits of |S_dis| - 1
  bool aborted = false;         // an UpdateWork budget cut the loop short
};

/// Greedy maximal disjoint packing of the alive candidates of `slot`,
/// ascending clique score (deterministic: ties by registration order).
/// Returned cliques are node-vectors safe to use after the slot dies.
/// With `pool`, large candidate sets are sorted in parallel under the
/// (score, registration index) total order — the same permutation the
/// serial stable_sort produces, so the packing is byte-identical at any
/// thread count.
std::vector<std::vector<NodeId>> PackDisjointCandidates(
    const SolutionState& state, uint32_t slot, ThreadPool* pool = nullptr);

/// Structural half of a replacement commit: remove solution clique `slot`
/// (must be alive), add the `replacement` cliques (each must consist of
/// nodes that are free once `slot` is removed), and return the slots whose
/// candidate sets are now out of date — the added cliques first, then
/// every clique adjacent to a node that ended up free, in a deterministic
/// order. The caller owns the rebuild: CommitReplacement runs it
/// immediately; the batched apply path merges these lists across a whole
/// epoch and rebuilds each dirty slot once at the boundary.
std::vector<uint32_t> StageReplacement(
    SolutionState* state, uint32_t slot,
    const std::vector<std::vector<NodeId>>& replacement);

/// Replace solution clique `slot` (must be alive) by `replacement` cliques
/// (each must consist of nodes that are free once `slot` is removed).
/// Rebuilds candidates for the added cliques and for every clique adjacent
/// to a node that ended up free (fanned across `pool` when given), pushing
/// the ones with candidates to `queue` (when non-null) for further
/// swapping. Rebuild work is charged to `budget` when given; the commit
/// itself is atomic — it never aborts partway.
void CommitReplacement(SolutionState* state, uint32_t slot,
                       const std::vector<std::vector<NodeId>>& replacement,
                       SwapQueue* queue, UpdateWork* budget = nullptr,
                       ThreadPool* pool = nullptr);

/// Algorithm 4: drain the queue, swapping wherever |S_dis| >= 2. Under a
/// budget the drain aborts at a pop boundary once the meter is exhausted
/// (stats.aborted; remaining queue entries are discarded).
SwapStats TrySwapLoop(SolutionState* state, SwapQueue* queue,
                      UpdateWork* budget = nullptr,
                      ThreadPool* pool = nullptr);

}  // namespace dkc

#endif  // DKC_DYNAMIC_SWAP_H_
