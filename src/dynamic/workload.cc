#include "dynamic/workload.h"

#include <algorithm>

#include "graph/dynamic_graph.h"
#include "graph/graph_builder.h"

namespace dkc {

std::vector<Edge> SampleEdges(const Graph& g, size_t count, Rng& rng) {
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  count = std::min(count, edges.size());
  // Partial Fisher-Yates: the first `count` positions become the sample.
  for (size_t i = 0; i < count; ++i) {
    const size_t j = i + rng.NextBounded(edges.size() - i);
    std::swap(edges[i], edges[j]);
  }
  edges.resize(count);
  return edges;
}

Graph RemoveEdges(const Graph& g, const std::vector<Edge>& edges) {
  std::vector<Edge> sorted(edges);
  for (auto& [u, v] : sorted) {
    if (u > v) std::swap(u, v);
  }
  std::sort(sorted.begin(), sorted.end());
  GraphBuilder builder(g.num_nodes());
  if (g.num_nodes() > 0) builder.EnsureNode(g.num_nodes() - 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u >= v) continue;
      if (!std::binary_search(sorted.begin(), sorted.end(), Edge{u, v})) {
        builder.AddEdge(u, v);
      }
    }
  }
  return builder.Build();
}

std::vector<UpdateOp> MakeChurnStream(const Graph& g, size_t count,
                                      Rng& rng) {
  const NodeId n = g.num_nodes();
  const size_t max_edges = n < 2 ? 0 : static_cast<size_t>(n) * (n - 1) / 2;
  DynamicGraph mirror(g);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  std::vector<UpdateOp> ops;
  if (max_edges == 0) return ops;  // < 2 nodes: no valid op exists
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // A complete mirror forces a deletion — the rejection sampler below
    // would spin forever with no absent pair left to find.
    const bool do_insert =
        edges.size() < max_edges && (edges.empty() || rng.NextBool(0.55));
    if (do_insert) {
      NodeId u = 0, v = 0;
      do {
        u = static_cast<NodeId>(rng.NextBounded(n));
        v = static_cast<NodeId>(rng.NextBounded(n));
      } while (u == v || mirror.HasEdge(u, v));
      mirror.InsertEdge(u, v);
      edges.emplace_back(std::min(u, v), std::max(u, v));
      ops.push_back({true, {u, v}});
    } else {
      const size_t pick = rng.NextBounded(edges.size());
      const Edge e = edges[pick];
      edges[pick] = edges.back();
      edges.pop_back();
      mirror.DeleteEdge(e.first, e.second);
      ops.push_back({false, e});
    }
  }
  return ops;
}

std::vector<UpdateOp> MakeHotNeighborhoodStream(const Graph& g, size_t count,
                                                size_t hot_nodes, Rng& rng) {
  // The pool: highest-degree nodes (ties by id — deterministic) and their
  // neighborhoods.
  std::vector<NodeId> by_degree(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) by_degree[u] = u;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](NodeId a, NodeId b) {
                     return g.Degree(a) != g.Degree(b)
                                ? g.Degree(a) > g.Degree(b)
                                : a < b;
                   });
  hot_nodes = std::min(hot_nodes, by_degree.size());
  std::vector<NodeId> pool(by_degree.begin(),
                           by_degree.begin() + hot_nodes);
  for (size_t i = 0; i < hot_nodes; ++i) {
    for (NodeId w : g.Neighbors(by_degree[i])) pool.push_back(w);
  }
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  std::vector<UpdateOp> ops;
  const size_t p = pool.size();
  const size_t max_edges = p < 2 ? 0 : p * (p - 1) / 2;
  if (max_edges == 0) return ops;

  // Same churn mechanics as MakeChurnStream, restricted to pool pairs.
  DynamicGraph mirror(g);
  std::vector<Edge> live;  // live edges with both endpoints in the pool
  for (NodeId u : pool) {
    for (NodeId v : mirror.Neighbors(u)) {
      if (u < v && std::binary_search(pool.begin(), pool.end(), v)) {
        live.emplace_back(u, v);
      }
    }
  }
  ops.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const bool do_insert =
        live.size() < max_edges && (live.empty() || rng.NextBool(0.55));
    if (do_insert) {
      NodeId u = 0, v = 0;
      do {
        u = pool[rng.NextBounded(p)];
        v = pool[rng.NextBounded(p)];
      } while (u == v || mirror.HasEdge(u, v));
      mirror.InsertEdge(u, v);
      live.emplace_back(std::min(u, v), std::max(u, v));
      ops.push_back({true, {u, v}});
    } else {
      const size_t pick = rng.NextBounded(live.size());
      const Edge e = live[pick];
      live[pick] = live.back();
      live.pop_back();
      mirror.DeleteEdge(e.first, e.second);
      ops.push_back({false, e});
    }
  }
  return ops;
}

MixedWorkload MakeMixedWorkload(const Graph& g, size_t insert_count,
                                size_t delete_count, Rng& rng) {
  // One disjoint sample covers both op sets: the first `insert_count`
  // edges are pre-removed (and re-inserted by the stream), the rest are
  // deleted by the stream.
  auto sample = SampleEdges(g, insert_count + delete_count, rng);
  insert_count = std::min(insert_count, sample.size());
  std::vector<Edge> to_insert(sample.begin(),
                              sample.begin() + insert_count);
  std::vector<Edge> to_delete(sample.begin() + insert_count, sample.end());

  MixedWorkload workload;
  workload.prepared = RemoveEdges(g, to_insert);
  workload.ops.reserve(sample.size());
  for (const Edge& e : to_insert) workload.ops.push_back({true, e});
  for (const Edge& e : to_delete) workload.ops.push_back({false, e});
  for (size_t i = workload.ops.size(); i > 1; --i) {  // Fisher-Yates shuffle
    std::swap(workload.ops[i - 1], workload.ops[rng.NextBounded(i)]);
  }
  return workload;
}

}  // namespace dkc
