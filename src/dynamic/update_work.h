// The dynamic engine's deterministic per-update work meter.
//
// Charges depend only on the update history, never on scheduling: one unit
// per swap pop, one per candidate rebuild, and one per branch node the
// rebuild's subset-enumeration DFS enters (the Enter hook of
// clique/neighborhood.h's charged traversal). Exhaustion of the work cap
// cuts maintenance at deterministic boundaries only — the swap loop at pop
// boundaries, a rebuild's enumeration at a DFS branch boundary — so the
// abort outcome is a property of the update stream, byte-identical at
// every thread count.
//
// The wall-clock deadline is the schedule-dependent escape hatch for
// latency-bound deployments; it is consulted at pop boundaries only (the
// DFS never reads the clock).

#ifndef DKC_DYNAMIC_UPDATE_WORK_H_
#define DKC_DYNAMIC_UPDATE_WORK_H_

#include <cstdint>

#include "core/types.h"
#include "util/timer.h"

namespace dkc {

struct UpdateWork {
  static UpdateWork FromBudget(const Budget& budget) {
    UpdateWork work;
    if (budget.time_ms > 0) {
      work.deadline = Deadline::AfterMillis(budget.time_ms);
    }
    work.max_work = budget.max_branch_nodes;
    return work;
  }

  Deadline deadline = Deadline::Unlimited();
  uint64_t max_work = 0;  // 0 = unlimited
  uint64_t work = 0;      // units charged so far
  bool aborted = false;   // latched by Exhausted()

  /// Rebuild enumerations this update that the work cap truncated
  /// mid-enumeration (at a DFS branch boundary). A cut rebuild leaves the
  /// slot's candidate set *valid but possibly incomplete* — every indexed
  /// candidate is real, but growth opportunities may be missing until the
  /// slot is next rebuilt. Deterministic: a property of the update stream.
  uint64_t rebuild_cuts = 0;

  void Charge(uint64_t units) { work += units; }

  /// True once the budget is spent; latches `aborted`. The swap loop
  /// consults it at pop boundaries; rebuild enumerations consult the work
  /// cap (not the deadline) per DFS branch — see update_work.h header.
  bool Exhausted() {
    if (aborted) return true;
    if ((max_work != 0 && work >= max_work) || deadline.Expired()) {
      aborted = true;
    }
    return aborted;
  }
};

}  // namespace dkc

#endif  // DKC_DYNAMIC_UPDATE_WORK_H_
