#include "dynamic/solution_view.h"

#include <algorithm>

#include "core/clique_score.h"
#include "dynamic/candidate_index.h"

namespace dkc {

std::vector<std::pair<Count, uint32_t>> SolutionView::TopK(size_t n) const {
  std::vector<std::pair<Count, uint32_t>> ranked;
  ranked.reserve(group_scores.size());
  for (uint32_t g = 0; g < group_scores.size(); ++g) {
    ranked.emplace_back(group_scores[g], g);
  }
  n = std::min(n, ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + n, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                    });
  ranked.resize(n);
  return ranked;
}

bool SolutionView::Consistent(std::string* error) const {
  const auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (group_scores.size() != solution.size()) {
    return fail("group_scores size does not match solution size");
  }
  std::vector<uint32_t> derived(node_to_group.size(), kNoGroup);
  for (uint32_t g = 0; g < solution.size(); ++g) {
    for (NodeId u : solution.Get(g)) {
      if (u >= node_to_group.size()) return fail("clique node out of range");
      if (derived[u] != kNoGroup) return fail("node in two groups");
      derived[u] = g;
    }
  }
  if (derived != node_to_group) {
    return fail("node_to_group disagrees with the clique store");
  }
  return true;
}

std::shared_ptr<const SolutionView> BuildSolutionView(
    const SolutionState& state, uint64_t epoch, uint64_t updates_applied) {
  auto view = std::make_shared<SolutionView>(state.k());
  view->epoch = epoch;
  view->updates_applied = updates_applied;
  view->solution = state.Snapshot();
  view->node_to_group.assign(state.graph().num_nodes(), SolutionView::kNoGroup);
  view->group_scores.reserve(view->solution.size());
  for (uint32_t g = 0; g < view->solution.size(); ++g) {
    const auto nodes = view->solution.Get(g);
    for (NodeId u : nodes) view->node_to_group[u] = g;
    view->group_scores.push_back(CliqueScoreOf(nodes, state.node_scores()));
  }
  return view;
}

}  // namespace dkc
