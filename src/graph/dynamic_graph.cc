#include "graph/dynamic_graph.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace dkc {

DynamicGraph::DynamicGraph(const Graph& g) : adj_(g.num_nodes()) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.num_edges();
}

bool DynamicGraph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  if (adj_[u].size() > adj_[v].size()) std::swap(u, v);
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

bool DynamicGraph::InsertEdge(NodeId u, NodeId v) {
  if (u == v) return false;
  const NodeId needed = std::max(u, v) + 1;
  if (needed > num_nodes()) adj_.resize(needed);
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return false;
  adj_[u].insert(it, v);
  adj_[v].insert(std::lower_bound(adj_[v].begin(), adj_[v].end(), u), u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::DeleteEdge(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it == adj_[u].end() || *it != v) return false;
  adj_[u].erase(it);
  adj_[v].erase(std::lower_bound(adj_[v].begin(), adj_[v].end(), u));
  --num_edges_;
  return true;
}

Graph DynamicGraph::ToGraph() const {
  GraphBuilder builder(num_nodes());
  builder.EnsureNode(num_nodes() == 0 ? 0 : num_nodes() - 1);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

int64_t DynamicGraph::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(adj_.capacity() *
                                       sizeof(std::vector<NodeId>));
  for (const auto& list : adj_) {
    bytes += static_cast<int64_t>(list.capacity() * sizeof(NodeId));
  }
  return bytes;
}

}  // namespace dkc
