// Graph-shrinking preprocessing for k-clique workloads.
//
// A node can participate in a disjoint k-clique solution only if it lies in
// at least one k-clique, and on the sparse real graphs the paper targets
// most nodes do not. Two classical necessary conditions prune them without
// ever listing a clique (the kClist lineage's biggest constant-factor win):
//
//   * (k-1)-core: every node of a k-clique has k-1 co-members, so any node
//     whose degree drops below k-1 can be peeled, cascading;
//   * triangle support: every edge of a k-clique lies in at least k-2
//     triangles (one per remaining co-member), so edges supported by fewer
//     can be dropped.
//
// Each rule can re-enable the other (dropping edges lowers degrees, peeling
// nodes removes triangles), so the pipeline iterates both to a fixpoint,
// then rebuilds a compact CSR over the survivors with an ascending-order id
// remap and a back-mapping to original ids.
//
// Safety: by induction over the pruning steps, no node or edge of any
// k-clique is ever removed — a k-clique's nodes keep degree >= k-1 and its
// edges keep support >= k-2 as long as the clique itself is intact, which
// it always is. The pruned graph therefore contains *exactly* the k-cliques
// of the input.
//
// Determinism: in the default mode the pruned graph is meant to be oriented
// by the ORIGINAL graph's degeneracy order restricted to the survivors
// (`orientation` below). Because the id remap is ascending and every
// k-clique survives with all its edges, each solver's DFS sees the same
// surviving branches in the same relative order as on the unpruned graph —
// removed nodes/edges only ever contributed dead branches — so solutions
// are byte-identical with preprocessing on or off (the differential harness
// asserts exactly this for all five methods). The opt-in `reorder` mode
// recomputes the degeneracy order on the pruned graph instead: denser
// kernels, still-valid solutions, but no byte-identity promise.

#ifndef DKC_GRAPH_PREPROCESS_H_
#define DKC_GRAPH_PREPROCESS_H_

#include <vector>

#include "graph/graph.h"
#include "graph/ordering.h"

namespace dkc {

class ThreadPool;

struct PreprocessOptions {
  int k = 3;
  /// false: orientation = original degeneracy order restricted to survivors
  /// (solver results byte-identical to no preprocessing). true: recompute
  /// the degeneracy order on the pruned graph.
  bool reorder = false;
  /// When given, the stage-1 (k-1)-core peel runs as per-range partition
  /// peels followed by a global cascade to the fixpoint. The peel is a
  /// confluent chaotic iteration, so the surviving set — and with it every
  /// downstream artifact and statistic — is identical to the serial
  /// cascade at any thread count.
  ThreadPool* pool = nullptr;
  /// Smallest graph (node count) worth fanning the peel out for; below it
  /// the serial cascade wins. Tests set 0 to force the parallel path.
  NodeId parallel_peel_min_nodes = 4096;
};

/// Per-phase accounting, surfaced through SolveResult and the dkc CLI.
struct PreprocessStats {
  NodeId nodes_before = 0;
  Count edges_before = 0;
  NodeId nodes_after = 0;
  Count edges_after = 0;
  /// Nodes peeled by the (k-1)-core phase (summed over rounds).
  NodeId peeled_nodes = 0;
  /// Edges dropped because an endpoint was peeled.
  Count peeled_edges = 0;
  /// Edges dropped by the triangle-support phase (support < k-2).
  Count unsupported_edges = 0;
  /// Triangle-count passes until the fixpoint was certified (>= 1 when the
  /// pipeline ran): 1 when the cascade finished incrementally or nothing
  /// was prunable, +1 for every mass-kill round that forced a recount.
  int rounds = 0;
  double elapsed_ms = 0.0;
  bool reordered = false;

  NodeId nodes_removed() const { return nodes_before - nodes_after; }
  Count edges_removed() const { return edges_before - edges_after; }
};

struct PreprocessResult {
  /// Compact CSR over the surviving nodes, ids remapped ascending (the
  /// remap is monotone: u < v in original ids iff their pruned ids are
  /// ordered the same way).
  Graph pruned;
  /// pruned id -> original id, ascending.
  std::vector<NodeId> new_to_old;
  /// original id -> pruned id, kInvalidNode for removed nodes.
  std::vector<NodeId> old_to_new;
  /// The total order to orient `pruned` with (see header comment).
  Ordering orientation;
  PreprocessStats stats;
};

/// Runs the peel/support fixpoint for k-clique workloads (k >= 3).
PreprocessResult PreprocessForKCliques(const Graph& g,
                                       const PreprocessOptions& options);

}  // namespace dkc

#endif  // DKC_GRAPH_PREPROCESS_H_
