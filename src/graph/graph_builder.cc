#include "graph/graph_builder.h"

#include <algorithm>

namespace dkc {

GraphBuilder::GraphBuilder(NodeId num_nodes_hint) {
  num_nodes_ = num_nodes_hint;
  edges_.reserve(static_cast<size_t>(num_nodes_hint) * 4);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  if (v + 1 > num_nodes_) num_nodes_ = v + 1;
}

void GraphBuilder::EnsureNode(NodeId n) {
  if (n + 1 > num_nodes_) num_nodes_ = n + 1;
}

Graph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<Count> offsets(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<NodeId> neighbors(edges_.size() * 2);
  std::vector<Count> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges_) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  // Edges were sorted by (min, max) endpoint, which does NOT leave each CSR
  // range sorted (the v-side insertions arrive in u order). Sort each range.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    std::sort(neighbors.begin() + static_cast<ptrdiff_t>(offsets[u]),
              neighbors.begin() + static_cast<ptrdiff_t>(offsets[u + 1]));
  }

  edges_.clear();
  edges_.shrink_to_fit();
  NodeId n = num_nodes_;
  num_nodes_ = 0;
  (void)n;
  return Graph(std::move(offsets), std::move(neighbors));
}

}  // namespace dkc
