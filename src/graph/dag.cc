#include "graph/dag.h"

#include <algorithm>

namespace dkc {

Dag::Dag(const Graph& g, Ordering ordering) : ordering_(std::move(ordering)) {
  const NodeId n = g.num_nodes();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    Count out_deg = 0;
    for (NodeId v : g.Neighbors(u)) {
      if (ordering_.rank[v] < ordering_.rank[u]) ++out_deg;
    }
    offsets_[u + 1] = out_deg;
    max_out_degree_ = std::max(max_out_degree_, out_deg);
  }
  for (NodeId u = 0; u < n; ++u) offsets_[u + 1] += offsets_[u];

  out_.resize(offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    Count cursor = offsets_[u];
    // Graph neighbor lists are sorted by id, and we filter in order, so each
    // out-list is already sorted by id; no per-node re-sort needed.
    for (NodeId v : g.Neighbors(u)) {
      if (ordering_.rank[v] < ordering_.rank[u]) out_[cursor++] = v;
    }
  }
}

void Dag::InducedOutNeighborhood(NodeId u, const uint8_t* valid,
                                 std::vector<NodeId>* out) const {
  for (NodeId v : OutNeighbors(u)) {
    if (valid == nullptr || valid[v] != 0) out->push_back(v);
  }
}

}  // namespace dkc
