// Mutable undirected graph supporting edge insertion and deletion.
//
// Section V of the paper maintains the disjoint k-clique set under a stream
// of edge updates. The dynamic engine needs adjacency queries, neighbor
// iteration, and O(d) edge updates on the *current* graph, so adjacency is
// kept as per-node sorted vectors (cache-friendlier and leaner than hash
// sets at social-network degrees).

#ifndef DKC_GRAPH_DYNAMIC_GRAPH_H_
#define DKC_GRAPH_DYNAMIC_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dkc {

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Start from a static snapshot.
  explicit DynamicGraph(const Graph& g);

  /// An empty graph over `n` nodes.
  explicit DynamicGraph(NodeId n) : adj_(n) {}

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  Count num_edges() const { return num_edges_; }

  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adj_[u].data(), adj_[u].size()};
  }
  Count Degree(NodeId u) const { return adj_[u].size(); }
  bool HasEdge(NodeId u, NodeId v) const;

  /// Insert (u,v). Returns false if the edge already exists or u == v.
  /// Grows the node set if an endpoint is out of range.
  bool InsertEdge(NodeId u, NodeId v);

  /// Delete (u,v). Returns false if the edge does not exist.
  bool DeleteEdge(NodeId u, NodeId v);

  /// Immutable CSR snapshot of the current state.
  Graph ToGraph() const;

  int64_t MemoryBytes() const;

 private:
  std::vector<std::vector<NodeId>> adj_;  // each sorted ascending
  Count num_edges_ = 0;
};

}  // namespace dkc

#endif  // DKC_GRAPH_DYNAMIC_GRAPH_H_
