// Directed acyclic orientation of a Graph along a total node ordering.
//
// Following the k-clique listing literature (Section III of the paper), an
// undirected graph plus a total ordering pi induces a DAG where each edge
// points from the higher-ranked endpoint to the lower-ranked one, i.e. the
// out-neighbors N+(u) of u are exactly its neighbors that precede u in pi.
// Every k-clique then appears exactly once as {u} ∪ (a (k-1)-clique inside
// N+(u)) with u the clique's highest-ranked node, which is the property all
// solvers in this library rely on.

#ifndef DKC_GRAPH_DAG_H_
#define DKC_GRAPH_DAG_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/ordering.h"

namespace dkc {

class Dag {
 public:
  Dag() = default;

  /// Orients `g` along `ordering`. Out-neighbor lists are sorted by node id
  /// so clique recursions can intersect them with two-pointer merges.
  Dag(const Graph& g, Ordering ordering);

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Out-neighbors (lower-ranked neighbors) of `u`, sorted by node id.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_.data() + offsets_[u], out_.data() + offsets_[u + 1]};
  }

  Count OutDegree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  Count MaxOutDegree() const { return max_out_degree_; }

  /// rank[v] = position of v in the orientation order.
  const Ordering& ordering() const { return ordering_; }

  /// True iff rank(u) > rank(v), i.e. the edge (u,v) would point u -> v.
  bool Precedes(NodeId v, NodeId u) const {
    return ordering_.rank[v] < ordering_.rank[u];
  }

  /// Appends to `out` the out-neighbors of `u` with non-zero `valid` (all
  /// of them when `valid` is null), in ascending node-id order: the
  /// universe a per-root NeighborhoodKernel is built over.
  void InducedOutNeighborhood(NodeId u, const uint8_t* valid,
                              std::vector<NodeId>* out) const;

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(offsets_.capacity() * sizeof(Count) +
                                out_.capacity() * sizeof(NodeId) +
                                ordering_.rank.capacity() * sizeof(NodeId) +
                                ordering_.nodes.capacity() * sizeof(NodeId));
  }

 private:
  std::vector<Count> offsets_;
  std::vector<NodeId> out_;
  Ordering ordering_;
  Count max_out_degree_ = 0;
};

}  // namespace dkc

#endif  // DKC_GRAPH_DAG_H_
