#include "graph/graph.h"

#include <algorithm>

namespace dkc {

Count Graph::MaxDegree() const {
  Count best = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) best = std::max(best, Degree(u));
  return best;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u >= num_nodes() || v >= num_nodes()) return false;
  // Search the shorter list: worst-case degree skew is extreme in social
  // graphs and this halves the expected probe cost.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace dkc
