// Mutable accumulator that turns an arbitrary edge stream into a clean CSR
// Graph: deduplicates parallel edges, drops self loops, and sorts adjacency
// lists. Raw real-world edge lists (KONECT/SNAP dumps) contain all of these
// defects, so every loader and generator funnels through this class.

#ifndef DKC_GRAPH_GRAPH_BUILDER_H_
#define DKC_GRAPH_GRAPH_BUILDER_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dkc {

class GraphBuilder {
 public:
  /// `num_nodes_hint` preallocates; node count still grows automatically to
  /// max node id + 1.
  explicit GraphBuilder(NodeId num_nodes_hint = 0);

  /// Record an undirected edge. Self loops are silently dropped; duplicates
  /// are removed at Build() time.
  void AddEdge(NodeId u, NodeId v);

  /// Ensure the final graph has at least `n` nodes (possibly isolated).
  void EnsureNode(NodeId n);

  size_t num_pending_edges() const { return edges_.size(); }

  /// Produce the immutable CSR graph. The builder is left empty.
  Graph Build();

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace dkc

#endif  // DKC_GRAPH_GRAPH_BUILDER_H_
