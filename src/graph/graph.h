// Immutable undirected graph in CSR (compressed sparse row) form.
//
// This is the substrate every static algorithm in the library runs on:
// sorted neighbor lists give O(log d) adjacency tests and linear-time merge
// intersections, and the flat arrays keep the cache behaviour predictable on
// the multi-million-edge inputs the paper targets.

#ifndef DKC_GRAPH_GRAPH_H_
#define DKC_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dkc {

/// Node identifier: dense, zero-based. 32 bits covers the paper's largest
/// dataset (LiveJournal, 5.2M nodes) with room to spare.
using NodeId = uint32_t;

/// Edge count / clique count type. Clique counts reach 7.5e10 in Table I, so
/// 64 bits are mandatory.
using Count = uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected simple graph (no self loops, no parallel edges) in CSR form.
/// Construct via GraphBuilder; instances are immutable afterwards.
class Graph {
 public:
  Graph() = default;

  /// Takes ownership of prebuilt CSR arrays. `offsets` has n+1 entries,
  /// `neighbors` has 2m entries, and each adjacency range must be sorted and
  /// duplicate-free. GraphBuilder is the supported way to get these right.
  Graph(std::vector<Count> offsets, std::vector<NodeId> neighbors)
      : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {}

  NodeId num_nodes() const {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  Count num_edges() const { return neighbors_.size() / 2; }

  /// Sorted neighbors of `u`.
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  Count Degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }

  /// Maximum degree over all nodes (0 for the empty graph).
  Count MaxDegree() const;

  /// O(log d) adjacency test by binary search on the sorted neighbor list.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Bytes held by the CSR arrays (used for Table III accounting).
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(offsets_.capacity() * sizeof(Count) +
                                neighbors_.capacity() * sizeof(NodeId));
  }

 private:
  std::vector<Count> offsets_;    // n+1 prefix offsets into neighbors_
  std::vector<NodeId> neighbors_; // concatenated sorted adjacency lists
};

}  // namespace dkc

#endif  // DKC_GRAPH_GRAPH_H_
