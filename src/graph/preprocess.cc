#include "graph/preprocess.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {
namespace {

// One (k-1)-core peel pass over the node-id range [lo, hi): seeds the local
// queue with in-range nodes below `threshold` and cascades, but only
// decrements in-range neighbors. Out-of-range neighbors of dead nodes are
// buffered into `remote` (one entry per dead-node arc) for the caller to
// apply later. With [0, n) and no remote buffer this IS the serial cascade.
void PeelRange(const Graph& g, Count threshold, NodeId lo, NodeId hi,
               std::vector<Count>& degree, std::vector<uint8_t>& alive,
               std::vector<NodeId>* remote) {
  std::vector<NodeId> queue;
  for (NodeId u = lo; u < hi; ++u) {
    degree[u] = g.Degree(u);
    if (degree[u] < threshold) {
      alive[u] = 0;
      queue.push_back(u);
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (NodeId v : g.Neighbors(u)) {
      if (v < lo || v >= hi) {
        if (remote != nullptr) remote->push_back(v);
        continue;
      }
      if (alive[v] != 0 && --degree[v] < threshold) {
        alive[v] = 0;
        queue.push_back(v);
      }
    }
  }
}

// Stage-1 peel driver: computes the (k-1)-core alive set, fanning out over
// contiguous node-id ranges when a pool is given (each range touches only
// its own degree/alive slice — disjoint writes), then applying the buffered
// cross-range decrements and cascading globally to the fixpoint. The peel
// is confluent — the (k-1)-core is unique and removal order never changes
// which nodes can be driven below the threshold — so both paths produce the
// identical alive set (preprocess_test asserts this per instance).
void PeelLowDegree(const Graph& g, Count threshold, ThreadPool* pool,
                   NodeId parallel_min_nodes, std::vector<uint8_t>* alive_out) {
  const NodeId n = g.num_nodes();
  std::vector<uint8_t>& alive = *alive_out;
  std::vector<Count> degree(n, 0);
  const size_t workers = pool == nullptr ? 0 : pool->num_threads();
  if (workers <= 1 || n < parallel_min_nodes) {
    PeelRange(g, threshold, 0, n, degree, alive, nullptr);
    return;
  }
  const size_t ranges = workers;
  std::vector<std::vector<NodeId>> remote(ranges);
  for (size_t r = 0; r < ranges; ++r) {
    pool->Submit([&, r] {
      const NodeId lo = static_cast<NodeId>(r * static_cast<size_t>(n) / ranges);
      const NodeId hi =
          static_cast<NodeId>((r + 1) * static_cast<size_t>(n) / ranges);
      PeelRange(g, threshold, lo, hi, degree, alive, &remote[r]);
    });
  }
  pool->Wait();
  // Serial merge: each dead node's cross-range arcs were buffered exactly
  // once, so replaying them plus a global cascade lands on the fixpoint.
  std::vector<NodeId> queue;
  for (const std::vector<NodeId>& buffered : remote) {
    for (NodeId v : buffered) {
      if (alive[v] != 0 && --degree[v] < threshold) {
        alive[v] = 0;
        queue.push_back(v);
      }
    }
  }
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    for (NodeId v : g.Neighbors(u)) {
      if (alive[v] != 0 && --degree[v] < threshold) {
        alive[v] = 0;
        queue.push_back(v);
      }
    }
  }
}

// Per-arc undirected edge ids over the original CSR: arc p (the i-th
// neighbor entry of u) maps to the id of the undirected edge {u, v}, shared
// with the mirrored arc. Ids are assigned in ascending (min endpoint,
// max endpoint) order.
struct EdgeIndex {
  std::vector<Count> arc_offset;                // n+1 prefix offsets
  std::vector<Count> edge_of_arc;               // 2m entries
  std::vector<std::pair<NodeId, NodeId>> ends;  // per edge id, u < v

  explicit EdgeIndex(const Graph& g) {
    const NodeId n = g.num_nodes();
    arc_offset.assign(n + 1, 0);
    for (NodeId u = 0; u < n; ++u) {
      arc_offset[u + 1] = arc_offset[u] + g.Degree(u);
    }
    edge_of_arc.assign(arc_offset[n], 0);
    ends.reserve(g.num_edges());
    // Mirror resolution in O(m): as u ascends, the mirrored arc (v, u) for
    // each v < u sits ever deeper in v's sorted row, so one monotone
    // cursor per node finds every mirror without searching.
    std::vector<Count> cursor(arc_offset.begin(), arc_offset.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      const auto neighbors = g.Neighbors(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const NodeId v = neighbors[i];
        if (u < v) {
          edge_of_arc[arc_offset[u] + i] = ends.size();
          ends.emplace_back(u, v);
        } else {
          const auto row = g.Neighbors(v);
          while (row[cursor[v] - arc_offset[v]] != u) ++cursor[v];
          edge_of_arc[arc_offset[u] + i] = edge_of_arc[cursor[v]];
          ++cursor[v];
        }
      }
    }
  }

};

// The peel/support fixpoint. Triangle supports are counted by orienting
// the alive subgraph along the original degeneracy order and intersecting
// sorted out-lists (each triangle found exactly once, with the edge ids of
// all three sides carried by the arc positions — no searching). Removals
// then cascade in whichever of two regimes is cheaper:
//
//   * incremental — when few edges are doomed (dense, clique-rich inputs):
//     each removal walks N(u) ∩ N(v) once and decrements the supports of
//     its surviving triangle partners, the classical k-truss cascade;
//   * mass + recount — when most alive edges are doomed at once (sparse,
//     triangle-poor inputs): decrementing through a graveyard costs more
//     than recounting, so the doomed set is dropped wholesale and supports
//     are recounted on what is left.
//
// The fixpoint is confluent — each rule only removes elements whose
// condition can never recover — so the regime choice (and any processing
// order) cannot change the surviving graph, only the time to reach it.
class PruneState {
 public:
  /// `rank` gives each node's position in the ORIGINAL graph's degeneracy
  /// order (only comparisons are used); restricting that order to the
  /// alive subgraph keeps every out-degree bounded by the original
  /// degeneracy, so it serves as the count orientation in every round
  /// without re-peeling.
  PruneState(const Graph& g, const EdgeIndex& edges, int k,
             const std::vector<NodeId>& rank, PreprocessStats* stats)
      : g_(g),
        edges_(edges),
        k_(k),
        rank_(rank),
        stats_(stats),
        node_alive_(g.num_nodes(), 1),
        edge_alive_(g.num_edges(), 1),
        node_queued_(g.num_nodes(), 0),
        edge_queued_(g.num_edges(), 0),
        degree_(g.num_nodes(), 0),
        alive_edges_(g.num_edges()) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) degree_[u] = g.Degree(u);
  }

  bool NodeAlive(NodeId u) const { return node_alive_[u] != 0; }
  bool EdgeAlive(Count e) const { return edge_alive_[e] != 0; }

  void Run() {
    const Count node_threshold = static_cast<Count>(k_) - 1;
    const Count support_threshold = static_cast<Count>(k_) - 2;
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      if (degree_[u] < node_threshold) EnqueueNode(u);
    }
    // The initial (k-1)-core cascade runs before supports exist — pure
    // degree bookkeeping, no triangle walks.
    DrainNodes();
    for (;;) {
      if (alive_edges_ == 0) {
        if (stats_->rounds == 0) ++stats_->rounds;
        break;
      }
      // One exact triangle count over the alive subgraph seeds (or
      // re-seeds) the doomed-edge worklist. rounds counts these passes.
      ++stats_->rounds;
      CountSupports();
      for (Count e = 0; e < edge_alive_.size(); ++e) {
        if (edge_alive_[e] != 0 && support_[e] < support_threshold) {
          EnqueueEdge(e);
        }
      }
      if (edge_queue_.empty()) break;  // fixpoint certified
      if (edge_queue_.size() * 4 > alive_edges_) {
        // Mass regime: most of what is alive dies right now. Drop it all
        // without per-removal walks (supports go stale), re-peel, recount.
        support_valid_ = false;
        DrainEdges();
        DrainNodes();
        std::fill(edge_queued_.begin(), edge_queued_.end(), 0);
        continue;
      }
      // Incremental regime: exact support maintenance drives the cascade
      // to the fixpoint in one pass — no further recount needed.
      while (!edge_queue_.empty() || !node_queue_.empty()) {
        DrainEdges();
        DrainNodes();
      }
      break;
    }
  }

 private:
  void EnqueueNode(NodeId u) {
    if (node_queued_[u] == 0 && node_alive_[u] != 0) {
      node_queued_[u] = 1;
      node_queue_.push_back(u);
    }
  }

  void EnqueueEdge(Count e) {
    if (edge_queued_[e] == 0 && edge_alive_[e] != 0) {
      edge_queued_[e] = 1;
      edge_queue_.push_back(e);
    }
  }

  // Removes edge `e` (must be alive): degrees drop on both ends (possibly
  // enqueueing peels) and — while supports are being maintained exactly —
  // each surviving triangle through `e` loses one support on its two other
  // edges.
  void RemoveEdge(Count e, bool peeled) {
    edge_alive_[e] = 0;
    --alive_edges_;
    if (peeled) {
      ++stats_->peeled_edges;
    } else {
      ++stats_->unsupported_edges;
    }
    const auto [u, v] = edges_.ends[e];
    const Count node_threshold = static_cast<Count>(k_) - 1;
    for (NodeId x : {u, v}) {
      if (node_alive_[x] != 0 && --degree_[x] < node_threshold) {
        EnqueueNode(x);
      }
    }
    if (!support_valid_) return;
    // Alive common neighbors of (u, v) via a two-pointer walk over the
    // original sorted rows, skipping dead arcs; tracking the arc positions
    // yields the edge ids of both triangle partners with no searching.
    const Count support_threshold = static_cast<Count>(k_) - 2;
    const auto un = g_.Neighbors(u);
    const auto vn = g_.Neighbors(v);
    const Count* u_eids = edges_.edge_of_arc.data() + edges_.arc_offset[u];
    const Count* v_eids = edges_.edge_of_arc.data() + edges_.arc_offset[v];
    size_t i = 0, j = 0;
    while (i < un.size() && j < vn.size()) {
      if (un[i] < vn[j]) {
        ++i;
      } else if (un[i] > vn[j]) {
        ++j;
      } else {
        const Count uw = u_eids[i];
        const Count vw = v_eids[j];
        if (edge_alive_[uw] != 0 && edge_alive_[vw] != 0) {
          if (--support_[uw] < support_threshold) EnqueueEdge(uw);
          if (--support_[vw] < support_threshold) EnqueueEdge(vw);
        }
        ++i;
        ++j;
      }
    }
  }

  void DrainNodes() {
    while (!node_queue_.empty()) {
      const NodeId u = node_queue_.back();
      node_queue_.pop_back();
      if (node_alive_[u] == 0) continue;
      node_alive_[u] = 0;
      ++stats_->peeled_nodes;
      const auto neighbors = g_.Neighbors(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const Count e = edges_.edge_of_arc[edges_.arc_offset[u] + i];
        if (edge_alive_[e] != 0) RemoveEdge(e, /*peeled=*/true);
      }
      degree_[u] = 0;
    }
  }

  void DrainEdges() {
    while (!edge_queue_.empty()) {
      const Count e = edge_queue_.back();
      edge_queue_.pop_back();
      if (edge_alive_[e] != 0) RemoveEdge(e, /*peeled=*/false);
    }
  }

  // Exact triangle supports of the alive subgraph: orient each alive edge
  // toward lower original-degeneracy rank, keep per-node out-lists as
  // (neighbor, edge id) pairs — sorted by node id, being subsequences of
  // the original sorted rows — and intersect out(u) with out(v) for every
  // directed edge u->v. Each triangle {u,v,w} surfaces exactly once, and
  // the match positions carry the edge ids of all three sides.
  void CountSupports() {
    const NodeId n = g_.num_nodes();
    const std::vector<NodeId>& rank = rank_;
    out_off_.assign(n + 1, 0);
    out_nbr_.clear();
    out_eid_.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (node_alive_[u] != 0) {
        const auto row = g_.Neighbors(u);
        const Count* eids = edges_.edge_of_arc.data() + edges_.arc_offset[u];
        for (size_t i = 0; i < row.size(); ++i) {
          if (edge_alive_[eids[i]] != 0 && rank[row[i]] < rank[u]) {
            out_nbr_.push_back(row[i]);
            out_eid_.push_back(eids[i]);
          }
        }
      }
      out_off_[u + 1] = out_nbr_.size();
    }
    support_.assign(g_.num_edges(), 0);
    for (NodeId u = 0; u < n; ++u) {
      for (Count a = out_off_[u]; a < out_off_[u + 1]; ++a) {
        const NodeId v = out_nbr_[a];
        Count i = out_off_[u];
        Count j = out_off_[v];
        const Count i_end = out_off_[u + 1];
        const Count j_end = out_off_[v + 1];
        Count triangles = 0;
        while (i < i_end && j < j_end) {
          if (out_nbr_[i] < out_nbr_[j]) {
            ++i;
          } else if (out_nbr_[i] > out_nbr_[j]) {
            ++j;
          } else {
            ++support_[out_eid_[i]];
            ++support_[out_eid_[j]];
            ++triangles;
            ++i;
            ++j;
          }
        }
        support_[out_eid_[a]] += triangles;
      }
    }
    support_valid_ = true;
  }

  const Graph& g_;
  const EdgeIndex& edges_;
  const int k_;
  const std::vector<NodeId>& rank_;
  PreprocessStats* stats_;
  std::vector<uint8_t> node_alive_;
  std::vector<uint8_t> edge_alive_;
  std::vector<uint8_t> node_queued_;
  std::vector<uint8_t> edge_queued_;
  std::vector<Count> degree_;
  std::vector<Count> support_;
  Count alive_edges_ = 0;
  bool support_valid_ = false;
  std::vector<NodeId> node_queue_;
  std::vector<Count> edge_queue_;
  std::vector<Count> out_off_;   // CountSupports scratch
  std::vector<NodeId> out_nbr_;
  std::vector<Count> out_eid_;
};

}  // namespace

PreprocessResult PreprocessForKCliques(const Graph& g,
                                       const PreprocessOptions& options) {
  Timer timer;
  PreprocessResult result;
  PreprocessStats& stats = result.stats;
  const NodeId n = g.num_nodes();
  stats.nodes_before = n;
  stats.edges_before = g.num_edges();

  if (options.k < 3) {
    // k < 3 has no meaningful prune rules (the library's solvers reject it
    // anyway); pass the graph through with an identity remap.
    std::vector<Count> offsets(n + 1, 0);
    std::vector<NodeId> neighbors;
    result.new_to_old.resize(n);
    result.old_to_new.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      result.new_to_old[u] = u;
      result.old_to_new[u] = u;
      const auto row = g.Neighbors(u);
      neighbors.insert(neighbors.end(), row.begin(), row.end());
      offsets[u + 1] = neighbors.size();
    }
    result.pruned = Graph(std::move(offsets), std::move(neighbors));
    result.orientation = DegeneracyOrdering(result.pruned);
    stats.nodes_after = n;
    stats.edges_after = g.num_edges();
    stats.rounds = 0;
    stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

  // Default mode needs the full graph's degeneracy order (the support
  // counts orient by it and the survivors inherit its restriction).
  // Reorder mode skips it — orders are recomputed on the shrunk graphs,
  // which is the whole point of that mode.
  Ordering original;
  if (!options.reorder) original = DegeneracyOrdering(g);

  // Stage 1 — pure degree peel, no edge index: one O(n + m) cascade that
  // removes the low-degree periphery sparse real graphs are mostly made
  // of. Everything edge-indexed (the support machinery) then runs on the
  // compacted core only, which is what makes preprocessing cheaper than
  // the passes it saves even when the core is tiny.
  std::vector<uint8_t> alive(n, 1);
  PeelLowDegree(g, static_cast<Count>(options.k) - 1, options.pool,
                options.parallel_peel_min_nodes, &alive);
  // Order-independent accounting over the finished alive set (shared by the
  // serial and partitioned peels): a dead-dead edge is attributed to its
  // lower endpoint, a dead-alive edge to its dead one — each dying edge
  // counted exactly once, no matter which cascade order killed it.
  for (NodeId u = 0; u < n; ++u) {
    if (alive[u] != 0) continue;
    ++stats.peeled_nodes;
    for (NodeId v : g.Neighbors(u)) {
      if (alive[v] != 0 || u < v) ++stats.peeled_edges;
    }
  }

  // Compact the stage-1 survivors into the core graph (skipped entirely
  // when nothing was peeled), carrying the original ids and the restricted
  // degeneracy ranks along.
  Graph core_storage;
  const Graph* core = &g;
  std::vector<NodeId> core_to_orig;
  std::vector<NodeId> core_rank;
  if (stats.peeled_nodes > 0) {
    std::vector<NodeId> orig_to_core(n, kInvalidNode);
    for (NodeId u = 0; u < n; ++u) {
      if (alive[u] != 0) {
        orig_to_core[u] = static_cast<NodeId>(core_to_orig.size());
        core_to_orig.push_back(u);
      }
    }
    const NodeId core_n = static_cast<NodeId>(core_to_orig.size());
    std::vector<Count> offsets(core_n + 1, 0);
    std::vector<NodeId> neighbors;
    if (!options.reorder) core_rank.resize(core_n);
    for (NodeId cu = 0; cu < core_n; ++cu) {
      const NodeId u = core_to_orig[cu];
      if (!options.reorder) core_rank[cu] = original.rank[u];
      for (NodeId v : g.Neighbors(u)) {
        if (alive[v] != 0) neighbors.push_back(orig_to_core[v]);
      }
      offsets[cu + 1] = neighbors.size();
    }
    core_storage = Graph(std::move(offsets), std::move(neighbors));
    core = &core_storage;
  } else {
    core_to_orig.resize(n);
    for (NodeId u = 0; u < n; ++u) core_to_orig[u] = u;
    if (!options.reorder) core_rank = original.rank;
  }
  // Reorder mode orients the support counts by the core's own degeneracy
  // order (also the pruned graph's orientation when stage 2 is a no-op).
  Ordering core_order;
  if (options.reorder) {
    core_order = DegeneracyOrdering(*core);
    core_rank = core_order.rank;
  }

  // Stage 2 — triangle-support machinery (plus any peels it re-enables)
  // on the core.
  const NodeId stage1_peeled = stats.peeled_nodes;
  const EdgeIndex edges(*core);
  PruneState prune(*core, edges, options.k, core_rank, &stats);
  prune.Run();

  // Compact CSR with the ascending (order-preserving) remap: both remap
  // stages are monotone in the original ids, so their composition is too,
  // and every row stays sorted. An alive edge implies both endpoints
  // alive (peeling removes incident edges). When stage 2 removed nothing
  // — the common sparse-social outcome, where the degree peel did all the
  // work — the core IS the pruned graph; don't rebuild it.
  if (stats.peeled_nodes == stage1_peeled && stats.unsupported_edges == 0) {
    result.pruned = core == &core_storage ? std::move(core_storage) : g;
    result.new_to_old = std::move(core_to_orig);
    result.old_to_new.assign(n, kInvalidNode);
    for (NodeId pu = 0; pu < result.new_to_old.size(); ++pu) {
      result.old_to_new[result.new_to_old[pu]] = pu;
    }
  } else {
    result.old_to_new.assign(n, kInvalidNode);
    std::vector<NodeId> core_to_final(core->num_nodes(), kInvalidNode);
    for (NodeId cu = 0; cu < core->num_nodes(); ++cu) {
      if (prune.NodeAlive(cu)) {
        const NodeId final_id = static_cast<NodeId>(result.new_to_old.size());
        core_to_final[cu] = final_id;
        result.old_to_new[core_to_orig[cu]] = final_id;
        result.new_to_old.push_back(core_to_orig[cu]);
      }
    }
    const NodeId pruned_n = static_cast<NodeId>(result.new_to_old.size());
    std::vector<Count> offsets(pruned_n + 1, 0);
    std::vector<NodeId> neighbors;
    NodeId pu = 0;
    for (NodeId cu = 0; cu < core->num_nodes(); ++cu) {
      if (core_to_final[cu] == kInvalidNode) continue;
      const auto row = core->Neighbors(cu);
      for (size_t i = 0; i < row.size(); ++i) {
        if (prune.EdgeAlive(edges.edge_of_arc[edges.arc_offset[cu] + i])) {
          neighbors.push_back(core_to_final[row[i]]);
        }
      }
      offsets[++pu] = neighbors.size();
    }
    result.pruned = Graph(std::move(offsets), std::move(neighbors));
  }
  stats.nodes_after = result.pruned.num_nodes();
  stats.edges_after = result.pruned.num_edges();

  if (options.reorder) {
    stats.reordered = true;
    // When stage 2 removed nothing the pruned graph IS the core, whose
    // order was just computed; otherwise recompute on the (small) result.
    result.orientation =
        stats.peeled_nodes == stage1_peeled && stats.unsupported_edges == 0
            ? std::move(core_order)
            : DegeneracyOrdering(result.pruned);
  } else {
    // The original degeneracy order restricted to the survivors: pairwise
    // rank comparisons among surviving nodes — and hence the DAG
    // orientation and every DFS tie-break — match the unpruned run.
    result.orientation.nodes.reserve(stats.nodes_after);
    result.orientation.rank.assign(stats.nodes_after, 0);
    for (NodeId id : original.nodes) {
      const NodeId mapped = result.old_to_new[id];
      if (mapped == kInvalidNode) continue;
      result.orientation.rank[mapped] =
          static_cast<NodeId>(result.orientation.nodes.size());
      result.orientation.nodes.push_back(mapped);
    }
  }

  stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace dkc
