// Total node orderings.
//
// Every algorithm in the paper is parameterized by a total ordering pi on V:
// the k-clique listing kernel orients edges along it (Section III), the basic
// framework processes nodes in ascending pi (Algorithm 1), and the
// lightweight solver orders nodes by node score (Algorithm 3, line 3).
//
// An Ordering holds both directions of the permutation:
//   rank[v]  = position of node v in the order (pi(v))
//   nodes[i] = the node at position i (pi^-1(i))

#ifndef DKC_GRAPH_ORDERING_H_
#define DKC_GRAPH_ORDERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dkc {

struct Ordering {
  std::vector<NodeId> rank;   // rank[v] in [0, n)
  std::vector<NodeId> nodes;  // inverse permutation

  NodeId size() const { return static_cast<NodeId>(rank.size()); }
};

/// Identity ordering: pi(v) = v.
Ordering IdentityOrdering(NodeId n);

/// Ascending-degree ordering; ties broken by node id. Used as the listing
/// DAG orientation in the straightforward baselines.
Ordering DegreeOrdering(const Graph& g);

/// Degeneracy (k-core) ordering via the Matula–Beck peeling algorithm:
/// repeatedly remove a minimum-degree node. Linear time. This is the
/// standard kClist orientation [13]: the DAG out-degree is bounded by the
/// graph's degeneracy, which is what makes k-clique listing tractable on
/// social networks.
Ordering DegeneracyOrdering(const Graph& g);

/// Degeneracy of the graph (max min-degree over the peeling sequence).
/// Computed alongside DegeneracyOrdering; exposed for stats/tests.
Count Degeneracy(const Graph& g);

/// Ordering by an arbitrary per-node key, ascending; ties broken by node id.
/// Algorithm 3 uses this with key = node score s_n.
Ordering OrderByKeyAscending(const std::vector<Count>& key);

}  // namespace dkc

#endif  // DKC_GRAPH_ORDERING_H_
