#include "graph/ordering.h"

#include <algorithm>
#include <numeric>

namespace dkc {
namespace {

Ordering FromNodeSequence(std::vector<NodeId> nodes) {
  Ordering o;
  o.rank.assign(nodes.size(), 0);
  for (NodeId i = 0; i < nodes.size(); ++i) o.rank[nodes[i]] = i;
  o.nodes = std::move(nodes);
  return o;
}

// Matula–Beck bucket peeling. Returns the peel sequence and reports the
// degeneracy through `degeneracy_out` when non-null.
std::vector<NodeId> PeelSequence(const Graph& g, Count* degeneracy_out) {
  const NodeId n = g.num_nodes();
  std::vector<Count> deg(n);
  Count max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    max_deg = std::max(max_deg, deg[u]);
  }

  // Bucket queue: nodes grouped by current degree, with per-node positions so
  // a degree decrement is an O(1) swap.
  std::vector<NodeId> bucket_start(max_deg + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bucket_start[deg[u] + 1];
  for (size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);       // nodes grouped by degree
  std::vector<NodeId> pos(n);         // position of node in `order`
  {
    std::vector<NodeId> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[deg[u]];
      order[pos[u]] = u;
      ++cursor[deg[u]];
    }
  }

  std::vector<bool> removed(n, false);
  std::vector<NodeId> seq;
  seq.reserve(n);
  Count degeneracy = 0;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = order[i];
    removed[u] = true;
    degeneracy = std::max(degeneracy, deg[u]);
    seq.push_back(u);
    for (NodeId v : g.Neighbors(u)) {
      if (removed[v] || deg[v] <= deg[u]) continue;
      // Move v to the front of its bucket, then shrink the bucket by one.
      const Count dv = deg[v];
      const NodeId front = bucket_start[dv] > i + 1
                               ? bucket_start[dv]
                               : static_cast<NodeId>(i + 1);
      const NodeId w = order[front];
      std::swap(order[pos[v]], order[front]);
      std::swap(pos[v], pos[w]);
      bucket_start[dv] = front + 1;
      --deg[v];
    }
  }
  if (degeneracy_out != nullptr) *degeneracy_out = degeneracy;
  return seq;
}

}  // namespace

Ordering IdentityOrdering(NodeId n) {
  std::vector<NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0);
  return FromNodeSequence(std::move(nodes));
}

Ordering DegreeOrdering(const Graph& g) {
  std::vector<Count> key(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) key[u] = g.Degree(u);
  return OrderByKeyAscending(key);
}

Ordering DegeneracyOrdering(const Graph& g) {
  // Reverse of the peel sequence: a node's lower-ranked neighbors are the
  // ones peeled *after* it, and there are at most `degeneracy` of those.
  // Dag orients edges toward lower rank, so this caps DAG out-degrees by
  // the degeneracy — the property kClist's complexity bound needs.
  std::vector<NodeId> seq = PeelSequence(g, nullptr);
  std::reverse(seq.begin(), seq.end());
  return FromNodeSequence(std::move(seq));
}

Count Degeneracy(const Graph& g) {
  Count d = 0;
  if (g.num_nodes() > 0) PeelSequence(g, &d);
  return d;
}

Ordering OrderByKeyAscending(const std::vector<Count>& key) {
  std::vector<NodeId> nodes(key.size());
  std::iota(nodes.begin(), nodes.end(), 0);
  std::stable_sort(nodes.begin(), nodes.end(), [&key](NodeId a, NodeId b) {
    if (key[a] != key[b]) return key[a] < key[b];
    return a < b;
  });
  return FromNodeSequence(std::move(nodes));
}

}  // namespace dkc
