// Greedy minimum-degree independent set.
//
// This is the classic heuristic the paper's Section IV-B recalls ("iteratively
// adds the minimum-degree node ... while removing the selected node and its
// neighbors"): the clique-score ordering of Algorithm 2 approximates exactly
// this process on the clique graph without building it. We implement the real
// thing as (a) a baseline, (b) the lower-bound seed for the exact solver.

#ifndef DKC_MIS_GREEDY_MIS_H_
#define DKC_MIS_GREEDY_MIS_H_

#include <cstdint>
#include <vector>

#include "util/timer.h"

namespace dkc {

/// Vertices of a maximal independent set, chosen by repeatedly taking a
/// minimum-current-degree vertex. `adj` lists must be symmetric and
/// self-loop-free. Runs in O((n + m) log n).
///
/// If `deadline` expires mid-run the greedy returns what it has so far (an
/// independent but possibly non-maximal set) and sets `*expired` when
/// provided — clique graphs reach hundreds of millions of edges, and the
/// exact-MIS seeding must not blow through the paper's OOT budgets.
std::vector<uint32_t> GreedyMinDegreeMis(
    const std::vector<std::vector<uint32_t>>& adj,
    const Deadline& deadline = Deadline::Unlimited(),
    bool* expired = nullptr);

}  // namespace dkc

#endif  // DKC_MIS_GREEDY_MIS_H_
