#include "mis/exact_mis.h"

#include <algorithm>

#include "mis/greedy_mis.h"

namespace dkc {
namespace {

class Solver {
 public:
  Solver(const std::vector<std::vector<uint32_t>>& adj,
         const Deadline& deadline, uint32_t upper_bound)
      : adj_(adj),
        deadline_(deadline),
        upper_bound_(upper_bound),
        n_(static_cast<uint32_t>(adj.size())) {
    state_.assign(n_, kFree);
    degree_.resize(n_);
    for (uint32_t v = 0; v < n_; ++v) {
      degree_[v] = static_cast<uint32_t>(adj_[v].size());
    }
    // Static degree-descending order for the clique-cover bound: packing
    // dense vertices first yields far fewer cover cliques (a much tighter
    // bound) than id order.
    cover_order_.resize(n_);
    for (uint32_t v = 0; v < n_; ++v) cover_order_[v] = v;
    std::sort(cover_order_.begin(), cover_order_.end(),
              [&](uint32_t a, uint32_t b) { return degree_[a] > degree_[b]; });
  }

  StatusOr<ExactMisResult> Run() {
    ExactMisResult result;
    bool seed_expired = false;
    best_ = GreedyMinDegreeMis(adj_, deadline_, &seed_expired);
    if (seed_expired) return Status::TimeBudgetExceeded("exact MIS seeding");
    if (best_.size() < upper_bound_) Recurse();
    if (oot_) return Status::TimeBudgetExceeded("exact MIS search");
    result.vertices = best_;
    result.branch_nodes = branch_nodes_;
    return result;
  }

 private:
  enum : uint8_t { kFree, kTaken, kRemoved };

  // A trail entry: vertex whose state flipped away from kFree. Degrees of
  // free neighbors were decremented at flip time and are restored on undo.
  struct Trail {
    std::vector<uint32_t> flipped;
  };

  void SetState(uint32_t v, uint8_t to, Trail* trail) {
    state_[v] = to;
    trail->flipped.push_back(v);
    for (uint32_t w : adj_[v]) {
      if (state_[w] == kFree) --degree_[w];
    }
  }

  void Undo(const Trail& trail) {
    // Reverse order so intermediate degree values replay exactly.
    for (auto it = trail.flipped.rbegin(); it != trail.flipped.rend(); ++it) {
      const uint32_t v = *it;
      state_[v] = kFree;
      for (uint32_t w : adj_[v]) {
        if (state_[w] == kFree) ++degree_[w];
      }
    }
  }

  // Take v into the solution: v leaves free as kTaken, free neighbors leave
  // as kRemoved.
  void Take(uint32_t v, Trail* trail) {
    SetState(v, kTaken, trail);
    current_.push_back(v);
    for (uint32_t w : adj_[v]) {
      if (state_[w] == kFree) SetState(w, kRemoved, trail);
    }
  }

  // Exhaustively apply degree-0 / degree-1 reductions plus dominance. All
  // are safe for *maximum* IS: an isolated free vertex is always in some
  // optimum; for a pendant v-w some optimum contains v (swap argument); and
  // if adjacent u,v satisfy N[v] ⊆ N[u] then some optimum avoids u (replace
  // u by v — v's surviving neighbors are a subset of u's).
  void Reduce(Trail* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (uint32_t v = 0; v < n_; ++v) {
        if (state_[v] != kFree) continue;
        if (degree_[v] <= 1) {
          Take(v, trail);
          changed = true;
        }
      }
      if (!changed) changed = ReduceDominance(trail);
    }
  }

  // One dominance pass. Returns true if any vertex was excluded.
  bool ReduceDominance(Trail* trail) {
    bool changed = false;
    for (uint32_t u = 0; u < n_; ++u) {
      if (state_[u] != kFree) continue;
      for (uint32_t v : adj_[u]) {
        if (state_[v] != kFree || degree_[v] > degree_[u]) continue;
        // Does every free neighbor of v (other than u) neighbor u?
        bool dominated = true;
        for (uint32_t w : adj_[v]) {
          if (w == u || state_[w] != kFree) continue;
          if (!std::binary_search(adj_[u].begin(), adj_[u].end(), w)) {
            dominated = false;
            break;
          }
        }
        if (dominated) {  // N[v] ⊆ N[u]: exclude u
          SetState(u, kRemoved, trail);
          changed = true;
          break;
        }
      }
    }
    return changed;
  }

  // Greedy clique cover of the free subgraph; an IS has at most one vertex
  // per clique, so the count bounds what remains attainable. Vertices are
  // packed in descending-degree order (tighter cover). Stops early once the
  // count exceeds `cap`: the caller only tests `bound > cap`, so the exact
  // value past that is irrelevant.
  uint32_t CliqueCoverBound(uint32_t cap) {
    cover_cliques_.clear();
    uint32_t cliques = 0;
    for (uint32_t v : cover_order_) {
      if (state_[v] != kFree) continue;
      bool placed = false;
      for (auto& clique : cover_cliques_) {
        bool adjacent_to_all = true;
        for (uint32_t member : clique) {
          if (!std::binary_search(adj_[v].begin(), adj_[v].end(), member)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (adjacent_to_all) {
          clique.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) {
        cover_cliques_.push_back({v});
        if (++cliques > cap) return cliques;
      }
    }
    return cliques;
  }

  void Recurse() {
    if (oot_ || done_) return;
    if ((++branch_nodes_ & 0x3F) == 0 && deadline_.Expired()) {
      oot_ = true;
      return;
    }
    Trail trail;
    const size_t current_mark = current_.size();
    Reduce(&trail);

    // Branch vertex: max current degree.
    uint32_t pivot = UINT32_MAX;
    uint32_t pivot_degree = 0;
    for (uint32_t v = 0; v < n_; ++v) {
      if (state_[v] == kFree &&
          (pivot == UINT32_MAX || degree_[v] > pivot_degree)) {
        pivot = v;
        pivot_degree = degree_[v];
      }
    }
    // Remaining slack before the bound can prune; 0 when `current_` already
    // ties or beats `best_` (then any nonempty remainder explores).
    const uint32_t gap =
        best_.size() > current_.size()
            ? static_cast<uint32_t>(best_.size() - current_.size())
            : 0;
    if (pivot == UINT32_MAX) {  // no free vertex: leaf
      if (current_.size() > best_.size()) {
        best_ = current_;
        // The caller-supplied bound is attained: nothing larger exists, so
        // the remaining search would only re-prove optimality.
        if (best_.size() >= upper_bound_) done_ = true;
      }
    } else if (current_.size() + CliqueCoverBound(gap) > best_.size()) {
      {  // include pivot
        Trail branch;
        Take(pivot, &branch);  // pushes exactly pivot onto current_
        Recurse();
        current_.pop_back();
        Undo(branch);
      }
      if (!oot_ && !done_) {  // exclude pivot
        Trail branch;
        SetState(pivot, kRemoved, &branch);
        Recurse();
        Undo(branch);
      }
    }

    current_.resize(current_mark);
    Undo(trail);
  }

  const std::vector<std::vector<uint32_t>>& adj_;
  Deadline deadline_;
  uint32_t upper_bound_;
  uint32_t n_;
  std::vector<uint8_t> state_;
  std::vector<uint32_t> degree_;
  std::vector<uint32_t> current_;
  std::vector<uint32_t> best_;
  std::vector<uint32_t> cover_order_;
  std::vector<std::vector<uint32_t>> cover_cliques_;
  uint64_t branch_nodes_ = 0;
  bool oot_ = false;
  bool done_ = false;  // incumbent reached upper_bound_; unwind immediately
};

// Labels connected components; returns their count. `comp[v]` gets the
// component index of v, assigned in order of smallest member id.
uint32_t LabelComponents(const std::vector<std::vector<uint32_t>>& adj,
                         std::vector<uint32_t>* comp) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  comp->assign(n, UINT32_MAX);
  uint32_t count = 0;
  std::vector<uint32_t> stack;
  for (uint32_t v = 0; v < n; ++v) {
    if ((*comp)[v] != UINT32_MAX) continue;
    (*comp)[v] = count;
    stack.assign(1, v);
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      for (uint32_t w : adj[u]) {
        if ((*comp)[w] == UINT32_MAX) {
          (*comp)[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  return count;
}

}  // namespace

StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj, const Deadline& deadline,
    uint32_t upper_bound) {
  // Component decomposition: a maximum IS is the union of per-component
  // maxima, and branch-and-bound cost is superadditive in component size,
  // so splitting first is never worse and often exponentially better (the
  // clique-cover bound cannot couple vertices across components anyway).
  std::vector<uint32_t> comp;
  const uint32_t num_comps = LabelComponents(adj, &comp);
  if (num_comps <= 1) return Solver(adj, deadline, upper_bound).Run();

  const uint32_t n = static_cast<uint32_t>(adj.size());
  std::vector<std::vector<uint32_t>> members(num_comps);
  for (uint32_t v = 0; v < n; ++v) members[comp[v]].push_back(v);
  ExactMisResult total;
  std::vector<uint32_t> local_id(n, 0);
  std::vector<std::vector<uint32_t>> local_adj;
  for (uint32_t c = 0; c < num_comps; ++c) {
    const auto& nodes = members[c];  // ascending; remap keeps lists sorted
    if (nodes.size() == 1) {  // isolated vertex: always in some optimum
      total.vertices.push_back(nodes[0]);
      continue;
    }
    for (uint32_t i = 0; i < nodes.size(); ++i) local_id[nodes[i]] = i;
    local_adj.assign(nodes.size(), {});
    for (uint32_t i = 0; i < nodes.size(); ++i) {
      for (uint32_t w : adj[nodes[i]]) local_adj[i].push_back(local_id[w]);
    }
    // Any true global bound also bounds this component once the exact sizes
    // of the components already solved are subtracted (the remaining
    // components contribute >= 0).
    const uint32_t solved = static_cast<uint32_t>(total.vertices.size());
    const uint32_t comp_bound =
        upper_bound == UINT32_MAX
            ? UINT32_MAX
            : (upper_bound > solved ? upper_bound - solved : 0);
    auto sub = Solver(local_adj, deadline, comp_bound).Run();
    if (!sub.ok()) return sub.status();
    for (uint32_t v : sub->vertices) total.vertices.push_back(nodes[v]);
    total.branch_nodes += sub->branch_nodes;
  }
  return total;
}

}  // namespace dkc
