#include "mis/exact_mis.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "mis/greedy_mis.h"

namespace dkc {
namespace {

// Shared, schedule-independent branch budget: every Solver (one per
// component, possibly on different pool threads) charges the same atomic
// counter per branch node. Whether the total crosses the cap depends only
// on the per-component search-tree sizes — fixed by the inputs and bounds —
// never on thread interleaving, so the abort decision is deterministic.
struct BranchBudget {
  std::atomic<uint64_t> used{0};
  uint64_t cap = 0;  // 0 = unlimited

  bool ChargeOne() {
    if (cap == 0) return true;
    return used.fetch_add(1, std::memory_order_relaxed) + 1 <= cap;
  }
};

class Solver {
 public:
  Solver(const std::vector<std::vector<uint32_t>>& adj,
         const Deadline& deadline, uint32_t upper_bound, BranchBudget* budget)
      : adj_(adj),
        deadline_(deadline),
        upper_bound_(upper_bound),
        budget_(budget),
        n_(static_cast<uint32_t>(adj.size())) {
    state_.assign(n_, kFree);
    degree_.resize(n_);
    init_degree_.resize(n_);
    for (uint32_t v = 0; v < n_; ++v) {
      degree_[v] = static_cast<uint32_t>(adj_[v].size());
      init_degree_[v] = degree_[v];
    }
    free_list_.resize(n_);
    free_pos_.resize(n_);
    for (uint32_t v = 0; v < n_; ++v) {
      free_list_[v] = v;
      free_pos_[v] = v;
    }
  }

  StatusOr<ExactMisResult> Run() {
    ExactMisResult result;
    bool seed_expired = false;
    best_ = GreedyMinDegreeMis(adj_, deadline_, &seed_expired);
    if (seed_expired) return Status::TimeBudgetExceeded("exact MIS seeding");
    if (best_.size() < upper_bound_) Recurse();
    if (oot_) return Status::TimeBudgetExceeded("exact MIS search");
    if (budget_blown_) {
      return Status::TimeBudgetExceeded("exact MIS branch budget");
    }
    result.vertices = best_;
    result.branch_nodes = branch_nodes_;
    result.free_scan_steps = free_scan_steps_;
    return result;
  }

 private:
  enum : uint8_t { kFree, kTaken, kRemoved };

  // A trail entry: (vertex whose state flipped away from kFree, its
  // free-list position at flip time). Degrees of free neighbors were
  // decremented at flip time; degrees and free-list slots are restored on
  // undo by replaying the trail in reverse.
  struct Trail {
    std::vector<std::pair<uint32_t, uint32_t>> flipped;
  };

  void SetState(uint32_t v, uint8_t to, Trail* trail) {
    state_[v] = to;
    const uint32_t p = free_pos_[v];
    trail->flipped.push_back({v, p});
    // Swap-remove from the free list; the inverse replay in Undo restores
    // the exact array, so free-list order is a deterministic function of
    // the operation sequence.
    const uint32_t last = free_list_.back();
    free_list_[p] = last;
    free_pos_[last] = p;
    free_list_.pop_back();
    for (uint32_t w : adj_[v]) {
      if (state_[w] == kFree && --degree_[w] <= 1) {
        // Feed the reduction worklist: only vertices whose degree just
        // dropped can newly qualify. Stale entries (re-raised by Undo,
        // already handled, or pushed outside Reduce) are re-checked and
        // skipped at pop time.
        pending_.push_back(w);
      }
    }
  }

  void Undo(const Trail& trail) {
    // Reverse order so intermediate degree values and free-list layouts
    // replay exactly.
    for (auto it = trail.flipped.rbegin(); it != trail.flipped.rend(); ++it) {
      const auto [v, p] = *it;
      state_[v] = kFree;
      free_list_.push_back(v);
      std::swap(free_list_[p], free_list_.back());
      free_pos_[free_list_[p]] = p;
      free_pos_[free_list_.back()] = static_cast<uint32_t>(
          free_list_.size() - 1);
      for (uint32_t w : adj_[v]) {
        if (state_[w] == kFree) ++degree_[w];
      }
    }
  }

  // Take v into the solution: v leaves free as kTaken, free neighbors leave
  // as kRemoved.
  void Take(uint32_t v, Trail* trail) {
    SetState(v, kTaken, trail);
    current_.push_back(v);
    for (uint32_t w : adj_[v]) {
      if (state_[w] == kFree) SetState(w, kRemoved, trail);
    }
  }

  // Exhaustively apply degree-0 / degree-1 reductions plus dominance. All
  // are safe for *maximum* IS: an isolated free vertex is always in some
  // optimum; for a pendant v-w some optimum contains v (swap argument); and
  // if adjacent u,v satisfy N[v] ⊆ N[u] then some optimum avoids u (replace
  // u by v — v's surviving neighbors are a subset of u's). The degree
  // reductions run as a worklist: one seed scan of the free list, then the
  // cascade is chased through the pending entries SetState records — a long
  // pendant chain collapses in O(chain), independent of scan order, where
  // repeated full passes degenerate to O(passes * |free|).
  void Reduce(Trail* trail) {
    for (;;) {
      pending_.clear();
      free_scan_steps_ += free_list_.size();
      for (uint32_t v : free_list_) {
        if (degree_[v] <= 1) pending_.push_back(v);
      }
      while (!pending_.empty()) {
        const uint32_t v = pending_.back();
        pending_.pop_back();
        ++free_scan_steps_;
        if (state_[v] != kFree || degree_[v] > 1) continue;
        Take(v, trail);
      }
      if (!ReduceDominance(trail)) break;
    }
  }

  // One dominance pass over the free list. Returns true if any vertex was
  // excluded.
  bool ReduceDominance(Trail* trail) {
    bool changed = false;
    free_scan_steps_ += free_list_.size();
    for (size_t idx = 0; idx < free_list_.size(); ++idx) {
      const uint32_t u = free_list_[idx];
      for (uint32_t v : adj_[u]) {
        if (state_[v] != kFree || degree_[v] > degree_[u]) continue;
        // Does every free neighbor of v (other than u) neighbor u?
        bool dominated = true;
        for (uint32_t w : adj_[v]) {
          if (w == u || state_[w] != kFree) continue;
          if (!std::binary_search(adj_[u].begin(), adj_[u].end(), w)) {
            dominated = false;
            break;
          }
        }
        if (dominated) {  // N[v] ⊆ N[u]: exclude u
          SetState(u, kRemoved, trail);
          changed = true;
          --idx;
          break;
        }
      }
    }
    return changed;
  }

  // Greedy clique cover of the free subgraph; an IS has at most one vertex
  // per clique, so the count bounds what remains attainable. Free vertices
  // are packed in descending *initial*-degree order (tighter cover), id
  // ascending on ties for determinism. Stops early once the count exceeds
  // `cap`: the caller only tests `bound > cap`, so the exact value past
  // that is irrelevant.
  uint32_t CliqueCoverBound(uint32_t cap) {
    cover_scratch_ = free_list_;
    free_scan_steps_ += free_list_.size();
    std::sort(cover_scratch_.begin(), cover_scratch_.end(),
              [&](uint32_t a, uint32_t b) {
                if (init_degree_[a] != init_degree_[b]) {
                  return init_degree_[a] > init_degree_[b];
                }
                return a < b;
              });
    cover_cliques_.clear();
    uint32_t cliques = 0;
    for (uint32_t v : cover_scratch_) {
      bool placed = false;
      for (auto& clique : cover_cliques_) {
        bool adjacent_to_all = true;
        for (uint32_t member : clique) {
          if (!std::binary_search(adj_[v].begin(), adj_[v].end(), member)) {
            adjacent_to_all = false;
            break;
          }
        }
        if (adjacent_to_all) {
          clique.push_back(v);
          placed = true;
          break;
        }
      }
      if (!placed) {
        cover_cliques_.push_back({v});
        if (++cliques > cap) return cliques;
      }
    }
    return cliques;
  }

  void Recurse() {
    if (oot_ || budget_blown_ || done_) return;
    if (!budget_->ChargeOne()) {
      budget_blown_ = true;
      return;
    }
    if ((++branch_nodes_ & 0x3F) == 0 && deadline_.Expired()) {
      oot_ = true;
      return;
    }
    Trail trail;
    const size_t current_mark = current_.size();
    Reduce(&trail);

    // Branch vertex: max current degree over the free list, smallest id on
    // ties (the order the historical 0..n-1 scan produced).
    free_scan_steps_ += free_list_.size();
    uint32_t pivot = UINT32_MAX;
    uint32_t pivot_degree = 0;
    for (uint32_t v : free_list_) {
      if (pivot == UINT32_MAX || degree_[v] > pivot_degree ||
          (degree_[v] == pivot_degree && v < pivot)) {
        pivot = v;
        pivot_degree = degree_[v];
      }
    }
    // Remaining slack before the bound can prune; 0 when `current_` already
    // ties or beats `best_` (then any nonempty remainder explores).
    const uint32_t gap =
        best_.size() > current_.size()
            ? static_cast<uint32_t>(best_.size() - current_.size())
            : 0;
    if (pivot == UINT32_MAX) {  // no free vertex: leaf
      if (current_.size() > best_.size()) {
        best_ = current_;
        // The caller-supplied bound is attained: nothing larger exists, so
        // the remaining search would only re-prove optimality.
        if (best_.size() >= upper_bound_) done_ = true;
      }
    } else if (current_.size() + CliqueCoverBound(gap) > best_.size()) {
      {  // include pivot
        Trail branch;
        Take(pivot, &branch);  // pushes exactly pivot onto current_
        Recurse();
        current_.pop_back();
        Undo(branch);
      }
      if (!oot_ && !budget_blown_ && !done_) {  // exclude pivot
        Trail branch;
        SetState(pivot, kRemoved, &branch);
        Recurse();
        Undo(branch);
      }
    }

    current_.resize(current_mark);
    Undo(trail);
  }

  const std::vector<std::vector<uint32_t>>& adj_;
  Deadline deadline_;
  uint32_t upper_bound_;
  BranchBudget* budget_;
  uint32_t n_;
  std::vector<uint8_t> state_;
  std::vector<uint32_t> degree_;
  std::vector<uint32_t> init_degree_;
  std::vector<uint32_t> free_list_;  // free vertices, swap-removed/restored
  std::vector<uint32_t> free_pos_;   // vertex -> index in free_list_
  std::vector<uint32_t> pending_;    // degree-reduction worklist (Reduce)
  std::vector<uint32_t> current_;
  std::vector<uint32_t> best_;
  std::vector<uint32_t> cover_scratch_;
  std::vector<std::vector<uint32_t>> cover_cliques_;
  uint64_t branch_nodes_ = 0;
  uint64_t free_scan_steps_ = 0;
  bool oot_ = false;
  bool budget_blown_ = false;
  bool done_ = false;  // incumbent reached upper_bound_; unwind immediately
};

// Labels connected components; returns their count. `comp[v]` gets the
// component index of v, assigned in order of smallest member id.
uint32_t LabelComponents(const std::vector<std::vector<uint32_t>>& adj,
                         std::vector<uint32_t>* comp) {
  const uint32_t n = static_cast<uint32_t>(adj.size());
  comp->assign(n, UINT32_MAX);
  uint32_t count = 0;
  std::vector<uint32_t> stack;
  for (uint32_t v = 0; v < n; ++v) {
    if ((*comp)[v] != UINT32_MAX) continue;
    (*comp)[v] = count;
    stack.assign(1, v);
    while (!stack.empty()) {
      const uint32_t u = stack.back();
      stack.pop_back();
      for (uint32_t w : adj[u]) {
        if ((*comp)[w] == UINT32_MAX) {
          (*comp)[w] = count;
          stack.push_back(w);
        }
      }
    }
    ++count;
  }
  return count;
}

// Solves one multi-vertex component on its remapped local adjacency.
// `nodes` is ascending, so the position-based remap keeps lists sorted.
// `local_id` is the precomputed global -> in-component position table
// (components partition the vertices, so one shared read-only table serves
// every concurrent solve).
StatusOr<ExactMisResult> SolveComponent(
    const std::vector<std::vector<uint32_t>>& adj,
    const std::vector<uint32_t>& nodes, const std::vector<uint32_t>& local_id,
    const Deadline& deadline, uint32_t bound, BranchBudget* budget) {
  std::vector<std::vector<uint32_t>> local_adj(nodes.size());
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    local_adj[i].reserve(adj[nodes[i]].size());
    for (uint32_t w : adj[nodes[i]]) {
      local_adj[i].push_back(local_id[w]);
    }
  }
  return Solver(local_adj, deadline, bound, budget).Run();
}

}  // namespace

StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj,
    const ExactMisParams& params) {
  BranchBudget budget;
  budget.cap = params.max_branch_nodes;

  // Component decomposition: a maximum IS is the union of per-component
  // maxima, and branch-and-bound cost is superadditive in component size,
  // so splitting first is never worse and often exponentially better (the
  // clique-cover bound cannot couple vertices across components anyway).
  std::vector<uint32_t> comp;
  const uint32_t num_comps = LabelComponents(adj, &comp);
  if (num_comps <= 1) {
    uint32_t bound = params.upper_bound;
    if (params.component_bound && !adj.empty()) {
      std::vector<uint32_t> all(adj.size());
      for (uint32_t v = 0; v < adj.size(); ++v) all[v] = v;
      bound = std::min(bound, params.component_bound(all));
    }
    return Solver(adj, params.deadline, bound, &budget).Run();
  }

  const uint32_t n = static_cast<uint32_t>(adj.size());
  std::vector<std::vector<uint32_t>> members(num_comps);
  for (uint32_t v = 0; v < n; ++v) members[comp[v]].push_back(v);
  std::vector<uint32_t> local_id(n, 0);
  for (uint32_t c = 0; c < num_comps; ++c) {
    for (uint32_t i = 0; i < members[c].size(); ++i) {
      local_id[members[c][i]] = i;
    }
  }

  // Per-component bounds are fixed up front, independent of solve order, so
  // serial and pool-parallel runs prove (and find) exactly the same optima.
  std::vector<uint32_t> bounds(num_comps, params.upper_bound);
  if (params.component_bound) {
    for (uint32_t c = 0; c < num_comps; ++c) {
      if (members[c].size() > 1) {
        bounds[c] = std::min(bounds[c], params.component_bound(members[c]));
      }
    }
  }

  std::vector<StatusOr<ExactMisResult>> solved(
      num_comps, StatusOr<ExactMisResult>(ExactMisResult{}));
  auto solve_one = [&](uint32_t c) {
    solved[c] = SolveComponent(adj, members[c], local_id, params.deadline,
                               bounds[c], &budget);
  };
  ThreadPool* pool = params.pool;
  if (pool != nullptr && pool->num_threads() > 1) {
    for (uint32_t c = 0; c < num_comps; ++c) {
      if (members[c].size() == 1) continue;
      pool->Submit([&solve_one, c] { solve_one(c); });
    }
    pool->Wait();
  } else {
    for (uint32_t c = 0; c < num_comps; ++c) {
      if (members[c].size() == 1) continue;
      solve_one(c);
    }
  }

  // Deterministic ordered merge: components ascending, isolated vertices
  // (always in some optimum) inlined in place.
  ExactMisResult total;
  for (uint32_t c = 0; c < num_comps; ++c) {
    const auto& nodes = members[c];
    if (nodes.size() == 1) {
      total.vertices.push_back(nodes[0]);
      continue;
    }
    if (!solved[c].ok()) return solved[c].status();
    for (uint32_t v : solved[c]->vertices) total.vertices.push_back(nodes[v]);
    total.branch_nodes += solved[c]->branch_nodes;
    total.free_scan_steps += solved[c]->free_scan_steps;
  }
  return total;
}

StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj, const Deadline& deadline,
    uint32_t upper_bound) {
  ExactMisParams params;
  params.deadline = deadline;
  params.upper_bound = upper_bound;
  return ExactMis(adj, params);
}

}  // namespace dkc
