#include "mis/greedy_mis.h"

#include <queue>
#include <utility>

namespace dkc {

std::vector<uint32_t> GreedyMinDegreeMis(
    const std::vector<std::vector<uint32_t>>& adj, const Deadline& deadline,
    bool* expired) {
  if (expired != nullptr) *expired = false;
  const uint32_t n = static_cast<uint32_t>(adj.size());
  std::vector<uint32_t> degree(n);
  // Lazy min-heap: stale (degree, v) entries are skipped on pop. Simpler
  // than a bucket queue and the heap never exceeds n + m entries.
  using Entry = std::pair<uint32_t, uint32_t>;  // (degree, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    heap.emplace(degree[v], v);
  }

  enum : uint8_t { kFree, kTaken, kRemoved };
  std::vector<uint8_t> state(n, kFree);
  std::vector<uint32_t> result;
  uint64_t steps = 0;
  while (!heap.empty()) {
    if ((++steps & 0x3FF) == 0 && deadline.Expired()) {
      if (expired != nullptr) *expired = true;
      return result;
    }
    auto [d, v] = heap.top();
    heap.pop();
    if (state[v] != kFree || d != degree[v]) continue;  // stale or settled
    state[v] = kTaken;
    result.push_back(v);
    for (uint32_t w : adj[v]) {
      if (state[w] != kFree) continue;
      state[w] = kRemoved;
      for (uint32_t x : adj[w]) {
        if (state[x] != kFree) continue;
        heap.emplace(--degree[x], x);
      }
    }
  }
  return result;
}

}  // namespace dkc
