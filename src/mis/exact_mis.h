// Exact maximum independent set by branch-and-reduce.
//
// Stands in for the Akiba–Iwata vertex-cover solver [42] the paper uses for
// its OPT baseline: same role (exact optimum on the clique graph), same
// overall architecture (reductions + branching + bounds), deliberately
// smaller reduction set. The solver is budgeted: it answers OOT via Status
// when the deadline expires, which is how the paper's Tables II/IV report
// OPT on anything but tiny graphs.
//
// Techniques:
//   * connected-component decomposition before branching: each component is
//     solved independently and the sizes summed, with the caller's upper
//     bound tightened by the components already solved;
//   * reductions: isolated vertices (take), degree-1 pendants (take),
//     dominance (exclude u when an adjacent v has N[v] ⊆ N[u]),
//     applied exhaustively at every branch node;
//   * lower bound seeded with the greedy min-degree solution;
//   * upper bound: |chosen| + greedy clique cover of the free subgraph (an
//     independent set contains at most one vertex per cover clique);
//   * branching: max-degree free vertex, include-branch first.

#ifndef DKC_MIS_EXACT_MIS_H_
#define DKC_MIS_EXACT_MIS_H_

#include <cstdint>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace dkc {

struct ExactMisResult {
  std::vector<uint32_t> vertices;  // a maximum independent set
  uint64_t branch_nodes = 0;       // search-tree size, for tests/benches
};

/// Computes a maximum independent set of the (symmetric, simple) adjacency
/// structure. Adjacency lists must be sorted ascending (the dominance
/// reduction binary-searches them). Returns Status::TimeBudgetExceeded
/// (OOT) if the deadline expires before the search completes.
///
/// `upper_bound`, when the caller knows one (e.g. the clique-graph MIS is
/// at most floor(participating nodes / k) for disjoint k-clique packing),
/// lets the search stop the moment an incumbent of that size is found:
/// proving "no larger set exists" is exactly where branch-and-bound spends
/// its time when the generic clique-cover bound is loose. Must be a true
/// upper bound on the MIS size or the result may be suboptimal.
StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj,
    const Deadline& deadline = Deadline::Unlimited(),
    uint32_t upper_bound = UINT32_MAX);

}  // namespace dkc

#endif  // DKC_MIS_EXACT_MIS_H_
