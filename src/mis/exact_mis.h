// Exact maximum independent set by branch-and-reduce.
//
// Stands in for the Akiba–Iwata vertex-cover solver [42] the paper uses for
// its OPT baseline: same role (exact optimum on the clique graph), same
// overall architecture (reductions + branching + bounds), deliberately
// smaller reduction set. The solver is budgeted: it answers OOT via Status
// when the deadline expires, which is how the paper's Tables II/IV report
// OPT on anything but tiny graphs.
//
// Techniques:
//   * connected-component decomposition before branching: each component is
//     solved independently (optionally in parallel across a pool — the
//     per-component searches share nothing) and the results are merged in
//     component order, so the answer is byte-identical at any thread count;
//   * per-component upper bounds supplied by the caller (who can see
//     structure the solver cannot, e.g. the k-clique packing bound), fixed
//     before any component is solved — deliberately *not* tightened by
//     previously solved components, which would impose a serial order;
//   * a free-vertex list maintained incrementally under branching, so
//     pivot selection, the reductions and the clique-cover bound scan only
//     the vertices still free instead of all n per branch node;
//   * reductions: isolated vertices (take), degree-1 pendants (take),
//     dominance (exclude u when an adjacent v has N[v] ⊆ N[u]),
//     applied exhaustively at every branch node;
//   * lower bound seeded with the greedy min-degree solution;
//   * upper bound: |chosen| + greedy clique cover of the free subgraph (an
//     independent set contains at most one vertex per cover clique);
//   * branching: max-degree free vertex (smallest id on ties),
//     include-branch first;
//   * an optional *branch budget*: a cap on total branch nodes across all
//     components. Unlike a wall-clock deadline, hitting it is a
//     deterministic property of the instance — the same inputs abort (or
//     don't) identically on every run at every thread count, which is what
//     a differential harness needs from an abort mechanism.

#ifndef DKC_MIS_EXACT_MIS_H_
#define DKC_MIS_EXACT_MIS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

struct ExactMisResult {
  std::vector<uint32_t> vertices;  // a maximum independent set
  uint64_t branch_nodes = 0;       // search-tree size, for tests/benches
  /// Free-list elements visited by pivot selection, the reduction passes
  /// and the cover bound — the quantity the free-vertex list keeps
  /// proportional to the *live* subproblem instead of n per branch node.
  uint64_t free_scan_steps = 0;
};

struct ExactMisParams {
  Deadline deadline = Deadline::Unlimited();

  /// A true upper bound on the MIS size, when the caller knows one (e.g.
  /// the clique-graph MIS is at most floor(participating nodes / k) for
  /// disjoint k-clique packing): the search stops the moment an incumbent
  /// of that size is found. Proving "no larger set exists" is exactly
  /// where branch-and-bound spends its time when the generic clique-cover
  /// bound is loose. Must be a true bound or the result may be suboptimal.
  uint32_t upper_bound = UINT32_MAX;

  /// Cap on total branch nodes across all components; 0 = unlimited.
  /// Exceeding it returns TimeBudgetExceeded, deterministically (see top).
  uint64_t max_branch_nodes = 0;

  /// Solve components concurrently when given. Results are byte-identical
  /// to the serial solve.
  ThreadPool* pool = nullptr;

  /// Optional per-component upper bound: called once per multi-vertex
  /// component (serially, before any solving) with the component's member
  /// vertex ids, ascending. The effective bound is
  /// min(upper_bound, component_bound(members)). Must be a true bound.
  std::function<uint32_t(std::span<const uint32_t>)> component_bound;
};

/// Computes a maximum independent set of the (symmetric, simple) adjacency
/// structure. Adjacency lists must be sorted ascending (the dominance
/// reduction binary-searches them). Returns Status::TimeBudgetExceeded
/// (OOT) if the deadline — or the branch budget — expires before the
/// search completes.
StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj,
    const ExactMisParams& params = {});

/// Legacy convenience overload.
StatusOr<ExactMisResult> ExactMis(
    const std::vector<std::vector<uint32_t>>& adj, const Deadline& deadline,
    uint32_t upper_bound = UINT32_MAX);

}  // namespace dkc

#endif  // DKC_MIS_EXACT_MIS_H_
