// Write-ahead log of edge updates, the durability half of the store.
//
// The file is a sequence of fixed-size records:
//
//   [1] op (0 = delete, 1 = insert)
//   [4] u  (u32)            [4] v (u32)
//   [8] seq (u64, strictly consecutive)
//   [4] CRC-32 of the previous 17 bytes
//
// Records are appended with a single write and (by default) fsynced before
// the in-memory engine applies the update, so a crash loses at most work
// that was never acknowledged. Recovery semantics, modeled on classic WAL
// discipline:
//
//  * a *partial* record at EOF is a torn append — the crash cut the final
//    write short. The scan truncates it away and reports torn_tail; every
//    complete record before it is intact (per-record CRC) and replayed.
//  * a *complete* record with a bad CRC, or a sequence-number gap, is
//    Corruption: appends are single writes to an append-only file, so a
//    short tail is the only state a crash can produce — anything else is
//    bit rot or tampering, and replaying past it would silently fork the
//    solution. Nothing is loaded.

#ifndef DKC_STORE_WAL_H_
#define DKC_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

struct WalRecord {
  uint64_t seq = 0;
  bool is_insert = false;
  NodeId u = 0;
  NodeId v = 0;
};

/// Bytes per encoded record (fixed-size format).
inline constexpr size_t kWalRecordBytes = 21;

/// Encode `rec` (exposed for tests that fabricate torn/corrupt tails).
std::string EncodeWalRecord(const WalRecord& rec);

/// Appender. Not thread-safe; the store serializes access.
class WalWriter {
 public:
  /// Open `path` for appending (created if missing).
  static StatusOr<WalWriter> Open(const std::string& path);

  /// Append one record. With `sync`, the record is flushed and fsynced
  /// before returning — the durability point of the store's Apply.
  Status Append(const WalRecord& rec, bool sync = true);

  Status Sync();

  const std::string& path() const { return path_; }

 private:
  explicit WalWriter(std::FILE* file, std::string path)
      : file_(file, &std::fclose), path_(std::move(path)) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::string path_;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  /// Byte length of the intact prefix (everything after is torn).
  uint64_t valid_bytes = 0;
  /// True iff a partial record at EOF was dropped.
  bool torn_tail = false;
};

/// Scan `path`. A missing file yields an empty result (a fresh store has
/// no WAL yet); a torn tail is reported, a mid-file corruption returned as
/// Corruption (see header comment for the distinction).
StatusOr<WalReadResult> ReadWal(const std::string& path);

/// Truncate `path` to `valid_bytes` — recovery's torn-tail cut.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace dkc

#endif  // DKC_STORE_WAL_H_
