// Write-ahead log of edge updates, the durability half of the store.
//
// The file is a sequence of fixed-size records:
//
//   [1] op (see WalOp: bare insert/delete, group member, group commit)
//   [4] u  (u32)            [4] v (u32)
//   [8] seq (u64, strictly consecutive across update records)
//   [4] CRC-32 of the previous 17 bytes
//
// Bare records are appended with a single write and (by default) fsynced
// before the in-memory engine applies the update, so a crash loses at most
// work that was never acknowledged.
//
// Group commit (epoch-batched ingestion): a whole epoch of updates is
// encoded as consecutive *group member* records followed by one *group
// commit* marker (carrying the member count and the last member's seq),
// and the entire frame is appended as one buffered write + one fsync. The
// members are not replayable until the commit marker lands, which is what
// makes a crash anywhere inside the group window safe: the epoch is either
// fully durable or entirely absent.
//
// Recovery semantics, modeled on classic WAL discipline:
//
//  * a *partial* record at EOF is a torn append — the crash cut the final
//    write short. The scan truncates it away and reports torn_tail; every
//    complete record before it is intact (per-record CRC) and replayed.
//  * group member records with no commit marker at EOF are a torn group —
//    the crash landed inside the group window. They are dropped and the
//    log is truncated to the last committed boundary (valid_bytes), so
//    recovery lands exactly on an epoch boundary.
//  * a *complete* record with a bad CRC, a sequence-number gap, a bare
//    record interleaved into an open group, or a commit marker whose
//    count/seq disagree with its members, is Corruption: appends are
//    single writes to an append-only file, so a short tail is the only
//    state a crash can produce — anything else is bit rot or tampering,
//    and replaying past it would silently fork the solution. Nothing is
//    loaded.

#ifndef DKC_STORE_WAL_H_
#define DKC_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

struct WalRecord {
  uint64_t seq = 0;
  bool is_insert = false;
  NodeId u = 0;
  NodeId v = 0;
};

/// On-disk record type tags (the first byte of every record).
enum WalOp : uint8_t {
  kWalDelete = 0,
  kWalInsert = 1,
  kWalGroupDelete = 2,
  kWalGroupInsert = 3,
  /// Group terminator: u = member count, v = 0, seq = last member's seq.
  kWalGroupCommit = 4,
};

/// Bytes per encoded record (fixed-size format).
inline constexpr size_t kWalRecordBytes = 21;

/// Encode `rec` as a bare record (exposed for tests that fabricate
/// torn/corrupt tails).
std::string EncodeWalRecord(const WalRecord& rec);

/// Encode `recs` as one group frame: member records followed by the commit
/// marker. This is exactly the byte sequence AppendGroup writes (exposed
/// for the kill-point harness, which truncates it at every offset).
std::string EncodeWalGroup(std::span<const WalRecord> recs);

/// Appender. Not thread-safe; the store serializes access.
///
/// Failure policy (the fsyncgate rule): after ANY failed append, flush, or
/// fsync the writer is *poisoned* — every later Append/AppendGroup/Sync
/// returns the original error without touching the file. A failed fsync
/// may have dropped dirty pages the kernel will never retry, and a short
/// buffered append leaves a torn frame in the stdio buffer; in both cases
/// a later "successful" sync would acknowledge updates that are not
/// durable. The only way forward is to reopen the WAL (a fresh Open) and
/// re-establish the durable boundary by re-reading the file.
class WalWriter {
 public:
  /// Open `path` for appending (created if missing).
  static StatusOr<WalWriter> Open(const std::string& path);

  /// Append one record. With `sync`, the record is flushed and fsynced
  /// before returning — the durability point of the store's Apply.
  Status Append(const WalRecord& rec, bool sync = true);

  /// Append a whole epoch as one group frame (members + commit marker) in
  /// a single buffered write, then — with `sync` — one fsync for the whole
  /// batch. This is the group-commit durability point: N updates, one
  /// fsync. Empty input is a no-op.
  Status AppendGroup(std::span<const WalRecord> recs, bool sync = true);

  Status Sync();

  /// The first error, if any I/O on this writer has failed. While set,
  /// every mutation returns it (see class comment).
  const Status& poisoned() const { return poison_; }

  const std::string& path() const { return path_; }

 private:
  explicit WalWriter(std::FILE* file, std::string path)
      : file_(file, &std::fclose), path_(std::move(path)) {}

  /// Record the first failure and return it.
  Status Poison(Status status);

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  std::string path_;
  Status poison_ = Status::OK();
};

/// One replay unit of the log: either a single bare record or a committed
/// group (an epoch) of `count` records starting at `records[first]`.
struct WalSegment {
  size_t first = 0;
  size_t count = 0;
  bool batched = false;
};

struct WalReadResult {
  /// Update records in log order. Members of a torn (uncommitted) group
  /// are *not* included.
  std::vector<WalRecord> records;
  /// Replay units over `records`, in log order.
  std::vector<WalSegment> segments;
  /// Byte length of the intact prefix (everything after is torn). Always
  /// a committed boundary: a group's members never count without their
  /// commit marker.
  uint64_t valid_bytes = 0;
  /// True iff a partial record at EOF was dropped.
  bool torn_tail = false;
  /// True iff group member records with no commit marker were dropped at
  /// EOF (a crash inside the group-commit window).
  bool torn_group = false;
};

/// Scan `path`. A missing file yields an empty result (a fresh store has
/// no WAL yet); a torn tail or torn group is reported, a mid-file
/// corruption returned as Corruption (see header comment).
StatusOr<WalReadResult> ReadWal(const std::string& path);

/// Truncate `path` to `valid_bytes` — recovery's torn-tail cut.
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace dkc

#endif  // DKC_STORE_WAL_H_
