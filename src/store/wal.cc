#include "store/wal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "store/crc32.h"
#include "util/binio.h"

namespace dkc {

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string out;
  out.reserve(kWalRecordBytes);
  PutU8(&out, rec.is_insert ? 1 : 0);
  PutU32(&out, rec.u);
  PutU32(&out, rec.v);
  PutU64(&out, rec.seq);
  PutU32(&out, Crc32(out));
  return out;
}

StatusOr<WalWriter> WalWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return WalWriter(file, path);
}

Status WalWriter::Append(const WalRecord& rec, bool sync) {
  const std::string encoded = EncodeWalRecord(rec);
  if (std::fwrite(encoded.data(), 1, encoded.size(), file_.get()) !=
      encoded.size()) {
    return Status::IOError("WAL append to '" + path_ + "' failed");
  }
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (std::fflush(file_.get()) != 0 || ::fsync(fileno(file_.get())) != 0) {
    return Status::IOError("WAL sync of '" + path_ + "' failed");
  }
  return Status::OK();
}

StatusOr<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return result;  // no WAL yet — empty log
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read WAL '" + path + "'");
  const std::string data = buffer.str();

  size_t pos = 0;
  bool have_prev = false;
  uint64_t prev_seq = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordBytes) {
      // Torn append: the crash cut the final write short.
      result.torn_tail = true;
      break;
    }
    const std::string_view raw(data.data() + pos, kWalRecordBytes);
    ByteReader reader(raw);
    WalRecord rec;
    rec.is_insert = reader.U8() != 0;
    rec.u = reader.U32();
    rec.v = reader.U32();
    rec.seq = reader.U64();
    const uint32_t stored_crc = reader.U32();
    if (Crc32(raw.substr(0, kWalRecordBytes - 4)) != stored_crc) {
      // A complete record never tears (single append-only write), so a
      // bad CRC here is corruption, not a crash artifact.
      return Status::Corruption(
          "WAL '" + path + "': checksum mismatch in record at byte " +
          std::to_string(pos));
    }
    if (have_prev && rec.seq != prev_seq + 1) {
      return Status::Corruption("WAL '" + path +
                                "': sequence gap after seq " +
                                std::to_string(prev_seq));
    }
    have_prev = true;
    prev_seq = rec.seq;
    result.records.push_back(rec);
    pos += kWalRecordBytes;
    result.valid_bytes = pos;
  }
  return result;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("cannot truncate WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace dkc
