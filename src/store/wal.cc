#include "store/wal.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "io/fault.h"
#include "store/crc32.h"
#include "util/binio.h"

namespace dkc {
namespace {

void AppendEncoded(std::string* out, WalOp op, const WalRecord& rec) {
  const size_t start = out->size();
  PutU8(out, static_cast<uint8_t>(op));
  PutU32(out, rec.u);
  PutU32(out, rec.v);
  PutU64(out, rec.seq);
  PutU32(out, Crc32(std::string_view(out->data() + start,
                                     kWalRecordBytes - 4)));
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& rec) {
  std::string out;
  out.reserve(kWalRecordBytes);
  AppendEncoded(&out, rec.is_insert ? kWalInsert : kWalDelete, rec);
  return out;
}

std::string EncodeWalGroup(std::span<const WalRecord> recs) {
  std::string out;
  out.reserve((recs.size() + 1) * kWalRecordBytes);
  for (const WalRecord& rec : recs) {
    AppendEncoded(&out, rec.is_insert ? kWalGroupInsert : kWalGroupDelete,
                  rec);
  }
  WalRecord commit;
  commit.u = static_cast<NodeId>(recs.size());
  commit.v = 0;
  commit.seq = recs.empty() ? 0 : recs.back().seq;
  AppendEncoded(&out, kWalGroupCommit, commit);
  return out;
}

StatusOr<WalWriter> WalWriter::Open(const std::string& path) {
  std::FILE* file = fio::FOpen(FaultSite::kWalOpen, path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return WalWriter(file, path);
}

Status WalWriter::Poison(Status status) {
  if (poison_.ok()) poison_ = status;
  return status;
}

Status WalWriter::Append(const WalRecord& rec, bool sync) {
  if (!poison_.ok()) return poison_;
  const std::string encoded = EncodeWalRecord(rec);
  if (fio::FWrite(FaultSite::kWalAppend, encoded.data(), 1, encoded.size(),
                  file_.get()) != encoded.size()) {
    // A short buffered append leaves a torn record in the stdio buffer; no
    // later append may land after it (fsyncgate discipline — see header).
    return Poison(Status::IOError("WAL append to '" + path_ + "' failed: " +
                                  std::strerror(errno)));
  }
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::AppendGroup(std::span<const WalRecord> recs, bool sync) {
  if (recs.empty()) return Status::OK();
  if (!poison_.ok()) return poison_;
  // One encode, one write: the commit marker rides in the same buffer as
  // the members, so the kernel sees the whole epoch as a single append.
  const std::string encoded = EncodeWalGroup(recs);
  if (fio::FWrite(FaultSite::kWalGroupAppend, encoded.data(), 1,
                  encoded.size(), file_.get()) != encoded.size()) {
    return Poison(Status::IOError("WAL group append to '" + path_ +
                                  "' failed: " + std::strerror(errno)));
  }
  if (sync) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (!poison_.ok()) return poison_;
  // Poison on EITHER failure: after a failed fsync the kernel may discard
  // the dirty pages and a retried fsync can report success without the
  // data ever reaching disk (the fsyncgate failure mode). The writer is
  // done; only a reopen re-establishes a trustworthy durable boundary.
  if (fio::FFlush(FaultSite::kWalFlush, file_.get()) != 0) {
    return Poison(Status::IOError("WAL flush of '" + path_ + "' failed: " +
                                  std::strerror(errno)));
  }
  if (fio::Fsync(FaultSite::kWalFsync, fileno(file_.get())) != 0) {
    return Poison(Status::IOError("WAL fsync of '" + path_ + "' failed: " +
                                  std::strerror(errno)));
  }
  return Status::OK();
}

StatusOr<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  DKC_RETURN_IF_ERROR(
      fio::Probe(FaultSite::kWalReadOpen, "cannot open WAL '" + path + "'"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return result;  // no WAL yet — empty log
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read WAL '" + path + "'");
  const std::string data = buffer.str();

  size_t pos = 0;
  bool have_prev = false;
  uint64_t prev_seq = 0;
  // Index into result.records where the currently-open group started, or
  // SIZE_MAX when no group is open. valid_bytes only advances at committed
  // boundaries (bare records and commit markers), never mid-group.
  size_t open_group_first = SIZE_MAX;
  while (pos < data.size()) {
    if (data.size() - pos < kWalRecordBytes) {
      // Torn append: the crash cut the final write short.
      result.torn_tail = true;
      break;
    }
    const std::string_view raw(data.data() + pos, kWalRecordBytes);
    ByteReader reader(raw);
    const uint8_t op = reader.U8();
    WalRecord rec;
    rec.u = reader.U32();
    rec.v = reader.U32();
    rec.seq = reader.U64();
    const uint32_t stored_crc = reader.U32();
    if (Crc32(raw.substr(0, kWalRecordBytes - 4)) != stored_crc) {
      // A complete record never tears (appends are single writes), so a
      // bad CRC here is corruption, not a crash artifact.
      return Status::Corruption(
          "WAL '" + path + "': checksum mismatch in record at byte " +
          std::to_string(pos));
    }
    switch (op) {
      case kWalDelete:
      case kWalInsert: {
        if (open_group_first != SIZE_MAX) {
          return Status::Corruption(
              "WAL '" + path + "': bare record at byte " +
              std::to_string(pos) + " inside an uncommitted group");
        }
        if (have_prev && rec.seq != prev_seq + 1) {
          return Status::Corruption("WAL '" + path +
                                    "': sequence gap after seq " +
                                    std::to_string(prev_seq));
        }
        have_prev = true;
        prev_seq = rec.seq;
        rec.is_insert = op == kWalInsert;
        result.segments.push_back({result.records.size(), 1, false});
        result.records.push_back(rec);
        result.valid_bytes = pos + kWalRecordBytes;
        break;
      }
      case kWalGroupDelete:
      case kWalGroupInsert: {
        if (open_group_first == SIZE_MAX) {
          open_group_first = result.records.size();
        }
        if (have_prev && rec.seq != prev_seq + 1) {
          return Status::Corruption("WAL '" + path +
                                    "': sequence gap after seq " +
                                    std::to_string(prev_seq));
        }
        have_prev = true;
        prev_seq = rec.seq;
        rec.is_insert = op == kWalGroupInsert;
        result.records.push_back(rec);
        // valid_bytes deliberately not advanced: a member without its
        // commit marker is not durable.
        break;
      }
      case kWalGroupCommit: {
        if (open_group_first == SIZE_MAX) {
          return Status::Corruption("WAL '" + path +
                                    "': group commit with no members at byte " +
                                    std::to_string(pos));
        }
        const size_t count = result.records.size() - open_group_first;
        if (rec.u != count) {
          return Status::Corruption(
              "WAL '" + path + "': group commit at byte " +
              std::to_string(pos) + " claims " + std::to_string(rec.u) +
              " members, found " + std::to_string(count));
        }
        if (rec.seq != prev_seq) {
          return Status::Corruption(
              "WAL '" + path + "': group commit at byte " +
              std::to_string(pos) + " seq " + std::to_string(rec.seq) +
              " does not match last member seq " + std::to_string(prev_seq));
        }
        result.segments.push_back({open_group_first, count, true});
        open_group_first = SIZE_MAX;
        result.valid_bytes = pos + kWalRecordBytes;
        break;
      }
      default:
        return Status::Corruption("WAL '" + path +
                                  "': unknown record type " +
                                  std::to_string(op) + " at byte " +
                                  std::to_string(pos));
    }
    pos += kWalRecordBytes;
  }
  if (open_group_first != SIZE_MAX) {
    // Crash inside the group-commit window: the members landed but the
    // commit marker did not. Drop them — the epoch was never durable —
    // and recover to the last committed boundary.
    result.records.resize(open_group_first);
    result.torn_group = true;
  }
  return result;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  if (fio::Truncate(FaultSite::kWalTruncate, path.c_str(),
                    static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("cannot truncate WAL '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace dkc
