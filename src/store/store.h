// DurableStore — the serving foundation: a DynamicSolver whose state
// survives the process.
//
// Durability contract:
//  * Apply = validate → WAL append (fsync) → in-memory engine apply. An
//    acknowledged update is on disk before it is visible in memory.
//  * ApplyBatch = validate the whole epoch → WAL *group commit* (members
//    + commit marker, one buffered write, one fsync) → engine epoch
//    apply. N updates, one fsync — the throughput path. A crash anywhere
//    inside the group window (during the append, or between the flush and
//    the engine apply) recovers to the previous epoch boundary: members
//    without a commit marker are never replayed.
//  * Checkpoint = atomic snapshot publish (at the current seq), then WAL
//    compaction to empty. A crash between the two leaves WAL records the
//    snapshot already covers; recovery skips them by sequence number.
//  * Open = load snapshot, scan WAL (truncating a torn tail), replay the
//    records past the snapshot's seq through the engine. Because the
//    snapshot captures the engine state verbatim and every update is
//    deterministic, the recovered solver is byte-identical to the one
//    that never crashed — same solution, same candidate index, same
//    future tie-breaks (store_test pins this at injected kill points).
//    Deterministic replay presumes deterministic budgets: a wall-clock
//    update_budget.time_ms waives byte-identity (max_branch_nodes keeps
//    it).
//
// Corruption is never repaired silently: a bit-flipped snapshot section or
// WAL record fails Open with Corruption. Only a *torn tail* — the unique
// signature of a crash mid-append — is truncated away.
//
// Syscall-failure policy (the sealed/Reopen lifecycle):
//  * A *validation* failure (InvalidArgument/NotFound, or a batch that
//    fails ValidateBatch) is a clean refusal — nothing was logged, nothing
//    changed, the store keeps serving and accepting updates.
//  * Any *post-validation I/O error* — a failed WAL append/flush/fsync, a
//    failed snapshot publish or WAL compaction inside Checkpoint — SEALS
//    the store: the in-memory engine stays consistent and reads keep
//    working (solver(), published views), but every further
//    Apply/ApplyBatch/Checkpoint refuses with the sealing Status. Sealing
//    is deliberate: after e.g. a failed fsync the durable boundary on disk
//    is unknown (the kernel may have dropped the dirty pages), so
//    acknowledging anything more would risk silent loss.
//  * Reopen() is the only way out of sealed: it closes the writer, cuts
//    the WAL back to the *acknowledged* boundary (durable-but-unacked
//    records past applied_seq() were never acknowledged to any caller and
//    must not survive), and re-runs full crash recovery from disk. On
//    success the store is unsealed with state byte-identical to a
//    never-faulted run over the acknowledged prefix; on failure (fault
//    still present) it stays sealed and Reopen can be retried —
//    RetryReopen wraps that loop in capped exponential backoff.

#ifndef DKC_STORE_STORE_H_
#define DKC_STORE_STORE_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dynamic/dynamic_solver.h"
#include "dynamic/workload.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace dkc {

struct StoreOptions {
  /// Engine configuration. On Create, dynamic.k selects the solve; on
  /// Open, k comes from the snapshot and dynamic.k is overridden.
  DynamicOptions dynamic;
  /// Auto-checkpoint after this many applied updates (0 = manual only).
  /// Checkpoints land only at update/epoch boundaries, so a snapshot
  /// never straddles a WAL group.
  uint64_t checkpoint_every = 0;
  /// fsync the WAL on every Append/AppendGroup. Turning this off trades
  /// the acknowledged-updates-survive guarantee for throughput (recovery
  /// is still correct, it just replays a shorter intact prefix).
  bool sync_every_append = true;
  /// Crash-injection hook (tests/CI): called inside the group-commit
  /// window of ApplyBatch — after the WAL group is flushed, before the
  /// engine applies the epoch — with the group's last seq. Production
  /// leaves it empty.
  std::function<void(uint64_t)> after_group_flush;
  /// Total published snapshots retained, the live one included (min 1 =
  /// today's behaviour: only the live file). With N > 1, Checkpoint first
  /// hard-links the outgoing snapshot aside as "<snapshot_path>.<seq>"
  /// (the applied seq it covers — compaction-safe: every checkpoint also
  /// compacts the WAL, so a retained file is a complete point-in-time
  /// state needing no log) before publishing the new one, then prunes the
  /// oldest beyond N-1. The link-aside precedes the publish, so a crash at
  /// any point leaves a complete snapshot at the primary path.
  int keep_snapshots = 1;
};

class DurableStore {
 public:
  /// Bootstrap a new store: solve `g` statically (options.dynamic), write
  /// the initial snapshot at seq 0 and an empty WAL. Overwrites any
  /// existing files at the two paths.
  static StatusOr<DurableStore> Create(const Graph& g,
                                       const std::string& snapshot_path,
                                       const std::string& wal_path,
                                       const StoreOptions& options);

  /// Crash recovery: snapshot + WAL tail replay (see header comment).
  static StatusOr<DurableStore> Open(const std::string& snapshot_path,
                                     const std::string& wal_path,
                                     const StoreOptions& options);

  /// Log and apply one edge update. InvalidArgument/NotFound for updates
  /// the engine would reject (nothing is logged for those).
  Status Apply(const UpdateOp& op);

  /// Log and apply one epoch of updates under group commit: the whole
  /// batch is validated first (rejected atomically with nothing logged if
  /// any op is invalid), appended as one WAL group frame with a single
  /// fsync, then applied through DynamicSolver::ApplyBatch. An empty
  /// batch is a no-op.
  Status ApplyBatch(std::span<const UpdateOp> ops);

  /// Snapshot now and compact the WAL. With keep_snapshots > 1 the
  /// outgoing snapshot is retained aside first (see StoreOptions).
  Status Checkpoint();

  /// True once a post-validation I/O error has sealed the store: reads
  /// keep working, every mutation refuses with seal_status() (see header
  /// comment).
  bool sealed() const { return !seal_.ok(); }
  /// The first sealing error (OK while unsealed).
  const Status& seal_status() const { return seal_; }

  /// The only exit from sealed: cut the WAL to the acknowledged boundary
  /// and re-run crash recovery from disk, re-arming ingest on success.
  /// InvalidArgument if the store is not sealed. On failure the store
  /// stays sealed (with the original sealing status) and Reopen may be
  /// retried once the fault clears.
  Status Reopen();

  /// Open a snapshot file — typically a retained "<snapshot_path>.<seq>"
  /// rotation — as a standalone point-in-time engine, without touching the
  /// live store or any WAL. `dynamic.k` is overridden by the snapshot's.
  static StatusOr<DynamicSolver> LoadPointInTime(
      const std::string& snapshot_file, const DynamicOptions& dynamic);

  DynamicSolver& solver() { return *solver_; }
  const DynamicSolver& solver() const { return *solver_; }

  /// Sequence number of the last applied update (0 = none yet).
  uint64_t applied_seq() const { return applied_seq_; }
  /// applied_seq of the most recent snapshot.
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

  /// Recovery accounting from Open (zero after Create).
  uint64_t replayed_records() const { return replayed_records_; }
  bool recovered_torn_tail() const { return recovered_torn_tail_; }
  /// True iff Open dropped group members with no commit marker — the
  /// signature of a crash inside the group-commit window.
  bool recovered_torn_group() const { return recovered_torn_group_; }

  const std::string& snapshot_path() const { return snapshot_path_; }
  const std::string& wal_path() const { return wal_path_; }

  /// Applied seqs of the retained point-in-time snapshots, ascending. The
  /// live snapshot_path file is not listed. Rediscovered by directory scan
  /// on Open; cleared (and the files deleted) by Create.
  const std::vector<uint64_t>& retained_snapshots() const {
    return retained_snapshots_;
  }

 private:
  DurableStore(DynamicSolver solver, WalWriter wal, std::string snapshot_path,
               std::string wal_path, const StoreOptions& options)
      : solver_(std::move(solver)),
        wal_(std::move(wal)),
        snapshot_path_(std::move(snapshot_path)),
        wal_path_(std::move(wal_path)),
        options_(options) {}

  /// "<snapshot_path>.<digits>" files next to the live snapshot, ascending
  /// by seq.
  static std::vector<uint64_t> ScanRetained(const std::string& snapshot_path);

  /// Record `status` as the sealing error (first one wins) and return it.
  Status Seal(Status status);

  std::optional<DynamicSolver> solver_;  // engaged for the object's lifetime
  std::optional<WalWriter> wal_;
  Status seal_ = Status::OK();
  std::vector<uint64_t> retained_snapshots_;
  std::string snapshot_path_;
  std::string wal_path_;
  StoreOptions options_;
  uint64_t applied_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t replayed_records_ = 0;
  bool recovered_torn_tail_ = false;
  bool recovered_torn_group_ = false;
};

/// Policy for RetryReopen's backoff loop. The sleep is a seam so tests and
/// the serve drill can run the whole schedule on a fake clock.
struct ReopenRetryOptions {
  int max_attempts = 8;
  uint64_t initial_backoff_ms = 10;
  uint64_t max_backoff_ms = 1000;  // cap for the exponential doubling
  /// Sleep seam; empty = std::this_thread::sleep_for. Called with the
  /// backoff before every attempt after the first.
  std::function<void(uint64_t)> sleep_ms;
  /// Reopen seam; empty = store->Reopen(). Serve overrides this to take
  /// its reader-handshake lock around each attempt.
  std::function<Status()> reopen;
};

/// Retry `store->Reopen()` (or options.reopen) up to max_attempts times
/// with capped exponential backoff. OK as soon as one attempt unseals the
/// store; otherwise the last attempt's error.
Status RetryReopen(DurableStore* store, const ReopenRetryOptions& options);

}  // namespace dkc

#endif  // DKC_STORE_STORE_H_
