// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// guarding every snapshot section and WAL record in the durable store.
// Software table implementation; the store's payloads are megabytes at
// most, far from needing the hardware CRC instructions.

#ifndef DKC_STORE_CRC32_H_
#define DKC_STORE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace dkc {

/// CRC-32 of `data`. `seed` chains multi-buffer checksums: pass the
/// previous call's result to continue (0 starts a fresh checksum).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace dkc

#endif  // DKC_STORE_CRC32_H_
