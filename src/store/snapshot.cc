#include "store/snapshot.h"

#include <fstream>
#include <sstream>

#include "io/atomic_file.h"
#include "io/fault.h"
#include "store/crc32.h"
#include "util/binio.h"

namespace dkc {
namespace {

constexpr char kMagic[8] = {'D', 'K', 'C', 'S', 'N', 'A', 'P', '1'};
constexpr uint32_t kFormatVersion = 1;

// Section ids. Meta first so readers can report k/seq even when a later
// section is damaged (they still refuse to load it).
constexpr uint32_t kSectionMeta = 1;
constexpr uint32_t kSectionGraph = 2;
constexpr uint32_t kSectionState = 3;

void AppendSection(std::string* out, uint32_t id, const std::string& payload) {
  PutU32(out, id);
  PutU64(out, payload.size());
  PutU32(out, Crc32(payload));
  out->append(payload);
}

Status Corrupt(const std::string& what, const std::string& path) {
  return Status::Corruption("snapshot '" + path + "': " + what);
}

}  // namespace

Status WriteSnapshot(const SolutionState& state, uint64_t applied_seq,
                     const std::string& path) {
  std::string meta;
  PutU32(&meta, static_cast<uint32_t>(state.k()));
  PutU64(&meta, applied_seq);
  PutU64(&meta, state.graph().num_nodes());
  PutU64(&meta, state.graph().num_edges());

  std::string graph_blob;
  state.SerializeGraphTo(&graph_blob);
  std::string state_blob;
  state.SerializeStateTo(&state_blob);

  std::string file;
  file.reserve(64 + meta.size() + graph_blob.size() + state_blob.size());
  file.append(kMagic, sizeof(kMagic));
  PutU32(&file, kFormatVersion);
  PutU32(&file, 3);  // section count
  AppendSection(&file, kSectionMeta, meta);
  AppendSection(&file, kSectionGraph, graph_blob);
  AppendSection(&file, kSectionState, state_blob);
  PutU32(&file, Crc32(file));  // whole-file CRC

  return AtomicWriteFile(path, file);
}

StatusOr<LoadedSnapshot> ReadSnapshot(const std::string& path) {
  DKC_RETURN_IF_ERROR(fio::Probe(FaultSite::kSnapshotReadOpen,
                                 "cannot open snapshot '" + path + "'"));
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open snapshot '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("cannot read snapshot '" + path + "'");
  const std::string file = buffer.str();

  if (file.size() < sizeof(kMagic) + 12 ||
      file.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic", path);
  }
  // Whole-file CRC first: any flip anywhere (header, section table,
  // payloads) fails here before a single field is trusted.
  const std::string_view body(file.data(), file.size() - 4);
  ByteReader tail(std::string_view(file).substr(file.size() - 4));
  if (Crc32(body) != tail.U32()) {
    return Corrupt("whole-file checksum mismatch", path);
  }

  ByteReader reader(body);
  reader.Bytes(sizeof(kMagic));
  const uint32_t version = reader.U32();
  if (version != kFormatVersion) {
    return Corrupt("unsupported format version " + std::to_string(version),
                   path);
  }
  const uint32_t sections = reader.U32();
  std::string_view meta_blob, graph_blob, state_blob;
  for (uint32_t i = 0; i < sections; ++i) {
    const uint32_t id = reader.U32();
    const uint64_t size = reader.U64();
    const uint32_t crc = reader.U32();
    const std::string_view payload = reader.Bytes(static_cast<size_t>(size));
    if (reader.failed()) return Corrupt("truncated section table", path);
    if (Crc32(payload) != crc) {
      return Corrupt("section " + std::to_string(id) + " checksum mismatch",
                     path);
    }
    switch (id) {
      case kSectionMeta: meta_blob = payload; break;
      case kSectionGraph: graph_blob = payload; break;
      case kSectionState: state_blob = payload; break;
      default: break;  // unknown sections tolerated (forward compat)
    }
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes", path);
  if (meta_blob.empty() || graph_blob.empty() || state_blob.empty()) {
    return Corrupt("missing required section", path);
  }

  LoadedSnapshot loaded;
  ByteReader meta(meta_blob);
  loaded.meta.k = static_cast<int>(meta.U32());
  loaded.meta.applied_seq = meta.U64();
  loaded.meta.num_nodes = meta.U64();
  loaded.meta.num_edges = meta.U64();
  if (!meta.AtEnd()) return Corrupt("malformed meta section", path);

  auto state = SolutionState::Deserialize(graph_blob, state_blob);
  if (!state.ok()) {
    return Corrupt(state.status().message(), path);
  }
  loaded.state = std::move(state).value();
  if (loaded.meta.k != loaded.state->k() ||
      loaded.meta.num_nodes != loaded.state->graph().num_nodes() ||
      loaded.meta.num_edges != loaded.state->graph().num_edges()) {
    return Corrupt("meta section disagrees with engine state", path);
  }
  return loaded;
}

}  // namespace dkc
