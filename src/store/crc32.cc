#include "store/crc32.h"

#include <array>

namespace dkc {
namespace {

constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kCrcTable[(c ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dkc
