#include "store/store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "io/atomic_file.h"

namespace dkc {
namespace {

std::string RetainedName(const std::string& snapshot_path, uint64_t seq) {
  return snapshot_path + "." + std::to_string(seq);
}

}  // namespace

std::vector<uint64_t> DurableStore::ScanRetained(
    const std::string& snapshot_path) {
  namespace fs = std::filesystem;
  const fs::path path(snapshot_path);
  const fs::path dir =
      path.parent_path().empty() ? fs::path(".") : path.parent_path();
  const std::string prefix = path.filename().string() + ".";
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    seqs.push_back(std::stoull(suffix));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

StatusOr<DynamicSolver> DurableStore::LoadPointInTime(
    const std::string& snapshot_file, const DynamicOptions& dynamic) {
  auto loaded = ReadSnapshot(snapshot_file);
  if (!loaded.ok()) return loaded.status();
  DynamicOptions options = dynamic;
  options.k = loaded->meta.k;
  return DynamicSolver::FromState(std::move(loaded->state), options);
}

StatusOr<DurableStore> DurableStore::Create(const Graph& g,
                                            const std::string& snapshot_path,
                                            const std::string& wal_path,
                                            const StoreOptions& options) {
  auto solver = DynamicSolver::Build(g, options.dynamic);
  if (!solver.ok()) return solver.status();
  DKC_RETURN_IF_ERROR(WriteSnapshot(solver->state(), 0, snapshot_path));
  // Atomic reset rather than truncate: a stale WAL from a previous store
  // at this path must not replay into the fresh one — and likewise any
  // retained snapshot rotations of that previous store must not be
  // mistaken for this one's history.
  for (uint64_t seq : ScanRetained(snapshot_path)) {
    std::remove(RetainedName(snapshot_path, seq).c_str());
  }
  DKC_RETURN_IF_ERROR(AtomicWriteFile(wal_path, ""));
  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  return DurableStore(std::move(solver).value(), std::move(wal).value(),
                      snapshot_path, wal_path, options);
}

StatusOr<DurableStore> DurableStore::Open(const std::string& snapshot_path,
                                          const std::string& wal_path,
                                          const StoreOptions& options) {
  auto loaded = ReadSnapshot(snapshot_path);
  if (!loaded.ok()) return loaded.status();

  auto scan = ReadWal(wal_path);
  if (!scan.ok()) return scan.status();
  if (scan->torn_tail || scan->torn_group) {
    // Both cuts land on a committed boundary: a torn final write, or a
    // group whose commit marker never hit the disk (a crash inside the
    // group-commit window) — either way valid_bytes is the last durable
    // epoch/update boundary.
    DKC_RETURN_IF_ERROR(TruncateWal(wal_path, scan->valid_bytes));
  }

  DynamicOptions dynamic = options.dynamic;
  dynamic.k = loaded->meta.k;
  auto solver = DynamicSolver::FromState(std::move(loaded->state), dynamic);
  if (!solver.ok()) return solver.status();

  // Replay the tail past the snapshot, segment by segment — a segment is
  // one bare record or one committed group (an epoch), replayed through
  // the same engine entry point the original run used so recovery is
  // byte-identical. Segments at or before applied_seq are already
  // reflected (a crash can land between the snapshot publish and the WAL
  // compaction of a checkpoint); anything else must chain consecutively
  // from applied_seq. Checkpoints only land at segment boundaries, so a
  // segment straddling the snapshot seq is corruption.
  uint64_t seq = loaded->meta.applied_seq;
  uint64_t replayed = 0;
  for (const WalSegment& seg : scan->segments) {
    const WalRecord& first = scan->records[seg.first];
    const WalRecord& last = scan->records[seg.first + seg.count - 1];
    if (last.seq <= seq) continue;
    if (first.seq <= seq) {
      return Status::Corruption(
          "WAL '" + wal_path + "' group [" + std::to_string(first.seq) +
          ", " + std::to_string(last.seq) +
          "] straddles the snapshot boundary " + std::to_string(seq));
    }
    if (first.seq != seq + 1) {
      return Status::Corruption(
          "WAL '" + wal_path + "' starts at seq " + std::to_string(first.seq) +
          " but snapshot covers through " + std::to_string(seq));
    }
    Status applied = Status::OK();
    if (seg.batched) {
      std::vector<UpdateOp> ops(seg.count);
      for (size_t j = 0; j < seg.count; ++j) {
        const WalRecord& rec = scan->records[seg.first + j];
        ops[j] = UpdateOp{rec.is_insert, {rec.u, rec.v}};
      }
      applied = solver->ApplyBatch(ops);
    } else {
      applied = first.is_insert ? solver->InsertEdge(first.u, first.v)
                                : solver->DeleteEdge(first.u, first.v);
    }
    if (!applied.ok()) {
      // Apply/ApplyBatch validate before logging, so every logged segment
      // must apply cleanly to the deterministic replay state.
      return Status::Corruption("WAL '" + wal_path + "' segment at seq " +
                                std::to_string(first.seq) +
                                " rejected on replay: " + applied.ToString());
    }
    seq = last.seq;
    replayed += seg.count;
  }

  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  DurableStore store(std::move(solver).value(), std::move(wal).value(),
                     snapshot_path, wal_path, options);
  store.applied_seq_ = seq;
  store.checkpoint_seq_ = loaded->meta.applied_seq;
  store.replayed_records_ = replayed;
  store.recovered_torn_tail_ = scan->torn_tail;
  store.recovered_torn_group_ = scan->torn_group;
  store.retained_snapshots_ = ScanRetained(snapshot_path);
  return store;
}

Status DurableStore::Apply(const UpdateOp& op) {
  const auto [u, v] = op.edge;
  // Validate against the live graph before logging: the WAL must contain
  // only records that replay cleanly.
  if (op.is_insert) {
    if (u == v) return Status::InvalidArgument("self loop");
    if (solver_->graph().HasEdge(u, v)) {
      return Status::InvalidArgument("edge already present");
    }
  } else if (!solver_->graph().HasEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }

  WalRecord rec;
  rec.seq = applied_seq_ + 1;
  rec.is_insert = op.is_insert;
  rec.u = u;
  rec.v = v;
  DKC_RETURN_IF_ERROR(wal_->Append(rec, options_.sync_every_append));

  const Status applied =
      op.is_insert ? solver_->InsertEdge(u, v) : solver_->DeleteEdge(u, v);
  if (!applied.ok()) {
    return Status::Internal("validated update rejected by engine: " +
                            applied.ToString());
  }
  applied_seq_ = rec.seq;

  if (options_.checkpoint_every > 0 &&
      applied_seq_ - checkpoint_seq_ >= options_.checkpoint_every) {
    return Checkpoint();
  }
  return Status::OK();
}

Status DurableStore::ApplyBatch(std::span<const UpdateOp> ops) {
  if (ops.empty()) return Status::OK();
  // Validate the whole epoch before logging — atomic reject, nothing
  // hits the WAL; the log must contain only groups that replay cleanly.
  DKC_RETURN_IF_ERROR(solver_->ValidateBatch(ops));

  std::vector<WalRecord> recs(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    recs[i].seq = applied_seq_ + 1 + i;
    recs[i].is_insert = ops[i].is_insert;
    recs[i].u = ops[i].edge.first;
    recs[i].v = ops[i].edge.second;
  }
  // The group-commit durability point: members + commit marker in one
  // buffered write, one fsync for the whole epoch.
  DKC_RETURN_IF_ERROR(wal_->AppendGroup(recs, options_.sync_every_append));
  if (options_.after_group_flush) options_.after_group_flush(recs.back().seq);

  const Status applied = solver_->ApplyBatch(ops);
  if (!applied.ok()) {
    return Status::Internal("validated batch rejected by engine: " +
                            applied.ToString());
  }
  applied_seq_ = recs.back().seq;

  if (options_.checkpoint_every > 0 &&
      applied_seq_ - checkpoint_seq_ >= options_.checkpoint_every) {
    return Checkpoint();
  }
  return Status::OK();
}

Status DurableStore::Checkpoint() {
  // Retention: hard-link the outgoing snapshot aside under the seq it
  // covers BEFORE the publish replaces the primary path — the atomic
  // rename swaps the inode out, so the link keeps the old bytes, and a
  // crash anywhere in this sequence still leaves a complete snapshot at
  // snapshot_path_. Skipped when nothing new would be published (the
  // retained copy would duplicate the incoming live snapshot).
  if (options_.keep_snapshots > 1 && checkpoint_seq_ < applied_seq_) {
    if (!std::binary_search(retained_snapshots_.begin(),
                            retained_snapshots_.end(), checkpoint_seq_)) {
      const std::string aside = RetainedName(snapshot_path_, checkpoint_seq_);
      std::remove(aside.c_str());  // untracked leftover from a crash
      if (::link(snapshot_path_.c_str(), aside.c_str()) != 0) {
        return Status::IOError("link '" + snapshot_path_ + "' -> '" + aside +
                               "': " + std::strerror(errno));
      }
      // checkpoint_seq_ only grows, so appending keeps the list sorted.
      retained_snapshots_.push_back(checkpoint_seq_);
    }
  }
  DKC_RETURN_IF_ERROR(
      WriteSnapshot(solver_->state(), applied_seq_, snapshot_path_));
  // The snapshot now covers every logged record; compact the WAL. Crash
  // before this point: Open skips the covered records by seq.
  wal_.reset();  // close before replacing the inode
  DKC_RETURN_IF_ERROR(AtomicWriteFile(wal_path_, ""));
  auto wal = WalWriter::Open(wal_path_);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  checkpoint_seq_ = applied_seq_;
  ++checkpoints_taken_;
  // Enforce the retention window (also shrinks history when a store is
  // reopened with a smaller keep_snapshots).
  const size_t keep = options_.keep_snapshots > 1
                          ? static_cast<size_t>(options_.keep_snapshots) - 1
                          : 0;
  while (retained_snapshots_.size() > keep) {
    std::remove(
        RetainedName(snapshot_path_, retained_snapshots_.front()).c_str());
    retained_snapshots_.erase(retained_snapshots_.begin());
  }
  return Status::OK();
}

}  // namespace dkc
