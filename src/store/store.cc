#include "store/store.h"

#include <utility>

#include "io/atomic_file.h"

namespace dkc {

StatusOr<DurableStore> DurableStore::Create(const Graph& g,
                                            const std::string& snapshot_path,
                                            const std::string& wal_path,
                                            const StoreOptions& options) {
  auto solver = DynamicSolver::Build(g, options.dynamic);
  if (!solver.ok()) return solver.status();
  DKC_RETURN_IF_ERROR(WriteSnapshot(solver->state(), 0, snapshot_path));
  // Atomic reset rather than truncate: a stale WAL from a previous store
  // at this path must not replay into the fresh one.
  DKC_RETURN_IF_ERROR(AtomicWriteFile(wal_path, ""));
  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  return DurableStore(std::move(solver).value(), std::move(wal).value(),
                      snapshot_path, wal_path, options);
}

StatusOr<DurableStore> DurableStore::Open(const std::string& snapshot_path,
                                          const std::string& wal_path,
                                          const StoreOptions& options) {
  auto loaded = ReadSnapshot(snapshot_path);
  if (!loaded.ok()) return loaded.status();

  auto scan = ReadWal(wal_path);
  if (!scan.ok()) return scan.status();
  if (scan->torn_tail) {
    DKC_RETURN_IF_ERROR(TruncateWal(wal_path, scan->valid_bytes));
  }

  DynamicOptions dynamic = options.dynamic;
  dynamic.k = loaded->meta.k;
  auto solver = DynamicSolver::FromState(std::move(loaded->state), dynamic);
  if (!solver.ok()) return solver.status();

  // Replay the tail past the snapshot. Records at or before applied_seq
  // are already reflected (a crash can land between the snapshot publish
  // and the WAL compaction of a checkpoint); anything else must chain
  // consecutively from applied_seq.
  uint64_t seq = loaded->meta.applied_seq;
  uint64_t replayed = 0;
  for (const WalRecord& rec : scan->records) {
    if (rec.seq <= seq) continue;
    if (rec.seq != seq + 1) {
      return Status::Corruption(
          "WAL '" + wal_path + "' starts at seq " + std::to_string(rec.seq) +
          " but snapshot covers through " + std::to_string(seq));
    }
    const Status applied = rec.is_insert
                               ? solver->InsertEdge(rec.u, rec.v)
                               : solver->DeleteEdge(rec.u, rec.v);
    if (!applied.ok()) {
      // Apply validates before logging, so every logged record must
      // apply cleanly to the deterministic replay state.
      return Status::Corruption("WAL '" + wal_path + "' record seq " +
                                std::to_string(rec.seq) +
                                " rejected on replay: " + applied.ToString());
    }
    seq = rec.seq;
    ++replayed;
  }

  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  DurableStore store(std::move(solver).value(), std::move(wal).value(),
                     snapshot_path, wal_path, options);
  store.applied_seq_ = seq;
  store.checkpoint_seq_ = loaded->meta.applied_seq;
  store.replayed_records_ = replayed;
  store.recovered_torn_tail_ = scan->torn_tail;
  return store;
}

Status DurableStore::Apply(const UpdateOp& op) {
  const auto [u, v] = op.edge;
  // Validate against the live graph before logging: the WAL must contain
  // only records that replay cleanly.
  if (op.is_insert) {
    if (u == v) return Status::InvalidArgument("self loop");
    if (solver_->graph().HasEdge(u, v)) {
      return Status::InvalidArgument("edge already present");
    }
  } else if (!solver_->graph().HasEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }

  WalRecord rec;
  rec.seq = applied_seq_ + 1;
  rec.is_insert = op.is_insert;
  rec.u = u;
  rec.v = v;
  DKC_RETURN_IF_ERROR(wal_->Append(rec, options_.sync_every_append));

  const Status applied =
      op.is_insert ? solver_->InsertEdge(u, v) : solver_->DeleteEdge(u, v);
  if (!applied.ok()) {
    return Status::Internal("validated update rejected by engine: " +
                            applied.ToString());
  }
  applied_seq_ = rec.seq;

  if (options_.checkpoint_every > 0 &&
      applied_seq_ - checkpoint_seq_ >= options_.checkpoint_every) {
    return Checkpoint();
  }
  return Status::OK();
}

Status DurableStore::Checkpoint() {
  DKC_RETURN_IF_ERROR(
      WriteSnapshot(solver_->state(), applied_seq_, snapshot_path_));
  // The snapshot now covers every logged record; compact the WAL. Crash
  // before this point: Open skips the covered records by seq.
  wal_.reset();  // close before replacing the inode
  DKC_RETURN_IF_ERROR(AtomicWriteFile(wal_path_, ""));
  auto wal = WalWriter::Open(wal_path_);
  if (!wal.ok()) return wal.status();
  wal_ = std::move(wal).value();
  checkpoint_seq_ = applied_seq_;
  ++checkpoints_taken_;
  return Status::OK();
}

}  // namespace dkc
