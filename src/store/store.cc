#include "store/store.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "io/atomic_file.h"
#include "io/fault.h"

namespace dkc {
namespace {

std::string RetainedName(const std::string& snapshot_path, uint64_t seq) {
  return snapshot_path + "." + std::to_string(seq);
}

}  // namespace

std::vector<uint64_t> DurableStore::ScanRetained(
    const std::string& snapshot_path) {
  namespace fs = std::filesystem;
  const fs::path path(snapshot_path);
  const fs::path dir =
      path.parent_path().empty() ? fs::path(".") : path.parent_path();
  const std::string prefix = path.filename().string() + ".";
  std::vector<uint64_t> seqs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = name.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    seqs.push_back(std::stoull(suffix));
  }
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

StatusOr<DynamicSolver> DurableStore::LoadPointInTime(
    const std::string& snapshot_file, const DynamicOptions& dynamic) {
  auto loaded = ReadSnapshot(snapshot_file);
  if (!loaded.ok()) return loaded.status();
  DynamicOptions options = dynamic;
  options.k = loaded->meta.k;
  return DynamicSolver::FromState(std::move(loaded->state), options);
}

StatusOr<DurableStore> DurableStore::Create(const Graph& g,
                                            const std::string& snapshot_path,
                                            const std::string& wal_path,
                                            const StoreOptions& options) {
  auto solver = DynamicSolver::Build(g, options.dynamic);
  if (!solver.ok()) return solver.status();
  DKC_RETURN_IF_ERROR(WriteSnapshot(solver->state(), 0, snapshot_path));
  // Atomic reset rather than truncate: a stale WAL from a previous store
  // at this path must not replay into the fresh one — and likewise any
  // retained snapshot rotations of that previous store must not be
  // mistaken for this one's history.
  for (uint64_t seq : ScanRetained(snapshot_path)) {
    fio::Unlink(FaultSite::kStoreUnlink,
                RetainedName(snapshot_path, seq).c_str());
  }
  DKC_RETURN_IF_ERROR(AtomicWriteFile(wal_path, ""));
  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  return DurableStore(std::move(solver).value(), std::move(wal).value(),
                      snapshot_path, wal_path, options);
}

StatusOr<DurableStore> DurableStore::Open(const std::string& snapshot_path,
                                          const std::string& wal_path,
                                          const StoreOptions& options) {
  auto loaded = ReadSnapshot(snapshot_path);
  if (!loaded.ok()) return loaded.status();

  auto scan = ReadWal(wal_path);
  if (!scan.ok()) return scan.status();
  if (scan->torn_tail || scan->torn_group) {
    // Both cuts land on a committed boundary: a torn final write, or a
    // group whose commit marker never hit the disk (a crash inside the
    // group-commit window) — either way valid_bytes is the last durable
    // epoch/update boundary.
    DKC_RETURN_IF_ERROR(TruncateWal(wal_path, scan->valid_bytes));
  }

  DynamicOptions dynamic = options.dynamic;
  dynamic.k = loaded->meta.k;
  auto solver = DynamicSolver::FromState(std::move(loaded->state), dynamic);
  if (!solver.ok()) return solver.status();

  // Replay the tail past the snapshot, segment by segment — a segment is
  // one bare record or one committed group (an epoch), replayed through
  // the same engine entry point the original run used so recovery is
  // byte-identical. Segments at or before applied_seq are already
  // reflected (a crash can land between the snapshot publish and the WAL
  // compaction of a checkpoint); anything else must chain consecutively
  // from applied_seq. Checkpoints only land at segment boundaries, so a
  // segment straddling the snapshot seq is corruption.
  uint64_t seq = loaded->meta.applied_seq;
  uint64_t replayed = 0;
  for (const WalSegment& seg : scan->segments) {
    const WalRecord& first = scan->records[seg.first];
    const WalRecord& last = scan->records[seg.first + seg.count - 1];
    if (last.seq <= seq) continue;
    if (first.seq <= seq) {
      return Status::Corruption(
          "WAL '" + wal_path + "' group [" + std::to_string(first.seq) +
          ", " + std::to_string(last.seq) +
          "] straddles the snapshot boundary " + std::to_string(seq));
    }
    if (first.seq != seq + 1) {
      return Status::Corruption(
          "WAL '" + wal_path + "' starts at seq " + std::to_string(first.seq) +
          " but snapshot covers through " + std::to_string(seq));
    }
    Status applied = Status::OK();
    if (seg.batched) {
      std::vector<UpdateOp> ops(seg.count);
      for (size_t j = 0; j < seg.count; ++j) {
        const WalRecord& rec = scan->records[seg.first + j];
        ops[j] = UpdateOp{rec.is_insert, {rec.u, rec.v}};
      }
      applied = solver->ApplyBatch(ops);
    } else {
      applied = first.is_insert ? solver->InsertEdge(first.u, first.v)
                                : solver->DeleteEdge(first.u, first.v);
    }
    if (!applied.ok()) {
      // Apply/ApplyBatch validate before logging, so every logged segment
      // must apply cleanly to the deterministic replay state.
      return Status::Corruption("WAL '" + wal_path + "' segment at seq " +
                                std::to_string(first.seq) +
                                " rejected on replay: " + applied.ToString());
    }
    seq = last.seq;
    replayed += seg.count;
  }

  auto wal = WalWriter::Open(wal_path);
  if (!wal.ok()) return wal.status();
  DurableStore store(std::move(solver).value(), std::move(wal).value(),
                     snapshot_path, wal_path, options);
  store.applied_seq_ = seq;
  store.checkpoint_seq_ = loaded->meta.applied_seq;
  store.replayed_records_ = replayed;
  store.recovered_torn_tail_ = scan->torn_tail;
  store.recovered_torn_group_ = scan->torn_group;
  store.retained_snapshots_ = ScanRetained(snapshot_path);
  return store;
}

Status DurableStore::Seal(Status status) {
  if (seal_.ok()) seal_ = status;
  return status;
}

Status DurableStore::Apply(const UpdateOp& op) {
  if (sealed()) return seal_;
  const auto [u, v] = op.edge;
  // Validate against the live graph before logging: the WAL must contain
  // only records that replay cleanly.
  if (op.is_insert) {
    if (u == v) return Status::InvalidArgument("self loop");
    if (solver_->graph().HasEdge(u, v)) {
      return Status::InvalidArgument("edge already present");
    }
  } else if (!solver_->graph().HasEdge(u, v)) {
    return Status::NotFound("edge does not exist");
  }

  WalRecord rec;
  rec.seq = applied_seq_ + 1;
  rec.is_insert = op.is_insert;
  rec.u = u;
  rec.v = v;
  const Status logged = wal_->Append(rec, options_.sync_every_append);
  // Past validation, every failure seals: a failed append/sync leaves the
  // durable boundary unknown (see the header's syscall-failure policy).
  if (!logged.ok()) return Seal(logged);

  const Status applied =
      op.is_insert ? solver_->InsertEdge(u, v) : solver_->DeleteEdge(u, v);
  if (!applied.ok()) {
    return Seal(Status::Internal("validated update rejected by engine: " +
                                 applied.ToString()));
  }
  applied_seq_ = rec.seq;

  if (options_.checkpoint_every > 0 &&
      applied_seq_ - checkpoint_seq_ >= options_.checkpoint_every) {
    // The update itself is durable and applied, so it stays acknowledged
    // no matter how the auto-checkpoint fares: a checkpoint I/O failure
    // seals the store (visible via sealed()) without retracting the ack —
    // returning the error here would leave the caller unable to tell an
    // un-acknowledged update from an acknowledged one that merely failed
    // to checkpoint.
    (void)Checkpoint();
  }
  return Status::OK();
}

Status DurableStore::ApplyBatch(std::span<const UpdateOp> ops) {
  if (ops.empty()) return Status::OK();
  if (sealed()) return seal_;
  // Validate the whole epoch before logging — atomic reject, nothing
  // hits the WAL; the log must contain only groups that replay cleanly.
  DKC_RETURN_IF_ERROR(solver_->ValidateBatch(ops));

  std::vector<WalRecord> recs(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    recs[i].seq = applied_seq_ + 1 + i;
    recs[i].is_insert = ops[i].is_insert;
    recs[i].u = ops[i].edge.first;
    recs[i].v = ops[i].edge.second;
  }
  // The group-commit durability point: members + commit marker in one
  // buffered write, one fsync for the whole epoch.
  const Status logged = wal_->AppendGroup(recs, options_.sync_every_append);
  if (!logged.ok()) return Seal(logged);
  if (options_.after_group_flush) options_.after_group_flush(recs.back().seq);

  const Status applied = solver_->ApplyBatch(ops);
  if (!applied.ok()) {
    return Seal(Status::Internal("validated batch rejected by engine: " +
                                 applied.ToString()));
  }
  applied_seq_ = recs.back().seq;

  if (options_.checkpoint_every > 0 &&
      applied_seq_ - checkpoint_seq_ >= options_.checkpoint_every) {
    // Acknowledged regardless of the auto-checkpoint outcome — see Apply.
    (void)Checkpoint();
  }
  return Status::OK();
}

Status DurableStore::Checkpoint() {
  if (sealed()) return seal_;
  // Retention: hard-link the outgoing snapshot aside under the seq it
  // covers BEFORE the publish replaces the primary path — the atomic
  // rename swaps the inode out, so the link keeps the old bytes, and a
  // crash anywhere in this sequence still leaves a complete snapshot at
  // snapshot_path_. Skipped when nothing new would be published (the
  // retained copy would duplicate the incoming live snapshot).
  if (options_.keep_snapshots > 1 && checkpoint_seq_ < applied_seq_) {
    if (!std::binary_search(retained_snapshots_.begin(),
                            retained_snapshots_.end(), checkpoint_seq_)) {
      const std::string aside = RetainedName(snapshot_path_, checkpoint_seq_);
      // untracked leftover from a crash
      fio::Unlink(FaultSite::kStoreUnlink, aside.c_str());
      if (fio::Link(FaultSite::kStoreLink, snapshot_path_.c_str(),
                    aside.c_str()) != 0) {
        return Seal(Status::IOError("link '" + snapshot_path_ + "' -> '" +
                                    aside + "': " + std::strerror(errno)));
      }
      // checkpoint_seq_ only grows, so appending keeps the list sorted.
      retained_snapshots_.push_back(checkpoint_seq_);
    }
  }
  const Status published =
      WriteSnapshot(solver_->state(), applied_seq_, snapshot_path_);
  if (!published.ok()) return Seal(published);
  // The snapshot now covers every logged record; compact the WAL. Crash
  // before this point: Open skips the covered records by seq.
  wal_.reset();  // close before replacing the inode
  const Status compacted = AtomicWriteFile(wal_path_, "");
  if (!compacted.ok()) return Seal(compacted);
  auto wal = WalWriter::Open(wal_path_);
  if (!wal.ok()) return Seal(wal.status());
  wal_ = std::move(wal).value();
  checkpoint_seq_ = applied_seq_;
  ++checkpoints_taken_;
  // Enforce the retention window (also shrinks history when a store is
  // reopened with a smaller keep_snapshots). Best-effort like the rest of
  // retention pruning: a failed unlink leaves a stale rotation behind, it
  // does not un-checkpoint the store.
  const size_t keep = options_.keep_snapshots > 1
                          ? static_cast<size_t>(options_.keep_snapshots) - 1
                          : 0;
  while (retained_snapshots_.size() > keep) {
    fio::Unlink(
        FaultSite::kStoreUnlink,
        RetainedName(snapshot_path_, retained_snapshots_.front()).c_str());
    retained_snapshots_.erase(retained_snapshots_.begin());
  }
  return Status::OK();
}

Status DurableStore::Reopen() {
  if (!sealed()) {
    return Status::InvalidArgument("Reopen on a store that is not sealed");
  }
  // Close the writer first: a poisoned writer can still hold torn bytes in
  // its stdio buffer, and the fclose flushes them to disk where the scan
  // below can see (and cut) them.
  wal_.reset();
  auto scan = ReadWal(wal_path_);
  if (!scan.ok()) return scan.status();
  // Acknowledged-boundary cut: a record past applied_seq_ can be durable
  // without ever having been acknowledged — a failed sync after the
  // append landed, or an engine refusal after a successful sync. No
  // caller was told it committed, so it must not replay.
  uint64_t keep = 0;
  uint64_t bytes = 0;
  for (const WalSegment& seg : scan->segments) {
    bytes += (seg.count + (seg.batched ? 1 : 0)) * kWalRecordBytes;
    if (scan->records[seg.first + seg.count - 1].seq > applied_seq_) break;
    keep = bytes;
  }
  DKC_RETURN_IF_ERROR(TruncateWal(wal_path_, keep));
  auto reopened = Open(snapshot_path_, wal_path_, options_);
  if (!reopened.ok()) return reopened.status();
  if (options_.sync_every_append && reopened->applied_seq_ != applied_seq_) {
    // With per-append fsync every acknowledged record is durable, so
    // recovery must land exactly on the acknowledged boundary; anything
    // else would silently rewind history. (Without fsync-per-append the
    // durability contract already waives acknowledged-survive, and a
    // shorter recovered prefix is the documented trade.)
    return Status::Corruption(
        "Reopen recovered seq " + std::to_string(reopened->applied_seq_) +
        " but " + std::to_string(applied_seq_) + " was acknowledged");
  }
  solver_.reset();
  solver_.emplace(std::move(*reopened->solver_));
  wal_ = std::move(*reopened->wal_);
  retained_snapshots_ = std::move(reopened->retained_snapshots_);
  applied_seq_ = reopened->applied_seq_;
  checkpoint_seq_ = reopened->checkpoint_seq_;
  replayed_records_ = reopened->replayed_records_;
  recovered_torn_tail_ = reopened->recovered_torn_tail_;
  recovered_torn_group_ = reopened->recovered_torn_group_;
  seal_ = Status::OK();
  return Status::OK();
}

Status RetryReopen(DurableStore* store, const ReopenRetryOptions& options) {
  if (options.max_attempts <= 0) {
    return Status::InvalidArgument("RetryReopen needs max_attempts >= 1");
  }
  const std::function<Status()> reopen =
      options.reopen ? options.reopen : [store] { return store->Reopen(); };
  uint64_t backoff = options.initial_backoff_ms;
  Status last = Status::OK();
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    if (attempt > 0) {
      if (options.sleep_ms) {
        options.sleep_ms(backoff);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      }
      backoff = std::min(backoff * 2, options.max_backoff_ms);
    }
    last = reopen();
    if (last.ok()) return last;
  }
  return last;
}

}  // namespace dkc
