// Versioned, checksummed binary snapshot of the dynamic engine's complete
// state: compact graph CSR, current solution, and candidate index.
//
// Layout (all integers little-endian):
//
//   [8]  magic "DKCSNAP1"
//   [4]  format version (u32)
//   [4]  section count (u32)
//   per section:
//     [4] section id   (u32)
//     [8] payload size (u64)
//     [4] CRC-32 of the payload (u32)
//     [.] payload
//   [4]  CRC-32 of everything above (u32)
//
// Per-section CRCs attribute corruption ("the graph section is damaged");
// the trailing whole-file CRC closes the gap the section table itself would
// otherwise leave — a bit flip anywhere in the file is detected, and a
// damaged snapshot is *never* partially loaded. Publication is atomic
// (write temp + fsync + rename via io/atomic_file.h), so a crash mid-write
// leaves the previous snapshot intact.

#ifndef DKC_STORE_SNAPSHOT_H_
#define DKC_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dynamic/candidate_index.h"
#include "util/status.h"

namespace dkc {

struct SnapshotMeta {
  int k = 0;
  /// Sequence number of the last update folded into this snapshot; WAL
  /// records with seq <= applied_seq are already reflected and must be
  /// skipped on replay.
  uint64_t applied_seq = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
};

/// Serialize `state` (+ meta) and atomically publish it at `path`.
Status WriteSnapshot(const SolutionState& state, uint64_t applied_seq,
                     const std::string& path);

struct LoadedSnapshot {
  SnapshotMeta meta;
  std::unique_ptr<SolutionState> state;
};

/// Load and fully validate a snapshot. IOError if the file cannot be read,
/// Corruption if any checksum, bound, or engine invariant fails — a
/// corrupt snapshot never yields a partially restored state.
StatusOr<LoadedSnapshot> ReadSnapshot(const std::string& path);

}  // namespace dkc

#endif  // DKC_STORE_SNAPSHOT_H_
