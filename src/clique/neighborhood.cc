#include "clique/neighborhood.h"

#include <algorithm>

// IntersectSorted and the dispatched word-level primitives live in
// clique/intersect_simd.{h,cc}.

namespace dkc {

void NeighborhoodKernel::PrepareMap(NodeId num_nodes) {
  if (a_->local_of.size() < num_nodes) {
    a_->local_of.resize(num_nodes, 0);
    a_->map_epoch.resize(num_nodes, 0);
  }
  // Bumping the epoch invalidates every previous entry at once — no walk
  // over the old universe. On the (rare) wrap, everything really is stale,
  // so one full reset restores the invariant.
  if (++a_->epoch == 0) {
    std::fill(a_->map_epoch.begin(), a_->map_epoch.end(), 0);
    a_->epoch = 1;
  }
}

void NeighborhoodKernel::MaterializeRow(NodeId i, uint64_t* row) {
  // Two-phase bulk build: compact the epoch-valid local ids first (8-wide
  // gather/compare/compress under AVX2 dispatch — the stamp check is the
  // unpredictable branch of the scalar loop), then set the bits from the
  // compact list. The id set and count are identical at every dispatch
  // level, so rows and degrees never depend on the host.
  const auto nbrs = dag_->OutNeighbors(uni_[i]);
  if (a_->gather_scratch.size() < nbrs.size()) {
    a_->gather_scratch.resize(nbrs.size());
  }
  const size_t cnt =
      GatherValidLocalIds(nbrs.data(), nbrs.size(), a_->map_epoch.data(),
                          a_->epoch, a_->local_of.data(),
                          a_->gather_scratch.data());
  const NodeId* js = a_->gather_scratch.data();
  if (words_ == 1) {
    uint64_t bits = 0;
    for (size_t t = 0; t < cnt; ++t) bits |= uint64_t{1} << js[t];
    row[0] = bits;
  } else {
    std::fill_n(row, words_, uint64_t{0});
    for (size_t t = 0; t < cnt; ++t) {
      row[js[t] >> 6] |= uint64_t{1} << (js[t] & 63);
    }
  }
  a_->deg_bound[i] = static_cast<Count>(cnt);
  a_->row_built[i >> 6] |= uint64_t{1} << (i & 63);
  ++rows_built_;
}

NodeId NeighborhoodKernel::BuildFromRoot(const Dag& dag, NodeId root,
                                         const uint8_t* valid) {
  PrepareMap(dag.num_nodes());
  has_root_ = true;
  root_ = root;
  dag_ = &dag;
  rows_built_ = 0;
  row_state_ = RowState::kUnset;
  if (valid == nullptr) {
    // Unfiltered universe: the DAG's sorted out-list IS the universe —
    // point at it instead of copying (the counting/scoring hot path).
    const auto out = dag.OutNeighbors(root);
    uni_ = out.data();
    s_ = static_cast<NodeId>(out.size());
  } else {
    a_->local_nodes.clear();
    dag.InducedOutNeighborhood(root, valid, &a_->local_nodes);
    uni_ = a_->local_nodes.data();
    s_ = static_cast<NodeId>(a_->local_nodes.size());
  }
  const uint32_t epoch = a_->epoch;
  for (NodeId i = 0; i < s_; ++i) {
    a_->local_of[uni_[i]] = i;
    a_->map_epoch[uni_[i]] = epoch;
  }

  use_bitmap_ = s_ <= kMaxBitmapNodes;
  if (use_bitmap_) {
    // Only the remap exists so far; the first traversal picks how rows
    // come to exist (bulk for exhaustive passes, on-first-touch for pruned
    // ones) — see RowState.
    words_ = (s_ + 63) / 64;
  } else {
    a_->deg_bound.resize(s_);
    a_->adj_offsets.assign(s_ + 1, 0);
    a_->adj_list.clear();
    for (NodeId i = 0; i < s_; ++i) {
      // OutNeighbors is ascending in node id and local ids are assigned in
      // that same order, so each local list comes out sorted (the bulk
      // gather preserves input order).
      const auto nbrs = dag.OutNeighbors(uni_[i]);
      if (a_->gather_scratch.size() < nbrs.size()) {
        a_->gather_scratch.resize(nbrs.size());
      }
      const size_t cnt =
          GatherValidLocalIds(nbrs.data(), nbrs.size(), a_->map_epoch.data(),
                              epoch, a_->local_of.data(),
                              a_->gather_scratch.data());
      a_->adj_list.insert(a_->adj_list.end(), a_->gather_scratch.data(),
                          a_->gather_scratch.data() + cnt);
      a_->adj_offsets[i + 1] = static_cast<Count>(a_->adj_list.size());
      a_->deg_bound[i] = a_->adj_offsets[i + 1] - a_->adj_offsets[i];
    }
  }
  return s_;
}

void NeighborhoodKernel::PrepareLazyRows() {
  // Rows keep stale contents from earlier roots: each row is cleared and
  // filled only when a DFS branch first touches it (MaterializeRow). Until
  // then deg_bound holds the cheap upper bound min(out-degree, s-1) — it
  // can only over-admit branches, never change results (see design note).
  a_->rows.resize(static_cast<size_t>(s_) * words_);
  a_->row_built.assign(words_, 0);
  a_->deg_bound.resize(s_);
  for (NodeId i = 0; i < s_; ++i) {
    a_->deg_bound[i] = std::min<Count>(dag_->OutDegree(uni_[i]), s_ - 1);
  }
  row_state_ = RowState::kLazy;
}

void NeighborhoodKernel::MaterializeAllRows() {
  if (row_state_ == RowState::kAllBuilt) return;
  if (row_state_ == RowState::kLazy) {
    for (NodeId i = 0; i < s_; ++i) {
      uint64_t* row = a_->rows.data() + static_cast<size_t>(i) * words_;
      if ((a_->row_built[i >> 6] >> (i & 63) & 1) == 0) MaterializeRow(i, row);
    }
  } else {
    // Straight from kUnset: one tight fill pass, no per-row bookkeeping —
    // the eager build of kernel v1, with each row's neighbor filter run
    // through the dispatched bulk gather (see MaterializeRow).
    a_->row_built.assign(words_, ~uint64_t{0});
    a_->deg_bound.resize(s_);
    const uint32_t epoch = a_->epoch;
    const uint32_t* stamps = a_->map_epoch.data();
    const NodeId* local_of = a_->local_of.data();
    if (words_ == 1) {
      // One-word rows accumulate in a register and store once: no memset,
      // no read-modify-write per edge.
      a_->rows.resize(s_);
      for (NodeId i = 0; i < s_; ++i) {
        const auto nbrs = dag_->OutNeighbors(uni_[i]);
        if (a_->gather_scratch.size() < nbrs.size()) {
          a_->gather_scratch.resize(nbrs.size());
        }
        const size_t cnt =
            GatherValidLocalIds(nbrs.data(), nbrs.size(), stamps, epoch,
                                local_of, a_->gather_scratch.data());
        const NodeId* js = a_->gather_scratch.data();
        uint64_t row = 0;
        for (size_t t = 0; t < cnt; ++t) row |= uint64_t{1} << js[t];
        a_->rows[i] = row;
        a_->deg_bound[i] = static_cast<Count>(cnt);
      }
    } else {
      a_->rows.assign(static_cast<size_t>(s_) * words_, 0);
      for (NodeId i = 0; i < s_; ++i) {
        uint64_t* row = a_->rows.data() + static_cast<size_t>(i) * words_;
        const auto nbrs = dag_->OutNeighbors(uni_[i]);
        if (a_->gather_scratch.size() < nbrs.size()) {
          a_->gather_scratch.resize(nbrs.size());
        }
        const size_t cnt =
            GatherValidLocalIds(nbrs.data(), nbrs.size(), stamps, epoch,
                                local_of, a_->gather_scratch.data());
        const NodeId* js = a_->gather_scratch.data();
        for (size_t t = 0; t < cnt; ++t) {
          row[js[t] >> 6] |= uint64_t{1} << (js[t] & 63);
        }
        a_->deg_bound[i] = static_cast<Count>(cnt);
      }
    }
    rows_built_ = s_;
  }
  row_state_ = RowState::kAllBuilt;
}

NodeId NeighborhoodKernel::BuildFromSubset(const DynamicGraph& g,
                                           std::span<const NodeId> subset) {
  has_root_ = false;
  dag_ = nullptr;
  a_->local_nodes.assign(subset.begin(), subset.end());
  uni_ = a_->local_nodes.data();
  s_ = static_cast<NodeId>(subset.size());

  use_bitmap_ = s_ <= kMaxBitmapNodes;
  a_->deg_bound.assign(s_, 0);
  // Eager build: the orientation walk below produces every row as a
  // by-product of recovering local positions.
  row_state_ = RowState::kAllBuilt;
  if (use_bitmap_) {
    words_ = (s_ + 63) / 64;
    a_->rows.assign(static_cast<size_t>(s_) * words_, 0);
    a_->row_built.assign(words_, ~uint64_t{0});
  } else {
    a_->adj_offsets.assign(s_ + 1, 0);
    a_->adj_list.clear();
  }
  rows_built_ = s_;
  // No global-id map here: `subset` and every neighbor list are sorted, so
  // a two-pointer walk recovers local positions without touching O(n)
  // state — this path runs once per dynamic update on tiny subsets.
  for (NodeId j = 0; j < s_; ++j) {
    const auto neighbors = g.Neighbors(subset[j]);
    size_t ni = 0;
    // Orientation by position: row j keeps only adjacent positions i < j,
    // so each clique is rooted at its highest position exactly once.
    for (NodeId i = 0; i < j && ni < neighbors.size(); ++i) {
      while (ni < neighbors.size() && neighbors[ni] < subset[i]) ++ni;
      if (ni < neighbors.size() && neighbors[ni] == subset[i]) {
        if (use_bitmap_) {
          a_->rows[static_cast<size_t>(j) * words_ + (i >> 6)] |=
              uint64_t{1} << (i & 63);
        } else {
          a_->adj_list.push_back(i);
        }
        ++a_->deg_bound[j];
      }
    }
    if (!use_bitmap_) {
      a_->adj_offsets[j + 1] = static_cast<Count>(a_->adj_list.size());
    }
  }
  return s_;
}

namespace {

struct CountVisitor {
  static constexpr bool kLeafIterates = false;
  Count total = 0;
  bool Enter(NodeId) { return true; }
  void Exit(NodeId) {}
  bool LeafCount(Count n) {
    total += n;
    return true;
  }
  bool LeafId(NodeId) { return true; }
};

struct ScoreVisitor {
  static constexpr bool kLeafIterates = true;
  const NodeId* local_nodes;
  Count* counts;
  Count* subtree;  // q+1 slots; subtree[depth] = cliques closed below here
  int depth = 0;
  Count total = 0;
  bool Enter(NodeId) {
    subtree[++depth] = 0;
    return true;
  }
  void Exit(NodeId i) {
    // A branch node participates in exactly the cliques its subtree
    // closed: fold the counter down instead of walking the whole prefix on
    // every leaf bundle (O(1) per node instead of O(depth) per leaf).
    const Count c = subtree[depth--];
    counts[local_nodes[i]] += c;
    subtree[depth] += c;
  }
  bool LeafCount(Count n) {
    total += n;
    subtree[depth] += n;
    return true;
  }
  bool LeafId(NodeId i) {
    ++counts[local_nodes[i]];
    return true;
  }
};

struct MinScoreVisitor {
  static constexpr bool kLeafIterates = true;
  const Count* local_scores;
  bool prune;
  Count running;  // base + scores of the current prefix
  NodeId* prefix;  // local ids, capacity q
  NodeId* best;    // local ids, capacity q
  int depth = 0;
  int best_len = 0;      // 0 while best_score is a phantom bound
  Count best_score = 0;
  bool have_best = false;
  bool Enter(NodeId i) {
    // Scores are non-negative, so running + score(i) lower-bounds every
    // completion of the branch — and a completion *equal* to the best can
    // never replace it (only strict improvements do), so cutting at >= is
    // safe and cannot change the first-found-in-DFS-order minimum.
    if (prune && have_best && running + local_scores[i] >= best_score) {
      return false;
    }
    prefix[depth++] = i;
    running += local_scores[i];
    return true;
  }
  void Exit(NodeId i) {
    running -= local_scores[i];
    --depth;
  }
  bool LeafCount(Count) { return true; }
  bool LeafId(NodeId i) {
    const Count candidate_total = running + local_scores[i];
    if (!have_best || candidate_total < best_score) {
      best_score = candidate_total;
      std::copy(prefix, prefix + depth, best);
      best[depth] = i;
      best_len = depth + 1;
      have_best = true;
    }
    return true;
  }
};

// Second pass of the greedy-seeded FindMin (see FindMinScoreClique): the
// first pass proved no clique scores below `target`, so the answer is the
// first clique in DFS order that *reaches* target — an early-exit search
// with the tightest possible cut (any prefix strictly above target is dead).
struct TieSeekVisitor {
  static constexpr bool kLeafIterates = true;
  const Count* local_scores;
  Count running;  // base + scores of the current prefix
  Count target;
  NodeId* prefix;  // local ids, capacity q
  NodeId* best;    // local ids, capacity q
  int depth = 0;
  int best_len = 0;
  bool Enter(NodeId i) {
    if (running + local_scores[i] > target) return false;
    prefix[depth++] = i;
    running += local_scores[i];
    return true;
  }
  void Exit(NodeId i) {
    running -= local_scores[i];
    --depth;
  }
  bool LeafCount(Count) { return true; }
  bool LeafId(NodeId i) {
    if (running + local_scores[i] > target) return true;
    std::copy(prefix, prefix + depth, best);
    best[depth] = i;
    best_len = depth + 1;
    return false;  // first hit is the answer; stop the traversal
  }
};

}  // namespace

Count NeighborhoodKernel::CountCliques(int q) {
  CountVisitor visitor;
  // Counting is exhaustive — nearly every row is intersected anyway, so
  // materialize them in one sequential pass and run the read-only DFS.
  Visit(q, visitor, /*eager=*/true);
  return visitor.total;
}

Count NeighborhoodKernel::ScoreCliques(int q, std::vector<Count>* counts) {
  if (q <= 0) return 0;
  a_->subtree_counts.assign(static_cast<size_t>(q) + 1, 0);
  ScoreVisitor visitor{uni_, counts->data(),
                       a_->subtree_counts.data()};
  Visit(q, visitor, /*eager=*/true);
  return visitor.total;
}

bool NeighborhoodKernel::FindMinScoreClique(int q,
                                            std::span<const Count> scores,
                                            Count base_score, bool prune,
                                            std::vector<NodeId>* clique,
                                            Count* clique_score) {
  if (q <= 0 || s_ < static_cast<NodeId>(q)) return false;
  a_->local_scores.resize(s_);
  for (NodeId i = 0; i < s_; ++i) {
    a_->local_scores[i] = scores[uni_[i]];
  }
  a_->prefix_scratch.resize(static_cast<size_t>(q));
  a_->best_scratch.resize(static_cast<size_t>(q));
  MinScoreVisitor visitor{a_->local_scores.data(), prune, base_score,
                          a_->prefix_scratch.data(), a_->best_scratch.data()};

  // Greedy-seeded two-pass search (pruned mode, one-word universes): a
  // greedy min-score descent yields a real clique score S_g; pass 1 runs
  // the normal DFS with S_g as a *phantom* incumbent, so pruning is at
  // full strength from the first branch. Updates still happen only on
  // strictly-smaller totals — and every prefix of a strictly-better clique
  // stays under the bound (scores are non-negative), so if the true
  // minimum is below S_g, pass 1 returns exactly the first-found minimum.
  // Otherwise the minimum IS S_g and pass 2 early-exits at the first
  // clique reaching it — again the DFS-order tie-break winner. Results
  // are identical to the plain DFS; only the amount of pruning differs.
  if (prune && use_bitmap_ && words_ == 1 && q >= 2) {
    MaterializeAllRows();  // the dive needs rows; the DFS reuses them
    const uint64_t full = s_ == 64 ? ~uint64_t{0} : (uint64_t{1} << s_) - 1;
    const uint64_t* rows = a_->rows.data();
    const Count* ls = a_->local_scores.data();
    uint64_t cand = full;
    Count greedy_score = base_score;
    bool greedy_ok = true;
    for (int d = 0; d < q; ++d) {
      if (cand == 0) {
        greedy_ok = false;
        break;
      }
      NodeId pick = 0;
      Count pick_score = 0;
      bool first = true;
      for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
        const NodeId i = static_cast<NodeId>(std::countr_zero(bits));
        if (first || ls[i] < pick_score) {
          pick = i;
          pick_score = ls[i];
          first = false;
        }
      }
      greedy_score += pick_score;
      if (d + 1 < q) cand &= rows[pick];
    }
    if (greedy_ok) {
      visitor.have_best = true;  // phantom: best_len stays 0
      visitor.best_score = greedy_score;
      Visit(q, visitor);
      if (visitor.best_len == 0) {
        // Nothing beats the greedy score: seek its first DFS occurrence.
        TieSeekVisitor tie{ls,        base_score,
                           greedy_score, a_->prefix_scratch.data(),
                           a_->best_scratch.data()};
        Visit(q, tie);
        visitor.best_len = tie.best_len;
        visitor.best_score = greedy_score;
      }
    } else {
      Visit(q, visitor);
    }
  } else {
    Visit(q, visitor, /*eager=*/true);
  }
  if (!visitor.have_best || visitor.best_len == 0) return false;
  clique->clear();
  for (int i = 0; i < visitor.best_len; ++i) {
    clique->push_back(uni_[a_->best_scratch[i]]);
  }
  *clique_score = visitor.best_score;
  return true;
}

}  // namespace dkc
