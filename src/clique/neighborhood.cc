#include "clique/neighborhood.h"

#include <algorithm>

namespace dkc {
namespace {

// Intersects by exponential probing: for each element of the small list,
// gallop forward in the large one. O(|small| * log(|large|/|small|)) — the
// win over the two-pointer merge once the size skew passes kGallopSkew.
void IntersectGalloping(std::span<const NodeId> small,
                        std::span<const NodeId> large,
                        std::vector<NodeId>* out) {
  size_t lo = 0;
  for (NodeId x : small) {
    if (lo >= large.size()) break;
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    const size_t end = std::min(hi, large.size());
    const NodeId* it = std::lower_bound(large.data() + lo, large.data() + end, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo < large.size() && large[lo] == x) {
      out->push_back(x);
      ++lo;
    }
  }
}

}  // namespace

void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     std::vector<NodeId>* out) {
  out->clear();
  if (a.size() > b.size()) std::swap(a, b);
  if (!a.empty() && a.size() * kGallopSkew <= b.size()) {
    IntersectGalloping(a, b, out);
    return;
  }
  // Degeneracy-bounded DAG out-lists are near-equal in size, so the plain
  // merge is the common case; galloping only pays at extreme skew.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

void NeighborhoodKernel::PrepareMap(NodeId num_nodes) {
  if (local_of_.size() < num_nodes) local_of_.resize(num_nodes, kNoLocal);
  for (NodeId v : map_entries_) local_of_[v] = kNoLocal;
  map_entries_.clear();
}

NodeId NeighborhoodKernel::BuildFromRoot(const Dag& dag, NodeId root,
                                         const uint8_t* valid) {
  PrepareMap(dag.num_nodes());
  has_root_ = true;
  root_ = root;
  local_nodes_.clear();
  dag.InducedOutNeighborhood(root, valid, &local_nodes_);
  s_ = static_cast<NodeId>(local_nodes_.size());
  for (NodeId i = 0; i < s_; ++i) local_of_[local_nodes_[i]] = i;
  map_entries_ = local_nodes_;

  use_bitmap_ = s_ <= kMaxBitmapNodes;
  local_deg_.assign(s_, 0);
  if (use_bitmap_) {
    words_ = (s_ + 63) / 64;
    rows_.assign(static_cast<size_t>(s_) * words_, 0);
    for (NodeId i = 0; i < s_; ++i) {
      uint64_t* row = rows_.data() + static_cast<size_t>(i) * words_;
      for (NodeId w : dag.OutNeighbors(local_nodes_[i])) {
        const NodeId j = local_of_[w];
        if (j == kNoLocal) continue;
        row[j >> 6] |= uint64_t{1} << (j & 63);
        ++local_deg_[i];
      }
    }
  } else {
    adj_offsets_.assign(s_ + 1, 0);
    adj_list_.clear();
    for (NodeId i = 0; i < s_; ++i) {
      // OutNeighbors is ascending in node id and local ids are assigned in
      // that same order, so each local list comes out sorted.
      for (NodeId w : dag.OutNeighbors(local_nodes_[i])) {
        if (local_of_[w] != kNoLocal) adj_list_.push_back(local_of_[w]);
      }
      adj_offsets_[i + 1] = static_cast<Count>(adj_list_.size());
      local_deg_[i] = adj_offsets_[i + 1] - adj_offsets_[i];
    }
  }
  return s_;
}

NodeId NeighborhoodKernel::BuildFromSubset(const DynamicGraph& g,
                                           std::span<const NodeId> subset) {
  has_root_ = false;
  local_nodes_.assign(subset.begin(), subset.end());
  s_ = static_cast<NodeId>(subset.size());

  use_bitmap_ = s_ <= kMaxBitmapNodes;
  local_deg_.assign(s_, 0);
  if (use_bitmap_) {
    words_ = (s_ + 63) / 64;
    rows_.assign(static_cast<size_t>(s_) * words_, 0);
  } else {
    adj_offsets_.assign(s_ + 1, 0);
    adj_list_.clear();
  }
  // No global-id map here: `subset` and every neighbor list are sorted, so
  // a two-pointer walk recovers local positions without touching O(n)
  // state — this path runs once per dynamic update on tiny subsets.
  for (NodeId j = 0; j < s_; ++j) {
    const auto neighbors = g.Neighbors(subset[j]);
    size_t ni = 0;
    // Orientation by position: row j keeps only adjacent positions i < j,
    // so each clique is rooted at its highest position exactly once.
    for (NodeId i = 0; i < j && ni < neighbors.size(); ++i) {
      while (ni < neighbors.size() && neighbors[ni] < subset[i]) ++ni;
      if (ni < neighbors.size() && neighbors[ni] == subset[i]) {
        if (use_bitmap_) {
          rows_[static_cast<size_t>(j) * words_ + (i >> 6)] |=
              uint64_t{1} << (i & 63);
        } else {
          adj_list_.push_back(i);
        }
        ++local_deg_[j];
      }
    }
    if (!use_bitmap_) {
      adj_offsets_[j + 1] = static_cast<Count>(adj_list_.size());
    }
  }
  return s_;
}

namespace {

struct CountVisitor {
  static constexpr bool kLeafIterates = false;
  Count total = 0;
  bool Enter(NodeId) { return true; }
  void Exit(NodeId) {}
  bool LeafCount(Count n) {
    total += n;
    return true;
  }
  bool LeafId(NodeId) { return true; }
};

struct ScoreVisitor {
  static constexpr bool kLeafIterates = true;
  const NodeId* local_nodes;
  Count* counts;
  std::vector<NodeId>* prefix;  // local ids
  Count total = 0;
  bool Enter(NodeId i) {
    prefix->push_back(i);
    return true;
  }
  void Exit(NodeId) { prefix->pop_back(); }
  bool LeafCount(Count n) {
    // Every candidate closes one clique with the current prefix: each
    // prefix node gains n; the candidates themselves gain 1 each (LeafId).
    total += n;
    for (NodeId p : *prefix) counts[local_nodes[p]] += n;
    return true;
  }
  bool LeafId(NodeId i) {
    ++counts[local_nodes[i]];
    return true;
  }
};

struct MinScoreVisitor {
  static constexpr bool kLeafIterates = true;
  const Count* local_scores;
  bool prune;
  Count running;  // base + scores of the current prefix
  std::vector<NodeId>* prefix;  // local ids
  std::vector<NodeId>* best;    // local ids
  Count best_score = 0;
  bool have_best = false;
  bool Enter(NodeId i) {
    // Scores are non-negative, so the running sum lower-bounds every
    // completion of the branch: cutting here skips only strictly-worse
    // cliques and cannot change the first-found-in-DFS-order minimum.
    if (prune && have_best && running + local_scores[i] > best_score) {
      return false;
    }
    prefix->push_back(i);
    running += local_scores[i];
    return true;
  }
  void Exit(NodeId i) {
    running -= local_scores[i];
    prefix->pop_back();
  }
  bool LeafCount(Count) { return true; }
  bool LeafId(NodeId i) {
    const Count total = running + local_scores[i];
    if (!have_best || total < best_score) {
      best_score = total;
      *best = *prefix;
      best->push_back(i);
      have_best = true;
    }
    return true;
  }
};

}  // namespace

Count NeighborhoodKernel::CountCliques(int q) {
  CountVisitor visitor;
  Visit(q, visitor);
  return visitor.total;
}

Count NeighborhoodKernel::ScoreCliques(int q, std::vector<Count>* counts) {
  prefix_scratch_.clear();
  ScoreVisitor visitor{local_nodes_.data(), counts->data(), &prefix_scratch_};
  Visit(q, visitor);
  return visitor.total;
}

bool NeighborhoodKernel::FindMinScoreClique(int q,
                                            std::span<const Count> scores,
                                            Count base_score, bool prune,
                                            std::vector<NodeId>* clique,
                                            Count* clique_score) {
  if (q <= 0 || s_ < static_cast<NodeId>(q)) return false;
  local_scores_.resize(s_);
  for (NodeId i = 0; i < s_; ++i) {
    local_scores_[i] = scores[local_nodes_[i]];
  }
  prefix_scratch_.clear();
  best_scratch_.clear();
  MinScoreVisitor visitor{local_scores_.data(), prune, base_score,
                          &prefix_scratch_, &best_scratch_};
  Visit(q, visitor);
  if (!visitor.have_best) return false;
  clique->clear();
  for (NodeId i : best_scratch_) clique->push_back(local_nodes_[i]);
  *clique_score = visitor.best_score;
  return true;
}

}  // namespace dkc
