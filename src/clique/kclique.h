// k-clique listing and counting kernels in the kClist style of Danisch,
// Balalau, Sozio (WWW'18) [13]: orient the graph along a total ordering,
// then every k-clique is {u} ∪ ((k-1)-clique inside N+(u)) for a unique
// root u. The per-root search itself is delegated to the shared
// NeighborhoodKernel (clique/neighborhood.h): the induced out-neighborhood
// is materialized once with dense local ids and bit-matrix adjacency, so
// deeper levels intersect by word-wise AND instead of sorted merges.
//
// The counting entry points never materialize cliques — that is the
// observation the paper's lightweight algorithm (Algorithm 3, line 2) is
// built on: node scores s_n(u) (Definition 5) come out of a counting pass
// with O(m + n) residual memory.

#ifndef DKC_CLIQUE_KCLIQUE_H_
#define DKC_CLIQUE_KCLIQUE_H_

#include <functional>
#include <span>
#include <vector>

#include "clique/neighborhood.h"
#include "graph/dag.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

/// Reusable k-clique enumeration state for one DAG: a thin adapter over
/// NeighborhoodKernel. Not thread-safe; create one enumerator per thread.
class KCliqueEnumerator {
 public:
  /// `k >= 1`. The enumerator borrows `dag`, which must outlive it.
  KCliqueEnumerator(const Dag& dag, int k) : dag_(dag), k_(k) {}

  /// Invoke `cb(nodes)` once per k-clique, where `nodes` is a span of k node
  /// ids in descending DAG-rank order (nodes[0] is the root). `cb` returns
  /// bool; returning false stops the enumeration. ForEach returns false iff
  /// stopped early.
  template <typename F>
  bool ForEach(F&& cb) {
    for (NodeId u = 0; u < dag_.num_nodes(); ++u) {
      if (!ForEachRooted(u, cb)) return false;
    }
    return true;
  }

  /// Enumeration restricted to cliques rooted at `u` (u is the
  /// highest-ranked node of every clique reported).
  template <typename F>
  bool ForEachRooted(NodeId u, F&& cb) {
    if (k_ == 1) {
      const NodeId self[1] = {u};
      return cb(std::span<const NodeId>(self, 1));
    }
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return true;
    kernel_.BuildFromRoot(dag_, u);
    return kernel_.ForEachClique(k_ - 1, cb);
  }

  /// Number of k-cliques rooted at `u`.
  Count CountRooted(NodeId u);

  /// Per-node k-clique participation counts (node scores, Definition 5),
  /// accumulated into `counts` (must have num_nodes entries) for cliques
  /// rooted at `u`. Returns the number of cliques rooted at `u`.
  Count ScoreRooted(NodeId u, std::vector<Count>* counts);

 private:
  const Dag& dag_;
  int k_;
  NeighborhoodKernel kernel_;
};

/// Total number of k-cliques in the DAG'ed graph. Optionally parallel over
/// root nodes and/or bounded by a deadline (`*oot` set true on expiry).
Count CountKCliques(const Dag& dag, int k, ThreadPool* pool = nullptr,
                    const Deadline& deadline = Deadline::Unlimited(),
                    bool* oot = nullptr);

struct NodeScores {
  std::vector<Count> per_node;  // s_n(u) for every u
  Count total_cliques = 0;      // sum(per_node) / k
};

/// Node scores s_n(u) for all nodes (Definition 5) without storing cliques.
NodeScores ComputeNodeScores(const Dag& dag, int k, ThreadPool* pool = nullptr,
                             const Deadline& deadline = Deadline::Unlimited(),
                             bool* oot = nullptr);

/// Enumerate the k-cliques of the subgraph induced on `subset` in the
/// *current* state of a dynamic graph. `subset` must be sorted and unique.
/// Used by the dynamic index (Algorithm 5), where B = C ∪ free neighbors is
/// tiny. `cb` returns false to stop early.
void ForEachKCliqueInSubset(
    const DynamicGraph& g, std::span<const NodeId> subset, int k,
    const std::function<bool(std::span<const NodeId>)>& cb);

}  // namespace dkc

#endif  // DKC_CLIQUE_KCLIQUE_H_
