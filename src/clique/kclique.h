// k-clique listing and counting kernels in the kClist style of Danisch,
// Balalau, Sozio (WWW'18) [13]: orient the graph along a total ordering,
// then every k-clique is {u} ∪ ((k-1)-clique inside N+(u)) for a unique
// root u. The per-root search itself is delegated to the shared
// NeighborhoodKernel (clique/neighborhood.h): the induced out-neighborhood
// is materialized once with dense local ids and bit-matrix adjacency, so
// deeper levels intersect by word-wise AND instead of sorted merges.
//
// The counting entry points never materialize cliques — that is the
// observation the paper's lightweight algorithm (Algorithm 3, line 2) is
// built on: node scores s_n(u) (Definition 5) come out of a counting pass
// with O(m + n) residual memory.

#ifndef DKC_CLIQUE_KCLIQUE_H_
#define DKC_CLIQUE_KCLIQUE_H_

#include <functional>
#include <span>
#include <vector>

#include "clique/clique_store.h"
#include "clique/neighborhood.h"
#include "graph/dag.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/memory.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

/// Reusable k-clique enumeration state for one DAG: a thin adapter over
/// NeighborhoodKernel. Not thread-safe; create one enumerator per thread.
class KCliqueEnumerator {
 public:
  /// `k >= 1`. The enumerator borrows `dag` (and `arena`, when given),
  /// which must outlive it.
  KCliqueEnumerator(const Dag& dag, int k, KernelArena* arena = nullptr)
      : dag_(dag), k_(k), kernel_(arena) {}

  /// Invoke `cb(nodes)` once per k-clique, where `nodes` is a span of k node
  /// ids in descending DAG-rank order (nodes[0] is the root). `cb` returns
  /// bool; returning false stops the enumeration. ForEach returns false iff
  /// stopped early.
  template <typename F>
  bool ForEach(F&& cb) {
    for (NodeId u = 0; u < dag_.num_nodes(); ++u) {
      if (!ForEachRooted(u, cb)) return false;
    }
    return true;
  }

  /// Enumeration restricted to cliques rooted at `u` (u is the
  /// highest-ranked node of every clique reported).
  template <typename F>
  bool ForEachRooted(NodeId u, F&& cb) {
    if (k_ == 1) {
      const NodeId self[1] = {u};
      return cb(std::span<const NodeId>(self, 1));
    }
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return true;
    kernel_.BuildFromRoot(dag_, u);
    // Enumeration callers (GC/OPT listing, the verifier) consume the whole
    // per-root enumeration, so build the rows eagerly in one pass.
    return kernel_.ForEachClique(k_ - 1, cb, /*eager=*/true);
  }

  /// Number of k-cliques rooted at `u`.
  Count CountRooted(NodeId u);

  /// Per-node k-clique participation counts (node scores, Definition 5),
  /// accumulated into `counts` (must have num_nodes entries) for cliques
  /// rooted at `u`. Returns the number of cliques rooted at `u`.
  Count ScoreRooted(NodeId u, std::vector<Count>* counts);

 private:
  const Dag& dag_;
  int k_;
  NeighborhoodKernel kernel_;
};

/// Total number of k-cliques in the DAG'ed graph. Optionally parallel over
/// root nodes and/or bounded by a deadline (`*oot` set true on expiry).
Count CountKCliques(const Dag& dag, int k, ThreadPool* pool = nullptr,
                    const Deadline& deadline = Deadline::Unlimited(),
                    bool* oot = nullptr);

struct NodeScores {
  std::vector<Count> per_node;  // s_n(u) for every u
  Count total_cliques = 0;      // sum(per_node) / k
};

/// Node scores s_n(u) for all nodes (Definition 5) without storing cliques.
NodeScores ComputeNodeScores(const Dag& dag, int k, ThreadPool* pool = nullptr,
                             const Deadline& deadline = Deadline::Unlimited(),
                             bool* oot = nullptr);

/// Enumerate the k-cliques of the subgraph induced on `subset` in the
/// *current* state of a dynamic graph. `subset` must be sorted and unique.
/// Used by the dynamic index (Algorithm 5), where B = C ∪ free neighbors is
/// tiny. `cb` returns false to stop early. Callers on a hot path pass a
/// persistent `kernel` so the scratch arena is reused across calls; when
/// null a throwaway kernel is used. With `budget`, the DFS charges one
/// unit per branch entered and truncates at a branch boundary once the cap
/// is spent (see EnumBudget) — the dynamic engine's mid-rebuild abort.
void ForEachKCliqueInSubset(
    const DynamicGraph& g, std::span<const NodeId> subset, int k,
    const std::function<bool(std::span<const NodeId>)>& cb,
    NeighborhoodKernel* kernel = nullptr, EnumBudget* budget = nullptr);

/// Materialize every k-clique of the DAG'ed graph into `store` — and, when
/// `node_scores` is given, bump each member's participation count — in the
/// exact ascending-root DFS order of KCliqueEnumerator::ForEach. With a
/// pool the roots are listed in parallel into chunk-indexed buffers that
/// are drained in ascending root order afterwards (a deterministic ordered
/// reduction), so store contents and clique ids are byte-identical at any
/// thread count. `memory`, when given, is charged for the stored cliques;
/// exhaustion returns MemoryBudgetExceeded and an expired deadline returns
/// TimeBudgetExceeded, both tagged with `what`. The shared enumeration pass
/// behind GC (Algorithm 2, line 2) and OPT (step 1).
Status ListKCliques(const Dag& dag, int k, ThreadPool* pool,
                    const Deadline& deadline, MemoryBudget* memory,
                    const char* what, CliqueStore* store,
                    std::vector<Count>* node_scores = nullptr);

}  // namespace dkc

#endif  // DKC_CLIQUE_KCLIQUE_H_
