// Flat arena for materialized k-cliques.
//
// Only the algorithms that *must* hold every clique (GC, Algorithm 2, and
// the exact OPT baseline) use this; storing per-clique std::vectors would
// triple the footprint and shred the cache. One contiguous NodeId array, k
// ids per clique, index = clique id.

#ifndef DKC_CLIQUE_CLIQUE_STORE_H_
#define DKC_CLIQUE_CLIQUE_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace dkc {

/// Dense id of a materialized clique within one CliqueStore.
using CliqueId = uint32_t;

class CliqueStore {
 public:
  explicit CliqueStore(int k) : k_(k) {}

  int k() const { return k_; }
  CliqueId size() const { return static_cast<CliqueId>(nodes_.size() / k_); }
  bool empty() const { return nodes_.empty(); }

  /// Append a clique; `nodes` must contain exactly k ids.
  CliqueId Add(std::span<const NodeId> nodes) {
    nodes_.insert(nodes_.end(), nodes.begin(), nodes.end());
    return static_cast<CliqueId>(size() - 1);
  }

  std::span<const NodeId> Get(CliqueId id) const {
    return {nodes_.data() + static_cast<size_t>(id) * k_,
            static_cast<size_t>(k_)};
  }

  void Reserve(size_t num_cliques) {
    nodes_.reserve(num_cliques * static_cast<size_t>(k_));
  }

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(nodes_.capacity() * sizeof(NodeId));
  }

 private:
  int k_;
  std::vector<NodeId> nodes_;
};

}  // namespace dkc

#endif  // DKC_CLIQUE_CLIQUE_STORE_H_
