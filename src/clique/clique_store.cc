// CliqueStore is header-only; this translation unit exists so the target has
// a stable archive member and a place for future out-of-line helpers.
#include "clique/clique_store.h"
