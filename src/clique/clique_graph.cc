#include "clique/clique_graph.h"

#include <algorithm>
#include <atomic>

namespace dkc {

int64_t CliqueGraph::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(adjacency_.capacity() *
                                       sizeof(std::vector<CliqueId>));
  for (const auto& list : adjacency_) {
    bytes += static_cast<int64_t>(list.capacity() * sizeof(CliqueId));
  }
  return bytes;
}

StatusOr<CliqueGraph> CliqueGraph::Build(const CliqueStore& cliques,
                                         NodeId num_graph_nodes,
                                         MemoryBudget* budget,
                                         const Deadline& deadline,
                                         ThreadPool* pool) {
  CliqueGraph cg;
  const CliqueId num = cliques.size();
  cg.adjacency_.resize(num);

  // Inverted index: graph node -> cliques containing it. Two cliques are
  // adjacent iff they co-occur in some node's list.
  std::vector<std::vector<CliqueId>> at_node(num_graph_nodes);
  for (CliqueId c = 0; c < num; ++c) {
    for (NodeId u : cliques.Get(c)) at_node[u].push_back(c);
  }
  if (budget != nullptr &&
      !budget->Charge(static_cast<int64_t>(num) * cliques.k() *
                      sizeof(CliqueId))) {
    return Status::MemoryBudgetExceeded("clique-graph inverted index");
  }

  Count pairs_emitted = 0;
  for (NodeId u = 0; u < num_graph_nodes; ++u) {
    const auto& list = at_node[u];
    if (list.size() < 2) continue;
    if (deadline.Expired()) {
      return Status::TimeBudgetExceeded("clique-graph pair expansion");
    }
    for (size_t i = 0; i < list.size(); ++i) {
      for (size_t j = i + 1; j < list.size(); ++j) {
        cg.adjacency_[list[i]].push_back(list[j]);
        cg.adjacency_[list[j]].push_back(list[i]);
      }
    }
    const Count new_pairs = static_cast<Count>(list.size()) *
                            (list.size() - 1) / 2;
    pairs_emitted += new_pairs;
    if (budget != nullptr &&
        !budget->Charge(static_cast<int64_t>(new_pairs) * 2 *
                        sizeof(CliqueId))) {
      return Status::MemoryBudgetExceeded(
          "clique graph exceeds memory budget after " +
          std::to_string(pairs_emitted) + " shared-node pairs");
    }
  }

  // Cliques sharing >= 2 nodes were emitted multiple times; dedupe. This
  // pass can itself be huge (it touches every pair again), so it honors the
  // deadline too. Rows are independent, so with a pool they dedupe in
  // parallel (the parallel path checks the deadline only between rows of
  // one worker's share; the edge count is summed serially afterwards).
  auto dedupe_row = [&cg](CliqueId c) {
    auto& list = cg.adjacency_[c];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    list.shrink_to_fit();
  };
  if (pool != nullptr && pool->num_threads() > 1 && num >= 256) {
    std::atomic<bool> expired{false};
    pool->ParallelFor(num, [&](size_t c) {
      if ((c & 0xFFF) == 0 && deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
      }
      if (expired.load(std::memory_order_relaxed)) return;
      dedupe_row(static_cast<CliqueId>(c));
    });
    if (expired.load()) {
      return Status::TimeBudgetExceeded("clique-graph dedup");
    }
  } else {
    for (CliqueId c = 0; c < num; ++c) {
      if ((c & 0xFFF) == 0 && deadline.Expired()) {
        return Status::TimeBudgetExceeded("clique-graph dedup");
      }
      dedupe_row(c);
    }
  }
  for (CliqueId c = 0; c < num; ++c) cg.num_edges_ += cg.adjacency_[c].size();
  cg.num_edges_ /= 2;
  return cg;
}

}  // namespace dkc
