// Sorted-set intersection and the vectorized kernel-row primitives, with
// runtime CPU dispatch.
//
// Design note — shuffle intersection + per-primitive dispatch
// -----------------------------------------------------------
// IntersectSorted is the merge every solver path funnels through (counting,
// scoring, HG FindOne, LP FindMin, dynamic rebuilds — via the kernel's
// sorted-merge fallback for >4096-node universes). Three regimes:
//
//   * extreme size skew (>= kGallopSkew): galloping scan, O(small * log);
//   * near-equal sizes, SIMD host: shuffle-based block intersection — load a
//     block of each input, compare one block against every rotation of the
//     other, movemask the hits, and left-pack the matching lanes through a
//     precomputed shuffle table (AVX2: 8x8 blocks, 8 cross-lane rotations,
//     256-entry permute table; SSE4.2: 4x4 blocks, 4 in-lane rotations,
//     16-entry pshufb table). Whole blocks advance on a single max-element
//     comparison, so the per-element mispredicted branch of the scalar
//     merge disappears;
//   * portable / tiny inputs: the classic three-way scalar merge.
//
// The row primitives vectorize the other half of the kernel hot path:
// AndPopcountWords fuses the multi-word cand &= row step with its popcount
// reduction (AVX2: 4 words per AND + the pshufb nibble-LUT positional
// popcount); GatherValidLocalIds compacts the epoch-valid local ids of a
// neighbor list in 8-wide gather/compare/compress steps, turning
// MaterializeRow's stamp-check branch (per-neighbor, data-dependent) into
// branch-free word batches.
//
// Dispatch: each primitive is compiled per-level with function target
// attributes in intersect_simd.cc and selected once through a cached
// function-pointer table keyed by ActiveSimdLevel() (cpuid probe, DKC_SIMD
// env cap, test override — see util/cpu.h). Every level produces
// byte-identical outputs; DKC_PORTABLE builds compile none of this and keep
// the scalar merge bit-for-bit.
//
// Aliasing: `out` must not alias the storage behind `a` or `b` — the
// implementations resize `out` before (or while) reading the inputs, so an
// aliased call reads freed or clobbered memory. Debug builds assert this.

#ifndef DKC_CLIQUE_INTERSECT_SIMD_H_
#define DKC_CLIQUE_INTERSECT_SIMD_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

// Compiled SIMD support: x86-64 with a compiler that has per-function
// target attributes and __builtin_cpu_supports. CMake probes the same
// combination (DKC_HAVE_SIMD_INTERSECT) so the build summary reflects it;
// DKC_PORTABLE turns it off at the source level regardless.
#if !defined(DKC_PORTABLE) && defined(DKC_HAVE_SIMD_INTERSECT) && \
    defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DKC_X86_SIMD 1
#else
#define DKC_X86_SIMD 0
#endif

namespace dkc {

/// Size ratio at which IntersectSorted switches from merging to galloping.
inline constexpr size_t kGallopSkew = 32;

/// out = a ∩ b for sorted unique spans. `out` is overwritten and must not
/// alias the storage behind `a` or `b` (asserted in debug builds). Switches
/// to a galloping (exponential-probe) scan when the inputs differ in size
/// by kGallopSkew or more; otherwise the merge runs at the dispatched SIMD
/// level (scalar three-way merge in portable builds or on pre-SSE4.2
/// hosts). Identical output at every level.
void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     std::vector<NodeId>* out);

/// The historical branch-free scalar merge: every iteration unconditionally
/// writes the smaller head and advances by comparison masks. Measured
/// 2-3.5x SLOWER than the branchy merge on speculating hosts (PR 5's A/B);
/// its build flag is retired — the SIMD dispatch above is the real fix —
/// but the implementation stays exposed so bench_micro keeps the recorded
/// A/B row and the byte-identity sweep covers it. Same aliasing contract
/// as IntersectSorted.
void IntersectSortedBranchFree(std::span<const NodeId> a,
                               std::span<const NodeId> b,
                               std::vector<NodeId>* out);

namespace simd_internal {

/// The dispatched primitive table. Resolved once at static init (and again
/// whenever the level override changes); constinit to the scalar rows so a
/// call from any other translation unit's initializer is safe.
struct SimdOps {
  /// Merge-intersect sorted unique ranges into *out (overwritten; resized
  /// internally). Inputs must not alias *out.
  void (*merge)(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                std::vector<NodeId>* out);
  /// out[i] = a[i] & b[i] for i < words; returns the total popcount of out.
  /// `out` may alias `a` or `b` (word-wise forward pass).
  Count (*and_popcount)(const uint64_t* a, const uint64_t* b, uint64_t* out,
                        size_t words);
  /// Total popcount of words[0..n).
  Count (*popcount)(const uint64_t* words, size_t n);
  /// Compacts local_of[nbrs[i]] for every i with stamps[nbrs[i]] == epoch
  /// into out (order-preserving); returns the count. `out` needs capacity
  /// n; nbrs values must be < 2^31 (in-bounds indices into stamps /
  /// local_of either way).
  size_t (*gather_valid)(const NodeId* nbrs, size_t n, const uint32_t* stamps,
                         uint32_t epoch, const NodeId* local_of, NodeId* out);
};

extern SimdOps g_ops;

}  // namespace simd_internal

/// Fused cand-AND-row + popcount reduction over `words` 64-bit words.
/// Small rows stay on the inline scalar loop (the dispatch indirection
/// costs more than it saves below ~8 words); wide rows take the vectorized
/// kernel. Bit-identical either way.
inline Count AndPopcountWords(const uint64_t* a, const uint64_t* b,
                              uint64_t* out, size_t words) {
  if (words < 8) {
    Count n = 0;
    for (size_t w = 0; w < words; ++w) {
      out[w] = a[w] & b[w];
      n += static_cast<Count>(std::popcount(out[w]));
    }
    return n;
  }
  return simd_internal::g_ops.and_popcount(a, b, out, words);
}

/// Total popcount of words[0..n), dispatched above the same width gate.
inline Count PopcountWords(const uint64_t* words, size_t n) {
  if (n < 8) {
    Count c = 0;
    for (size_t w = 0; w < n; ++w) {
      c += static_cast<Count>(std::popcount(words[w]));
    }
    return c;
  }
  return simd_internal::g_ops.popcount(words, n);
}

/// Compacts the epoch-valid local ids of `nbrs` into `out` (which needs
/// room for n entries, order preserved); returns how many were valid. The
/// bulk step of MaterializeRow: the stamp check runs 8 lanes at a time
/// instead of one data-dependent branch per neighbor.
inline size_t GatherValidLocalIds(const NodeId* nbrs, size_t n,
                                  const uint32_t* stamps, uint32_t epoch,
                                  const NodeId* local_of, NodeId* out) {
  if (n < 8) {
    size_t o = 0;
    for (size_t i = 0; i < n; ++i) {
      if (stamps[nbrs[i]] == epoch) out[o++] = local_of[nbrs[i]];
    }
    return o;
  }
  return simd_internal::g_ops.gather_valid(nbrs, n, stamps, epoch, local_of,
                                           out);
}

namespace simd_internal {

// Raw per-level kernels, exposed for the byte-identity sweep and the
// bench_micro crossover rows (callers must check CpuSimdLevel() before
// invoking a SIMD one). The scalar rows are the reference semantics.
void MergeScalar(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                 std::vector<NodeId>* out);
Count AndPopcountScalar(const uint64_t* a, const uint64_t* b, uint64_t* out,
                        size_t words);
Count PopcountScalar(const uint64_t* words, size_t n);
size_t GatherValidScalar(const NodeId* nbrs, size_t n, const uint32_t* stamps,
                         uint32_t epoch, const NodeId* local_of, NodeId* out);
#if DKC_X86_SIMD
void MergeSse(const NodeId* a, size_t na, const NodeId* b, size_t nb,
              std::vector<NodeId>* out);
void MergeAvx2(const NodeId* a, size_t na, const NodeId* b, size_t nb,
               std::vector<NodeId>* out);
Count AndPopcountAvx2(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t words);
Count PopcountAvx2(const uint64_t* words, size_t n);
size_t GatherValidAvx2(const NodeId* nbrs, size_t n, const uint32_t* stamps,
                       uint32_t epoch, const NodeId* local_of, NodeId* out);
#endif  // DKC_X86_SIMD

}  // namespace simd_internal

}  // namespace dkc

#endif  // DKC_CLIQUE_INTERSECT_SIMD_H_
