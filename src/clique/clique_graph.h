// Explicit clique-graph construction (Definition 2): one node per k-clique,
// an edge between two cliques iff they share a graph node.
//
// This is the structure the paper's straw-man baseline (and the exact OPT
// comparator) needs, and the one whose size explodes — Table I notes the
// Facebook clique graph has >100,000x more edges than the input. The
// builder is therefore budget-aware: it charges a MemoryBudget and checks a
// Deadline, returning the paper's OOM/OOT outcomes instead of taking the
// machine down.

#ifndef DKC_CLIQUE_CLIQUE_GRAPH_H_
#define DKC_CLIQUE_CLIQUE_GRAPH_H_

#include <vector>

#include "clique/clique_store.h"
#include "util/memory.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

/// Adjacency structure over clique ids.
class CliqueGraph {
 public:
  CliqueGraph() = default;

  CliqueId num_cliques() const {
    return static_cast<CliqueId>(adjacency_.size());
  }
  Count num_edges() const { return num_edges_; }

  std::span<const CliqueId> Neighbors(CliqueId c) const {
    return {adjacency_[c].data(), adjacency_[c].size()};
  }
  Count Degree(CliqueId c) const { return adjacency_[c].size(); }

  /// Raw adjacency lists (sorted, deduplicated); the MIS solvers consume
  /// this representation directly.
  const std::vector<std::vector<CliqueId>>& adjacency() const {
    return adjacency_;
  }

  int64_t MemoryBytes() const;

  /// Build from materialized cliques. Runs in O(sum over nodes of
  /// (#cliques at node)^2) via the node -> cliques inverted index;
  /// duplicate pairs (cliques sharing several nodes) are deduplicated.
  /// The dedup pass (per-row sort+unique, the dominant cost on dense
  /// clique graphs) runs across `pool` when given; rows are independent,
  /// so the result is identical at any thread count.
  static StatusOr<CliqueGraph> Build(
      const CliqueStore& cliques, NodeId num_graph_nodes,
      MemoryBudget* budget = nullptr,
      const Deadline& deadline = Deadline::Unlimited(),
      ThreadPool* pool = nullptr);

 private:
  std::vector<std::vector<CliqueId>> adjacency_;
  Count num_edges_ = 0;
};

}  // namespace dkc

#endif  // DKC_CLIQUE_CLIQUE_GRAPH_H_
