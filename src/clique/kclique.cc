#include "clique/kclique.h"

#include <algorithm>
#include <atomic>
#include <mutex>

namespace dkc {

void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     std::vector<NodeId>* out) {
  out->clear();
  // Galloping would help at extreme size skew, but the DAG out-degrees are
  // degeneracy-bounded on our inputs, so the plain merge wins in practice.
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

KCliqueEnumerator::KCliqueEnumerator(const Dag& dag, int k)
    : dag_(dag), k_(k) {
  prefix_.reserve(static_cast<size_t>(k));
  const int levels = k >= 3 ? k - 2 : 0;
  scratch_.resize(levels);
  for (auto& buf : scratch_) {
    buf.reserve(dag_.MaxOutDegree());
  }
}

Count KCliqueEnumerator::CountRooted(NodeId u) {
  if (k_ == 1) return 1;
  auto out = dag_.OutNeighbors(u);
  if (out.size() + 1 < static_cast<size_t>(k_)) return 0;
  return CountRec(k_ - 1, out, 0);
}

Count KCliqueEnumerator::CountRec(int remaining, std::span<const NodeId> cand,
                                  int depth) {
  if (remaining == 1) return cand.size();
  Count total = 0;
  for (NodeId v : cand) {
    if (dag_.OutDegree(v) + 1 < static_cast<Count>(remaining)) continue;
    auto& next = scratch_[depth];
    IntersectSorted(cand, dag_.OutNeighbors(v), &next);
    if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
    total += CountRec(remaining - 1, next, depth + 1);
  }
  return total;
}

Count KCliqueEnumerator::ScoreRooted(NodeId u, std::vector<Count>* counts) {
  if (k_ == 1) {
    ++(*counts)[u];
    return 1;
  }
  auto out = dag_.OutNeighbors(u);
  if (out.size() + 1 < static_cast<size_t>(k_)) return 0;
  prefix_.assign(1, u);
  return ScoreRec(k_ - 1, out, 0, counts);
}

Count KCliqueEnumerator::ScoreRec(int remaining, std::span<const NodeId> cand,
                                  int depth, std::vector<Count>* counts) {
  if (remaining == 1) {
    // Every candidate closes one clique with the current prefix: candidates
    // gain 1 each, every prefix node gains |cand|.
    for (NodeId v : cand) ++(*counts)[v];
    for (NodeId p : prefix_) (*counts)[p] += cand.size();
    return cand.size();
  }
  Count total = 0;
  for (NodeId v : cand) {
    if (dag_.OutDegree(v) + 1 < static_cast<Count>(remaining)) continue;
    auto& next = scratch_[depth];
    IntersectSorted(cand, dag_.OutNeighbors(v), &next);
    if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
    prefix_.push_back(v);
    total += ScoreRec(remaining - 1, next, depth + 1, counts);
    prefix_.pop_back();
  }
  return total;
}

namespace {

// Shared driver for the whole-graph counting entry points: iterate roots,
// optionally on a pool, optionally deadline-checked. `per_root` must be
// callable concurrently on distinct worker states.
template <typename MakeState, typename PerRoot, typename Merge>
bool DriveRoots(const Dag& dag, ThreadPool* pool, const Deadline& deadline,
                MakeState make_state, PerRoot per_root, Merge merge) {
  const NodeId n = dag.num_nodes();
  if (pool == nullptr || pool->num_threads() <= 1 || n < 1024) {
    auto state = make_state();
    for (NodeId u = 0; u < n; ++u) {
      if ((u & 0xFF) == 0 && deadline.Expired()) return false;
      per_root(u, &state);
    }
    merge(&state);
    return true;
  }
  std::atomic<NodeId> cursor{0};
  std::atomic<bool> expired{false};
  std::mutex merge_mu;
  const size_t workers = pool->num_threads();
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      auto state = make_state();
      constexpr NodeId kChunk = 256;
      for (;;) {
        const NodeId begin = cursor.fetch_add(kChunk);
        if (begin >= n || expired.load(std::memory_order_relaxed)) break;
        if (deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          break;
        }
        const NodeId end = std::min<NodeId>(n, begin + kChunk);
        for (NodeId u = begin; u < end; ++u) per_root(u, &state);
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      merge(&state);
    });
  }
  pool->Wait();
  return !expired.load();
}

}  // namespace

Count CountKCliques(const Dag& dag, int k, ThreadPool* pool,
                    const Deadline& deadline, bool* oot) {
  std::atomic<Count> total{0};
  struct State {
    KCliqueEnumerator enumerator;
    Count local = 0;
  };
  const bool completed = DriveRoots(
      dag, pool, deadline,
      [&] { return State{KCliqueEnumerator(dag, k), 0}; },
      [](NodeId u, State* s) { s->local += s->enumerator.CountRooted(u); },
      [&](State* s) { total.fetch_add(s->local); });
  if (oot != nullptr) *oot = !completed;
  return total.load();
}

NodeScores ComputeNodeScores(const Dag& dag, int k, ThreadPool* pool,
                             const Deadline& deadline, bool* oot) {
  NodeScores result;
  result.per_node.assign(dag.num_nodes(), 0);
  std::atomic<Count> total{0};
  struct State {
    KCliqueEnumerator enumerator;
    std::vector<Count> counts;
    Count local_total = 0;
  };
  const bool completed = DriveRoots(
      dag, pool, deadline,
      [&] {
        return State{KCliqueEnumerator(dag, k),
                     std::vector<Count>(dag.num_nodes(), 0), 0};
      },
      [](NodeId u, State* s) {
        s->local_total += s->enumerator.ScoreRooted(u, &s->counts);
      },
      [&](State* s) {
        total.fetch_add(s->local_total);
        for (NodeId u = 0; u < s->counts.size(); ++u) {
          result.per_node[u] += s->counts[u];
        }
      });
  if (oot != nullptr) *oot = !completed;
  result.total_cliques = total.load();
  return result;
}

void ForEachKCliqueInSubset(
    const DynamicGraph& g, std::span<const NodeId> subset, int k,
    const std::function<bool(std::span<const NodeId>)>& cb) {
  const size_t s = subset.size();
  if (s < static_cast<size_t>(k)) return;
  // Local induced adjacency, oriented by subset position (a valid total
  // order), so each clique comes out exactly once.
  std::vector<std::vector<NodeId>> out_local(s);  // positions, ascending
  for (size_t i = 0; i < s; ++i) {
    for (size_t j = i + 1; j < s; ++j) {
      if (g.HasEdge(subset[i], subset[j])) {
        out_local[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  std::vector<NodeId> prefix;  // positions
  std::vector<std::vector<NodeId>> scratch(k >= 3 ? k - 2 : 0);
  std::vector<NodeId> clique(k);
  bool stopped = false;

  // Depth-first over positions, mirroring KCliqueEnumerator.
  auto emit = [&](std::span<const NodeId> positions) {
    for (size_t i = 0; i < positions.size(); ++i) {
      clique[i] = subset[positions[i]];
    }
    return cb(std::span<const NodeId>(clique.data(), positions.size()));
  };
  std::function<bool(int, std::span<const NodeId>, int)> recurse =
      [&](int remaining, std::span<const NodeId> cand, int depth) -> bool {
    if (remaining == 1) {
      for (NodeId v : cand) {
        prefix.push_back(v);
        const bool keep_going = emit(prefix);
        prefix.pop_back();
        if (!keep_going) return false;
      }
      return true;
    }
    for (NodeId v : cand) {
      auto& next = scratch[depth];
      IntersectSorted(cand, out_local[v], &next);
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      prefix.push_back(v);
      const bool keep_going = recurse(remaining - 1, next, depth + 1);
      prefix.pop_back();
      if (!keep_going) return false;
    }
    return true;
  };
  for (size_t root = 0; root < s && !stopped; ++root) {
    if (out_local[root].size() + 1 < static_cast<size_t>(k)) continue;
    prefix.assign(1, static_cast<NodeId>(root));
    stopped = !recurse(k - 1, out_local[root], 0);
  }
}

}  // namespace dkc
