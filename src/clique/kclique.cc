#include "clique/kclique.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>

namespace dkc {

Count KCliqueEnumerator::CountRooted(NodeId u) {
  if (k_ == 1) return 1;
  if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return 0;
  kernel_.BuildFromRoot(dag_, u);
  return kernel_.CountCliques(k_ - 1);
}

Count KCliqueEnumerator::ScoreRooted(NodeId u, std::vector<Count>* counts) {
  if (k_ == 1) {
    ++(*counts)[u];
    return 1;
  }
  if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return 0;
  kernel_.BuildFromRoot(dag_, u);
  // The kernel credits the (k-1)-clique members; every one of those cliques
  // also contains the root, which therefore gains the rooted total.
  const Count total = kernel_.ScoreCliques(k_ - 1, counts);
  (*counts)[u] += total;
  return total;
}

Count CountKCliques(const Dag& dag, int k, ThreadPool* pool,
                    const Deadline& deadline, bool* oot) {
  std::atomic<Count> total{0};
  struct State {
    std::unique_ptr<KernelArena> arena;  // stable address across State moves
    KCliqueEnumerator enumerator;
    Count local = 0;
  };
  const bool completed = DriveRoots(
      dag.num_nodes(), pool, deadline,
      [&] {
        auto arena = std::make_unique<KernelArena>();
        KernelArena* raw = arena.get();
        return State{std::move(arena), KCliqueEnumerator(dag, k, raw), 0};
      },
      [](NodeId u, State* s) { s->local += s->enumerator.CountRooted(u); },
      [&](State* s) { total.fetch_add(s->local); });
  if (oot != nullptr) *oot = !completed;
  return total.load();
}

NodeScores ComputeNodeScores(const Dag& dag, int k, ThreadPool* pool,
                             const Deadline& deadline, bool* oot) {
  NodeScores result;
  result.per_node.assign(dag.num_nodes(), 0);
  std::atomic<Count> total{0};
  struct State {
    std::unique_ptr<KernelArena> arena;  // stable address across State moves
    KCliqueEnumerator enumerator;
    std::vector<Count> counts;
    Count local_total = 0;
  };
  const bool completed = DriveRoots(
      dag.num_nodes(), pool, deadline,
      [&] {
        auto arena = std::make_unique<KernelArena>();
        KernelArena* raw = arena.get();
        return State{std::move(arena), KCliqueEnumerator(dag, k, raw),
                     std::vector<Count>(dag.num_nodes(), 0), 0};
      },
      [](NodeId u, State* s) {
        s->local_total += s->enumerator.ScoreRooted(u, &s->counts);
      },
      [&](State* s) {
        total.fetch_add(s->local_total);
        for (NodeId u = 0; u < s->counts.size(); ++u) {
          result.per_node[u] += s->counts[u];
        }
      });
  if (oot != nullptr) *oot = !completed;
  result.total_cliques = total.load();
  return result;
}

void ForEachKCliqueInSubset(
    const DynamicGraph& g, std::span<const NodeId> subset, int k,
    const std::function<bool(std::span<const NodeId>)>& cb,
    NeighborhoodKernel* kernel, EnumBudget* budget) {
  if (subset.size() < static_cast<size_t>(k)) return;
  auto run = [&](NeighborhoodKernel* active) {
    active->BuildFromSubset(g, subset);
    if (budget != nullptr) {
      active->ForEachCliqueBudgeted(k, cb, budget);
    } else {
      active->ForEachClique(k, cb);
    }
  };
  if (kernel != nullptr) {
    run(kernel);
    return;
  }
  // Fallback kernel (and its arena allocation) only when the caller has no
  // persistent one — the dynamic engine's per-update path always does.
  NeighborhoodKernel local;
  run(&local);
}

namespace {

// Budget cadence shared by the serial and parallel listing paths: charge /
// check once per this many cliques, and charge that many cliques' storage.
constexpr Count kListCheckPeriod = 0x1000;

int64_t ListChargeBytes(int k) {
  return static_cast<int64_t>(kListCheckPeriod) * k *
         static_cast<int64_t>(sizeof(NodeId));
}

}  // namespace

Status ListKCliques(const Dag& dag, int k, ThreadPool* pool,
                    const Deadline& deadline, MemoryBudget* memory,
                    const char* what, CliqueStore* store,
                    std::vector<Count>* node_scores) {
  const NodeId n = dag.num_nodes();
  const size_t workers = pool == nullptr ? 0 : pool->num_threads();
  std::atomic<bool> oom{false};
  std::atomic<bool> oot{false};
  std::atomic<Count> listed{0};
  auto drain = [&](std::span<const NodeId> nodes) {
    store->Add(nodes);
    if (node_scores != nullptr) {
      for (NodeId u : nodes) ++(*node_scores)[u];
    }
  };
  if (workers <= 1 || n < static_cast<NodeId>(2 * workers)) {
    KernelArena arena;
    KCliqueEnumerator enumerator(dag, k, &arena);
    Count since_check = 0;
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      drain(nodes);
      if ((++since_check & (kListCheckPeriod - 1)) == 0) {
        if (memory != nullptr && !memory->Charge(ListChargeBytes(k))) {
          oom.store(true);
          return false;
        }
        if (deadline.Expired()) {
          oot.store(true);
          return false;
        }
      }
      return true;
    });
    listed.store(since_check);
  } else {
    // Ordered reduction: workers list whole chunks of roots into
    // chunk-indexed flat buffers (k node ids per clique); the buffers are
    // drained in ascending chunk order below, reproducing the serial
    // enumeration order exactly.
    const NodeId chunk = std::max<NodeId>(
        1, std::min<NodeId>(512, n / static_cast<NodeId>(workers * 4)));
    const NodeId num_chunks = (n + chunk - 1) / chunk;
    std::vector<std::vector<NodeId>> out(num_chunks);
    std::atomic<NodeId> cursor{0};
    for (size_t w = 0; w < workers; ++w) {
      pool->Submit([&] {
        KernelArena arena;
        KCliqueEnumerator enumerator(dag, k, &arena);
        Count since_check = 0;
        for (;;) {
          const NodeId c = cursor.fetch_add(1);
          if (c >= num_chunks || oom.load(std::memory_order_relaxed) ||
              oot.load(std::memory_order_relaxed)) {
            break;
          }
          if (deadline.Expired()) {
            oot.store(true, std::memory_order_relaxed);
            break;
          }
          std::vector<NodeId>& buf = out[c];
          const NodeId end = std::min<NodeId>(n, (c + 1) * chunk);
          for (NodeId u = c * chunk; u < end; ++u) {
            enumerator.ForEachRooted(u, [&](std::span<const NodeId> nodes) {
              buf.insert(buf.end(), nodes.begin(), nodes.end());
              if ((++since_check & (kListCheckPeriod - 1)) == 0) {
                // MemoryBudget is atomic, so concurrent charges keep the
                // OOM decision sound (if approximately timed).
                if (memory != nullptr && !memory->Charge(ListChargeBytes(k))) {
                  oom.store(true, std::memory_order_relaxed);
                  return false;
                }
                if (deadline.Expired()) {
                  oot.store(true, std::memory_order_relaxed);
                  return false;
                }
              }
              return true;
            });
            if (oom.load(std::memory_order_relaxed) ||
                oot.load(std::memory_order_relaxed)) {
              break;
            }
          }
        }
        listed.fetch_add(since_check, std::memory_order_relaxed);
      });
    }
    pool->Wait();
    if (!oom.load() && !oot.load()) {
      for (std::vector<NodeId>& buf : out) {
        for (size_t i = 0; i + k <= buf.size(); i += k) {
          drain(std::span<const NodeId>(buf.data() + i, k));
        }
        // Release each chunk as it lands in the store: the budget charges
        // one copy of the cliques, so don't hold two to the end.
        std::vector<NodeId>().swap(buf);
      }
    }
  }
  if (oom.load()) {
    return Status::MemoryBudgetExceeded(
        std::string(what) + " clique store after " +
        std::to_string(listed.load()) + " cliques");
  }
  if (oot.load()) {
    return Status::TimeBudgetExceeded(std::string(what) +
                                      " clique enumeration");
  }
  return Status::OK();
}

}  // namespace dkc
