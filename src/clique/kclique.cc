#include "clique/kclique.h"

#include <algorithm>
#include <atomic>

namespace dkc {

Count KCliqueEnumerator::CountRooted(NodeId u) {
  if (k_ == 1) return 1;
  if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return 0;
  kernel_.BuildFromRoot(dag_, u);
  return kernel_.CountCliques(k_ - 1);
}

Count KCliqueEnumerator::ScoreRooted(NodeId u, std::vector<Count>* counts) {
  if (k_ == 1) {
    ++(*counts)[u];
    return 1;
  }
  if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return 0;
  kernel_.BuildFromRoot(dag_, u);
  // The kernel credits the (k-1)-clique members; every one of those cliques
  // also contains the root, which therefore gains the rooted total.
  const Count total = kernel_.ScoreCliques(k_ - 1, counts);
  (*counts)[u] += total;
  return total;
}

Count CountKCliques(const Dag& dag, int k, ThreadPool* pool,
                    const Deadline& deadline, bool* oot) {
  std::atomic<Count> total{0};
  struct State {
    KCliqueEnumerator enumerator;
    Count local = 0;
  };
  const bool completed = DriveRoots(
      dag.num_nodes(), pool, deadline,
      [&] { return State{KCliqueEnumerator(dag, k), 0}; },
      [](NodeId u, State* s) { s->local += s->enumerator.CountRooted(u); },
      [&](State* s) { total.fetch_add(s->local); });
  if (oot != nullptr) *oot = !completed;
  return total.load();
}

NodeScores ComputeNodeScores(const Dag& dag, int k, ThreadPool* pool,
                             const Deadline& deadline, bool* oot) {
  NodeScores result;
  result.per_node.assign(dag.num_nodes(), 0);
  std::atomic<Count> total{0};
  struct State {
    KCliqueEnumerator enumerator;
    std::vector<Count> counts;
    Count local_total = 0;
  };
  const bool completed = DriveRoots(
      dag.num_nodes(), pool, deadline,
      [&] {
        return State{KCliqueEnumerator(dag, k),
                     std::vector<Count>(dag.num_nodes(), 0), 0};
      },
      [](NodeId u, State* s) {
        s->local_total += s->enumerator.ScoreRooted(u, &s->counts);
      },
      [&](State* s) {
        total.fetch_add(s->local_total);
        for (NodeId u = 0; u < s->counts.size(); ++u) {
          result.per_node[u] += s->counts[u];
        }
      });
  if (oot != nullptr) *oot = !completed;
  result.total_cliques = total.load();
  return result;
}

void ForEachKCliqueInSubset(
    const DynamicGraph& g, std::span<const NodeId> subset, int k,
    const std::function<bool(std::span<const NodeId>)>& cb) {
  if (subset.size() < static_cast<size_t>(k)) return;
  NeighborhoodKernel kernel;
  kernel.BuildFromSubset(g, subset);
  kernel.ForEachClique(k, cb);
}

}  // namespace dkc
