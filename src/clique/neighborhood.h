// The shared neighborhood kernel behind every k-clique DFS in the library.
//
// Design note — local remap + bitmap adjacency
// --------------------------------------------
// Every solver in this library walks the same search tree: pick a root u of
// an oriented graph, then find (k-1)-cliques inside N+(u) by repeatedly
// intersecting candidate sets with out-neighborhoods (kClist [13]). The
// naive form pays a sorted-set merge per branch. This kernel instead
// materializes the *induced* neighborhood once per root:
//
//   1. the universe (N+(u), optionally validity-filtered, or an arbitrary
//      sorted node subset) is remapped to dense local ids 0..s-1, assigned
//      in ascending global-id order;
//   2. the adjacency induced on the universe is packed into a bit matrix —
//      row i is a bitset of the local ids adjacent to i (and oriented below
//      i in subset mode), ceil(s/64) words wide;
//   3. every deeper intersection becomes a word-wise AND + popcount, and
//      candidate sets are single bitmap rows on a per-depth stack.
//
// Because local ids are ascending in global id and set bits are visited
// LSB-first, the DFS visits branches in exactly the order the historical
// sorted-merge recursions did, so counting, scoring, min-clique search and
// enumeration all produce bit-identical results — including "first found
// in DFS order" tie-breaks — just faster.
//
// Fallback to sorted-merge: the bit matrix costs s*ceil(s/64) words to
// clear and build. DAG out-degrees are degeneracy-bounded, so per-root
// universes are small and dense enough that the matrix always wins; but an
// arbitrary subset (BuildFromSubset) can be huge and sparse. When a row
// would span more than kMaxRowWords machine words (s > kMaxBitmapNodes),
// the kernel keeps the induced adjacency as sorted local-id lists and runs
// the classical merge recursion instead — same visit order, same results.
//
// Visitors: the private Visit/BitRec/MergeRec templates drive a visitor
// with Enter/Exit (branch hooks, Enter may prune), LeafCount (candidate
// count at the last level) and LeafId (per-candidate completion) hooks.
// CountCliques / ScoreCliques / FindMinScoreClique / ForEachClique are the
// four public instantiations; KCliqueEnumerator, FindMin in the lightweight
// solver, HG's FindOne and ForEachKCliqueInSubset are all thin adapters.

#ifndef DKC_CLIQUE_NEIGHBORHOOD_H_
#define DKC_CLIQUE_NEIGHBORHOOD_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/dag.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

/// out = a ∩ b for sorted unique spans. `out` is overwritten. Switches to a
/// galloping (exponential-probe) scan when the inputs differ in size by
/// kGallopSkew or more; a plain two-pointer merge otherwise.
void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     std::vector<NodeId>* out);

/// Size ratio at which IntersectSorted switches from merging to galloping.
inline constexpr size_t kGallopSkew = 32;

/// Reusable induced-neighborhood clique kernel. Not thread-safe; create one
/// per thread and rebuild per root — scratch memory is recycled across
/// builds, so the per-root cost is proportional to the neighborhood, not
/// the graph.
class NeighborhoodKernel {
 public:
  /// Widest bit-matrix row, in 64-bit words; universes larger than
  /// kMaxBitmapNodes use the sorted-merge fallback (see design note).
  static constexpr NodeId kMaxRowWords = 64;
  static constexpr NodeId kMaxBitmapNodes = kMaxRowWords * 64;

  NeighborhoodKernel() = default;

  /// Universe = out-neighbors of `root` in `dag` (those with non-zero
  /// `valid`, when given). Local id i maps to dag.OutNeighbors(root)[i] in
  /// ascending node-id order. Returns the universe size s.
  NodeId BuildFromRoot(const Dag& dag, NodeId root,
                       const uint8_t* valid = nullptr);

  /// Universe = `subset` (sorted, unique) of the *current* state of `g`,
  /// oriented by position: row j holds adjacent positions i < j, so each
  /// clique is visited exactly once with its highest position as the
  /// branch head. Returns s = subset.size().
  NodeId BuildFromSubset(const DynamicGraph& g,
                         std::span<const NodeId> subset);

  NodeId size() const { return s_; }
  bool has_root() const { return has_root_; }
  bool uses_bitmap() const { return use_bitmap_; }
  NodeId ToGlobal(NodeId local) const { return local_nodes_[local]; }

  /// Number of q-cliques in the local universe (q = k-1 in root mode: the
  /// root completes each to a k-clique).
  Count CountCliques(int q);

  /// Per-node clique-participation scores: for every q-clique found, bump
  /// `(*counts)[global id]` of each member. Returns the number of
  /// q-cliques; in root mode the caller credits the root with that total.
  Count ScoreCliques(int q, std::vector<Count>* counts);

  /// Minimum-score q-clique: minimizes base_score + sum of member scores
  /// (scores indexed by global id), ties resolved first-found-in-DFS-order.
  /// With `prune`, branches whose running sum already exceeds the best are
  /// cut (never changes the result; scores are non-negative). On success
  /// fills `clique` with the member *global* ids in DFS order (root NOT
  /// included) and `clique_score` with the full sum.
  bool FindMinScoreClique(int q, std::span<const Count> scores,
                          Count base_score, bool prune,
                          std::vector<NodeId>* clique, Count* clique_score);

  /// Invoke `cb(nodes)` once per q-clique, where `nodes` spans global ids:
  /// the root first (root mode only), then the members in DFS order. `cb`
  /// returns false to stop; ForEachClique then returns false.
  template <typename F>
  bool ForEachClique(int q, F&& cb) {
    emit_.clear();
    if (has_root_) emit_.push_back(root_);
    EmitVisitor<std::remove_reference_t<F>> visitor{&emit_,
                                                    local_nodes_.data(), &cb};
    return Visit(q, visitor);
  }

 private:
  static constexpr NodeId kNoLocal = kInvalidNode;

  template <typename F>
  struct EmitVisitor {
    static constexpr bool kLeafIterates = true;
    std::vector<NodeId>* emit;
    const NodeId* local_nodes;
    F* callback;
    bool Enter(NodeId i) {
      emit->push_back(local_nodes[i]);
      return true;
    }
    void Exit(NodeId) { emit->pop_back(); }
    bool LeafCount(Count) { return true; }
    bool LeafId(NodeId i) {
      emit->push_back(local_nodes[i]);
      const bool keep_going = (*callback)(std::span<const NodeId>(*emit));
      emit->pop_back();
      return keep_going;
    }
  };

  void PrepareMap(NodeId num_nodes);

  /// Runs the visitor over every q-clique of the universe. Returns false
  /// iff a leaf hook aborted the traversal.
  template <typename V>
  bool Visit(int q, V& visitor) {
    if (q <= 0 || s_ < static_cast<NodeId>(q)) return true;
    if (use_bitmap_) {
      cand_stack_.resize(static_cast<size_t>(q) * words_);
      uint64_t* full = cand_stack_.data();
      for (NodeId w = 0; w < words_; ++w) full[w] = ~uint64_t{0};
      if ((s_ & 63) != 0) full[words_ - 1] = (uint64_t{1} << (s_ & 63)) - 1;
      return BitRec(q, full, 0, visitor);
    }
    merge_stack_.resize(static_cast<size_t>(q));
    merge_full_.resize(s_);
    for (NodeId i = 0; i < s_; ++i) merge_full_[i] = i;
    return MergeRec(q, merge_full_, 0, visitor);
  }

  template <typename V>
  bool BitRec(int remaining, const uint64_t* cand, int depth, V& visitor) {
    if (remaining == 1) {
      Count n = 0;
      for (NodeId w = 0; w < words_; ++w) n += std::popcount(cand[w]);
      if (!visitor.LeafCount(n)) return false;
      if constexpr (V::kLeafIterates) {
        for (NodeId w = 0; w < words_; ++w) {
          uint64_t bits = cand[w];
          while (bits != 0) {
            const NodeId i =
                w * 64 + static_cast<NodeId>(std::countr_zero(bits));
            bits &= bits - 1;
            if (!visitor.LeafId(i)) return false;
          }
        }
      }
      return true;
    }
    uint64_t* next =
        cand_stack_.data() + static_cast<size_t>(depth + 1) * words_;
    for (NodeId w = 0; w < words_; ++w) {
      uint64_t bits = cand[w];
      while (bits != 0) {
        const NodeId i = w * 64 + static_cast<NodeId>(std::countr_zero(bits));
        bits &= bits - 1;
        if (local_deg_[i] + 1 < static_cast<Count>(remaining)) continue;
        if (!visitor.Enter(i)) continue;
        const uint64_t* row = rows_.data() + static_cast<size_t>(i) * words_;
        Count n = 0;
        for (NodeId x = 0; x < words_; ++x) {
          next[x] = cand[x] & row[x];
          n += std::popcount(next[x]);
        }
        bool keep_going = true;
        if (n + 1 >= static_cast<Count>(remaining)) {
          keep_going = BitRec(remaining - 1, next, depth + 1, visitor);
        }
        visitor.Exit(i);
        if (!keep_going) return false;
      }
    }
    return true;
  }

  template <typename V>
  bool MergeRec(int remaining, std::span<const NodeId> cand, int depth,
                V& visitor) {
    if (remaining == 1) {
      if (!visitor.LeafCount(cand.size())) return false;
      if constexpr (V::kLeafIterates) {
        for (NodeId i : cand) {
          if (!visitor.LeafId(i)) return false;
        }
      }
      return true;
    }
    for (NodeId i : cand) {
      if (local_deg_[i] + 1 < static_cast<Count>(remaining)) continue;
      if (!visitor.Enter(i)) continue;
      auto& next = merge_stack_[depth];
      IntersectSorted(cand, LocalNeighbors(i), &next);
      bool keep_going = true;
      if (next.size() + 1 >= static_cast<size_t>(remaining)) {
        keep_going = MergeRec(remaining - 1, next, depth + 1, visitor);
      }
      visitor.Exit(i);
      if (!keep_going) return false;
    }
    return true;
  }

  std::span<const NodeId> LocalNeighbors(NodeId i) const {
    return {adj_list_.data() + adj_offsets_[i],
            adj_list_.data() + adj_offsets_[i + 1]};
  }

  // Universe.
  NodeId s_ = 0;
  NodeId root_ = 0;
  bool has_root_ = false;
  bool use_bitmap_ = true;
  std::vector<NodeId> local_nodes_;  // local id -> global id, ascending
  std::vector<NodeId> local_of_;     // global id -> local id (root mode)
  std::vector<NodeId> map_entries_;  // global ids currently set in local_of_
  std::vector<Count> local_deg_;     // induced out-degree per local id

  // Bitmap representation.
  NodeId words_ = 0;
  std::vector<uint64_t> rows_;        // s_ rows of words_ words
  std::vector<uint64_t> cand_stack_;  // one candidate bitmap per depth

  // Sorted-merge fallback representation.
  std::vector<Count> adj_offsets_;
  std::vector<NodeId> adj_list_;
  std::vector<NodeId> merge_full_;
  std::vector<std::vector<NodeId>> merge_stack_;

  // Visitor scratch.
  std::vector<NodeId> emit_;        // global ids, root-prefixed in root mode
  std::vector<NodeId> prefix_scratch_;  // local ids (FindMinScoreClique)
  std::vector<NodeId> best_scratch_;
  std::vector<Count> local_scores_;
};

/// Shared parallel driver for per-root passes: iterate roots 0..n-1,
/// optionally chunked across a pool, with uniform deadline checks.
/// `make_state` builds one worker-private state (e.g. a kernel plus local
/// accumulators), `per_root(u, &state)` must be callable concurrently on
/// distinct states, and `merge(&state)` runs under a lock (or inline when
/// serial). Returns false iff the deadline expired before completion.
template <typename MakeState, typename PerRoot, typename Merge>
bool DriveRoots(NodeId n, ThreadPool* pool, const Deadline& deadline,
                MakeState make_state, PerRoot per_root, Merge merge) {
  if (pool == nullptr || pool->num_threads() <= 1 || n < 1024) {
    auto state = make_state();
    for (NodeId u = 0; u < n; ++u) {
      if ((u & 0xFF) == 0 && deadline.Expired()) return false;
      per_root(u, &state);
    }
    merge(&state);
    return true;
  }
  std::atomic<NodeId> cursor{0};
  std::atomic<bool> expired{false};
  std::mutex merge_mu;
  const size_t workers = pool->num_threads();
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      auto state = make_state();
      constexpr NodeId kChunk = 256;
      for (;;) {
        const NodeId begin = cursor.fetch_add(kChunk);
        if (begin >= n || expired.load(std::memory_order_relaxed)) break;
        if (deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          break;
        }
        const NodeId end = std::min<NodeId>(n, begin + kChunk);
        for (NodeId u = begin; u < end; ++u) per_root(u, &state);
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      merge(&state);
    });
  }
  pool->Wait();
  return !expired.load();
}

}  // namespace dkc

#endif  // DKC_CLIQUE_NEIGHBORHOOD_H_
