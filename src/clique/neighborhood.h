// The shared neighborhood kernel behind every k-clique DFS in the library.
//
// Design note — local remap + bitmap adjacency, v2: lazy rows + arena
// ------------------------------------------------------------------
// Every solver in this library walks the same search tree: pick a root u of
// an oriented graph, then find (k-1)-cliques inside N+(u) by repeatedly
// intersecting candidate sets with out-neighborhoods (kClist [13]). The
// naive form pays a sorted-set merge per branch. This kernel instead
// remaps the *induced* neighborhood once per root:
//
//   1. the universe (N+(u), optionally validity-filtered, or an arbitrary
//      sorted node subset) is remapped to dense local ids 0..s-1, assigned
//      in ascending global-id order;
//   2. the adjacency induced on the universe is packed into a bit matrix —
//      row i is a bitset of the local ids adjacent to i (and oriented below
//      i in subset mode), ceil(s/64) words wide;
//   3. every deeper intersection becomes a word-wise AND + popcount, and
//      candidate sets are single bitmap rows on a per-depth stack.
//
// v2 makes two structural changes over the eager per-root build:
//
//   * Lazy row materialization (root mode). Only the remap table and a
//     per-row out-degree *upper bound* are built up front; a bit-matrix row
//     is materialized the first time a DFS branch needs to intersect it,
//     tracked by a built-bitmap. Rows of candidates that are pruned before
//     ever heading a branch (low degree, score cuts, exhausted validity)
//     are never built — exactly the rows the first DFS level discards on
//     the filtered passes (HG FindOne, L/LP FindMin). `rows_built()`
//     exposes the per-build count for tests and diagnostics.
//   * KernelArena. All scratch buffers (remap tables, row storage,
//     candidate stacks, visitor scratch) live in one flat arena object
//     that persists across roots, so per-root cost is proportional to the
//     neighborhood actually touched, never to allocation. A kernel owns a
//     private arena by default; workers that drive many roots (DriveRoots
//     states, the dynamic engine's per-update subset enumeration) hold one
//     arena per worker and lend it to their kernels. An arena must not be
//     lent to two kernels that are mid-traversal at the same time.
//
// The common case — DAG out-degrees are degeneracy-bounded, so per-root
// universes almost always fit one machine word — runs a specialized
// single-word recursion: the candidate set is a uint64_t in a register and
// intersection is one AND, no per-depth stack traffic.
//
// Because local ids are ascending in global id and set bits are visited
// LSB-first, the DFS visits branches in exactly the order the historical
// sorted-merge recursions did, so counting, scoring, min-clique search and
// enumeration all produce bit-identical results — including "first found
// in DFS order" tie-breaks — just faster. Degree pruning with the lazy
// upper bound keeps this property: the bound only ever *admits* branches
// the exact induced degree would admit, and an admitted branch that cannot
// complete a clique dies at the candidate-count check without emitting
// anything.
//
// Fallback to sorted-merge: an arbitrary subset (BuildFromSubset) can be
// huge and sparse. When a row would span more than kMaxRowWords machine
// words (s > kMaxBitmapNodes), the kernel keeps the induced adjacency as
// sorted local-id lists and runs the classical merge recursion instead —
// same visit order, same results.
//
// SIMD: the word-level inner loops ride the runtime-dispatched primitives
// in clique/intersect_simd.h — MaterializeRow bulk-filters the epoch-valid
// neighbors through GatherValidLocalIds (8-wide gather/compare/compress),
// the multi-word BitRec intersection+count runs through AndPopcountWords /
// PopcountWords, and MergeRec's IntersectSorted takes the shuffle-based
// block intersection. Every dispatch level is byte-identical; DKC_PORTABLE
// builds compile the scalar loops only (see util/cpu.h).
//
// Visitors: the private Visit/BitRec/MergeRec templates drive a visitor
// with Enter/Exit (branch hooks, Enter may prune), LeafCount (candidate
// count at the last level) and LeafId (per-candidate completion) hooks.
// CountCliques / ScoreCliques / FindMinScoreClique / ForEachClique are the
// four public instantiations; KCliqueEnumerator, FindMin in the lightweight
// solver, HG's FindOne and ForEachKCliqueInSubset are all thin adapters.

#ifndef DKC_CLIQUE_NEIGHBORHOOD_H_
#define DKC_CLIQUE_NEIGHBORHOOD_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "clique/intersect_simd.h"
#include "graph/dag.h"
#include "graph/dynamic_graph.h"
#include "graph/graph.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {

/// Deterministic budget for charged enumerations: one unit per DFS branch
/// entered (the visitor Enter hook). With `cap != 0`, an Enter attempt
/// once `used >= cap` is refused and `cut` latches; every later branch is
/// refused the same way, so no clique is emitted past the cut — the
/// traversal is truncated at a branch boundary whose position depends only
/// on the universe and the budget, never on scheduling or the clock.
///
/// `emit_used`, when non-null, records the `used` value at each emitted
/// clique. An *unbudgeted* run (cap == 0) recording emit_used lets a
/// caller replay a budget afterwards: the budgeted run would have emitted
/// exactly the cliques whose recorded value is <= the budget's headroom,
/// charged min(total used, headroom), and cut iff total used exceeds it —
/// how the dynamic engine's pooled rebuild fan-out stays byte-identical to
/// its serial path.
struct EnumBudget {
  uint64_t used = 0;
  uint64_t cap = 0;  // 0 = unlimited
  bool cut = false;
  std::vector<uint64_t>* emit_used = nullptr;
};

/// Flat scratch buffers shared by every per-root build of one worker.
/// Buffers only ever grow; reusing one arena across roots (and across the
/// kernels of one worker, one traversal at a time) makes the steady-state
/// per-root cost allocation-free.
struct KernelArena {
  // Universe / remap. The global->local map is epoch-stamped: an entry is
  // live only when its stamp matches the arena's current epoch, so a new
  // build invalidates the whole map by bumping one counter instead of
  // walking and clearing the previous universe.
  std::vector<NodeId> local_nodes;  // copy buffer (filtered/subset builds)
  std::vector<NodeId> local_of;     // global id -> local id (root mode)
  std::vector<uint32_t> map_epoch;  // stamp per global id
  uint32_t epoch = 0;
  std::vector<Count> deg_bound;     // per-local-id induced out-degree: an
                                    // upper bound until the row is built,
                                    // exact afterwards

  // Bitmap representation.
  std::vector<uint64_t> rows;       // s rows of `words` words
  std::vector<uint64_t> row_built;  // bit i set once row i is materialized
  std::vector<uint64_t> cand_stack; // one candidate bitmap per depth

  // Sorted-merge fallback representation.
  std::vector<Count> adj_offsets;
  std::vector<NodeId> adj_list;
  std::vector<NodeId> merge_full;
  std::vector<std::vector<NodeId>> merge_stack;

  // Row-construction scratch: the epoch-valid local ids of the row being
  // materialized, compacted by GatherValidLocalIds before the bits are set.
  std::vector<NodeId> gather_scratch;

  // Visitor scratch.
  std::vector<NodeId> emit;            // global ids, root-prefixed
  std::vector<NodeId> prefix_scratch;  // local ids (FindMinScoreClique)
  std::vector<NodeId> best_scratch;
  std::vector<Count> local_scores;
  std::vector<Count> subtree_counts;   // per-depth clique counters (scoring)
};

/// Reusable induced-neighborhood clique kernel. Not thread-safe; create one
/// per thread and rebuild per root — scratch memory lives in a KernelArena
/// recycled across builds, so the per-root cost is proportional to the
/// neighborhood touched, not the graph.
class NeighborhoodKernel {
 public:
  /// Widest bit-matrix row, in 64-bit words; universes larger than
  /// kMaxBitmapNodes use the sorted-merge fallback (see design note).
  static constexpr NodeId kMaxRowWords = 64;
  static constexpr NodeId kMaxBitmapNodes = kMaxRowWords * 64;

  /// Borrows `arena` when given; otherwise owns a private one. A borrowed
  /// arena must outlive the kernel and may be lent to other kernels of the
  /// same worker, one build+traversal at a time.
  explicit NeighborhoodKernel(KernelArena* arena = nullptr)
      : owned_(arena == nullptr ? std::make_unique<KernelArena>() : nullptr),
        a_(arena == nullptr ? owned_.get() : arena) {}

  /// Universe = out-neighbors of `root` in `dag` (those with non-zero
  /// `valid`, when given). Local id i maps to dag.OutNeighbors(root)[i] in
  /// ascending node-id order. Rows are built lazily on first DFS touch;
  /// `dag` must stay alive and unchanged until the last traversal. Returns
  /// the universe size s.
  NodeId BuildFromRoot(const Dag& dag, NodeId root,
                       const uint8_t* valid = nullptr);

  /// Universe = `subset` (sorted, unique) of the *current* state of `g`,
  /// oriented by position: row j holds adjacent positions i < j, so each
  /// clique is visited exactly once with its highest position as the
  /// branch head. Rows are built eagerly (the two-pointer orientation walk
  /// produces them as a by-product). Returns s = subset.size().
  NodeId BuildFromSubset(const DynamicGraph& g,
                         std::span<const NodeId> subset);

  NodeId size() const { return s_; }
  bool has_root() const { return has_root_; }
  bool uses_bitmap() const { return use_bitmap_; }
  NodeId ToGlobal(NodeId local) const { return uni_[local]; }

  /// Bit-matrix rows materialized since the last Build* call. In root mode
  /// this counts lazy builds (each row at most once — the built-bitmap
  /// guards re-entry); in subset/merge mode every row is built eagerly, so
  /// it equals size().
  NodeId rows_built() const { return rows_built_; }

  /// Number of q-cliques in the local universe (q = k-1 in root mode: the
  /// root completes each to a k-clique).
  Count CountCliques(int q);

  /// Per-node clique-participation scores: for every q-clique found, bump
  /// `(*counts)[global id]` of each member. Returns the number of
  /// q-cliques; in root mode the caller credits the root with that total.
  Count ScoreCliques(int q, std::vector<Count>* counts);

  /// Minimum-score q-clique: minimizes base_score + sum of member scores
  /// (scores indexed by global id), ties resolved first-found-in-DFS-order.
  /// With `prune`, branches whose running sum already exceeds the best are
  /// cut (never changes the result; scores are non-negative). On success
  /// fills `clique` with the member *global* ids in DFS order (root NOT
  /// included) and `clique_score` with the full sum.
  bool FindMinScoreClique(int q, std::span<const Count> scores,
                          Count base_score, bool prune,
                          std::vector<NodeId>* clique, Count* clique_score);

  /// Invoke `cb(nodes)` once per q-clique, where `nodes` spans global ids:
  /// the root first (root mode only), then the members in DFS order. `cb`
  /// returns false to stop; ForEachClique then returns false. Pass
  /// `eager = true` when `cb` will consume (nearly) the whole enumeration —
  /// full listings build every row up front; early-stopping searches leave
  /// rows lazy.
  template <typename F>
  bool ForEachClique(int q, F&& cb, bool eager = false) {
    a_->emit.clear();
    if (has_root_) a_->emit.push_back(root_);
    EmitVisitor<std::remove_reference_t<F>> visitor{&a_->emit, uni_, &cb};
    return Visit(q, visitor, eager);
  }

  /// ForEachClique under an EnumBudget: each branch Enter charges one unit
  /// of `budget->used`, refused once the cap is spent (see EnumBudget).
  /// Emitted cliques and their order are a prefix-by-budget of the
  /// unbudgeted enumeration. Returns false iff `cb` stopped the traversal
  /// (a budget cut is reported through budget->cut, not the return value).
  template <typename F>
  bool ForEachCliqueBudgeted(int q, F&& cb, EnumBudget* budget) {
    a_->emit.clear();
    if (has_root_) a_->emit.push_back(root_);
    ChargedEmitVisitor<std::remove_reference_t<F>> visitor{&a_->emit, uni_,
                                                           &cb, budget};
    Visit(q, visitor);
    return !visitor.stopped;
  }

 private:
  static constexpr NodeId kNoLocal = kInvalidNode;

  template <typename F>
  struct EmitVisitor {
    static constexpr bool kLeafIterates = true;
    std::vector<NodeId>* emit;
    const NodeId* local_nodes;
    F* callback;
    bool Enter(NodeId i) {
      emit->push_back(local_nodes[i]);
      return true;
    }
    void Exit(NodeId) { emit->pop_back(); }
    bool LeafCount(Count) { return true; }
    bool LeafId(NodeId i) {
      emit->push_back(local_nodes[i]);
      const bool keep_going = (*callback)(std::span<const NodeId>(*emit));
      emit->pop_back();
      return keep_going;
    }
  };

  // EmitVisitor under an EnumBudget: Enter charges one unit and is refused
  // once the cap is spent (the cut latches; every later Enter is refused
  // too, so the remaining traversal degenerates to cheap refusals and no
  // further clique can be emitted). Budget refusals and `cb` stops are
  // distinguished through `stopped` so the caller can keep ForEachClique's
  // return-value contract.
  template <typename F>
  struct ChargedEmitVisitor {
    static constexpr bool kLeafIterates = true;
    std::vector<NodeId>* emit;
    const NodeId* local_nodes;
    F* callback;
    EnumBudget* budget;
    bool stopped = false;  // cb returned false (not a budget cut)
    bool Enter(NodeId i) {
      if (budget->cap != 0 && budget->used >= budget->cap) {
        budget->cut = true;
        return false;
      }
      ++budget->used;
      emit->push_back(local_nodes[i]);
      return true;
    }
    void Exit(NodeId) { emit->pop_back(); }
    bool LeafCount(Count) { return !budget->cut; }
    bool LeafId(NodeId i) {
      if (budget->cut) return false;
      if (budget->emit_used != nullptr) {
        budget->emit_used->push_back(budget->used);
      }
      emit->push_back(local_nodes[i]);
      const bool keep_going = (*callback)(std::span<const NodeId>(*emit));
      emit->pop_back();
      if (!keep_going) stopped = true;
      return keep_going;
    }
  };

  void PrepareMap(NodeId num_nodes);

  /// Materializes row i (root mode): clears the row words, maps the DAG
  /// out-neighbors into local-id bits, and replaces the degree upper bound
  /// with the exact induced out-degree.
  void MaterializeRow(NodeId i, uint64_t* row);

  /// Row i of the bit matrix, building it on first touch.
  const uint64_t* RowFor(NodeId i) {
    uint64_t* row = a_->rows.data() + static_cast<size_t>(i) * words_;
    if ((a_->row_built[i >> 6] >> (i & 63) & 1) == 0) MaterializeRow(i, row);
    return row;
  }

  /// Row-structure lifecycle (root/bitmap mode). BuildFromRoot only remaps
  /// the universe; the first traversal decides how rows come to exist:
  /// kUnset -> (lazy visit) kLazy: degree upper bounds + empty built-bitmap,
  ///           rows materialize on first DFS touch;
  /// kUnset -> (eager visit) kAllBuilt: one bulk pass — matrix memset +
  ///           tight row fill, no per-row bookkeeping;
  /// kLazy  -> (eager visit) kAllBuilt once the remaining rows are filled.
  enum class RowState : uint8_t { kUnset, kLazy, kAllBuilt };

  void PrepareLazyRows();
  void MaterializeAllRows();

  /// Runs the visitor over every q-clique of the universe. With `eager`,
  /// all rows are materialized up front (right for exhaustive passes —
  /// counting/scoring touch almost every row anyway); without it, rows
  /// build lazily on first touch (right for pruned or early-stopping
  /// passes — FindMin, first-hit FindOne). Either way, once every row is
  /// built the recursion switches to a read-only variant whose row/degree
  /// pointers the compiler can hoist out of the branch loops (the lazy
  /// variant's potential MaterializeRow call forces reloads). Returns
  /// false iff a leaf hook aborted the traversal.
  template <typename V>
  bool Visit(int q, V& visitor, bool eager = false) {
    if (q <= 0 || s_ < static_cast<NodeId>(q)) return true;
    if (use_bitmap_) {
      if (q >= 2) {  // q == 1 is leaf-only: no rows, no degree checks
        if (eager) {
          MaterializeAllRows();
        } else if (row_state_ == RowState::kUnset) {
          PrepareLazyRows();
        }
      }
      const bool built = row_state_ == RowState::kAllBuilt;
      if (words_ == 1) {
        const uint64_t full =
            s_ == 64 ? ~uint64_t{0} : (uint64_t{1} << s_) - 1;
        // Fixed-depth dispatch: for the q every workload here uses, make
        // the level a template parameter — no `remaining` register, each
        // level's checks constant-folded, levels inlined into each other.
        switch (q) {
          case 1: return BitRec1Fixed<false, 1>(full, visitor);
          case 2:
            return built ? BitRec1Fixed<false, 2>(full, visitor)
                         : BitRec1Fixed<true, 2>(full, visitor);
          case 3:
            return built ? BitRec1Fixed<false, 3>(full, visitor)
                         : BitRec1Fixed<true, 3>(full, visitor);
          case 4:
            return built ? BitRec1Fixed<false, 4>(full, visitor)
                         : BitRec1Fixed<true, 4>(full, visitor);
          case 5:
            return built ? BitRec1Fixed<false, 5>(full, visitor)
                         : BitRec1Fixed<true, 5>(full, visitor);
          case 6:
            return built ? BitRec1Fixed<false, 6>(full, visitor)
                         : BitRec1Fixed<true, 6>(full, visitor);
          case 7:
            return built ? BitRec1Fixed<false, 7>(full, visitor)
                         : BitRec1Fixed<true, 7>(full, visitor);
          case 8:
            return built ? BitRec1Fixed<false, 8>(full, visitor)
                         : BitRec1Fixed<true, 8>(full, visitor);
          default:
            return built ? BitRec1<false>(q, full, visitor)
                         : BitRec1<true>(q, full, visitor);
        }
      }
      a_->cand_stack.resize(static_cast<size_t>(q) * words_);
      uint64_t* full = a_->cand_stack.data();
      for (NodeId w = 0; w < words_; ++w) full[w] = ~uint64_t{0};
      if ((s_ & 63) != 0) full[words_ - 1] = (uint64_t{1} << (s_ & 63)) - 1;
      return built ? BitRec<false>(q, full, 0, visitor)
                   : BitRec<true>(q, full, 0, visitor);
    }
    a_->merge_stack.resize(static_cast<size_t>(q));
    a_->merge_full.resize(s_);
    for (NodeId i = 0; i < s_; ++i) a_->merge_full[i] = i;
    return MergeRec(q, a_->merge_full, 0, visitor);
  }

  /// Single-word traversal with a compile-time level (the hot shape):
  /// semantically identical to BitRec1 below with remaining == R.
  template <bool kLazy, int R, typename V>
  bool BitRec1Fixed(uint64_t cand, V& visitor) {
    if constexpr (R == 1) {
      if (!visitor.LeafCount(static_cast<Count>(std::popcount(cand)))) {
        return false;
      }
      if constexpr (V::kLeafIterates) {
        for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
          if (!visitor.LeafId(static_cast<NodeId>(std::countr_zero(bits)))) {
            return false;
          }
        }
      }
      return true;
    } else {
      const uint64_t* rows = a_->rows.data();
      const Count* deg = a_->deg_bound.data();
      for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
        const NodeId i = static_cast<NodeId>(std::countr_zero(bits));
        if (deg[i] + 1 < static_cast<Count>(R)) continue;
        if (!visitor.Enter(i)) continue;
        uint64_t row;
        if constexpr (kLazy) {
          row = *RowFor(i);
        } else {
          row = rows[i];
        }
        const uint64_t next = cand & row;
        bool keep_going = true;
        if constexpr (R == 2) {
          if (next != 0) {
            keep_going =
                visitor.LeafCount(static_cast<Count>(std::popcount(next)));
            if constexpr (V::kLeafIterates) {
              for (uint64_t lb = next; keep_going && lb != 0; lb &= lb - 1) {
                keep_going = visitor.LeafId(
                    static_cast<NodeId>(std::countr_zero(lb)));
              }
            }
          }
        } else {
          if (std::popcount(next) + 1 >= R) {
            keep_going = BitRec1Fixed<kLazy, R - 1>(next, visitor);
          }
        }
        visitor.Exit(i);
        if (!keep_going) return false;
      }
      return true;
    }
  }

  /// Single-word specialization (s <= 64, the degeneracy-bounded common
  /// case): the candidate set lives in a register, intersection is one AND.
  template <bool kLazy, typename V>
  bool BitRec1(int remaining, uint64_t cand, V& visitor) {
    if (remaining == 1) {
      if (!visitor.LeafCount(static_cast<Count>(std::popcount(cand)))) {
        return false;
      }
      if constexpr (V::kLeafIterates) {
        for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
          if (!visitor.LeafId(static_cast<NodeId>(std::countr_zero(bits)))) {
            return false;
          }
        }
      }
      return true;
    }
    const uint64_t* rows = a_->rows.data();
    const Count* deg = a_->deg_bound.data();
    if (remaining == 2) {
      // Penultimate level, manually inlined: each surviving branch head i
      // completes popcount(cand & row_i) cliques — no recursive call. Hook
      // order and early-stop behavior mirror the generic level exactly.
      for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
        const NodeId i = static_cast<NodeId>(std::countr_zero(bits));
        if (deg[i] + 1 < 2) continue;
        // Lazy mode probes the visitor *before* materializing the row:
        // score-pruned branches (the LP win) never pay for a build. An
        // entered branch is unwound by Exit either way.
        if (!visitor.Enter(i)) continue;
        uint64_t row;
        if constexpr (kLazy) {
          row = *RowFor(i);
        } else {
          row = rows[i];
        }
        const uint64_t next = cand & row;
        bool keep_going = true;
        if (next != 0) {
          keep_going =
              visitor.LeafCount(static_cast<Count>(std::popcount(next)));
          if constexpr (V::kLeafIterates) {
            for (uint64_t lb = next; keep_going && lb != 0; lb &= lb - 1) {
              keep_going =
                  visitor.LeafId(static_cast<NodeId>(std::countr_zero(lb)));
            }
          }
        }
        visitor.Exit(i);
        if (!keep_going) return false;
      }
      return true;
    }
    for (uint64_t bits = cand; bits != 0; bits &= bits - 1) {
      const NodeId i = static_cast<NodeId>(std::countr_zero(bits));
      // Degree prune. In lazy mode the bound may over-admit until the row
      // is built; over-admitted branches die at the candidate-count check
      // below without emitting anything, so results never change. The
      // visitor probe runs before the row build so score-pruned branches
      // never materialize anything.
      if (deg[i] + 1 < static_cast<Count>(remaining)) continue;
      if (!visitor.Enter(i)) continue;
      uint64_t row;
      if constexpr (kLazy) {
        row = *RowFor(i);
      } else {
        row = rows[i];
      }
      const uint64_t next = cand & row;
      bool keep_going = true;
      if (std::popcount(next) + 1 >= remaining) {
        keep_going = BitRec1<kLazy>(remaining - 1, next, visitor);
      }
      visitor.Exit(i);
      if (!keep_going) return false;
    }
    return true;
  }

  template <bool kLazy, typename V>
  bool BitRec(int remaining, const uint64_t* cand, int depth, V& visitor) {
    if (remaining == 1) {
      const Count n = PopcountWords(cand, words_);
      if (!visitor.LeafCount(n)) return false;
      if constexpr (V::kLeafIterates) {
        for (NodeId w = 0; w < words_; ++w) {
          uint64_t bits = cand[w];
          while (bits != 0) {
            const NodeId i =
                w * 64 + static_cast<NodeId>(std::countr_zero(bits));
            bits &= bits - 1;
            if (!visitor.LeafId(i)) return false;
          }
        }
      }
      return true;
    }
    for (NodeId w = 0; w < words_; ++w) {
      uint64_t bits = cand[w];
      while (bits != 0) {
        const NodeId i = w * 64 + static_cast<NodeId>(std::countr_zero(bits));
        bits &= bits - 1;
        if (a_->deg_bound[i] + 1 < static_cast<Count>(remaining)) continue;
        if (!visitor.Enter(i)) continue;
        const uint64_t* row;
        if constexpr (kLazy) {
          row = RowFor(i);
        } else {
          row = a_->rows.data() + static_cast<size_t>(i) * words_;
        }
        // cand may alias cand_stack: resolve `next` after RowFor, which
        // never touches the stack. The fused AND+popcount is dispatched
        // (AVX2 above 8 words); `next` never overlaps `cand`/`row` — they
        // are distinct depth slots and the row matrix respectively.
        uint64_t* next =
            a_->cand_stack.data() + static_cast<size_t>(depth + 1) * words_;
        const Count n = AndPopcountWords(cand, row, next, words_);
        bool keep_going = true;
        if (n + 1 >= static_cast<Count>(remaining)) {
          keep_going = BitRec<kLazy>(remaining - 1, next, depth + 1, visitor);
        }
        visitor.Exit(i);
        if (!keep_going) return false;
      }
    }
    return true;
  }

  template <typename V>
  bool MergeRec(int remaining, std::span<const NodeId> cand, int depth,
                V& visitor) {
    if (remaining == 1) {
      if (!visitor.LeafCount(cand.size())) return false;
      if constexpr (V::kLeafIterates) {
        for (NodeId i : cand) {
          if (!visitor.LeafId(i)) return false;
        }
      }
      return true;
    }
    for (NodeId i : cand) {
      if (a_->deg_bound[i] + 1 < static_cast<Count>(remaining)) continue;
      if (!visitor.Enter(i)) continue;
      // Aliasing audit (IntersectSorted forbids out overlapping an input):
      // `cand` views merge_full or merge_stack[depth-1], LocalNeighbors
      // views adj_list, and `next` is merge_stack[depth] — three distinct
      // allocations at every depth.
      auto& next = a_->merge_stack[depth];
      IntersectSorted(cand, LocalNeighbors(i), &next);
      bool keep_going = true;
      if (next.size() + 1 >= static_cast<size_t>(remaining)) {
        keep_going = MergeRec(remaining - 1, next, depth + 1, visitor);
      }
      visitor.Exit(i);
      if (!keep_going) return false;
    }
    return true;
  }

  std::span<const NodeId> LocalNeighbors(NodeId i) const {
    return {a_->adj_list.data() + a_->adj_offsets[i],
            a_->adj_list.data() + a_->adj_offsets[i + 1]};
  }

  std::unique_ptr<KernelArena> owned_;  // null when borrowing
  KernelArena* a_;

  // Universe. `uni_` (local id -> global id, ascending) points into the
  // DAG's own out-list for unfiltered root builds — zero copies — and into
  // the arena's buffer for filtered/subset builds.
  const NodeId* uni_ = nullptr;
  NodeId s_ = 0;
  NodeId root_ = 0;
  bool has_root_ = false;
  bool use_bitmap_ = true;
  RowState row_state_ = RowState::kUnset;
  const Dag* dag_ = nullptr;  // lazy row source (root mode)
  NodeId words_ = 0;
  NodeId rows_built_ = 0;
};

/// Shared parallel driver for per-root passes: iterate roots 0..n-1,
/// optionally chunked across a pool, with uniform deadline checks.
/// `make_state` builds one worker-private state (e.g. a kernel plus local
/// accumulators), `per_root(u, &state)` must be callable concurrently on
/// distinct states, and `merge(&state)` runs under a lock (or inline when
/// serial). Merge order is unspecified — use this driver only for
/// commutative or order-insensitive reductions (sums, per-node score adds,
/// heap fills keyed by a unique total order); order-sensitive passes build
/// their own chunk-indexed reduction (see ListKCliques). Returns false iff
/// the deadline expired before completion.
template <typename MakeState, typename PerRoot, typename Merge>
bool DriveRoots(NodeId n, ThreadPool* pool, const Deadline& deadline,
                MakeState make_state, PerRoot per_root, Merge merge) {
  const size_t workers = pool == nullptr ? 0 : pool->num_threads();
  if (workers <= 1 || n < static_cast<NodeId>(2 * workers)) {
    auto state = make_state();
    for (NodeId u = 0; u < n; ++u) {
      if ((u & 0xFF) == 0 && deadline.Expired()) return false;
      per_root(u, &state);
    }
    merge(&state);
    return true;
  }
  std::atomic<NodeId> cursor{0};
  std::atomic<bool> expired{false};
  std::mutex merge_mu;
  // Chunks shrink with n so small graphs still interleave across workers
  // (clique workloads are skewed; dynamic scheduling smooths them out).
  const NodeId chunk = std::max<NodeId>(
      1, std::min<NodeId>(256, n / static_cast<NodeId>(workers * 4)));
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([&] {
      auto state = make_state();
      for (;;) {
        const NodeId begin = cursor.fetch_add(chunk);
        if (begin >= n || expired.load(std::memory_order_relaxed)) break;
        if (deadline.Expired()) {
          expired.store(true, std::memory_order_relaxed);
          break;
        }
        const NodeId end = std::min<NodeId>(n, begin + chunk);
        for (NodeId u = begin; u < end; ++u) per_root(u, &state);
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      merge(&state);
    });
  }
  pool->Wait();
  return !expired.load();
}

}  // namespace dkc

#endif  // DKC_CLIQUE_NEIGHBORHOOD_H_
