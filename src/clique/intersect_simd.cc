#include "clique/intersect_simd.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "util/cpu.h"

#if DKC_X86_SIMD
#include <immintrin.h>
#endif

namespace dkc {
namespace {

// Intersects by exponential probing: for each element of the small list,
// gallop forward in the large one. O(|small| * log(|large|/|small|)) — the
// win over any merge once the size skew passes kGallopSkew.
void IntersectGalloping(std::span<const NodeId> small,
                        std::span<const NodeId> large,
                        std::vector<NodeId>* out) {
  size_t lo = 0;
  for (NodeId x : small) {
    if (lo >= large.size()) break;
    size_t step = 1;
    size_t hi = lo;
    while (hi < large.size() && large[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    const size_t end = std::min(hi, large.size());
    const NodeId* it = std::lower_bound(large.data() + lo, large.data() + end, x);
    lo = static_cast<size_t>(it - large.data());
    if (lo < large.size() && large[lo] == x) {
      out->push_back(x);
      ++lo;
    }
  }
}

#ifndef NDEBUG
// True when `s` overlaps out's allocated storage (capacity, not just size:
// the implementations write through the whole allocation). Pointer order
// via std::less so comparing into distinct objects stays well-defined.
bool AliasesOut(std::span<const NodeId> s, const std::vector<NodeId>& out) {
  if (s.empty() || out.capacity() == 0) return false;
  const NodeId* const ob = out.data();
  const NodeId* const oe = ob + out.capacity();
  const std::less<const NodeId*> lt;
  return lt(s.data(), oe) && lt(ob, s.data() + s.size());
}
#endif

}  // namespace

namespace simd_internal {

void MergeScalar(const NodeId* a, size_t na, const NodeId* b, size_t nb,
                 std::vector<NodeId>* out) {
  out->clear();
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

Count AndPopcountScalar(const uint64_t* a, const uint64_t* b, uint64_t* out,
                        size_t words) {
  Count n = 0;
  for (size_t w = 0; w < words; ++w) {
    out[w] = a[w] & b[w];
    n += static_cast<Count>(std::popcount(out[w]));
  }
  return n;
}

Count PopcountScalar(const uint64_t* words, size_t n) {
  Count c = 0;
  for (size_t w = 0; w < n; ++w) {
    c += static_cast<Count>(std::popcount(words[w]));
  }
  return c;
}

size_t GatherValidScalar(const NodeId* nbrs, size_t n, const uint32_t* stamps,
                         uint32_t epoch, const NodeId* local_of, NodeId* out) {
  size_t o = 0;
  for (size_t i = 0; i < n; ++i) {
    if (stamps[nbrs[i]] == epoch) out[o++] = local_of[nbrs[i]];
  }
  return o;
}

#if DKC_X86_SIMD

namespace {

// Left-pack tables: for a k-bit match mask, the shuffle that compacts the
// matching 32-bit lanes to the front (source-order preserved). SSE packs
// through pshufb (byte indices), AVX2 through vpermd (lane indices).
struct alignas(16) SseCompactTable {
  uint8_t b[16][16];
};

constexpr SseCompactTable BuildSseCompact() {
  SseCompactTable t{};
  for (int mask = 0; mask < 16; ++mask) {
    int o = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane & 1) != 0) {
        for (int byte = 0; byte < 4; ++byte) {
          t.b[mask][4 * o + byte] = static_cast<uint8_t>(4 * lane + byte);
        }
        ++o;
      }
    }
    for (; o < 4; ++o) {
      for (int byte = 0; byte < 4; ++byte) {
        t.b[mask][4 * o + byte] = 0x80;  // pshufb: high bit set -> zero lane
      }
    }
  }
  return t;
}

constexpr SseCompactTable kSseCompact = BuildSseCompact();

struct alignas(32) AvxCompactTable {
  uint32_t idx[256][8];
};

constexpr AvxCompactTable BuildAvxCompact() {
  AvxCompactTable t{};
  for (int mask = 0; mask < 256; ++mask) {
    int o = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if ((mask >> lane & 1) != 0) t.idx[mask][o++] = static_cast<uint32_t>(lane);
    }
    for (; o < 8; ++o) t.idx[mask][o] = 0;  // don't-care: cursor skips them
  }
  return t;
}

constexpr AvxCompactTable kAvxCompact = BuildAvxCompact();

// Cyclic lane rotations of the b-block for the all-pairs compare. Stored as
// permute-index rows so the 7 rotations are independent (7 * ~1 cycle of
// shuffle throughput, not a 7-deep dependency chain).
struct alignas(32) AvxRotTable {
  uint32_t idx[7][8];
};

constexpr AvxRotTable BuildAvxRot() {
  AvxRotTable t{};
  for (int r = 1; r <= 7; ++r) {
    for (int lane = 0; lane < 8; ++lane) {
      t.idx[r - 1][lane] = static_cast<uint32_t>((lane + r) & 7);
    }
  }
  return t;
}

constexpr AvxRotTable kAvxRot = BuildAvxRot();

}  // namespace

// Shuffle intersection, 4-wide: compare a 4-lane a-block against the four
// in-lane rotations of a 4-lane b-block (all 16 pairs), movemask the hits,
// left-pack the matching a-lanes through the pshufb table, and advance the
// block(s) whose max is the smaller. Unique inputs mean an a-lane can match
// at most once across every b-block it meets, so each hit is emitted
// exactly once and in ascending order. Scalar tail finishes the remainders.
__attribute__((target("sse4.2"))) void MergeSse(const NodeId* a, size_t na,
                                                const NodeId* b, size_t nb,
                                                std::vector<NodeId>* out) {
  // Slack: o never exceeds |a ∩ b| <= min(na, nb) before a 4-lane store.
  out->resize(std::min(na, nb) + 4);
  NodeId* w = out->data();
  size_t o = 0, i = 0, j = 0;
  const size_t na4 = na & ~size_t{3};
  const size_t nb4 = nb & ~size_t{3};
  if (i < na4 && j < nb4) {
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    for (;;) {
      const __m128i r1 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1));
      const __m128i r2 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2));
      const __m128i r3 = _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3));
      __m128i m = _mm_cmpeq_epi32(va, vb);
      m = _mm_or_si128(m, _mm_cmpeq_epi32(va, r1));
      m = _mm_or_si128(m, _mm_or_si128(_mm_cmpeq_epi32(va, r2),
                                       _mm_cmpeq_epi32(va, r3)));
      const unsigned mask =
          static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(m)));
      const __m128i sh =
          _mm_load_si128(reinterpret_cast<const __m128i*>(kSseCompact.b[mask]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(w + o),
                       _mm_shuffle_epi8(va, sh));
      o += static_cast<size_t>(std::popcount(mask));
      const NodeId amax = a[i + 3];
      const NodeId bmax = b[j + 3];
      if (amax <= bmax) {
        i += 4;
        if (i >= na4) break;
        va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
      }
      if (bmax <= amax) {
        j += 4;
        if (j >= nb4) break;
        vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
      }
    }
  }
  while (i < na && j < nb) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      w[o++] = x;
      ++i;
      ++j;
    }
  }
  out->resize(o);
}

// Same scheme, 8-wide: the seven cross-lane rotations come from vpermd with
// precomputed index rows, the left-pack from vpermd with the 256-entry
// table. All 64 pairs of the (8, 8) block pair are compared per iteration.
__attribute__((target("avx2"))) void MergeAvx2(const NodeId* a, size_t na,
                                               const NodeId* b, size_t nb,
                                               std::vector<NodeId>* out) {
  out->resize(std::min(na, nb) + 8);
  NodeId* w = out->data();
  size_t o = 0, i = 0, j = 0;
  const size_t na8 = na & ~size_t{7};
  const size_t nb8 = nb & ~size_t{7};
  if (i < na8 && j < nb8) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const __m256i rot0 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[0]));
    const __m256i rot1 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[1]));
    const __m256i rot2 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[2]));
    const __m256i rot3 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[3]));
    const __m256i rot4 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[4]));
    const __m256i rot5 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[5]));
    const __m256i rot6 =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(kAvxRot.idx[6]));
    for (;;) {
      __m256i m = _mm256_cmpeq_epi32(va, vb);
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot0)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot1)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot2)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot3)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot4)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot5)));
      m = _mm256_or_si256(
          m, _mm256_cmpeq_epi32(va, _mm256_permutevar8x32_epi32(vb, rot6)));
      const unsigned mask =
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kAvxCompact.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(w + o),
                          _mm256_permutevar8x32_epi32(va, perm));
      o += static_cast<size_t>(std::popcount(mask));
      const NodeId amax = a[i + 7];
      const NodeId bmax = b[j + 7];
      if (amax <= bmax) {
        i += 8;
        if (i >= na8) break;
        va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      }
      if (bmax <= amax) {
        j += 8;
        if (j >= nb8) break;
        vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      }
    }
  }
  while (i < na && j < nb) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      w[o++] = x;
      ++i;
      ++j;
    }
  }
  out->resize(o);
}

// Fused AND + positional popcount (Mula's pshufb nibble LUT + vpsadbw
// horizontal fold), 4 words per step. `out` may alias an input: each block
// is fully loaded before it is stored.
__attribute__((target("avx2"))) Count AndPopcountAvx2(const uint64_t* a,
                                                      const uint64_t* b,
                                                      uint64_t* out,
                                                      size_t words) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), v);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  Count c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < words; ++w) {
    out[w] = a[w] & b[w];
    c += static_cast<Count>(std::popcount(out[w]));
  }
  return c;
}

__attribute__((target("avx2"))) Count PopcountAvx2(const uint64_t* words,
                                                   size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t w = 0;
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low);
    const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                        _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  Count c = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; w < n; ++w) c += static_cast<Count>(std::popcount(words[w]));
  return c;
}

// Bulk epoch filter + remap: gather 8 stamps, compare against the epoch,
// gather the 8 local ids, and left-pack the valid ones through the vpermd
// table — one masked 8-lane step instead of 8 data-dependent branches.
// o <= i <= n - 8 inside the loop, so the full-width store stays in bounds
// of an n-entry output buffer.
__attribute__((target("avx2"))) size_t GatherValidAvx2(
    const NodeId* nbrs, size_t n, const uint32_t* stamps, uint32_t epoch,
    const NodeId* local_of, NodeId* out) {
  const __m256i ve = _mm256_set1_epi32(static_cast<int>(epoch));
  size_t o = 0, i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(nbrs + i));
    const __m256i st = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(stamps), idx, 4);
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(st, ve))));
    if (mask == 0) continue;
    const __m256i loc = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(local_of), idx, 4);
    const __m256i perm = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kAvxCompact.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + o),
                        _mm256_permutevar8x32_epi32(loc, perm));
    o += static_cast<size_t>(std::popcount(mask));
  }
  for (; i < n; ++i) {
    if (stamps[nbrs[i]] == epoch) out[o++] = local_of[nbrs[i]];
  }
  return o;
}

#endif  // DKC_X86_SIMD

// Constinit scalar table: any call that races static initialization (there
// are none in-tree, but other TUs' initializers could intersect) gets the
// reference implementation. The registrar below upgrades it to the probed
// level before main() and re-resolves on override changes.
constinit SimdOps g_ops = {&MergeScalar, &AndPopcountScalar, &PopcountScalar,
                           &GatherValidScalar};

namespace {

void Reresolve() {
  SimdOps ops = {&MergeScalar, &AndPopcountScalar, &PopcountScalar,
                 &GatherValidScalar};
#if DKC_X86_SIMD
  const SimdLevel level = ActiveSimdLevel();
  if (level >= SimdLevel::kSse42) ops.merge = &MergeSse;
  if (level >= SimdLevel::kAvx2) {
    ops.merge = &MergeAvx2;
    ops.and_popcount = &AndPopcountAvx2;
    ops.popcount = &PopcountAvx2;
    ops.gather_valid = &GatherValidAvx2;
  }
#endif
  g_ops = ops;
}

struct DispatchRegistrar {
  DispatchRegistrar() {
    Reresolve();
    internal::RegisterSimdReresolveHook(&Reresolve);
  }
};

DispatchRegistrar g_registrar;

}  // namespace
}  // namespace simd_internal

void IntersectSorted(std::span<const NodeId> a, std::span<const NodeId> b,
                     std::vector<NodeId>* out) {
  assert(!AliasesOut(a, *out) && !AliasesOut(b, *out) &&
         "IntersectSorted: out must not alias an input");
  out->clear();
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return;
  if (a.size() * kGallopSkew <= b.size()) {
    IntersectGalloping(a, b, out);
    return;
  }
#if defined(DKC_PORTABLE)
  // Portable builds keep the historical scalar merge bit-for-bit, with no
  // dispatch indirection compiled in at all.
  simd_internal::MergeScalar(a.data(), a.size(), b.data(), b.size(), out);
#else
  simd_internal::g_ops.merge(a.data(), a.size(), b.data(), b.size(), out);
#endif
}

void IntersectSortedBranchFree(std::span<const NodeId> a,
                               std::span<const NodeId> b,
                               std::vector<NodeId>* out) {
  assert(!AliasesOut(a, *out) && !AliasesOut(b, *out) &&
         "IntersectSortedBranchFree: out must not alias an input");
  // Every iteration unconditionally writes the smaller head and advances
  // by comparison masks; the write cursor moves only on a match. No
  // data-dependent branches — but each iteration's loads depend on the
  // previous advance, a serial chain the branchy merge's speculation
  // overlaps (the PR 5 A/B measured 2-3.5x slower; kept for the record).
  out->clear();
  if (a.size() > b.size()) std::swap(a, b);
  out->resize(a.size());
  NodeId* write = out->data();
  size_t o = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const NodeId x = a[i];
    const NodeId y = b[j];
    write[o] = x;
    o += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  out->resize(o);
}

}  // namespace dkc
