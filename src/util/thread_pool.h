// A small fixed-size thread pool with a parallel-for helper.
//
// The paper parallelizes two phases (Algorithm 3 HeapInit and Algorithm 5
// candidate-index construction) with "for each ... in parallel". We use a
// chunked dynamic-scheduling ParallelFor, which is all those loops need; no
// futures or task graphs.

#ifndef DKC_UTIL_THREAD_POOL_H_
#define DKC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dkc {

/// Fixed-size worker pool. Threads are joined on destruction.
class ThreadPool {
 public:
  /// `num_threads == 0` picks std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueue one task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void Wait();

  /// Run `body(i)` for i in [0, count) across the pool, dynamically chunked.
  /// Blocks until complete. `body` must be safe to call concurrently for
  /// distinct indices. With one thread (or tiny ranges) runs inline.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  /// Submit `fn(worker_index)` once per pool thread and block until every
  /// instance returns. The building block for passes that keep worker-
  /// private scratch (a kernel + arena) and pull work items off a shared
  /// atomic cursor — the candidate-index rebuild fan-outs use it so the
  /// submit/cursor boilerplate lives in one place. With an empty pool runs
  /// fn(0) inline.
  void RunPerWorker(const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: work or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): all drained
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dkc

#endif  // DKC_UTIL_THREAD_POOL_H_
