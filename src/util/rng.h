// Deterministic pseudo-random number generation.
//
// All stochastic components (generators, workloads, property tests) draw from
// SplitMix64 so every experiment is reproducible from a printed seed. We do
// not use std::mt19937 because its seeding and distribution implementations
// vary across standard libraries, which would make "same seed, same graph"
// claims non-portable.

#ifndef DKC_UTIL_RNG_H_
#define DKC_UTIL_RNG_H_

#include <cassert>
#include <cstdint>

namespace dkc {

/// SplitMix64 (Steele, Lea, Flood 2014): tiny, fast, passes BigCrush when
/// used as a 64-bit stream, and trivially seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed) {}

  /// Next uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    // __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic
    // builds quiet about it.
    __extension__ using Uint128 = unsigned __int128;
    Uint128 product = static_cast<Uint128>(Next()) * bound;
    auto low = static_cast<uint64_t>(product);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        product = static_cast<Uint128>(Next()) * bound;
        low = static_cast<uint64_t>(product);
      }
    }
    return static_cast<uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derives an independent stream (e.g. one per thread / per dataset).
  Rng Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ull); }

 private:
  uint64_t state_;
};

}  // namespace dkc

#endif  // DKC_UTIL_RNG_H_
