// Monotonic wall-clock timing helpers used by solvers (time budgets) and by
// the benchmark harnesses (reported runtimes).

#ifndef DKC_UTIL_TIMER_H_
#define DKC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dkc {

/// Wall-clock stopwatch. Started on construction; `Restart()` resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock deadline. `unlimited()` never expires.
class Deadline {
 public:
  /// No limit.
  static Deadline Unlimited() { return Deadline(); }

  /// Expires `millis` from now. Non-positive budgets expire immediately.
  static Deadline AfterMillis(double millis) {
    Deadline d;
    d.unlimited_ = false;
    d.deadline_ =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(millis));
    return d;
  }

  bool Expired() const { return !unlimited_ && Clock::now() >= deadline_; }
  bool unlimited() const { return unlimited_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_ = true;
  Clock::time_point deadline_{};
};

}  // namespace dkc

#endif  // DKC_UTIL_TIMER_H_
