// Little-endian binary encode/decode helpers shared by the persistence
// layer (store/) and the engine-state serializer (dynamic/state_serde.cc).
//
// Writers append to a std::string (the unit the atomic-publish and CRC
// helpers operate on); the reader is a bounds-checked cursor that latches a
// failure bit instead of reading past the end, so decoders can chain reads
// and test ok() once.

#ifndef DKC_UTIL_BINIO_H_
#define DKC_UTIL_BINIO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace dkc {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

/// Bounds-checked little-endian cursor over a byte buffer. Any read past
/// the end latches failed() and yields zeros; callers check ok() at the
/// end of a decode instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ok() const { return !failed_; }
  bool failed() const { return failed_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  /// True iff the whole buffer was consumed without a bounds fault.
  bool AtEnd() const { return !failed_ && pos_ == data_.size(); }

  uint8_t U8() {
    if (!Ensure(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }

  uint32_t U32() {
    if (!Ensure(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Ensure(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  /// A view over the next `n` bytes (empty view + failure latch if short).
  std::string_view Bytes(size_t n) {
    if (!Ensure(n)) return {};
    std::string_view view = data_.substr(pos_, n);
    pos_ += n;
    return view;
  }

 private:
  bool Ensure(size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace dkc

#endif  // DKC_UTIL_BINIO_H_
