#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dkc {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::RunPerWorker(const std::function<void(size_t)>& fn) {
  const size_t workers = num_threads();
  if (workers <= 1) {
    fn(0);
    return;
  }
  for (size_t w = 0; w < workers; ++w) {
    Submit([&fn, w] { fn(w); });
  }
  Wait();
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  const size_t workers = num_threads();
  // Inline for tiny ranges or a degenerate pool: the chunking overhead would
  // dominate.
  if (workers <= 1 || count < 2 * workers) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Dynamic scheduling: shared cursor, fixed-size chunks. Clique workloads
  // are badly skewed (hub nodes cost orders of magnitude more), so static
  // partitioning would leave threads idle.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t chunk = std::max<size_t>(1, count / (workers * 8));
  for (size_t w = 0; w < workers; ++w) {
    Submit([next, chunk, count, &body] {
      for (;;) {
        const size_t begin = next->fetch_add(chunk);
        if (begin >= count) return;
        const size_t end = std::min(count, begin + chunk);
        for (size_t i = begin; i < end; ++i) body(i);
      }
    });
  }
  Wait();
}

}  // namespace dkc
