// Runtime CPU capability probe + SIMD dispatch level selection.
//
// The clique kernels have SIMD variants (SSE4.2 / AVX2 shuffle intersection,
// vectorized row construction and popcount reduction) that are compiled with
// per-function target attributes and selected at runtime, so one binary runs
// the best path the host supports and still works on any x86-64. The level
// in effect is:
//
//   min(CpuSimdLevel(),            // cached cpuid probe of the host
//       DKC_SIMD env override,     // "scalar" | "sse42" | "avx2"
//       SetSimdLevelOverride())    // test/bench seam
//
// DKC_PORTABLE builds compile no SIMD at all and always report kScalar —
// the portable scalar merge stays bit-for-bit what it was before dispatch
// existed. Every level produces byte-identical outputs (asserted by the
// intersect sweep and the differential harness under forced levels); the
// level only ever changes speed.

#ifndef DKC_UTIL_CPU_H_
#define DKC_UTIL_CPU_H_

#include <cstdint>

namespace dkc {

/// Dispatch tiers, ordered: each level includes everything below it.
enum class SimdLevel : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

/// Highest level this CPU supports (cached cpuid probe; constant per run).
/// Always kScalar in DKC_PORTABLE builds or on non-x86-64 targets.
SimdLevel CpuSimdLevel();

/// The level dispatch actually uses: CpuSimdLevel() clamped by the DKC_SIMD
/// environment variable (read once) and by any SetSimdLevelOverride.
SimdLevel ActiveSimdLevel();

/// Force dispatch to `level` (clamped to CpuSimdLevel — requesting AVX2 on
/// a host without it yields the best supported level). A test/bench seam:
/// call only while no kernel is mid-traversal; not thread-safe.
void SetSimdLevelOverride(SimdLevel level);

/// Drop the override; dispatch returns to cpuid/env selection.
void ClearSimdLevelOverride();

namespace internal {
/// Registered by the dispatch-table owner (intersect_simd.cc) so overrides
/// can re-resolve cached function pointers. At most one hook.
void RegisterSimdReresolveHook(void (*hook)());
}  // namespace internal

}  // namespace dkc

#endif  // DKC_UTIL_CPU_H_
