#include "util/flags.h"

#include <cstdlib>

namespace dkc {

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace dkc
