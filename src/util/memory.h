// Process- and structure-level memory accounting.
//
// The paper's Table III reports per-algorithm space consumption in MB; OPT
// and GC blow up because they materialize the clique (or clique-graph)
// structures. We reproduce that with two complementary mechanisms:
//   * process peak RSS from /proc/self/status (ground truth, Linux only);
//   * a cooperative `MemoryBudget` that solvers charge for their dominant
//     allocations (clique stores, clique-graph adjacency) so they can abort
//     with the paper's OOM semantics long before the machine swaps.

#ifndef DKC_UTIL_MEMORY_H_
#define DKC_UTIL_MEMORY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dkc {

/// Current resident set size of this process in bytes, 0 if unavailable.
int64_t CurrentRssBytes();

/// Peak resident set size of this process in bytes, 0 if unavailable.
int64_t PeakRssBytes();

/// Cooperative memory budget shared by the data structures of one solver run.
///
/// `Charge()` returns false when the cumulative charge would exceed the
/// limit; callers translate that into Status::MemoryBudgetExceeded (the
/// paper's OOM). A zero limit means unlimited.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(int64_t limit_bytes) : limit_bytes_(limit_bytes) {}

  /// Try to reserve `bytes` more. Returns false iff the budget is exceeded
  /// (the charge is still recorded so `used_bytes()` reflects the attempt).
  bool Charge(int64_t bytes) {
    int64_t now = used_bytes_.fetch_add(bytes, std::memory_order_relaxed) +
                  bytes;
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_bytes_.compare_exchange_weak(peak, now,
                                              std::memory_order_relaxed)) {
    }
    return limit_bytes_ == 0 || now <= limit_bytes_;
  }

  void Release(int64_t bytes) {
    used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  int64_t limit_bytes() const { return limit_bytes_; }
  bool unlimited() const { return limit_bytes_ == 0; }

 private:
  int64_t limit_bytes_ = 0;  // 0 = unlimited
  std::atomic<int64_t> used_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
};

}  // namespace dkc

#endif  // DKC_UTIL_MEMORY_H_
