// Status / StatusOr error handling in the RocksDB style: library code never
// throws across the public API; fallible operations return a Status (or a
// StatusOr<T> carrying a value), and callers decide how to react.

#ifndef DKC_UTIL_STATUS_H_
#define DKC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dkc {

/// Outcome of a fallible library operation.
///
/// Subcodes `kTimeBudgetExceeded` / `kMemoryBudgetExceeded` carry the paper's
/// OOT/OOM semantics (Section VI reports runs exceeding 24h as OOT and runs
/// exceeding the machine memory as OOM); benchmark harnesses render them as
/// the corresponding table cells.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,      // malformed input data (e.g. bad edge-list line)
    kIOError,
    kAborted,         // budget exceeded; see Subcode
    kNotSupported,
    kInternal,
  };

  enum class Subcode {
    kNone = 0,
    kTimeBudgetExceeded,    // "OOT" in the paper's tables
    kMemoryBudgetExceeded,  // "OOM" in the paper's tables
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status TimeBudgetExceeded(std::string msg = "time budget exceeded") {
    return Status(Code::kAborted, std::move(msg), Subcode::kTimeBudgetExceeded);
  }
  static Status MemoryBudgetExceeded(
      std::string msg = "memory budget exceeded") {
    return Status(Code::kAborted, std::move(msg),
                  Subcode::kMemoryBudgetExceeded);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  Subcode subcode() const { return subcode_; }
  bool IsTimeBudgetExceeded() const {
    return subcode_ == Subcode::kTimeBudgetExceeded;
  }
  bool IsMemoryBudgetExceeded() const {
    return subcode_ == Subcode::kMemoryBudgetExceeded;
  }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be >= 3".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (subcode_ == Subcode::kTimeBudgetExceeded) out += " (OOT)";
    if (subcode_ == Subcode::kMemoryBudgetExceeded) out += " (OOM)";
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.subcode_ == b.subcode_;
  }

 private:
  explicit Status(Code code, std::string msg = "",
                  Subcode subcode = Subcode::kNone)
      : code_(code), subcode_(subcode), message_(std::move(msg)) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "InvalidArgument";
      case Code::kNotFound: return "NotFound";
      case Code::kCorruption: return "Corruption";
      case Code::kIOError: return "IOError";
      case Code::kAborted: return "Aborted";
      case Code::kNotSupported: return "NotSupported";
      case Code::kInternal: return "Internal";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  Subcode subcode_ = Subcode::kNone;
  std::string message_;
};

/// A Status plus a value on success. Minimal absl::StatusOr work-alike.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dkc

/// Propagate a non-OK Status to the caller (RocksDB/Arrow idiom).
#define DKC_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::dkc::Status _dkc_status = (expr);           \
    if (!_dkc_status.ok()) return _dkc_status;    \
  } while (false)

#endif  // DKC_UTIL_STATUS_H_
