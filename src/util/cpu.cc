#include "util/cpu.h"

#include <cstdlib>
#include <cstring>

namespace dkc {
namespace {

// The probe itself. __builtin_cpu_supports handles the cpuid leaves AND the
// xgetbv OS-support check AVX needs, so a kernel that masked AVX state off
// correctly reports unsupported.
SimdLevel ProbeCpu() {
#if !defined(DKC_PORTABLE) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSse42;
#endif
  return SimdLevel::kScalar;
}

// DKC_SIMD caps (never raises) the probed level; unknown values are ignored
// so a typo degrades to the full-speed path instead of silently changing
// semantics — every level is byte-identical anyway.
SimdLevel ApplyEnvCap(SimdLevel probed) {
  const char* env = std::getenv("DKC_SIMD");
  if (env == nullptr) return probed;
  SimdLevel cap = probed;
  if (std::strcmp(env, "scalar") == 0) {
    cap = SimdLevel::kScalar;
  } else if (std::strcmp(env, "sse42") == 0 || std::strcmp(env, "sse4.2") == 0) {
    cap = SimdLevel::kSse42;
  } else if (std::strcmp(env, "avx2") == 0) {
    cap = SimdLevel::kAvx2;
  }
  return cap < probed ? cap : probed;
}

struct OverrideState {
  bool active = false;
  SimdLevel level = SimdLevel::kScalar;
};

OverrideState& Override() {
  static OverrideState state;
  return state;
}

void (*g_reresolve_hook)() = nullptr;

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse42:
      return "sse4.2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

SimdLevel CpuSimdLevel() {
  static const SimdLevel level = ProbeCpu();
  return level;
}

SimdLevel ActiveSimdLevel() {
  const OverrideState& ov = Override();
  if (ov.active) return ov.level;
  static const SimdLevel env_capped = ApplyEnvCap(CpuSimdLevel());
  return env_capped;
}

void SetSimdLevelOverride(SimdLevel level) {
  OverrideState& ov = Override();
  ov.active = true;
  ov.level = level < CpuSimdLevel() ? level : CpuSimdLevel();
  if (g_reresolve_hook != nullptr) g_reresolve_hook();
}

void ClearSimdLevelOverride() {
  Override().active = false;
  if (g_reresolve_hook != nullptr) g_reresolve_hook();
}

namespace internal {
void RegisterSimdReresolveHook(void (*hook)()) { g_reresolve_hook = hook; }
}  // namespace internal

}  // namespace dkc
