// Minimal --key=value command-line flag parsing for the benchmark harnesses
// and examples. Not a general-purpose flags library: no registration, just
// typed lookups with defaults, so each binary stays self-describing.

#ifndef DKC_UTIL_FLAGS_H_
#define DKC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dkc {

/// Parses `--name=value` and bare `--name` (=> "true") arguments.
/// Unrecognized positional arguments are kept in `positional()`.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

 private:
  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dkc

#endif  // DKC_UTIL_FLAGS_H_
