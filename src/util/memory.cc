#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace dkc {
namespace {

// Parses a "VmRSS:   123 kB" style line from /proc/self/status.
int64_t ReadProcStatusKb(const char* key) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  int64_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      long long value = 0;
      if (std::sscanf(line + key_len, " %lld", &value) == 1) kb = value;
      break;
    }
  }
  std::fclose(f);
  return kb;
}

}  // namespace

int64_t CurrentRssBytes() { return ReadProcStatusKb("VmRSS:") * 1024; }

int64_t PeakRssBytes() { return ReadProcStatusKb("VmHWM:") * 1024; }

}  // namespace dkc
