#include "core/gc_solver.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "clique/kclique.h"
#include "core/clique_score.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dkc {

StatusOr<SolveResult> SolveGc(const Graph& g, const GcOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  MemoryBudget memory(options.budget.memory_bytes);
  Timer timer;
  SolveResult result(options.k);

  // Line 2: store all k-cliques and compute node scores. One enumeration
  // pass fills both; the store is the memory hazard the budget guards.
  Dag dag(g, DegeneracyOrdering(g));
  CliqueStore all(options.k);
  std::vector<Count> node_scores(g.num_nodes(), 0);
  {
    KCliqueEnumerator enumerator(dag, options.k);
    Count since_check = 0;
    bool budget_blown = false;
    bool oot = false;
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      all.Add(nodes);
      for (NodeId u : nodes) ++node_scores[u];
      if ((++since_check & 0xFFF) == 0) {
        if (!memory.Charge(0x1000 * static_cast<int64_t>(options.k) *
                           static_cast<int64_t>(sizeof(NodeId)))) {
          budget_blown = true;
          return false;
        }
        if (deadline.Expired()) {
          oot = true;
          return false;
        }
      }
      return true;
    });
    if (budget_blown) {
      return Status::MemoryBudgetExceeded(
          "GC clique store after " + std::to_string(all.size()) + " cliques");
    }
    if (oot) return Status::TimeBudgetExceeded("GC clique enumeration");
  }
  result.stats.cliques_listed = all.size();

  // Clique scores + ascending (score, id) order: the deterministic "fixed
  // total ordering between cliques" of Theorem 4.
  std::vector<Count> clique_score(all.size());
  for (CliqueId c = 0; c < all.size(); ++c) {
    clique_score[c] = CliqueScoreOf(all.Get(c), node_scores);
  }
  std::vector<CliqueId> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CliqueId a, CliqueId b) {
    if (clique_score[a] != clique_score[b]) {
      return clique_score[a] < clique_score[b];
    }
    return a < b;
  });
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Lines 3-5: greedy accept in score order.
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (CliqueId c : order) {
    auto nodes = all.Get(c);
    bool disjoint = true;
    for (NodeId u : nodes) {
      if (used[u]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (NodeId u : nodes) used[u] = 1;
    result.set.Add(nodes);
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() + all.MemoryBytes() +
      static_cast<int64_t>(node_scores.capacity() * sizeof(Count)) +
      static_cast<int64_t>(clique_score.capacity() * sizeof(Count)) +
      static_cast<int64_t>(order.capacity() * sizeof(CliqueId)) +
      result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
