#include "core/gc_solver.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "clique/kclique.h"
#include "core/clique_score.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dkc {

StatusOr<SolveResult> SolveGc(const Graph& g, const GcOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  MemoryBudget memory(options.budget.memory_bytes);
  Timer timer;
  SolveResult result(options.k);

  // Line 2: store all k-cliques and compute node scores. One enumeration
  // pass fills both (pool-parallel with a deterministic ordered reduction);
  // the store is the memory hazard the budget guards.
  Dag dag(g, options.orientation != nullptr ? *options.orientation
                                            : DegeneracyOrdering(g));
  CliqueStore all(options.k);
  std::vector<Count> node_scores(g.num_nodes(), 0);
  {
    const Status listed = ListKCliques(dag, options.k, options.pool, deadline,
                                       &memory, "GC", &all, &node_scores);
    if (!listed.ok()) return listed;
  }
  result.stats.cliques_listed = all.size();

  // Clique scores + ascending (score, id) order: the deterministic "fixed
  // total ordering between cliques" of Theorem 4.
  std::vector<Count> clique_score(all.size());
  for (CliqueId c = 0; c < all.size(); ++c) {
    clique_score[c] = CliqueScoreOf(all.Get(c), node_scores);
  }
  std::vector<CliqueId> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CliqueId a, CliqueId b) {
    if (clique_score[a] != clique_score[b]) {
      return clique_score[a] < clique_score[b];
    }
    return a < b;
  });
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Lines 3-5: greedy accept in score order.
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (CliqueId c : order) {
    auto nodes = all.Get(c);
    bool disjoint = true;
    for (NodeId u : nodes) {
      if (used[u]) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (NodeId u : nodes) used[u] = 1;
    result.set.Add(nodes);
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() + all.MemoryBytes() +
      static_cast<int64_t>(node_scores.capacity() * sizeof(Count)) +
      static_cast<int64_t>(clique_score.capacity() * sizeof(Count)) +
      static_cast<int64_t>(order.capacity() * sizeof(CliqueId)) +
      result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
