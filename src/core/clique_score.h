// Node scores, clique scores and the Theorem-2 clique-degree bounds.
//
// Definition 5: s_n(u)  = number of k-cliques containing u.
// Definition 6: s_c(C)  = sum of s_n(u) over u in C.
// Theorem 2:   (s_c(C) - k) / (k - 1)  <=  deg_Gc(C)  <=  s_c(C) - k,
// which is why ordering cliques by s_c approximates the min-degree MIS
// heuristic on the clique graph without ever building it.

#ifndef DKC_CORE_CLIQUE_SCORE_H_
#define DKC_CORE_CLIQUE_SCORE_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace dkc {

/// s_c(C) for clique `nodes` given precomputed node scores.
inline Count CliqueScoreOf(std::span<const NodeId> nodes,
                           const std::vector<Count>& node_scores) {
  Count score = 0;
  for (NodeId u : nodes) score += node_scores[u];
  return score;
}

/// Theorem 2 interval for deg_Gc(C).
struct CliqueDegreeBounds {
  double lower = 0.0;  // (s_c - k) / (k - 1)
  Count upper = 0;     // s_c - k
};

CliqueDegreeBounds TheoremTwoBounds(Count clique_score, int k);

}  // namespace dkc

#endif  // DKC_CORE_CLIQUE_SCORE_H_
