// Algorithm 1 — the basic framework ("HG" in the paper's experiments).
//
// Orient the graph along a total ordering, visit nodes in ascending order,
// and for each still-valid node u grab the *first* (k-1)-clique found inside
// the valid part of N+(u); the clique's nodes are then removed. Never lists
// all cliques, never stores any: O(m + n) residual memory and the fastest
// wall-clock of all methods, at the price of solution quality (Table II).

#ifndef DKC_CORE_BASIC_FRAMEWORK_H_
#define DKC_CORE_BASIC_FRAMEWORK_H_

#include "core/types.h"
#include "graph/dag.h"
#include "util/status.h"
#include "util/timer.h"

namespace dkc {

/// Which total node ordering Algorithm 1 orients the DAG with.
enum class NodeOrderKind {
  kIdentity,    // node-id order (the paper's running example, Fig. 4)
  kDegree,      // ascending degree
  kDegeneracy,  // core ordering — the default, as in the k-clique
                // listing literature the framework builds on
};

struct BasicOptions {
  int k = 3;
  NodeOrderKind order = NodeOrderKind::kDegeneracy;
  /// When non-null, orients the DAG with this precomputed total order
  /// instead of computing one from `order` — how the Solve() facade keeps a
  /// preprocessed run's sweep order identical to the unpruned graph's.
  /// Must order exactly g.num_nodes() nodes and outlive the call.
  const Ordering* orientation = nullptr;
  Budget budget;
  /// Optional pool for the FindOne sweep. The sweep is speculative: a batch
  /// of roots is searched in parallel against a snapshot of the validity
  /// mask, then accepted serially in rank order (stale finds re-searched),
  /// which keeps the solution byte-identical at any thread count — see the
  /// proof sketch in basic_framework.cc.
  ThreadPool* pool = nullptr;
};

/// Runs Algorithm 1 on `g`. Returns InvalidArgument for k < 3 and
/// TimeBudgetExceeded (OOT) when the budget expires mid-run.
StatusOr<SolveResult> SolveBasic(const Graph& g, const BasicOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_BASIC_FRAMEWORK_H_
