// Shared result/option types for the disjoint k-clique solvers.

#ifndef DKC_CORE_TYPES_H_
#define DKC_CORE_TYPES_H_

#include <cstdint>
#include <vector>

#include "clique/clique_store.h"
#include "graph/graph.h"
#include "graph/preprocess.h"
#include "partition/partition.h"
#include "util/thread_pool.h"

namespace dkc {

/// Wall-clock / footprint accounting reported by every solver. Mirrors what
/// the paper measures: Figure 6 reports init + calculation time together,
/// Table III reports space.
struct SolveStats {
  double init_ms = 0.0;      // ordering, scoring, heap/index setup
  double compute_ms = 0.0;   // the greedy/selection phase
  double total_ms() const { return init_ms + compute_ms; }

  /// k-cliques visited by the listing/scoring kernels (GC additionally
  /// stores this many cliques).
  Count cliques_listed = 0;

  /// Bytes held by the solver's dominant data structures (graph, DAG,
  /// scores, heap/store), the quantity Table III tracks.
  int64_t structure_bytes = 0;
};

/// A computed disjoint k-clique set plus its statistics.
struct SolveResult {
  explicit SolveResult(int k) : set(k) {}

  CliqueStore set;
  SolveStats stats;

  /// Graph-shrinking accounting when the Solve() facade ran the
  /// preprocessing pipeline (nodes_before == 0 otherwise). Solution node
  /// ids are always reported in the caller's original id space.
  PreprocessStats preprocess;

  /// Per-partition accounting when the partitioned driver ran
  /// (SolverOptions::partitions > 0); empty on the classic path.
  std::vector<PartitionStats> partitions;

  NodeId size() const { return set.size(); }
};

/// Resource limits shared by all solvers. Zero means unlimited. Exceeding
/// them yields Status::TimeBudgetExceeded / MemoryBudgetExceeded — the
/// paper's OOT/OOM table entries.
struct Budget {
  double time_ms = 0.0;
  int64_t memory_bytes = 0;
  /// Deterministic cap on branch/work nodes; 0 = unlimited. Unlike the
  /// wall-clock deadline, exceeding it aborts as a property of the instance
  /// — the same inputs abort (or don't) identically on every run at every
  /// thread count, which is what differential harnesses need from an abort
  /// mechanism. Honored by OPT's exact-MIS search and by the dynamic
  /// engine's per-update maintenance (DynamicOptions::update_budget);
  /// the polynomial-time heuristics ignore it.
  uint64_t max_branch_nodes = 0;
};

}  // namespace dkc

#endif  // DKC_CORE_TYPES_H_
