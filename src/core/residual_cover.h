// Iterated residual-graph covering — the deployment strategy the paper's
// introduction describes: "the maximum set of disjoint dense-connected k
// nodes can be found iteratively in the residual graph which removes the
// already contained nodes, until all nodes are settled."
//
// Round 1 packs disjoint k-cliques; each following round re-solves on the
// subgraph induced by still-free nodes with the next smaller clique size,
// down to k = 3 (and optionally a final maximum-matching round for pairs).

#ifndef DKC_CORE_RESIDUAL_COVER_H_
#define DKC_CORE_RESIDUAL_COVER_H_

#include <vector>

#include "core/solver.h"
#include "util/status.h"

namespace dkc {

struct ResidualCoverOptions {
  int k = 5;                        // first-round clique size
  int min_k = 3;                    // last clique round
  bool pair_round = false;          // finish with maximum matching (k = 2)
  Method method = Method::kLP;
  /// Applied to every round's solve. time_ms / memory_bytes give the
  /// classical OOT/OOM behavior; max_branch_nodes additionally lets OPT
  /// rounds abort *deterministically* (same rounds abort at every thread
  /// count). A round that exhausts the budget does not fail the cover:
  /// the groups packed so far are kept and the result is marked aborted.
  Budget budget_per_round;
  ThreadPool* pool = nullptr;
};

struct CoverGroup {
  int k = 0;                      // group size (clique size, or 2 for pairs)
  std::vector<NodeId> nodes;
};

struct ResidualCoverResult {
  std::vector<CoverGroup> groups;
  /// covered[u] == true iff u landed in some group.
  std::vector<bool> covered;
  Count covered_nodes = 0;
  /// True when a round exhausted options.budget_per_round: that round and
  /// every later one were skipped, and `groups` holds the (still valid,
  /// pairwise disjoint) partial cover assembled before the abort.
  bool aborted = false;
  /// Clique size of the round that hit the budget (0 when !aborted).
  int aborted_round_k = 0;

  double coverage(NodeId n) const {
    return n == 0 ? 0.0 : static_cast<double>(covered_nodes) / n;
  }
};

/// Runs the round structure above. Each group is a real clique (or matched
/// edge) of `g`; groups are pairwise node-disjoint.
StatusOr<ResidualCoverResult> ResidualCover(const Graph& g,
                                            const ResidualCoverOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_RESIDUAL_COVER_H_
