#include "core/opt_solver.h"

#include "clique/clique_graph.h"
#include "clique/kclique.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "mis/exact_mis.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dkc {

StatusOr<SolveResult> SolveOpt(const Graph& g, const OptOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  MemoryBudget memory(options.budget.memory_bytes);
  Timer timer;
  SolveResult result(options.k);

  // Step 1: all k-cliques, materialized.
  Dag dag(g, DegeneracyOrdering(g));
  CliqueStore all(options.k);
  {
    KCliqueEnumerator enumerator(dag, options.k);
    Count since_check = 0;
    bool budget_blown = false;
    bool oot = false;
    enumerator.ForEach([&](std::span<const NodeId> nodes) {
      all.Add(nodes);
      if ((++since_check & 0xFFF) == 0) {
        if (!memory.Charge(0x1000 * static_cast<int64_t>(options.k) *
                           static_cast<int64_t>(sizeof(NodeId)))) {
          budget_blown = true;
          return false;
        }
        if (deadline.Expired()) {
          oot = true;
          return false;
        }
      }
      return true;
    });
    if (budget_blown) return Status::MemoryBudgetExceeded("OPT clique store");
    if (oot) return Status::TimeBudgetExceeded("OPT clique enumeration");
  }
  result.stats.cliques_listed = all.size();

  // Step 2: the clique graph — the structure whose size explodes (Table I).
  auto clique_graph =
      CliqueGraph::Build(all, g.num_nodes(), &memory, deadline);
  if (!clique_graph.ok()) return clique_graph.status();
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Step 3: exact MIS on the clique graph. A disjoint k-clique set uses k
  // distinct participating nodes per clique, so the packing number is at
  // most floor(participating / k) — a bound the generic clique-cover bound
  // inside the MIS search cannot see, and often the exact optimum on
  // clique-rich graphs (where proving optimality otherwise dominates the
  // runtime).
  uint32_t participating = 0;
  {
    std::vector<uint8_t> in_clique(g.num_nodes(), 0);
    for (CliqueId c = 0; c < all.size(); ++c) {
      for (NodeId u : all.Get(c)) in_clique[u] = 1;
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) participating += in_clique[u];
  }
  const uint32_t packing_bound = participating / static_cast<uint32_t>(options.k);
  auto mis = ExactMis(clique_graph->adjacency(), deadline, packing_bound);
  if (!mis.ok()) return mis.status();
  for (uint32_t c : mis->vertices) {
    result.set.Add(all.Get(static_cast<CliqueId>(c)));
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 all.MemoryBytes() +
                                 clique_graph->MemoryBytes() +
                                 result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
