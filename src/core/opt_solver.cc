#include "core/opt_solver.h"

#include <span>
#include <vector>

#include "clique/clique_graph.h"
#include "clique/kclique.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "mis/exact_mis.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dkc {

StatusOr<SolveResult> SolveOpt(const Graph& g, const OptOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  MemoryBudget memory(options.budget.memory_bytes);
  Timer timer;
  SolveResult result(options.k);

  // Step 1: all k-cliques, materialized (pool-parallel with a deterministic
  // ordered reduction, so clique ids match the serial enumeration exactly).
  Dag dag(g, options.orientation != nullptr ? *options.orientation
                                            : DegeneracyOrdering(g));
  CliqueStore all(options.k);
  {
    const Status listed = ListKCliques(dag, options.k, options.pool, deadline,
                                       &memory, "OPT", &all);
    if (!listed.ok()) return listed;
  }
  result.stats.cliques_listed = all.size();

  // Step 2: the clique graph — the structure whose size explodes (Table I).
  auto clique_graph = CliqueGraph::Build(all, g.num_nodes(), &memory, deadline,
                                         options.pool);
  if (!clique_graph.ok()) return clique_graph.status();
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Step 3: exact MIS on the clique graph. A disjoint k-clique set uses k
  // distinct participating nodes per clique, so the packing number is at
  // most floor(participating / k) — a bound the generic clique-cover bound
  // inside the MIS search cannot see, and often the exact optimum on
  // clique-rich graphs (where proving optimality otherwise dominates the
  // runtime). The same bound is evaluated per clique-graph component
  // (participating nodes *of that component's cliques* / k), which is what
  // lets the component solves run independently — and hence in parallel —
  // without the serial bound-tightening chain.
  std::vector<uint8_t> in_clique(g.num_nodes(), 0);
  uint32_t participating = 0;
  for (CliqueId c = 0; c < all.size(); ++c) {
    for (NodeId u : all.Get(c)) in_clique[u] = 1;
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) participating += in_clique[u];
  ExactMisParams mis_params;
  mis_params.deadline = deadline;
  mis_params.upper_bound = participating / static_cast<uint32_t>(options.k);
  // Two spellings of the same cap (the Budget field and the legacy direct
  // option): the tighter nonzero one wins.
  mis_params.max_branch_nodes = options.budget.max_branch_nodes;
  if (options.max_mis_branch_nodes != 0 &&
      (mis_params.max_branch_nodes == 0 ||
       options.max_mis_branch_nodes < mis_params.max_branch_nodes)) {
    mis_params.max_branch_nodes = options.max_mis_branch_nodes;
  }
  mis_params.pool = options.pool;
  std::vector<NodeId> touched;
  mis_params.component_bound =
      [&](std::span<const uint32_t> cliques) -> uint32_t {
    touched.clear();
    uint32_t count = 0;
    for (uint32_t c : cliques) {
      for (NodeId u : all.Get(static_cast<CliqueId>(c))) {
        if (in_clique[u]) {
          in_clique[u] = 0;  // count each participating node once
          touched.push_back(u);
          ++count;
        }
      }
    }
    for (NodeId u : touched) in_clique[u] = 1;
    return count / static_cast<uint32_t>(options.k);
  };
  auto mis = ExactMis(clique_graph->adjacency(), mis_params);
  if (!mis.ok()) return mis.status();
  for (uint32_t c : mis->vertices) {
    result.set.Add(all.Get(static_cast<CliqueId>(c)));
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 all.MemoryBytes() +
                                 clique_graph->MemoryBytes() +
                                 result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
