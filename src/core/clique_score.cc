#include "core/clique_score.h"

#include <cassert>

namespace dkc {

CliqueDegreeBounds TheoremTwoBounds(Count clique_score, int k) {
  assert(k >= 2);
  CliqueDegreeBounds bounds;
  // A clique's own k membership contributions are part of s_c, hence the -k.
  const Count excess =
      clique_score >= static_cast<Count>(k) ? clique_score - k : 0;
  bounds.upper = excess;
  bounds.lower = static_cast<double>(excess) / (k - 1);
  return bounds;
}

}  // namespace dkc
