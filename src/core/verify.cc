#include "core/verify.h"

#include <string>
#include <vector>

#include "clique/kclique.h"
#include "graph/dag.h"
#include "graph/graph_builder.h"
#include "graph/ordering.h"

namespace dkc {

Status VerifyDisjointCliques(const Graph& g, const CliqueStore& set) {
  std::vector<uint8_t> used(g.num_nodes(), 0);
  const int k = set.k();
  for (CliqueId c = 0; c < set.size(); ++c) {
    auto nodes = set.Get(c);
    for (int i = 0; i < k; ++i) {
      if (nodes[i] >= g.num_nodes()) {
        return Status::Corruption("clique " + std::to_string(c) +
                                  " references unknown node");
      }
      if (used[nodes[i]]) {
        return Status::Corruption("node " + std::to_string(nodes[i]) +
                                  " appears in two cliques (not disjoint)");
      }
      for (int j = i + 1; j < k; ++j) {
        if (nodes[i] == nodes[j]) {
          return Status::Corruption("clique " + std::to_string(c) +
                                    " repeats node " +
                                    std::to_string(nodes[i]));
        }
        if (!g.HasEdge(nodes[i], nodes[j])) {
          return Status::Corruption(
              "clique " + std::to_string(c) + " misses edge (" +
              std::to_string(nodes[i]) + "," + std::to_string(nodes[j]) + ")");
        }
      }
    }
    for (NodeId u : nodes) used[u] = 1;
  }
  return Status::OK();
}

Status VerifyMaximality(const Graph& g, const CliqueStore& set) {
  // Induce the free subgraph (nodes outside the solution keep their ids
  // compacted) and look for a single k-clique.
  std::vector<uint8_t> used(g.num_nodes(), 0);
  for (CliqueId c = 0; c < set.size(); ++c) {
    for (NodeId u : set.Get(c)) used[u] = 1;
  }
  std::vector<NodeId> compact(g.num_nodes(), kInvalidNode);
  NodeId free_count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!used[u]) compact[u] = free_count++;
  }
  GraphBuilder builder(free_count);
  if (free_count > 0) builder.EnsureNode(free_count - 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (used[u]) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && !used[v]) builder.AddEdge(compact[u], compact[v]);
    }
  }
  Graph residual = builder.Build();
  Dag dag(residual, DegeneracyOrdering(residual));
  KCliqueEnumerator enumerator(dag, set.k());
  bool found = false;
  enumerator.ForEach([&found](std::span<const NodeId>) {
    found = true;
    return false;  // stop at the first witness
  });
  if (found) {
    return Status::Corruption(
        "solution is not maximal: residual graph still has a k-clique");
  }
  return Status::OK();
}

Status VerifySolution(const Graph& g, const CliqueStore& set) {
  DKC_RETURN_IF_ERROR(VerifyDisjointCliques(g, set));
  return VerifyMaximality(g, set);
}

}  // namespace dkc
