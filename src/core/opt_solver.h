// OPT — the exact baseline: materialize every k-clique, build the clique
// graph (Definition 2), and solve exact maximum independent set on it.
// The paper's Section VI uses this (with the Akiba–Iwata VC solver [42]) to
// calibrate solution quality; it goes OOT/OOM beyond toy graphs, which is
// precisely the point of Tables II-IV.

#ifndef DKC_CORE_OPT_SOLVER_H_
#define DKC_CORE_OPT_SOLVER_H_

#include "core/types.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/status.h"

namespace dkc {

struct OptOptions {
  int k = 3;
  /// When non-null, orients the listing DAG with this precomputed order
  /// instead of recomputing the degeneracy order (preprocessing plumbing;
  /// see BasicOptions::orientation). Must outlive the call.
  const Ordering* orientation = nullptr;
  /// budget.max_branch_nodes caps the exact-MIS branch nodes; see Budget.
  Budget budget;
  /// Optional pool: parallel clique enumeration (deterministic ordered
  /// reduction), parallel clique-graph dedup, and parallel per-component
  /// exact-MIS solves. The solution is byte-identical at any thread count.
  ThreadPool* pool = nullptr;
  /// Legacy alias for budget.max_branch_nodes (kept for direct callers);
  /// when both are set the tighter cap wins.
  uint64_t max_mis_branch_nodes = 0;
};

/// Exact maximum disjoint k-clique set. OOT/OOM via Status on budget
/// exhaustion (expected on anything that is not small).
StatusOr<SolveResult> SolveOpt(const Graph& g, const OptOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_OPT_SOLVER_H_
