// Partition-parallel HG/GC/L/LP with deterministic boundary stitching.
//
// Shared structure: the (preprocessed) graph is split into P partitions
// (partition/partition.h) whose local graphs are induced on owned ∪ ghost
// nodes with a monotone id remap. For an owned root u the local kernel
// universe {u} ∪ N+(u) — and every edge inside it — is present locally, so
// any per-root search on the local DAG returns exactly what the global
// kernel would, with identical DFS order (sorted rows map to sorted rows).
// Each method then differs only in how per-root results are combined:
//
//  * GC — cliques are enumerated per owned root (partition-parallel) and
//    stitched by replaying the global ascending-root order through
//    per-partition cursors: the rebuilt store is byte-identical to the
//    serial listing, so clique ids, the (score, id) sort, and the greedy
//    pass are unchanged.
//
//  * L/LP — the scoring pass is a per-root sum (exact at any split), the
//    heap-init pass runs per owned root under an all-valid mask (entries
//    identical to the serial HeapInit), and the calculation loop is the
//    serial engine verbatim: the heap's strict (score, root_rank) total
//    order makes pop order independent of push order.
//
//  * HG — the rank-order sweep is inherently sequential, so each partition
//    runs it speculatively with certainty tracking. Per partition, K is
//    the set of nodes *certainly* consumed (by accepts whose entire
//    universe was certain) and U the set of nodes whose fate may depend on
//    another partition — seeded with every ghost and every owned node with
//    a higher-rank out-of-partition neighbor (a "remote attacker"), and
//    grown by N+[u] of every uncertain local find. Invariant (induction
//    over the partition's rank sweep): for any local node v ∉ U, ¬K(v)
//    equals the true serial validity of v — a consumer of v is either v's
//    remote higher-rank neighbor (then v ∈ U by seed) or a local root
//    processed earlier, whose outcome was certain (exact kill recorded in
//    K) or uncertain (then v ∈ N+[root] ⊆ U). Three outcomes per root:
//      - certain skip: root certainly consumed, too few out-neighbors, or
//        no clique under the ¬K mask (a superset of the true mask — no
//        find under a superset is conclusive);
//      - certain accept: a find with {u} ∪ N+(u) disjoint from U — by the
//        invariant the masked search equals the serial one, so this IS the
//        serial decision; committed locally;
//      - hint: a find whose universe touches U — recorded for the stitch.
//    The serial stitch walks the global rank order with the true mask:
//    certain accepts are applied as-is (O(k)), hints are freshness-checked
//    (a fully valid hint is the serial first-find by the speculative-batch
//    superset argument; a stale one is re-searched under the true mask).
//    With P=1 there are no ghosts and no seeds, so every root is certain
//    and the sweep is bit-for-bit the unpartitioned engine.
//
// All three stitches consume per-root records written to disjoint slots
// (each root has exactly one owner), so results are independent of thread
// count and of partition execution order.

#include "core/partitioned_solve.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <numeric>
#include <queue>
#include <utility>
#include <vector>

#include "clique/kclique.h"
#include "clique/neighborhood.h"
#include "core/clique_score.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "graph/preprocess.h"
#include "partition/partition.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dkc {
namespace {

// One task per partition on the pool (serial fallback without one). Tasks
// write only their own partition's state plus per-root slots they own.
void RunPerPartition(ThreadPool* pool, size_t count,
                     const std::function<void(size_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1 && count > 1) {
    for (size_t p = 0; p < count; ++p) {
      pool->Submit([&body, p] { body(p); });
    }
    pool->Wait();
  } else {
    for (size_t p = 0; p < count; ++p) body(p);
  }
}

// First k-clique rooted at u inside the masked N+(u) — the FindOne of the
// basic framework, over any DAG (global or partition-local).
class FirstFinder {
 public:
  FirstFinder(const Dag& dag, const std::vector<uint8_t>& valid, int k,
              KernelArena* arena = nullptr)
      : dag_(dag), valid_(valid), k_(k), kernel_(arena) {}

  bool Find(NodeId u, std::vector<NodeId>* clique) {
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return false;
    kernel_.BuildFromRoot(dag_, u, valid_.data());
    if (kernel_.size() + 1 < static_cast<NodeId>(k_)) return false;
    bool found = false;
    kernel_.ForEachClique(k_ - 1, [&](std::span<const NodeId> nodes) {
      clique->assign(nodes.begin(), nodes.end());
      found = true;
      return false;  // first hit wins
    });
    return found;
  }

 private:
  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  int k_;
  NeighborhoodKernel kernel_;
};

// Minimum-clique-score k-clique rooted at u — the FindMin of the
// lightweight solver (root included in the output, unlike the kernel call).
class MinFinder {
 public:
  MinFinder(const Dag& dag, const std::vector<uint8_t>& valid,
            const std::vector<Count>& scores, int k, bool prune,
            KernelArena* arena = nullptr)
      : dag_(dag),
        valid_(valid),
        scores_(scores),
        k_(k),
        prune_(prune),
        kernel_(arena) {}

  bool Find(NodeId u, std::vector<NodeId>* clique, Count* clique_score) {
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return false;
    kernel_.BuildFromRoot(dag_, u, valid_.data());
    if (kernel_.size() + 1 < static_cast<NodeId>(k_)) return false;
    if (!kernel_.FindMinScoreClique(k_ - 1, scores_, scores_[u], prune_,
                                    &rest_, clique_score)) {
      return false;
    }
    clique->clear();
    clique->push_back(u);
    clique->insert(clique->end(), rest_.begin(), rest_.end());
    return true;
  }

 private:
  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  const std::vector<Count>& scores_;
  int k_;
  bool prune_;
  NeighborhoodKernel kernel_;
  std::vector<NodeId> rest_;
};

struct HeapEntry {
  Count score;
  NodeId root_rank;  // rank of nodes[0] in the score order (unique per root)
  std::vector<NodeId> nodes;
};

struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.root_rank > b.root_rank;
  }
};

// ------------------------------------------------------------------- HG ---

StatusOr<SolveResult> RunHg(const Graph& g, const Ordering& orientation,
                            std::vector<GraphPartition>& parts,
                            const SolverOptions& options,
                            const Deadline& deadline) {
  Timer timer;
  SolveResult result(options.k);
  const NodeId n = g.num_nodes();
  const int k = options.k;

  enum : uint8_t { kSkip = 0, kAccept = 1, kHint = 2 };
  std::vector<uint8_t> outcome(n, kSkip);
  // One k-slot per root; each partition writes only its owned roots.
  std::vector<NodeId> found(static_cast<size_t>(n) * k);
  std::atomic<bool> expired{false};

  RunPerPartition(options.pool, parts.size(), [&](size_t pi) {
    GraphPartition& part = parts[pi];
    Timer part_timer;
    const NodeId local_n = part.local.num_nodes();
    if (local_n == 0) return;
    Dag dag(part.local, part.orientation);
    std::vector<uint8_t> mask(local_n, 1);  // ¬K: certain kills only
    std::vector<uint8_t> uncertain = part.uncertain0;
    KernelArena arena;
    FirstFinder finder(dag, mask, k, &arena);
    std::vector<NodeId> clique;
    Count roots_seen = 0;
    for (NodeId lu : part.orientation.nodes) {  // ascending global rank
      if (part.owned[lu] == 0) continue;
      if ((++roots_seen & 0x3FF) == 0 && deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        break;
      }
      if (mask[lu] == 0) continue;          // certainly consumed
      if (!finder.Find(lu, &clique)) continue;  // conclusive under ¬K ⊇ true
      bool is_uncertain = uncertain[lu] != 0;
      if (!is_uncertain) {
        for (NodeId v : dag.OutNeighbors(lu)) {
          if (uncertain[v] != 0) {
            is_uncertain = true;
            break;
          }
        }
      }
      const NodeId gu = part.new_to_old[lu];
      NodeId* slot = found.data() + static_cast<size_t>(gu) * k;
      for (int j = 0; j < k; ++j) slot[j] = part.new_to_old[clique[j]];
      if (!is_uncertain) {
        outcome[gu] = kAccept;
        for (NodeId v : clique) mask[v] = 0;
        ++part.stats.local_committed;
      } else {
        outcome[gu] = kHint;
        uncertain[lu] = 1;
        for (NodeId v : dag.OutNeighbors(lu)) uncertain[v] = 1;
        ++part.stats.stitch_deferred;
      }
    }
    part.stats.elapsed_ms = part_timer.ElapsedMillis();
  });
  if (expired.load()) {
    return Status::TimeBudgetExceeded("partitioned basic framework");
  }

  // Serial stitch in global rank order under the true mask.
  Dag dag(g, orientation);
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();
  std::vector<uint8_t> valid(n, 1);
  FirstFinder finder(dag, valid, k);
  std::vector<NodeId> clique;
  auto accept = [&](std::span<const NodeId> nodes) {
    for (NodeId v : nodes) valid[v] = 0;
    result.set.Add(nodes);
  };
  const auto& order = orientation.nodes;
  for (NodeId i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    if ((i & 0x3FF) == 0 && deadline.Expired()) {
      return Status::TimeBudgetExceeded("partitioned basic framework");
    }
    if (outcome[u] == kSkip) continue;
    const std::span<const NodeId> slot(found.data() +
                                           static_cast<size_t>(u) * k,
                                       static_cast<size_t>(k));
    if (outcome[u] == kAccept) {  // proven fresh by the certainty invariant
      accept(slot);
      continue;
    }
    // Hint: exactly the speculative-batch drain of the serial engine.
    if (valid[u] == 0 || dag.OutDegree(u) + 1 < static_cast<Count>(k)) {
      continue;
    }
    bool fresh = true;
    for (NodeId v : slot) {
      if (valid[v] == 0) {
        fresh = false;
        break;
      }
    }
    if (fresh) {
      accept(slot);
    } else if (finder.Find(u, &clique)) {
      accept(clique);
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  int64_t partition_bytes = 0;
  for (const GraphPartition& part : parts) {
    partition_bytes += part.local.MemoryBytes();
  }
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 partition_bytes +
                                 static_cast<int64_t>(valid.size()) +
                                 result.set.MemoryBytes();
  return result;
}

// ------------------------------------------------------------------- GC ---

StatusOr<SolveResult> RunGc(const Graph& g, const Ordering& orientation,
                            std::vector<GraphPartition>& parts,
                            std::span<const int> owner,
                            const SolverOptions& options,
                            const Deadline& deadline) {
  Timer timer;
  SolveResult result(options.k);
  const NodeId n = g.num_nodes();
  const int k = options.k;
  MemoryBudget memory(options.budget.memory_bytes);

  // Phase A (partition-parallel): list the cliques rooted at each owned
  // node, in ascending global id per partition (local ids are monotone in
  // global ids), into a per-partition store of global-id cliques.
  std::vector<CliqueStore> stores(parts.size(), CliqueStore(k));
  std::vector<std::vector<Count>> part_scores(parts.size());
  std::vector<Count> root_count(n, 0);
  std::atomic<bool> expired{false};
  std::atomic<bool> oom{false};

  RunPerPartition(options.pool, parts.size(), [&](size_t pi) {
    GraphPartition& part = parts[pi];
    Timer part_timer;
    const NodeId local_n = part.local.num_nodes();
    part_scores[pi].assign(local_n, 0);
    if (local_n == 0) return;
    Dag dag(part.local, part.orientation);
    KernelArena arena;
    KCliqueEnumerator enumerator(dag, k, &arena);
    CliqueStore& store = stores[pi];
    std::vector<Count>& scores = part_scores[pi];
    std::vector<NodeId> mapped(static_cast<size_t>(k));
    Count roots_seen = 0;
    for (NodeId lu = 0; lu < local_n; ++lu) {
      if (part.owned[lu] == 0) continue;
      if ((++roots_seen & 0x3F) == 0 && deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      Count listed = 0;
      enumerator.ForEachRooted(lu, [&](std::span<const NodeId> nodes) {
        for (int j = 0; j < k; ++j) {
          ++scores[nodes[j]];
          mapped[j] = part.new_to_old[nodes[j]];
        }
        store.Add(mapped);
        ++listed;
        return true;
      });
      if (listed > 0) {
        root_count[part.new_to_old[lu]] = listed;
        if (!memory.Charge(static_cast<int64_t>(listed) * k *
                           static_cast<int64_t>(sizeof(NodeId)))) {
          oom.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
    part.stats.local_committed = store.size();
    part.stats.elapsed_ms = part_timer.ElapsedMillis();
  });
  if (expired.load()) return Status::TimeBudgetExceeded("partitioned GC");
  if (oom.load()) return Status::MemoryBudgetExceeded("partitioned GC");

  // Phase B (serial stitch): rebuild the global store by replaying the
  // ascending-root enumeration order through per-partition cursors — each
  // partition's store is already grouped by root in that order — and sum
  // the per-partition score vectors in partition order. Byte-identical to
  // the serial ListKCliques store (same cliques, same clique ids).
  CliqueStore all(k);
  {
    Count total = 0;
    for (const CliqueStore& store : stores) total += store.size();
    all.Reserve(total);
  }
  std::vector<CliqueId> cursor(parts.size(), 0);
  for (NodeId u = 0; u < n; ++u) {
    const int p = owner[u];
    CliqueId& c = cursor[p];
    for (Count i = 0; i < root_count[u]; ++i) all.Add(stores[p].Get(c++));
  }
  std::vector<Count> node_scores(n, 0);
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const GraphPartition& part = parts[pi];
    for (NodeId lu = 0; lu < part.local.num_nodes(); ++lu) {
      node_scores[part.new_to_old[lu]] += part_scores[pi][lu];
    }
  }
  result.stats.cliques_listed = all.size();

  // Clique scores, the (score, id) total order, and the greedy pass are the
  // serial GC verbatim from here on.
  std::vector<Count> clique_score(all.size());
  for (CliqueId c = 0; c < all.size(); ++c) {
    clique_score[c] = CliqueScoreOf(all.Get(c), node_scores);
  }
  std::vector<CliqueId> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](CliqueId a, CliqueId b) {
    if (clique_score[a] != clique_score[b]) {
      return clique_score[a] < clique_score[b];
    }
    return a < b;
  });
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  std::vector<uint8_t> used(n, 0);
  for (CliqueId c : order) {
    auto nodes = all.Get(c);
    bool disjoint = true;
    for (NodeId u : nodes) {
      if (used[u] != 0) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    for (NodeId u : nodes) used[u] = 1;
    result.set.Add(nodes);
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  int64_t partition_bytes = 0;
  for (const GraphPartition& part : parts) {
    partition_bytes += part.local.MemoryBytes();
  }
  Dag dag(g, orientation);  // accounted like the serial GC's listing DAG
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() + partition_bytes +
      all.MemoryBytes() +
      static_cast<int64_t>(node_scores.capacity() * sizeof(Count)) +
      static_cast<int64_t>(clique_score.capacity() * sizeof(Count)) +
      static_cast<int64_t>(order.capacity() * sizeof(CliqueId)) +
      result.set.MemoryBytes();
  return result;
}

// ----------------------------------------------------------------- L/LP ---

StatusOr<SolveResult> RunLightweight(const Graph& g,
                                     const Ordering& orientation,
                                     std::vector<GraphPartition>& parts,
                                     const SolverOptions& options,
                                     const Deadline& deadline) {
  Timer timer;
  SolveResult result(options.k);
  const NodeId n = g.num_nodes();
  const int k = options.k;
  const bool prune = options.method == Method::kLP;
  std::atomic<bool> expired{false};

  // Phase 1 (partition-parallel): node scores via per-owned-root counting
  // on the restricted counting orientation. Each clique is counted once by
  // its root's owner, so summing the per-partition vectors (plain integer
  // addition) reproduces the serial ComputeNodeScores exactly.
  std::vector<std::vector<Count>> part_scores(parts.size());
  std::vector<Count> part_total(parts.size(), 0);
  RunPerPartition(options.pool, parts.size(), [&](size_t pi) {
    GraphPartition& part = parts[pi];
    Timer part_timer;
    const NodeId local_n = part.local.num_nodes();
    part_scores[pi].assign(local_n, 0);
    if (local_n == 0) return;
    Dag dag(part.local, part.orientation);
    KernelArena arena;
    KCliqueEnumerator enumerator(dag, k, &arena);
    Count roots_seen = 0;
    for (NodeId lu = 0; lu < local_n; ++lu) {
      if (part.owned[lu] == 0) continue;
      if ((++roots_seen & 0x3F) == 0 && deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      part_total[pi] += enumerator.ScoreRooted(lu, &part_scores[pi]);
    }
    part.stats.elapsed_ms = part_timer.ElapsedMillis();
  });
  if (expired.load()) {
    return Status::TimeBudgetExceeded("partitioned lightweight scoring pass");
  }
  std::vector<Count> scores(n, 0);
  Count total_cliques = 0;
  for (size_t pi = 0; pi < parts.size(); ++pi) {
    const GraphPartition& part = parts[pi];
    for (NodeId lu = 0; lu < part.local.num_nodes(); ++lu) {
      scores[part.new_to_old[lu]] += part_scores[pi][lu];
    }
    total_cliques += part_total[pi];
  }
  result.stats.cliques_listed = total_cliques;

  // Phase 2 (partition-parallel): HeapInit — one locally minimum clique
  // per owned root under an all-valid mask, on the score order restricted
  // to the partition. Entries carry global ids and the GLOBAL score rank.
  Ordering score_order = OrderByKeyAscending(scores);
  std::vector<std::vector<HeapEntry>> part_entries(parts.size());
  RunPerPartition(options.pool, parts.size(), [&](size_t pi) {
    GraphPartition& part = parts[pi];
    Timer part_timer;
    const NodeId local_n = part.local.num_nodes();
    if (local_n == 0) return;
    Dag dag(part.local,
            RestrictOrdering(score_order, part.old_to_new, local_n));
    std::vector<Count> local_scores(local_n);
    for (NodeId lu = 0; lu < local_n; ++lu) {
      local_scores[lu] = scores[part.new_to_old[lu]];
    }
    std::vector<uint8_t> all_valid(local_n, 1);
    KernelArena arena;
    MinFinder finder(dag, all_valid, local_scores, k, prune, &arena);
    std::vector<NodeId> clique;
    Count clique_score = 0;
    Count roots_seen = 0;
    for (NodeId lu = 0; lu < local_n; ++lu) {
      if (part.owned[lu] == 0) continue;
      if ((++roots_seen & 0x3F) == 0 && deadline.Expired()) {
        expired.store(true, std::memory_order_relaxed);
        return;
      }
      if (!finder.Find(lu, &clique, &clique_score)) continue;
      HeapEntry entry;
      entry.score = clique_score;
      entry.root_rank = score_order.rank[part.new_to_old[lu]];
      entry.nodes.reserve(static_cast<size_t>(k));
      for (NodeId v : clique) entry.nodes.push_back(part.new_to_old[v]);
      part_entries[pi].push_back(std::move(entry));
    }
    part.stats.local_committed = part_entries[pi].size();
    part.stats.elapsed_ms += part_timer.ElapsedMillis();
  });
  if (expired.load()) {
    return Status::TimeBudgetExceeded("partitioned lightweight heap init");
  }

  // Phase 3 (serial): the calculation loop of the serial engine, verbatim.
  // The heap's (score, root_rank) order is strict — root_rank is unique
  // per entry — so pop order (and hence the solution) does not depend on
  // the order entries are pushed in.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  for (auto& entries : part_entries) {
    for (auto& entry : entries) heap.push(std::move(entry));
  }
  Dag dag(g, std::move(score_order));
  std::vector<uint8_t> valid(n, 1);
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();
  {
    MinFinder finder(dag, valid, scores, k, prune);
    std::vector<NodeId> clique;
    Count clique_score = 0;
    uint64_t pops = 0;
    while (!heap.empty()) {
      if ((++pops & 0xFF) == 0 && deadline.Expired()) {
        return Status::TimeBudgetExceeded(
            "partitioned lightweight calculation loop");
      }
      HeapEntry top = heap.top();
      heap.pop();
      bool fresh = true;
      for (NodeId v : top.nodes) {
        if (valid[v] == 0) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        for (NodeId v : top.nodes) valid[v] = 0;
        result.set.Add(top.nodes);
        continue;
      }
      const NodeId root = top.nodes[0];
      if (valid[root] != 0 &&
          dag.OutDegree(root) + 1 >= static_cast<Count>(k)) {
        if (finder.Find(root, &clique, &clique_score)) {
          heap.push(
              HeapEntry{clique_score, dag.ordering().rank[root], clique});
        }
      }
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  int64_t partition_bytes = 0;
  for (const GraphPartition& part : parts) {
    partition_bytes += part.local.MemoryBytes();
  }
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() + partition_bytes +
      static_cast<int64_t>(scores.capacity() * sizeof(Count)) +
      static_cast<int64_t>(valid.capacity()) +
      static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(HeapEntry) +
                                                     k * sizeof(NodeId)) +
      result.set.MemoryBytes();
  (void)orientation;  // L/LP orient phase 2/3 by score, not the solve order
  return result;
}

}  // namespace

StatusOr<SolveResult> PartitionedSolve(const Graph& g,
                                       const SolverOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  if (options.method == Method::kOPT) {
    return Status::InvalidArgument("partitioned solve does not support OPT");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;

  // Preprocess exactly like the Solve facade (the pool additionally drives
  // the per-range peel inside PreprocessForKCliques).
  PreprocessResult pre;
  bool preprocessed = false;
  bool remap = false;
  if (options.preprocess) {
    PreprocessOptions preprocess_options;
    preprocess_options.k = options.k;
    preprocess_options.reorder = options.preprocess_reorder;
    preprocess_options.pool = options.pool;
    pre = PreprocessForKCliques(g, preprocess_options);
    preprocessed = true;
    remap = pre.stats.nodes_removed() != 0 || pre.stats.edges_removed() != 0;
  }
  const Graph& work = remap ? pre.pruned : g;
  const Ordering orientation =
      preprocessed ? std::move(pre.orientation) : DegeneracyOrdering(g);

  const int partitions = std::max(1, options.partitions);
  const RangePartitioner default_policy;
  const GraphPartitioner& policy =
      options.partitioner != nullptr ? *options.partitioner : default_policy;
  const std::vector<int> owner = policy.Assign(work, orientation, partitions);
  std::vector<GraphPartition> parts =
      BuildPartitions(work, orientation, owner, partitions, options.pool);
  const double setup_ms = timer.ElapsedMillis();

  StatusOr<SolveResult> solved = [&]() -> StatusOr<SolveResult> {
    switch (options.method) {
      case Method::kHG:
        return RunHg(work, orientation, parts, options, deadline);
      case Method::kGC:
        return RunGc(work, orientation, parts, owner, options, deadline);
      case Method::kL:
      case Method::kLP:
        return RunLightweight(work, orientation, parts, options, deadline);
      case Method::kOPT:
        break;
    }
    return Status::InvalidArgument("unknown method");
  }();
  if (!solved.ok()) return solved.status();

  solved->stats.init_ms += setup_ms;  // preprocess + partition construction
  if (preprocessed) solved->preprocess = pre.stats;
  solved->partitions.reserve(parts.size());
  for (const GraphPartition& part : parts) {
    solved->partitions.push_back(part.stats);
  }
  if (!remap) return solved;

  // Report in original ids — the monotone-remap replay of the facade.
  SolveResult result(options.k);
  result.stats = solved->stats;
  result.preprocess = solved->preprocess;
  result.partitions = std::move(solved->partitions);
  std::vector<NodeId> mapped(static_cast<size_t>(options.k));
  for (CliqueId c = 0; c < solved->set.size(); ++c) {
    const auto nodes = solved->set.Get(c);
    for (int i = 0; i < options.k; ++i) mapped[i] = pre.new_to_old[nodes[i]];
    result.set.Add(mapped);
  }
  return result;
}

}  // namespace dkc
