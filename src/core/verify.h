// Independent validation of solver output. Used by every test and by the
// benchmark harnesses in debug runs: a "better" number from a solver means
// nothing unless the set is made of real, pairwise-disjoint k-cliques — and,
// for the approximation guarantee (Theorem 3) to apply, maximal.

#ifndef DKC_CORE_VERIFY_H_
#define DKC_CORE_VERIFY_H_

#include "clique/clique_store.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

/// Checks that every member of `set` is a k-clique of `g` and that members
/// are pairwise node-disjoint. O(|S| k^2 log d).
Status VerifyDisjointCliques(const Graph& g, const CliqueStore& set);

/// Additionally checks maximality: the subgraph induced on nodes not used
/// by `set` must contain no k-clique. Cost of one bounded clique search.
Status VerifyMaximality(const Graph& g, const CliqueStore& set);

/// Both of the above.
Status VerifySolution(const Graph& g, const CliqueStore& set);

}  // namespace dkc

#endif  // DKC_CORE_VERIFY_H_
