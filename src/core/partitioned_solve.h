// Partition-parallel solve driver: run HG/GC/L/LP per partition on the
// pool, then stitch boundary work with a deterministic serial pass so the
// result is byte-identical to the unpartitioned engine at any partition
// count P >= 1 and any thread count. See partition/partition.h for the
// ownership/ghost model and partitioned_solve.cc for the per-method
// determinism arguments.

#ifndef DKC_CORE_PARTITIONED_SOLVE_H_
#define DKC_CORE_PARTITIONED_SOLVE_H_

#include "core/solver.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

/// Partitioned execution of Solve() for options.partitions >= 1. Requires
/// k >= 3 and method in {HG, GC, L, LP} (the Solve facade routes OPT and
/// invalid k to the classic path). Honors preprocess/budget/pool exactly
/// like the classic path and reports per-partition accounting in
/// SolveResult::partitions.
StatusOr<SolveResult> PartitionedSolve(const Graph& g,
                                       const SolverOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_PARTITIONED_SOLVE_H_
