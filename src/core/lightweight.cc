#include "core/lightweight.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <vector>

#include "clique/kclique.h"
#include "core/clique_score.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/timer.h"

namespace dkc {
namespace {

// FindMin (Algorithm 3, lines 16-29): locally minimum clique-score k-clique
// rooted at u, searched inside the valid part of N+(u). The score-driven
// pruning cuts a branch as soon as the running sum plus the next node's
// score exceeds the best complete clique found (scores are positive, so the
// running sum lower-bounds every completion of the branch). Pruning never
// changes the result: only strictly-worse completions are skipped, and ties
// are resolved "first found in DFS order" both with and without it.
class MinCliqueFinder {
 public:
  MinCliqueFinder(const Dag& dag, const std::vector<uint8_t>& valid,
                  const std::vector<Count>& node_scores, int k, bool prune)
      : dag_(dag),
        valid_(valid),
        scores_(node_scores),
        k_(k),
        prune_(prune) {
    scratch_.resize(k >= 3 ? k - 2 : 0);
    for (auto& buf : scratch_) buf.reserve(dag.MaxOutDegree());
    seed_.reserve(dag.MaxOutDegree());
    prefix_.reserve(static_cast<size_t>(k));
    best_nodes_.reserve(static_cast<size_t>(k));
  }

  uint64_t branches_visited() const { return branches_visited_; }

  /// Returns true iff some k-clique rooted at `u` exists among valid nodes;
  /// fills the minimum-score one (root first) and its clique score.
  bool FindRooted(NodeId u, std::vector<NodeId>* clique, Count* clique_score) {
    seed_.clear();
    for (NodeId v : dag_.OutNeighbors(u)) {
      if (valid_[v]) seed_.push_back(v);
    }
    if (seed_.size() + 1 < static_cast<size_t>(k_)) return false;
    prefix_.assign(1, u);
    have_best_ = false;
    best_score_ = 0;
    Recurse(k_ - 1, seed_, 0, scores_[u]);
    if (!have_best_) return false;
    *clique = best_nodes_;
    *clique_score = best_score_;
    return true;
  }

 private:
  void Recurse(int remaining, std::span<const NodeId> cand, int depth,
               Count score_so_far) {
    ++branches_visited_;
    if (remaining == 1) {
      for (NodeId v : cand) {
        const Count total = score_so_far + scores_[v];
        if (!have_best_ || total < best_score_) {
          best_score_ = total;
          best_nodes_ = prefix_;
          best_nodes_.push_back(v);
          have_best_ = true;
        }
      }
      return;
    }
    for (NodeId v : cand) {
      if (dag_.OutDegree(v) + 1 < static_cast<Count>(remaining)) continue;
      if (prune_ && have_best_ && score_so_far + scores_[v] > best_score_) {
        continue;  // lines 19-20 / 27-28
      }
      auto& next = scratch_[depth];
      next.clear();
      for (NodeId w : dag_.OutNeighbors(v)) {
        if (valid_[w] && std::binary_search(cand.begin(), cand.end(), w)) {
          next.push_back(w);
        }
      }
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      prefix_.push_back(v);
      Recurse(remaining - 1, next, depth + 1, score_so_far + scores_[v]);
      prefix_.pop_back();
    }
  }

  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  const std::vector<Count>& scores_;
  int k_;
  bool prune_;
  std::vector<std::vector<NodeId>> scratch_;
  std::vector<NodeId> seed_;
  std::vector<NodeId> prefix_;
  std::vector<NodeId> best_nodes_;
  Count best_score_ = 0;
  bool have_best_ = false;
  uint64_t branches_visited_ = 0;
};

struct HeapEntry {
  Count score;
  NodeId root_rank;  // rank of nodes[0]; deterministic tie-break
  std::vector<NodeId> nodes;
};

struct HeapCompare {
  // std::priority_queue is a max-heap; invert for min-by-(score, rank).
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.root_rank > b.root_rank;
  }
};

}  // namespace

StatusOr<SolveResult> SolveLightweight(const Graph& g,
                                       const LightweightOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;
  SolveResult result(options.k);

  // Line 2: node scores from a counting pass (degeneracy orientation — any
  // total order works for counting; degeneracy keeps it fast).
  bool oot = false;
  NodeScores scores;
  {
    Dag counting_dag(g, DegeneracyOrdering(g));
    scores = ComputeNodeScores(counting_dag, options.k, options.pool, deadline,
                               &oot);
  }
  if (oot) return Status::TimeBudgetExceeded("lightweight scoring pass");
  result.stats.cliques_listed = scores.total_cliques;

  // Lines 3-4: score-ascending total order and its DAG.
  Dag dag(g, OrderByKeyAscending(scores.per_node));
  std::vector<uint8_t> valid(g.num_nodes(), 1);

  // Lines 5-6, HeapInit: one local-minimum clique per root, in parallel.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  {
    std::vector<HeapEntry> initial;
    std::mutex merge_mu;
    const NodeId n = g.num_nodes();
    auto scan_range = [&](NodeId begin, NodeId end,
                          std::vector<HeapEntry>* out) {
      MinCliqueFinder finder(dag, valid, scores.per_node, options.k,
                             options.enable_score_pruning);
      std::vector<NodeId> clique;
      Count clique_score = 0;
      for (NodeId u = begin; u < end; ++u) {
        if (dag.OutDegree(u) + 1 < static_cast<Count>(options.k)) continue;
        if (finder.FindRooted(u, &clique, &clique_score)) {
          out->push_back(HeapEntry{clique_score, dag.ordering().rank[u],
                                   clique});
        }
      }
    };
    if (options.pool != nullptr && options.pool->num_threads() > 1 &&
        n >= 1024) {
      std::atomic<NodeId> cursor{0};
      const size_t workers = options.pool->num_threads();
      for (size_t w = 0; w < workers; ++w) {
        options.pool->Submit([&] {
          std::vector<HeapEntry> local;
          constexpr NodeId kChunk = 512;
          for (;;) {
            const NodeId begin = cursor.fetch_add(kChunk);
            if (begin >= n) break;
            scan_range(begin, std::min<NodeId>(n, begin + kChunk), &local);
          }
          std::lock_guard<std::mutex> lock(merge_mu);
          for (auto& e : local) initial.push_back(std::move(e));
        });
      }
      options.pool->Wait();
    } else {
      scan_range(0, n, &initial);
    }
    for (auto& e : initial) heap.push(std::move(e));
  }
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Line 7, Calculation: pop global minima; lazily refresh stale roots.
  {
    MinCliqueFinder finder(dag, valid, scores.per_node, options.k,
                           options.enable_score_pruning);
    std::vector<NodeId> clique;
    Count clique_score = 0;
    uint64_t pops = 0;
    while (!heap.empty()) {
      if ((++pops & 0xFF) == 0 && deadline.Expired()) {
        return Status::TimeBudgetExceeded("lightweight calculation loop");
      }
      HeapEntry top = heap.top();
      heap.pop();
      bool fresh = true;
      for (NodeId v : top.nodes) {
        if (!valid[v]) {
          fresh = false;
          break;
        }
      }
      if (fresh) {  // lines 34-35
        for (NodeId v : top.nodes) valid[v] = 0;
        result.set.Add(top.nodes);
        continue;
      }
      const NodeId root = top.nodes[0];
      if (valid[root] &&
          dag.OutDegree(root) + 1 >= static_cast<Count>(options.k)) {
        // Lines 37-39: refresh the local minimum for this root.
        if (finder.FindRooted(root, &clique, &clique_score)) {
          heap.push(
              HeapEntry{clique_score, dag.ordering().rank[root], clique});
        }
      }
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() +
      static_cast<int64_t>(scores.per_node.capacity() * sizeof(Count)) +
      static_cast<int64_t>(valid.capacity()) +
      static_cast<int64_t>(g.num_nodes()) *
          static_cast<int64_t>(sizeof(HeapEntry) +
                               options.k * sizeof(NodeId)) +
      result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
