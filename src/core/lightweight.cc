#include "core/lightweight.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "clique/kclique.h"
#include "clique/neighborhood.h"
#include "core/clique_score.h"
#include "graph/dag.h"
#include "graph/ordering.h"
#include "util/timer.h"

namespace dkc {
namespace {

// FindMin (Algorithm 3, lines 16-29): locally minimum clique-score k-clique
// rooted at u, searched inside the valid part of N+(u). A thin adapter over
// NeighborhoodKernel::FindMinScoreClique, which carries the score-driven
// pruning (lines 19-20 / 27-28): a branch is cut as soon as the running sum
// plus the next node's score exceeds the best complete clique found.
// Pruning never changes the result: only strictly-worse completions are
// skipped, and ties are resolved "first found in DFS order" both ways.
class MinCliqueFinder {
 public:
  MinCliqueFinder(const Dag& dag, const std::vector<uint8_t>& valid,
                  const std::vector<Count>& node_scores, int k, bool prune,
                  KernelArena* arena = nullptr)
      : dag_(dag),
        valid_(valid),
        scores_(node_scores),
        k_(k),
        prune_(prune),
        kernel_(arena) {
    rest_.reserve(static_cast<size_t>(k));
  }

  /// Returns true iff some k-clique rooted at `u` exists among valid nodes;
  /// fills the minimum-score one (root first) and its clique score.
  bool FindRooted(NodeId u, std::vector<NodeId>* clique, Count* clique_score) {
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return false;
    kernel_.BuildFromRoot(dag_, u, valid_.data());
    if (kernel_.size() + 1 < static_cast<NodeId>(k_)) return false;
    if (!kernel_.FindMinScoreClique(k_ - 1, scores_, scores_[u], prune_,
                                    &rest_, clique_score)) {
      return false;
    }
    clique->clear();
    clique->push_back(u);
    clique->insert(clique->end(), rest_.begin(), rest_.end());
    return true;
  }

 private:
  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  const std::vector<Count>& scores_;
  int k_;
  bool prune_;
  NeighborhoodKernel kernel_;
  std::vector<NodeId> rest_;
};

struct HeapEntry {
  Count score;
  NodeId root_rank;  // rank of nodes[0]; deterministic tie-break
  std::vector<NodeId> nodes;
};

struct HeapCompare {
  // std::priority_queue is a max-heap; invert for min-by-(score, rank).
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.root_rank > b.root_rank;
  }
};

}  // namespace

StatusOr<SolveResult> SolveLightweight(const Graph& g,
                                       const LightweightOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;
  SolveResult result(options.k);

  // Line 2: node scores from a counting pass (degeneracy orientation — any
  // total order works for counting; degeneracy keeps it fast).
  bool oot = false;
  NodeScores scores;
  {
    Dag counting_dag(g, options.orientation != nullptr
                            ? *options.orientation
                            : DegeneracyOrdering(g));
    scores = ComputeNodeScores(counting_dag, options.k, options.pool, deadline,
                               &oot);
  }
  if (oot) return Status::TimeBudgetExceeded("lightweight scoring pass");
  result.stats.cliques_listed = scores.total_cliques;

  // Lines 3-4: score-ascending total order and its DAG.
  Dag dag(g, OrderByKeyAscending(scores.per_node));
  std::vector<uint8_t> valid(g.num_nodes(), 1);

  // Lines 5-6, HeapInit: one local-minimum clique per root, in parallel via
  // the shared root driver (uniform pool scheduling + deadline checks).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  {
    std::vector<HeapEntry> initial;
    struct State {
      // Heap-owned arena: its address is stable across State moves, so the
      // finder's kernel can borrow it (one arena per DriveRoots worker,
      // reused across every root the worker drives).
      std::unique_ptr<KernelArena> arena;
      MinCliqueFinder finder;
      std::vector<NodeId> clique;
      Count clique_score = 0;
      std::vector<HeapEntry> found;
    };
    const bool completed = DriveRoots(
        g.num_nodes(), options.pool, deadline,
        [&] {
          auto arena = std::make_unique<KernelArena>();
          KernelArena* raw = arena.get();
          return State{std::move(arena),
                       MinCliqueFinder(dag, valid, scores.per_node, options.k,
                                       options.enable_score_pruning, raw),
                       {},
                       0,
                       {}};
        },
        [&](NodeId u, State* s) {
          if (dag.OutDegree(u) + 1 < static_cast<Count>(options.k)) return;
          if (s->finder.FindRooted(u, &s->clique, &s->clique_score)) {
            s->found.push_back(HeapEntry{s->clique_score,
                                         dag.ordering().rank[u], s->clique});
          }
        },
        [&](State* s) {
          for (auto& e : s->found) initial.push_back(std::move(e));
        });
    if (!completed) return Status::TimeBudgetExceeded("lightweight heap init");
    for (auto& e : initial) heap.push(std::move(e));
  }
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // Line 7, Calculation: pop global minima; lazily refresh stale roots.
  {
    MinCliqueFinder finder(dag, valid, scores.per_node, options.k,
                           options.enable_score_pruning);
    std::vector<NodeId> clique;
    Count clique_score = 0;
    uint64_t pops = 0;
    while (!heap.empty()) {
      if ((++pops & 0xFF) == 0 && deadline.Expired()) {
        return Status::TimeBudgetExceeded("lightweight calculation loop");
      }
      HeapEntry top = heap.top();
      heap.pop();
      bool fresh = true;
      for (NodeId v : top.nodes) {
        if (!valid[v]) {
          fresh = false;
          break;
        }
      }
      if (fresh) {  // lines 34-35
        for (NodeId v : top.nodes) valid[v] = 0;
        result.set.Add(top.nodes);
        continue;
      }
      const NodeId root = top.nodes[0];
      if (valid[root] &&
          dag.OutDegree(root) + 1 >= static_cast<Count>(options.k)) {
        // Lines 37-39: refresh the local minimum for this root.
        if (finder.FindRooted(root, &clique, &clique_score)) {
          heap.push(
              HeapEntry{clique_score, dag.ordering().rank[root], clique});
        }
      }
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes =
      g.MemoryBytes() + dag.MemoryBytes() +
      static_cast<int64_t>(scores.per_node.capacity() * sizeof(Count)) +
      static_cast<int64_t>(valid.capacity()) +
      static_cast<int64_t>(g.num_nodes()) *
          static_cast<int64_t>(sizeof(HeapEntry) +
                               options.k * sizeof(NodeId)) +
      result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
