#include "core/solver.h"

#include <algorithm>
#include <cctype>
#include <vector>

#include "core/basic_framework.h"
#include "core/gc_solver.h"
#include "core/lightweight.h"
#include "core/opt_solver.h"
#include "core/partitioned_solve.h"
#include "graph/preprocess.h"

namespace dkc {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kHG: return "HG";
    case Method::kGC: return "GC";
    case Method::kL: return "L";
    case Method::kLP: return "LP";
    case Method::kOPT: return "OPT";
  }
  return "?";
}

StatusOr<Method> ParseMethod(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "HG") return Method::kHG;
  if (upper == "GC") return Method::kGC;
  if (upper == "L") return Method::kL;
  if (upper == "LP") return Method::kLP;
  if (upper == "OPT") return Method::kOPT;
  return Status::NotFound("unknown method '" + name +
                          "' (expected HG, GC, L, LP or OPT)");
}

namespace {

// One method dispatch on one concrete graph, optionally with a supplied
// orientation (the preprocessing pipeline's restricted degeneracy order).
StatusOr<SolveResult> Dispatch(const Graph& g, const SolverOptions& options,
                               const Ordering* orientation) {
  switch (options.method) {
    case Method::kHG: {
      BasicOptions basic;
      basic.k = options.k;
      basic.orientation = orientation;
      basic.budget = options.budget;
      basic.pool = options.pool;
      return SolveBasic(g, basic);
    }
    case Method::kGC: {
      GcOptions gc;
      gc.k = options.k;
      gc.orientation = orientation;
      gc.budget = options.budget;
      gc.pool = options.pool;
      return SolveGc(g, gc);
    }
    case Method::kL:
    case Method::kLP: {
      LightweightOptions light;
      light.k = options.k;
      light.enable_score_pruning = options.method == Method::kLP;
      light.orientation = orientation;
      light.budget = options.budget;
      light.pool = options.pool;
      return SolveLightweight(g, light);
    }
    case Method::kOPT: {
      OptOptions opt;
      opt.k = options.k;
      opt.orientation = orientation;
      opt.budget = options.budget;  // carries max_branch_nodes (exact MIS)
      opt.pool = options.pool;
      return SolveOpt(g, opt);
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace

StatusOr<SolveResult> Solve(const Graph& g, const SolverOptions& options) {
  if (options.partitions > 0 && options.method != Method::kOPT &&
      options.k >= 3) {
    // Partitioned execution model; byte-identical to the classic path
    // below at any partition count. OPT keeps its own per-component
    // decomposition; invalid k falls through for per-method validation.
    return PartitionedSolve(g, options);
  }
  if (!options.preprocess || options.k < 3) {
    // k < 3 falls through so the per-method validation reports the error.
    return Dispatch(g, options, nullptr);
  }
  PreprocessOptions preprocess_options;
  preprocess_options.k = options.k;
  preprocess_options.reorder = options.preprocess_reorder;
  preprocess_options.pool = options.pool;
  const PreprocessResult pre = PreprocessForKCliques(g, preprocess_options);

  if (pre.stats.nodes_removed() == 0 && pre.stats.edges_removed() == 0) {
    // Nothing pruned: solve the input directly (pre.orientation is exactly
    // the order the solver would compute, so hand it over) and skip the
    // identity remap.
    auto solved = Dispatch(g, options, &pre.orientation);
    if (!solved.ok()) return solved.status();
    solved->stats.init_ms += pre.stats.elapsed_ms;
    solved->preprocess = pre.stats;
    return solved;
  }

  auto solved = Dispatch(pre.pruned, options, &pre.orientation);
  if (!solved.ok()) return solved.status();

  // Report in original ids. The remap is monotone and cliques are appended
  // in the order the solver produced them, so a byte-compare against the
  // unpruned run's store is meaningful (and asserted in the harness).
  SolveResult result(options.k);
  result.stats = solved->stats;
  result.stats.init_ms += pre.stats.elapsed_ms;
  result.preprocess = pre.stats;
  std::vector<NodeId> mapped(static_cast<size_t>(options.k));
  for (CliqueId c = 0; c < solved->set.size(); ++c) {
    const auto nodes = solved->set.Get(c);
    for (int i = 0; i < options.k; ++i) mapped[i] = pre.new_to_old[nodes[i]];
    result.set.Add(mapped);
  }
  return result;
}

}  // namespace dkc
