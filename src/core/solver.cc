#include "core/solver.h"

#include <algorithm>
#include <cctype>

#include "core/basic_framework.h"
#include "core/gc_solver.h"
#include "core/lightweight.h"
#include "core/opt_solver.h"

namespace dkc {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kHG: return "HG";
    case Method::kGC: return "GC";
    case Method::kL: return "L";
    case Method::kLP: return "LP";
    case Method::kOPT: return "OPT";
  }
  return "?";
}

StatusOr<Method> ParseMethod(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "HG") return Method::kHG;
  if (upper == "GC") return Method::kGC;
  if (upper == "L") return Method::kL;
  if (upper == "LP") return Method::kLP;
  if (upper == "OPT") return Method::kOPT;
  return Status::NotFound("unknown method '" + name +
                          "' (expected HG, GC, L, LP or OPT)");
}

StatusOr<SolveResult> Solve(const Graph& g, const SolverOptions& options) {
  switch (options.method) {
    case Method::kHG: {
      BasicOptions basic;
      basic.k = options.k;
      basic.budget = options.budget;
      basic.pool = options.pool;
      return SolveBasic(g, basic);
    }
    case Method::kGC: {
      GcOptions gc;
      gc.k = options.k;
      gc.budget = options.budget;
      gc.pool = options.pool;
      return SolveGc(g, gc);
    }
    case Method::kL:
    case Method::kLP: {
      LightweightOptions light;
      light.k = options.k;
      light.enable_score_pruning = options.method == Method::kLP;
      light.budget = options.budget;
      light.pool = options.pool;
      return SolveLightweight(g, light);
    }
    case Method::kOPT: {
      OptOptions opt;
      opt.k = options.k;
      opt.budget = options.budget;  // carries max_branch_nodes (exact MIS)
      opt.pool = options.pool;
      return SolveOpt(g, opt);
    }
  }
  return Status::InvalidArgument("unknown method");
}

}  // namespace dkc
