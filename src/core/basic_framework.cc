#include "core/basic_framework.h"

#include <algorithm>
#include <vector>

#include "clique/kclique.h"
#include "graph/ordering.h"

namespace dkc {
namespace {

// FindOne (Algorithm 1, lines 14-24): depth-first search for the first
// l-clique inside the valid part of the candidate set, using DAG
// out-adjacency so no clique is visited twice across roots.
class FirstCliqueFinder {
 public:
  FirstCliqueFinder(const Dag& dag, const std::vector<uint8_t>& valid, int k)
      : dag_(dag), valid_(valid), k_(k) {
    scratch_.resize(k >= 3 ? k - 2 : 0);
    for (auto& buf : scratch_) buf.reserve(dag.MaxOutDegree());
    seed_.reserve(dag.MaxOutDegree());
    found_.reserve(static_cast<size_t>(k));
  }

  /// On success fills `clique` with u plus a (k-1)-clique from valid N+(u).
  bool FindRooted(NodeId u, std::vector<NodeId>* clique) {
    seed_.clear();
    for (NodeId v : dag_.OutNeighbors(u)) {
      if (valid_[v]) seed_.push_back(v);
    }
    if (seed_.size() + 1 < static_cast<size_t>(k_)) return false;
    found_.assign(1, u);
    if (!Recurse(k_ - 1, seed_, 0)) return false;
    *clique = found_;
    return true;
  }

 private:
  // Returns true once a clique is completed; `found_` then holds it.
  bool Recurse(int remaining, std::span<const NodeId> cand, int depth) {
    if (remaining == 1) {
      // Any candidate closes the clique; take the first (paper line 16:
      // "find an edge ... and form a k-clique" — first hit wins).
      found_.push_back(cand.front());
      return true;
    }
    for (NodeId v : cand) {
      if (dag_.OutDegree(v) + 1 < static_cast<Count>(remaining)) continue;
      auto& next = scratch_[depth];
      next.clear();
      for (NodeId w : dag_.OutNeighbors(v)) {
        if (!valid_[w]) continue;
        // `cand` is sorted and valid-filtered; intersect on the fly.
        if (std::binary_search(cand.begin(), cand.end(), w)) {
          next.push_back(w);
        }
      }
      if (next.size() + 1 < static_cast<size_t>(remaining)) continue;
      found_.push_back(v);
      if (Recurse(remaining - 1, next, depth + 1)) return true;
      found_.pop_back();
    }
    return false;
  }

  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  int k_;
  std::vector<std::vector<NodeId>> scratch_;
  std::vector<NodeId> seed_;
  std::vector<NodeId> found_;
};

Ordering MakeOrdering(const Graph& g, NodeOrderKind kind) {
  switch (kind) {
    case NodeOrderKind::kIdentity: return IdentityOrdering(g.num_nodes());
    case NodeOrderKind::kDegree: return DegreeOrdering(g);
    case NodeOrderKind::kDegeneracy: return DegeneracyOrdering(g);
  }
  return DegeneracyOrdering(g);
}

}  // namespace

StatusOr<SolveResult> SolveBasic(const Graph& g, const BasicOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3 (use maximum matching for k=2)");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;
  SolveResult result(options.k);

  Dag dag(g, MakeOrdering(g, options.order));
  std::vector<uint8_t> valid(g.num_nodes(), 1);
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  FirstCliqueFinder finder(dag, valid, options.k);
  std::vector<NodeId> clique;
  const auto& order = dag.ordering().nodes;
  for (NodeId i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    if (!valid[u]) continue;
    if ((i & 0x3FF) == 0 && deadline.Expired()) {
      return Status::TimeBudgetExceeded("basic framework");
    }
    if (dag.OutDegree(u) + 1 < static_cast<Count>(options.k)) continue;
    if (finder.FindRooted(u, &clique)) {
      for (NodeId v : clique) valid[v] = 0;
      result.set.Add(clique);
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 static_cast<int64_t>(valid.size()) +
                                 result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
