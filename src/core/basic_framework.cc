#include "core/basic_framework.h"

#include <algorithm>
#include <vector>

#include "clique/neighborhood.h"
#include "graph/ordering.h"

namespace dkc {
namespace {

// FindOne (Algorithm 1, lines 14-24): depth-first search for the first
// k-clique rooted at u inside the valid part of N+(u), adapted onto the
// shared neighborhood kernel's early-stopping enumeration (paper line 16:
// "find an edge ... and form a k-clique" — first hit wins).
class FirstCliqueFinder {
 public:
  FirstCliqueFinder(const Dag& dag, const std::vector<uint8_t>& valid, int k)
      : dag_(dag), valid_(valid), k_(k) {}

  /// On success fills `clique` with u plus a (k-1)-clique from valid N+(u).
  bool FindRooted(NodeId u, std::vector<NodeId>* clique) {
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return false;
    kernel_.BuildFromRoot(dag_, u, valid_.data());
    if (kernel_.size() + 1 < static_cast<NodeId>(k_)) return false;
    bool found = false;
    kernel_.ForEachClique(k_ - 1, [&](std::span<const NodeId> nodes) {
      clique->assign(nodes.begin(), nodes.end());
      found = true;
      return false;  // stop at the first clique
    });
    return found;
  }

 private:
  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  int k_;
  NeighborhoodKernel kernel_;
};

Ordering MakeOrdering(const Graph& g, NodeOrderKind kind) {
  switch (kind) {
    case NodeOrderKind::kIdentity: return IdentityOrdering(g.num_nodes());
    case NodeOrderKind::kDegree: return DegreeOrdering(g);
    case NodeOrderKind::kDegeneracy: return DegeneracyOrdering(g);
  }
  return DegeneracyOrdering(g);
}

}  // namespace

StatusOr<SolveResult> SolveBasic(const Graph& g, const BasicOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3 (use maximum matching for k=2)");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;
  SolveResult result(options.k);

  Dag dag(g, MakeOrdering(g, options.order));
  std::vector<uint8_t> valid(g.num_nodes(), 1);
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  FirstCliqueFinder finder(dag, valid, options.k);
  std::vector<NodeId> clique;
  const auto& order = dag.ordering().nodes;
  for (NodeId i = 0; i < order.size(); ++i) {
    const NodeId u = order[i];
    if (!valid[u]) continue;
    if ((i & 0x3FF) == 0 && deadline.Expired()) {
      return Status::TimeBudgetExceeded("basic framework");
    }
    if (dag.OutDegree(u) + 1 < static_cast<Count>(options.k)) continue;
    if (finder.FindRooted(u, &clique)) {
      for (NodeId v : clique) valid[v] = 0;
      result.set.Add(clique);
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 static_cast<int64_t>(valid.size()) +
                                 result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
