#include "core/basic_framework.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "clique/neighborhood.h"
#include "graph/ordering.h"

namespace dkc {
namespace {

// FindOne (Algorithm 1, lines 14-24): depth-first search for the first
// k-clique rooted at u inside the valid part of N+(u), adapted onto the
// shared neighborhood kernel's early-stopping enumeration (paper line 16:
// "find an edge ... and form a k-clique" — first hit wins).
class FirstCliqueFinder {
 public:
  FirstCliqueFinder(const Dag& dag, const std::vector<uint8_t>& valid, int k,
                    KernelArena* arena = nullptr)
      : dag_(dag), valid_(valid), k_(k), kernel_(arena) {}

  /// On success fills `clique` with u plus a (k-1)-clique from valid N+(u).
  bool FindRooted(NodeId u, std::vector<NodeId>* clique) {
    if (dag_.OutDegree(u) + 1 < static_cast<Count>(k_)) return false;
    kernel_.BuildFromRoot(dag_, u, valid_.data());
    if (kernel_.size() + 1 < static_cast<NodeId>(k_)) return false;
    bool found = false;
    kernel_.ForEachClique(k_ - 1, [&](std::span<const NodeId> nodes) {
      clique->assign(nodes.begin(), nodes.end());
      found = true;
      return false;  // stop at the first clique
    });
    return found;
  }

 private:
  const Dag& dag_;
  const std::vector<uint8_t>& valid_;
  int k_;
  NeighborhoodKernel kernel_;
};

Ordering MakeOrdering(const Graph& g, NodeOrderKind kind) {
  switch (kind) {
    case NodeOrderKind::kIdentity: return IdentityOrdering(g.num_nodes());
    case NodeOrderKind::kDegree: return DegreeOrdering(g);
    case NodeOrderKind::kDegeneracy: return DegeneracyOrdering(g);
  }
  return DegeneracyOrdering(g);
}

}  // namespace

StatusOr<SolveResult> SolveBasic(const Graph& g, const BasicOptions& options) {
  if (options.k < 3) {
    return Status::InvalidArgument("k must be >= 3 (use maximum matching for k=2)");
  }
  const Deadline deadline =
      options.budget.time_ms > 0 ? Deadline::AfterMillis(options.budget.time_ms)
                                 : Deadline::Unlimited();
  Timer timer;
  SolveResult result(options.k);

  Dag dag(g, options.orientation != nullptr ? *options.orientation
                                            : MakeOrdering(g, options.order));
  std::vector<uint8_t> valid(g.num_nodes(), 1);
  result.stats.init_ms = timer.ElapsedMillis();
  timer.Restart();

  // The sweep visits roots in rank order; each acceptance invalidates the
  // clique's nodes for every later root. With a pool the sweep runs in
  // speculative batches: a batch of roots is searched in parallel against
  // the mask as of the batch start, then drained serially in rank order.
  //
  // Why the result is byte-identical to the serial sweep: the kernel's DFS
  // visits the (k-1)-cliques of N+(u) in a fixed order, and shrinking the
  // validity mask only *removes* branches, never reorders the survivors.
  // So if the clique found under the batch-start mask (a superset of the
  // drain-time mask) is still fully valid at drain time, it is exactly the
  // first valid clique the serial sweep would find — and if it went stale,
  // the drain re-runs FindOne under the true mask. A root with no clique
  // under the superset mask has none under any subset either.
  FirstCliqueFinder finder(dag, valid, options.k);
  std::vector<NodeId> clique;
  const auto& order = dag.ordering().nodes;
  auto skip_root = [&](NodeId u) {
    return !valid[u] ||
           dag.OutDegree(u) + 1 < static_cast<Count>(options.k);
  };
  auto accept = [&](const std::vector<NodeId>& nodes) {
    for (NodeId v : nodes) valid[v] = 0;
    result.set.Add(nodes);
  };
  const size_t workers = options.pool == nullptr
                             ? 0
                             : options.pool->num_threads();
  if (workers > 1 && order.size() >= 2 * workers) {
    struct Worker {
      KernelArena arena;
      FirstCliqueFinder finder;
      Worker(const Dag& dag, const std::vector<uint8_t>& valid, int k)
          : finder(dag, valid, k, &arena) {}
    };
    std::vector<std::unique_ptr<Worker>> states;
    states.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      states.push_back(
          std::make_unique<Worker>(dag, valid, options.k));
    }
    constexpr NodeId kBatch = 1024;
    std::vector<std::vector<NodeId>> found(kBatch);
    std::vector<uint8_t> has(kBatch);
    for (NodeId batch = 0; batch < order.size(); batch += kBatch) {
      const NodeId end = std::min<NodeId>(order.size(), batch + kBatch);
      if (deadline.Expired()) {
        return Status::TimeBudgetExceeded("basic framework");
      }
      std::atomic<NodeId> cursor{batch};
      std::atomic<bool> expired{false};
      for (size_t w = 0; w < workers; ++w) {
        Worker* state = states[w].get();
        options.pool->Submit([&, state] {
          for (;;) {
            const NodeId i = cursor.fetch_add(1);
            if (i >= end || expired.load(std::memory_order_relaxed)) break;
            if ((i & 0x3F) == 0 && deadline.Expired()) {
              expired.store(true, std::memory_order_relaxed);
              break;
            }
            has[i - batch] = 0;
            const NodeId u = order[i];
            if (skip_root(u)) continue;
            if (state->finder.FindRooted(u, &found[i - batch])) {
              has[i - batch] = 1;
            }
          }
        });
      }
      options.pool->Wait();
      if (expired.load()) {
        return Status::TimeBudgetExceeded("basic framework");
      }
      for (NodeId i = batch; i < end; ++i) {
        const NodeId u = order[i];
        if (skip_root(u) || !has[i - batch]) continue;
        bool fresh = true;
        for (NodeId v : found[i - batch]) {
          if (!valid[v]) {
            fresh = false;
            break;
          }
        }
        if (fresh) {
          accept(found[i - batch]);
        } else if (finder.FindRooted(u, &clique)) {
          accept(clique);
        }
      }
    }
  } else {
    for (NodeId i = 0; i < order.size(); ++i) {
      const NodeId u = order[i];
      if ((i & 0x3FF) == 0 && deadline.Expired()) {
        return Status::TimeBudgetExceeded("basic framework");
      }
      if (skip_root(u)) continue;
      if (finder.FindRooted(u, &clique)) accept(clique);
    }
  }

  result.stats.compute_ms = timer.ElapsedMillis();
  result.stats.structure_bytes = g.MemoryBytes() + dag.MemoryBytes() +
                                 static_cast<int64_t>(valid.size()) +
                                 result.set.MemoryBytes();
  return result;
}

}  // namespace dkc
