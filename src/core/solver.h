// Unified facade over the five methods of the paper's evaluation:
//   HG  — Algorithm 1, basic framework
//   GC  — Algorithm 2, clique-score order over stored cliques
//   L   — Algorithm 3 without score pruning
//   LP  — Algorithm 3 with score pruning (the paper's recommended method)
//   OPT — exact clique-graph + exact-MIS baseline
// This is the entry point examples and benches use; the per-algorithm
// headers remain available for fine-grained options.

#ifndef DKC_CORE_SOLVER_H_
#define DKC_CORE_SOLVER_H_

#include <string>

#include "core/types.h"
#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

enum class Method { kHG, kGC, kL, kLP, kOPT };

/// "HG", "GC", "L", "LP", "OPT" — the paper's labels.
const char* MethodName(Method method);

/// Parse a method label (case-insensitive). NotFound on unknown labels.
StatusOr<Method> ParseMethod(const std::string& name);

struct SolverOptions {
  int k = 3;
  Method method = Method::kLP;
  Budget budget;
  /// Honored by every method: L/LP scoring + heap init, HG's FindOne
  /// sweep, GC/OPT clique enumeration, OPT's clique-graph dedup and
  /// per-component exact-MIS solves. Solutions are byte-identical at any
  /// thread count (each parallel pass ends in a deterministic ordered
  /// reduction or an order-insensitive one).
  ThreadPool* pool = nullptr;
  /// Graph-shrinking preprocessing (graph/preprocess.h): run the solver on
  /// the (k-1)-core + triangle-support fixpoint of the input and report the
  /// solution back in original node ids. The pruned graph is oriented by
  /// the original degeneracy order restricted to the survivors, so every
  /// method's solution is byte-identical with this on or off — the
  /// differential harness asserts it. Accounting lands in
  /// SolveResult::preprocess.
  bool preprocess = true;
  /// With `preprocess`: recompute the degeneracy order on the pruned graph
  /// instead (denser kernels on heavily shrunk inputs). Solutions stay
  /// valid maximal disjoint k-clique sets but the byte-identity promise is
  /// waived.
  bool preprocess_reorder = false;
  /// > 0: run the partitioned execution model (core/partitioned_solve.h)
  /// with this many partitions — partition-parallel HG/GC/L/LP passes plus
  /// a deterministic serial boundary stitch. Solutions are byte-identical
  /// to the classic path at any P and any thread count; P=1 is bit-for-bit
  /// the unpartitioned engine. OPT ignores this and takes the classic path
  /// (its clique-graph MIS already decomposes by connected component).
  /// Per-partition accounting lands in SolveResult::partitions.
  int partitions = 0;
  /// Partition-assignment policy for the partitioned driver; null picks
  /// RangePartitioner (contiguous solve-order ranges). Any policy yields
  /// the same solution — it trades locality and balance only.
  const GraphPartitioner* partitioner = nullptr;
};

/// Compute a disjoint k-clique set of `g` with the selected method.
StatusOr<SolveResult> Solve(const Graph& g, const SolverOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_SOLVER_H_
