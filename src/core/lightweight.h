// Algorithm 3 — the lightweight implementation ("L" without score pruning,
// "LP" with it).
//
// Produces the same greedy-by-clique-score selection as Algorithm 2 but
// without storing any cliques:
//   1. node scores s_n are computed by a counting pass (no storage);
//   2. nodes are ordered ascending by score; the graph is oriented into a
//      DAG along that order;
//   3. for every root u, FindMin extracts the *locally* minimum-score clique
//      inside the valid part of N+(u); the local minima sit in a global
//      min-heap;
//   4. Calculation pops the global minimum; stale entries (a node was
//      consumed since push) trigger a lazy FindMin re-run for their root.
//
// The score-driven pruning (LP) cuts FindMin branches whose running score
// sum already reaches the best local clique score found — the optimization
// the paper credits with up to an order of magnitude (Fig. 6, L vs LP).

#ifndef DKC_CORE_LIGHTWEIGHT_H_
#define DKC_CORE_LIGHTWEIGHT_H_

#include "core/types.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/status.h"

namespace dkc {

struct LightweightOptions {
  int k = 3;
  /// false => "L", true => "LP". Results are identical; only FindMin's
  /// search-tree size differs.
  bool enable_score_pruning = true;
  /// When non-null, orients the *counting* DAG (line 2) with this
  /// precomputed order instead of recomputing the degeneracy order — a
  /// speed knob only: node scores, and hence the score-ascending solve
  /// order and the solution, do not depend on it. Must outlive the call.
  const Ordering* orientation = nullptr;
  Budget budget;
  /// Optional pool for the scoring pass and HeapInit (both "in parallel" in
  /// the paper's pseudocode).
  ThreadPool* pool = nullptr;
};

/// Runs Algorithm 3 on `g`.
StatusOr<SolveResult> SolveLightweight(const Graph& g,
                                       const LightweightOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_LIGHTWEIGHT_H_
