#include "core/residual_cover.h"

#include "graph/graph_builder.h"
#include "matching/matching.h"

namespace dkc {
namespace {

// Subgraph induced on the uncovered nodes, with the mapping back.
Graph InduceFree(const Graph& g, const std::vector<bool>& covered,
                 std::vector<NodeId>* original_id) {
  std::vector<NodeId> compact(g.num_nodes(), kInvalidNode);
  original_id->clear();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!covered[u]) {
      compact[u] = static_cast<NodeId>(original_id->size());
      original_id->push_back(u);
    }
  }
  GraphBuilder builder(static_cast<NodeId>(original_id->size()));
  if (!original_id->empty()) {
    builder.EnsureNode(static_cast<NodeId>(original_id->size() - 1));
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (covered[u]) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && !covered[v]) builder.AddEdge(compact[u], compact[v]);
    }
  }
  return builder.Build();
}

}  // namespace

StatusOr<ResidualCoverResult> ResidualCover(
    const Graph& g, const ResidualCoverOptions& options) {
  if (options.k < options.min_k || options.min_k < 3) {
    return Status::InvalidArgument(
        "require k >= min_k >= 3 (pairs are the optional final round)");
  }
  ResidualCoverResult result;
  result.covered.assign(g.num_nodes(), false);

  for (int k = options.k; k >= options.min_k; --k) {
    std::vector<NodeId> original;
    Graph residual = InduceFree(g, result.covered, &original);
    if (residual.num_nodes() < static_cast<NodeId>(k)) continue;

    SolverOptions solver_options;
    solver_options.k = k;
    solver_options.method = options.method;
    solver_options.budget = options.budget_per_round;
    solver_options.pool = options.pool;
    auto solved = Solve(residual, solver_options);
    if (!solved.ok()) {
      // Budget exhaustion is a surfaced outcome, not a failure: keep the
      // rounds already packed (they are valid disjoint groups of g) and
      // report where the cover stopped. Anything else propagates.
      if (solved.status().IsTimeBudgetExceeded() ||
          solved.status().IsMemoryBudgetExceeded()) {
        result.aborted = true;
        result.aborted_round_k = k;
        return result;
      }
      return solved.status();
    }

    for (CliqueId c = 0; c < solved->set.size(); ++c) {
      CoverGroup group;
      group.k = k;
      for (NodeId local : solved->set.Get(c)) {
        const NodeId u = original[local];
        group.nodes.push_back(u);
        result.covered[u] = true;
        ++result.covered_nodes;
      }
      result.groups.push_back(std::move(group));
    }
  }

  if (options.pair_round) {
    std::vector<NodeId> original;
    Graph residual = InduceFree(g, result.covered, &original);
    MatchingResult matching = MaximumMatching(residual);
    for (auto [a, b] : matching.Edges()) {
      CoverGroup group;
      group.k = 2;
      group.nodes = {original[a], original[b]};
      result.covered[original[a]] = true;
      result.covered[original[b]] = true;
      result.covered_nodes += 2;
      result.groups.push_back(std::move(group));
    }
  }
  return result;
}

}  // namespace dkc
