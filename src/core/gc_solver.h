// Algorithm 2 — clique-score ordering over materialized cliques ("GC").
//
// Lists and *stores* every k-clique, computes clique scores (Definition 6),
// then greedily accepts cliques in ascending score order. Near-optimal
// output (it emulates min-degree greedy MIS on the clique graph, via the
// Theorem-2 degree bounds) but pays O(#cliques) memory — this is the method
// that goes OOM on the large datasets in Tables II/III.

#ifndef DKC_CORE_GC_SOLVER_H_
#define DKC_CORE_GC_SOLVER_H_

#include "core/types.h"
#include "graph/graph.h"
#include "graph/ordering.h"
#include "util/status.h"

namespace dkc {

struct GcOptions {
  int k = 3;
  /// When non-null, orients the listing DAG with this precomputed order
  /// instead of recomputing the degeneracy order (preprocessing plumbing;
  /// see BasicOptions::orientation). Must outlive the call.
  const Ordering* orientation = nullptr;
  Budget budget;
  /// Optional pool for the enumeration pass (line 2). The stored clique
  /// order — and therefore the (score, id) selection order and the final
  /// solution — is byte-identical at any thread count.
  ThreadPool* pool = nullptr;
};

/// Runs Algorithm 2 on `g`. Returns MemoryBudgetExceeded (OOM) if storing
/// the cliques exceeds the budget, TimeBudgetExceeded (OOT) on deadline.
StatusOr<SolveResult> SolveGc(const Graph& g, const GcOptions& options);

}  // namespace dkc

#endif  // DKC_CORE_GC_SOLVER_H_
