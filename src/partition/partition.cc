#include "partition/partition.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace dkc {

std::vector<int> RangePartitioner::Assign(const Graph& g,
                                          const Ordering& order,
                                          int partitions) const {
  const NodeId n = g.num_nodes();
  std::vector<int> owner(n, 0);
  if (n == 0 || partitions <= 1) return owner;
  for (NodeId i = 0; i < n; ++i) {
    owner[order.nodes[i]] = static_cast<int>(
        static_cast<size_t>(i) * static_cast<size_t>(partitions) / n);
  }
  return owner;
}

Ordering RestrictOrdering(const Ordering& order,
                          const std::vector<NodeId>& old_to_new,
                          NodeId local_n) {
  Ordering local;
  local.nodes.reserve(local_n);
  local.rank.assign(local_n, 0);
  for (NodeId global : order.nodes) {
    const NodeId mapped = old_to_new[global];
    if (mapped == kInvalidNode) continue;
    local.rank[mapped] = static_cast<NodeId>(local.nodes.size());
    local.nodes.push_back(mapped);
  }
  return local;
}

namespace {

void BuildOnePartition(const Graph& g, const Ordering& order,
                       std::span<const int> owner, int p,
                       GraphPartition* part) {
  const NodeId n = g.num_nodes();
  part->stats.index = p;

  // Local node set: owned nodes plus their out-of-partition neighbors
  // (ghosts). Collected in ascending global id so the remap is monotone.
  std::vector<uint8_t> ghost(n, 0);
  part->old_to_new.assign(n, kInvalidNode);
  for (NodeId u = 0; u < n; ++u) {
    if (owner[u] != p) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (owner[v] != p) ghost[v] = 1;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (owner[u] == p || ghost[u] != 0) {
      part->old_to_new[u] = static_cast<NodeId>(part->new_to_old.size());
      part->new_to_old.push_back(u);
    }
  }
  const NodeId local_n = static_cast<NodeId>(part->new_to_old.size());

  // Induced rows: global rows are sorted and the remap is monotone, so the
  // filtered-and-mapped rows stay sorted. An owned node keeps its entire
  // row; a ghost keeps only the locally present part.
  std::vector<Count> offsets(local_n + 1, 0);
  std::vector<NodeId> neighbors;
  part->owned.assign(local_n, 0);
  part->uncertain0.assign(local_n, 1);  // ghosts stay 1; owned refined below
  for (NodeId lu = 0; lu < local_n; ++lu) {
    const NodeId u = part->new_to_old[lu];
    const bool is_owned = owner[u] == p;
    part->owned[lu] = is_owned ? 1 : 0;
    bool has_remote_attacker = false;
    bool has_remote_neighbor = false;
    for (NodeId v : g.Neighbors(u)) {
      const NodeId lv = part->old_to_new[v];
      if (lv != kInvalidNode) neighbors.push_back(lv);
      if (is_owned && owner[v] != p) {
        has_remote_neighbor = true;
        ++part->stats.boundary_edges;
        if (order.rank[v] > order.rank[u]) has_remote_attacker = true;
      }
    }
    offsets[lu + 1] = neighbors.size();
    if (is_owned) {
      ++part->stats.owned_nodes;
      part->uncertain0[lu] = has_remote_attacker ? 1 : 0;
      if (has_remote_neighbor) ++part->stats.boundary_nodes;
    } else {
      ++part->stats.ghost_nodes;
    }
  }
  part->local = Graph(std::move(offsets), std::move(neighbors));
  part->stats.local_edges = part->local.num_edges();
  part->orientation = RestrictOrdering(order, part->old_to_new, local_n);
}

}  // namespace

std::vector<GraphPartition> BuildPartitions(const Graph& g,
                                            const Ordering& order,
                                            std::span<const int> owner,
                                            int partitions, ThreadPool* pool) {
  std::vector<GraphPartition> parts(static_cast<size_t>(partitions));
  if (pool != nullptr && pool->num_threads() > 1 && partitions > 1) {
    pool->ParallelFor(parts.size(), [&](size_t p) {
      BuildOnePartition(g, order, owner, static_cast<int>(p), &parts[p]);
    });
  } else {
    for (size_t p = 0; p < parts.size(); ++p) {
      BuildOnePartition(g, order, owner, static_cast<int>(p), &parts[p]);
    }
  }
  return parts;
}

}  // namespace dkc
