// Partitioned execution model: split a (preprocessed) CSR into P partitions
// for partition-parallel solving with deterministic boundary stitching.
//
// The vocabulary follows the distributed-graph literature (Galois libdist):
// every node is OWNED by exactly one partition; each partition additionally
// carries GHOST copies of the out-of-partition neighbors of its owned nodes.
// The partition's local graph is the subgraph induced on owned ∪ ghost with
// a monotone (ascending-global-id) local remap, in the exact style of
// PreprocessResult: rows stay sorted, and every id tie-break a solver makes
// on local ids agrees with the one it would make on global ids.
//
// The property the solvers build on: for an owned node u, ALL of N(u) is
// present locally (neighbors are owned or ghost by construction), and every
// edge between two members of N+(u) survives induction (both endpoints are
// local). A per-root clique search rooted at an owned node therefore sees a
// universe isomorphic to the global one — the foundation of the
// byte-identity argument in core/partitioned_solve.cc.
//
// GraphPartitioner is the assignment policy seam: RangePartitioner cuts the
// solve order into contiguous equal-size ranges (degeneracy-order locality,
// and boundary roots cluster at range seams); a METIS-style or hash policy
// plugs in by implementing Assign without touching the solve path, which is
// correct for ANY owner map.

#ifndef DKC_PARTITION_PARTITION_H_
#define DKC_PARTITION_PARTITION_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/ordering.h"

namespace dkc {

class ThreadPool;

/// Per-partition accounting surfaced through SolveResult and `dkc solve
/// --partitions=P`.
struct PartitionStats {
  int index = 0;
  NodeId owned_nodes = 0;
  /// Local copies of out-of-partition neighbors of owned nodes.
  NodeId ghost_nodes = 0;
  /// Owned nodes with at least one out-of-partition neighbor.
  NodeId boundary_nodes = 0;
  /// Owned–ghost edges in the local graph (the cut incident to this
  /// partition, counted once per owned endpoint).
  Count boundary_edges = 0;
  /// Undirected edges of the local induced subgraph.
  Count local_edges = 0;
  /// Work the partition pass resolved without the serial stitcher (HG:
  /// certain accepts; GC: cliques listed; L/LP: heap entries seeded).
  Count local_committed = 0;
  /// Work handed to the deterministic serial stitch pass (HG: boundary
  /// hints whose outcome depends on other partitions).
  Count stitch_deferred = 0;
  /// Wall clock of this partition's parallel solve pass.
  double elapsed_ms = 0.0;
};

/// One partition: local induced CSR plus the maps/flags the partitioned
/// solvers need. Built by BuildPartitions.
struct GraphPartition {
  /// Induced subgraph on owned ∪ ghost, local ids ascending in global id.
  Graph local;
  /// local id -> global id, strictly ascending (monotone remap).
  std::vector<NodeId> new_to_old;
  /// global id -> local id, kInvalidNode for nodes not in this partition.
  std::vector<NodeId> old_to_new;
  /// Per local node: 1 iff owned by this partition (0 = ghost).
  std::vector<uint8_t> owned;
  /// Per local node: 1 iff an out-of-partition decision could consume it —
  /// every ghost, plus every owned node with a higher-rank (under
  /// `orientation`'s global order) out-of-partition neighbor. The seed of
  /// HG's certainty propagation (see core/partitioned_solve.cc).
  std::vector<uint8_t> uncertain0;
  /// The global solve order restricted to the local nodes: pairwise rank
  /// comparisons among local nodes match the global order exactly.
  Ordering orientation;
  PartitionStats stats;
};

/// Partition-assignment policy: maps every node of `g` to an owner in
/// [0, partitions). Implementations must be deterministic pure functions of
/// (g, order, partitions); any valid owner map yields byte-identical
/// partitioned solutions, so policies trade only locality and balance.
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;
  virtual const char* name() const = 0;
  /// Returns owner[u] for every node u of g. `order` is the solve
  /// orientation the partitioned driver will use.
  virtual std::vector<int> Assign(const Graph& g, const Ordering& order,
                                  int partitions) const = 0;
};

/// Default policy: cut the solve order into `partitions` contiguous ranges
/// of (near-)equal node count. Contiguity in rank keeps each partition's
/// root sweep a dense slice of the global sweep and confines HG's
/// uncertainty seeds to range seams.
class RangePartitioner final : public GraphPartitioner {
 public:
  const char* name() const override { return "range"; }
  std::vector<int> Assign(const Graph& g, const Ordering& order,
                          int partitions) const override;
};

/// Restrict a global total order to one partition's local id space:
/// local ranks are dense, and rank comparisons between any two local nodes
/// agree with `order`. (The same restriction preprocess applies to the
/// degeneracy order of the pruned graph.)
Ordering RestrictOrdering(const Ordering& order,
                          const std::vector<NodeId>& old_to_new,
                          NodeId local_n);

/// Materialize the partitions for `owner` (from GraphPartitioner::Assign):
/// local CSRs, ghost maps, restricted orientations, uncertainty seeds, and
/// the static PartitionStats counters. Partition construction fans out on
/// `pool` when given (each partition is independent; outputs are identical
/// at any thread count).
std::vector<GraphPartition> BuildPartitions(const Graph& g,
                                            const Ordering& order,
                                            std::span<const int> owner,
                                            int partitions,
                                            ThreadPool* pool = nullptr);

}  // namespace dkc

#endif  // DKC_PARTITION_PARTITION_H_
