#include "matching/matching.h"

#include <algorithm>
#include <queue>

namespace dkc {

MatchingResult GreedyMatching(const Graph& g) {
  MatchingResult result;
  result.mate.assign(g.num_nodes(), kInvalidNode);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (result.mate[u] != kInvalidNode) continue;
    for (NodeId v : g.Neighbors(u)) {
      if (result.mate[v] == kInvalidNode && v != u) {
        result.mate[u] = v;
        result.mate[v] = u;
        ++result.size;
        break;
      }
    }
  }
  return result;
}

namespace {

// Edmonds' blossom algorithm, standard O(n^3) contest-grade formulation:
// BFS an alternating forest from each free vertex; when two even-level
// vertices meet, either an augmenting path is found or an odd cycle
// (blossom) is contracted via the `base` array.
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g), n_(g.num_nodes()), mate_(n_, kInvalidNode) {}

  MatchingResult Run() {
    for (NodeId u = 0; u < n_; ++u) {
      if (mate_[u] == kInvalidNode) TryAugment(u);
    }
    MatchingResult result;
    result.mate = mate_;
    for (NodeId u = 0; u < n_; ++u) {
      if (mate_[u] != kInvalidNode && u < mate_[u]) ++result.size;
    }
    return result;
  }

 private:
  NodeId LowestCommonAncestor(NodeId a, NodeId b) {
    std::vector<bool> used(n_, false);
    // Walk a's alternating path to the root, marking bases.
    for (;;) {
      a = base_[a];
      used[a] = true;
      if (mate_[a] == kInvalidNode) break;
      a = parent_[mate_[a]];
    }
    // Walk b's path until hitting a marked base.
    for (;;) {
      b = base_[b];
      if (used[b]) return b;
      b = parent_[mate_[b]];
    }
  }

  void MarkPath(NodeId v, NodeId ancestor, NodeId child) {
    while (base_[v] != ancestor) {
      blossom_[base_[v]] = true;
      blossom_[base_[mate_[v]]] = true;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  // One BFS phase. Returns the far endpoint of an augmenting path from
  // `root`, or kInvalidNode.
  NodeId FindPath(NodeId root) {
    used_.assign(n_, false);
    parent_.assign(n_, kInvalidNode);
    base_.resize(n_);
    for (NodeId i = 0; i < n_; ++i) base_[i] = i;

    std::queue<NodeId> queue;
    queue.push(root);
    used_[root] = true;
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop();
      for (NodeId to : g_.Neighbors(v)) {
        if (base_[v] == base_[to] || mate_[v] == to) continue;
        if (to == root ||
            (mate_[to] != kInvalidNode && parent_[mate_[to]] != kInvalidNode)) {
          // Odd cycle: contract the blossom around the LCA.
          const NodeId ancestor = LowestCommonAncestor(v, to);
          blossom_.assign(n_, false);
          MarkPath(v, ancestor, to);
          MarkPath(to, ancestor, v);
          for (NodeId i = 0; i < n_; ++i) {
            if (blossom_[base_[i]]) {
              base_[i] = ancestor;
              if (!used_[i]) {
                used_[i] = true;
                queue.push(i);
              }
            }
          }
        } else if (parent_[to] == kInvalidNode) {
          parent_[to] = v;
          if (mate_[to] == kInvalidNode) return to;  // augmenting path!
          used_[mate_[to]] = true;
          queue.push(mate_[to]);
        }
      }
    }
    return kInvalidNode;
  }

  void TryAugment(NodeId root) {
    const NodeId finish = FindPath(root);
    if (finish == kInvalidNode) return;
    // Flip matched/unmatched along the alternating path.
    NodeId v = finish;
    while (v != kInvalidNode) {
      const NodeId pv = parent_[v];
      const NodeId ppv = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = ppv;
    }
  }

  const Graph& g_;
  NodeId n_;
  std::vector<NodeId> mate_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> base_;
  std::vector<bool> used_;
  std::vector<bool> blossom_;
};

}  // namespace

MatchingResult MaximumMatching(const Graph& g) { return Blossom(g).Run(); }

bool IsValidMatching(const Graph& g, const std::vector<NodeId>& mate) {
  if (mate.size() != g.num_nodes()) return false;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId v = mate[u];
    if (v == kInvalidNode) continue;
    if (v >= g.num_nodes() || mate[v] != u || !g.HasEdge(u, v)) return false;
  }
  return true;
}

}  // namespace dkc
