// Maximum matching in general graphs — the k = 2 boundary of the paper's
// problem (Related Work: "when k = 2, finding the maximum set of disjoint
// k-cliques is equivalent to finding the maximum matching in general
// undirected graphs"). The disjoint-k-clique solvers require k >= 3 and
// point users here; the exact algorithm is the O(n·m) augmenting-path /
// blossom-shrinking method of the papers the related-work section cites.

#ifndef DKC_MATCHING_MATCHING_H_
#define DKC_MATCHING_MATCHING_H_

#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dkc {

struct MatchingResult {
  /// mate[u] == kInvalidNode when u is unmatched.
  std::vector<NodeId> mate;
  Count size = 0;  // number of matched pairs

  std::vector<std::pair<NodeId, NodeId>> Edges() const {
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (NodeId u = 0; u < mate.size(); ++u) {
      if (mate[u] != kInvalidNode && u < mate[u]) {
        edges.emplace_back(u, mate[u]);
      }
    }
    return edges;
  }
};

/// Greedy maximal matching (scan edges, take whatever fits). 1/2-
/// approximation — the k=2 analogue of Algorithm 1's first-fit greedy.
MatchingResult GreedyMatching(const Graph& g);

/// Exact maximum matching in general graphs via Edmonds' blossom algorithm
/// (O(n^3) implementation; the k=2 analogue of OPT). Handles odd cycles,
/// so it is correct on non-bipartite graphs.
MatchingResult MaximumMatching(const Graph& g);

/// True iff `mate` encodes a valid matching of `g` (symmetric, edges
/// exist, no node matched twice).
bool IsValidMatching(const Graph& g, const std::vector<NodeId>& mate);

}  // namespace dkc

#endif  // DKC_MATCHING_MATCHING_H_
