#include "io/atomic_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#error "the durable store requires a POSIX host"
#endif

#include <fcntl.h>
#include <unistd.h>

#include "io/fault.h"

namespace dkc {
namespace {

std::atomic<uint64_t> g_parent_dir_sync_failures{0};

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

// fsync the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems refuse O_RDONLY directory fds; the rename
// is still atomic, just not crash-durable until the next journal flush.
// Failures are counted (AtomicFileStats) and logged once per process so a
// host where EVERY publish is non-durable is visible, not silent.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = fio::Open(FaultSite::kDirOpen, dir.c_str(), O_RDONLY);
  bool failed = fd < 0;
  if (fd >= 0) {
    failed = fio::Fsync(FaultSite::kDirFsync, fd) != 0;
    ::close(fd);
  }
  if (failed &&
      g_parent_dir_sync_failures.fetch_add(1, std::memory_order_relaxed) ==
          0) {
    std::fprintf(stderr,
                 "dkc: warning: directory fsync of '%s' failed (%s); renames "
                 "here are atomic but not crash-durable\n",
                 dir.c_str(), std::strerror(errno));
  }
}

}  // namespace

AtomicFileStats GetAtomicFileStats() {
  AtomicFileStats stats;
  stats.parent_dir_sync_failures =
      g_parent_dir_sync_failures.load(std::memory_order_relaxed);
  return stats;
}

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = AtomicTempPath(path);
  const int fd = fio::Open(FaultSite::kAtomicOpen, tmp.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot open", tmp);

  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = fio::Write(FaultSite::kAtomicWrite, fd,
                                 data.data() + written, data.size() - written);
    if (n <= 0) {
      // n == 0 on a nonempty buffer would loop forever; treat it as the
      // no-progress error it is (ENOSPC-style short write at EOF).
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) errno = EIO;
      const Status status = Errno("write to", tmp);
      ::close(fd);
      fio::Unlink(FaultSite::kAtomicUnlink, tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (fio::Fsync(FaultSite::kAtomicFsync, fd) != 0) {
    const Status status = Errno("fsync", tmp);
    ::close(fd);
    fio::Unlink(FaultSite::kAtomicUnlink, tmp.c_str());
    return status;
  }
  if (fio::Close(FaultSite::kAtomicClose, fd) != 0) {
    const Status status = Errno("close", tmp);
    fio::Unlink(FaultSite::kAtomicUnlink, tmp.c_str());
    return status;
  }
  if (fio::Rename(FaultSite::kAtomicRename, tmp.c_str(), path.c_str()) != 0) {
    const Status status = Errno("rename over", path);
    fio::Unlink(FaultSite::kAtomicUnlink, tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace dkc
