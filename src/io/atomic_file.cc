#include "io/atomic_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#error "the durable store requires a POSIX host"
#endif

#include <fcntl.h>
#include <unistd.h>

namespace dkc {
namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

// fsync the directory containing `path` so the rename itself is durable.
// Best-effort: some filesystems refuse O_RDONLY directory fds; the rename
// is still atomic, just not crash-durable until the next journal flush.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

std::string AtomicTempPath(const std::string& path) { return path + ".tmp"; }

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = AtomicTempPath(path);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot open", tmp);

  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write to", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status status = Errno("fsync", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::close(fd) != 0) return Errno("close", tmp);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Errno("rename over", path);
    ::unlink(tmp.c_str());
    return status;
  }
  SyncParentDir(path);
  return Status::OK();
}

}  // namespace dkc
