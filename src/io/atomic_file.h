// Torn-write-proof file publication: write to a temp file in the target's
// directory, flush + fsync, then rename over the destination.
//
// Every writer in the tree (edge lists, solutions, snapshots, compacted
// WALs) publishes through this helper: a crash at any point leaves either
// the old file intact or the new file complete — never a truncated hybrid
// that later parses as a smaller-but-valid artifact. The rename is atomic
// on POSIX; the directory fsync makes it durable, not merely ordered.

#ifndef DKC_IO_ATOMIC_FILE_H_
#define DKC_IO_ATOMIC_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace dkc {

/// Process-wide counters for the best-effort corners of atomic publishes.
struct AtomicFileStats {
  /// Directory fsyncs that failed after a rename. Each one means a publish
  /// was atomic but not crash-durable on its own (the rename still lands
  /// with the filesystem's next journal flush). Logged once per process.
  uint64_t parent_dir_sync_failures = 0;
};

AtomicFileStats GetAtomicFileStats();

/// Atomically replace (or create) `path` with `data`. The temp file is
/// `path` + ".tmp"; a stale temp left by an earlier crash is overwritten.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// The temp name AtomicWriteFile publishes through (exposed so recovery
/// tests can fabricate mid-write crash states).
std::string AtomicTempPath(const std::string& path);

}  // namespace dkc

#endif  // DKC_IO_ATOMIC_FILE_H_
