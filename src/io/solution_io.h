// Persistence for computed disjoint k-clique sets.
//
// Production deployments (the paper's teaming events run daily) need to
// hand the computed grouping to downstream services and reload it to seed
// the dynamic maintainer. Format: a header line "dkclique-solution k <k>"
// followed by one clique per line (k whitespace-separated node ids);
// '#' comments allowed.

#ifndef DKC_IO_SOLUTION_IO_H_
#define DKC_IO_SOLUTION_IO_H_

#include <string>

#include "clique/clique_store.h"
#include "util/status.h"

namespace dkc {

/// Write `set` to `path`. Overwrites, atomically (temp + rename) — a
/// crash never leaves a torn file that parses as a smaller solution.
Status WriteSolution(const CliqueStore& set, const std::string& path);

/// Read a solution file. Returns Corruption, with the real line number
/// (leading comments counted), on malformed content: bad header, wrong
/// arity, non-numeric ids, or a duplicate id within a clique row.
/// Comments may be indented.
StatusOr<CliqueStore> ReadSolution(const std::string& path);

/// In-memory variants (tests, embedding).
std::string SolutionToString(const CliqueStore& set);
StatusOr<CliqueStore> SolutionFromString(const std::string& text);

}  // namespace dkc

#endif  // DKC_IO_SOLUTION_IO_H_
