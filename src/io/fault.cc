#include "io/fault.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>

namespace dkc {
namespace {

struct SiteNameEntry {
  FaultSite site;
  const char* name;
};

constexpr SiteNameEntry kSiteNames[] = {
    {FaultSite::kAnySite, "any"},
    {FaultSite::kAtomicOpen, "atomic_open"},
    {FaultSite::kAtomicWrite, "atomic_write"},
    {FaultSite::kAtomicFsync, "atomic_fsync"},
    {FaultSite::kAtomicClose, "atomic_close"},
    {FaultSite::kAtomicRename, "atomic_rename"},
    {FaultSite::kAtomicUnlink, "atomic_unlink"},
    {FaultSite::kDirOpen, "dir_open"},
    {FaultSite::kDirFsync, "dir_fsync"},
    {FaultSite::kWalOpen, "wal_open"},
    {FaultSite::kWalAppend, "wal_append"},
    {FaultSite::kWalGroupAppend, "wal_group_append"},
    {FaultSite::kWalFlush, "wal_flush"},
    {FaultSite::kWalFsync, "wal_fsync"},
    {FaultSite::kWalReadOpen, "wal_read_open"},
    {FaultSite::kWalTruncate, "wal_truncate"},
    {FaultSite::kSnapshotReadOpen, "snapshot_read_open"},
    {FaultSite::kStoreLink, "store_link"},
    {FaultSite::kStoreUnlink, "store_unlink"},
};

// All injector state lives behind one mutex: the seam is on syscall paths,
// where a mutex round-trip is noise next to the kernel call it guards.
struct InjectorState {
  std::mutex mu;
  bool armed = false;
  std::vector<FaultRule> rules;
  std::vector<uint64_t> rule_hits;  // matching-hit count per rule
  uint64_t total_hits = 0;
  std::vector<FaultHit> trace;
};

InjectorState& State() {
  static InjectorState* state = new InjectorState();
  return *state;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (entry.site == site) return entry.name;
  }
  return "?";
}

bool FaultSiteFromName(const std::string& name, FaultSite* site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (name == entry.name) {
      *site = entry.site;
      return true;
    }
  }
  return false;
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::vector<FaultRule> rules) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed = true;
  s.rules = std::move(rules);
  s.rule_hits.assign(s.rules.size(), 0);
  s.total_hits = 0;
  s.trace.clear();
}

void FaultInjector::Disarm() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed = false;
}

bool FaultInjector::armed() const {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.armed;
}

std::vector<FaultHit> FaultInjector::trace() const {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.trace;
}

uint64_t FaultInjector::hits() const {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.total_hits;
}

bool FaultInjector::ShouldFail(FaultSite site, FaultRule* rule) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) return false;
  ++s.total_hits;
  s.trace.push_back({site, s.total_hits});
  bool fail = false;
  // Every matching rule's counter advances on every matching hit — rules
  // count hits independently of whether an earlier rule already fired, so
  // a schedule's Nth-hit arithmetic never shifts when rules are combined.
  for (size_t i = 0; i < s.rules.size(); ++i) {
    const FaultRule& r = s.rules[i];
    if (r.site != FaultSite::kAnySite && r.site != site) continue;
    const uint64_t count = ++s.rule_hits[i];
    if (count < r.hit) continue;
    if (r.fail_count != 0 && count >= r.hit + r.fail_count) continue;
    if (!fail) {
      *rule = r;
      fail = true;
    }
  }
  return fail;
}

#if DKC_FAULT_INJECTION

namespace fio {
namespace {

bool Fails(FaultSite site, FaultRule* rule) {
  return FaultInjector::Instance().ShouldFail(site, rule);
}

}  // namespace

int Open(FaultSite site, const char* path, int flags, mode_t mode) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::open(path, flags, mode);
}

int Open(FaultSite site, const char* path, int flags) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::open(path, flags);
}

ssize_t Write(FaultSite site, int fd, const void* buf, size_t count) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    if (rule.short_bytes != SIZE_MAX) {
      // Genuine torn write: part of the buffer really lands.
      return ::write(fd, buf, std::min(rule.short_bytes, count));
    }
    errno = rule.error;
    return -1;
  }
  return ::write(fd, buf, count);
}

int Fsync(FaultSite site, int fd) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::fsync(fd);
}

int Close(FaultSite site, int fd) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    // The descriptor is genuinely closed (as the kernel may do even when
    // close reports failure); only the return value lies.
    ::close(fd);
    errno = rule.error;
    return -1;
  }
  return ::close(fd);
}

int Rename(FaultSite site, const char* from, const char* to) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::rename(from, to);
}

int Unlink(FaultSite site, const char* path) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::unlink(path);
}

int Link(FaultSite site, const char* from, const char* to) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::link(from, to);
}

int Truncate(FaultSite site, const char* path, off_t length) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return -1;
  }
  return ::truncate(path, length);
}

std::FILE* FOpen(FaultSite site, const char* path, const char* mode) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return nullptr;
  }
  return std::fopen(path, mode);
}

size_t FWrite(FaultSite site, const void* buf, size_t size, size_t n,
              std::FILE* stream) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    if (rule.short_bytes != SIZE_MAX && size > 0) {
      // Short buffered write: the truncated prefix really enters the stdio
      // buffer, so a later flush/close writes genuinely torn bytes.
      const size_t want = size * n;
      const size_t got =
          std::fwrite(buf, 1, std::min(rule.short_bytes, want), stream);
      return got / size;
    }
    errno = rule.error;
    return 0;
  }
  return std::fwrite(buf, size, n, stream);
}

int FFlush(FaultSite site, std::FILE* stream) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    errno = rule.error;
    return EOF;
  }
  return std::fflush(stream);
}

Status Probe(FaultSite site, const std::string& what) {
  FaultRule rule;
  if (Fails(site, &rule)) {
    return Status::IOError(what + ": " + std::strerror(rule.error) +
                           " (injected)");
  }
  return Status::OK();
}

}  // namespace fio

#endif  // DKC_FAULT_INJECTION

}  // namespace dkc
