// Edge-list readers/writers for the plain-text formats used by SNAP, KONECT
// and the Network Repository (the paper's dataset sources, Section VI-A):
// one "u v" pair per line, '#' or '%' comment lines, arbitrary (possibly
// sparse, possibly 1-based) node ids. Ids are remapped to a dense 0-based
// range in first-appearance order.

#ifndef DKC_IO_EDGE_LIST_H_
#define DKC_IO_EDGE_LIST_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace dkc {

struct EdgeListReadResult {
  Graph graph;
  Count lines_parsed = 0;
  Count self_loops_dropped = 0;
};

/// Read a whitespace-separated edge list from `path`. Extra *numeric*
/// columns after the first two (weights, timestamps — KONECT emits them)
/// are ignored. Returns Corruption, with the offending line number, for
/// lines that do not start with two integers, carry non-numeric trailing
/// tokens, or hold node ids that overflow 64 bits.
StatusOr<EdgeListReadResult> ReadEdgeList(const std::string& path);

/// Parse the same format from an in-memory string (used by tests and for
/// graphs embedded in the binary).
StatusOr<EdgeListReadResult> ParseEdgeList(const std::string& text);

/// Write `g` as a "u v" edge list (u < v, one line per undirected edge).
/// Published atomically (temp + rename): a crash never leaves a torn file.
Status WriteEdgeList(const Graph& g, const std::string& path);

}  // namespace dkc

#endif  // DKC_IO_EDGE_LIST_H_
